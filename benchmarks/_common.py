"""Shared helpers for the benchmark harness.

Every benchmark prints the paper-style table it regenerates *and* writes it
to ``benchmarks/results/<name>.txt`` so the artifact survives pytest's
output capture.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def format_table(headers: list[str], rows: list[tuple], widths=None) -> str:
    """Fixed-width ASCII table."""
    if widths is None:
        widths = [
            max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) + 2
            for i in range(len(headers))
        ]
    lines = ["".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * sum(widths))
    for row in rows:
        lines.append("".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
