"""Fig. 4: storage requirement -- unstructured sparse vs permuted diagonal.

An unstructured sparse weight costs value bits + index bits (EIE: 4 + 4);
a PD weight costs value bits only, plus an amortized ceil(log2 p)/p for
the per-block permutation parameter.  The bench regenerates the comparison
across compression ratios and asserts PD stores ~2x less at EIE's format.
"""

import pytest

from _common import emit, format_table
from repro.analysis import storage_comparison_curve


def test_fig04_storage_comparison(benchmark):
    curve = benchmark(
        storage_comparison_curve, 1024, 1024, (2, 4, 8, 10, 16, 32), 4, 4
    )
    rows = []
    for point in curve:
        nnz = 1024 * 1024 // point.compression
        rows.append(
            (
                f"{point.compression}x (p={point.compression})",
                nnz,
                f"{point.unstructured_bits / nnz:.2f}",
                f"{point.pd_bits / nnz:.2f}",
                f"{point.pd_advantage:.2f}x",
            )
        )
    emit(
        "fig04_storage",
        format_table(
            ["compression", "kept weights",
             "unstructured bits/weight", "PD bits/weight", "PD advantage"],
            rows,
        ),
    )

    for point in curve:
        assert point.pd_advantage > 1.5  # index elimination dominates
        nnz = 1024 * 1024 // point.compression
        # PD per-weight cost stays within a fraction of a bit of the raw
        # 4-bit value cost: position storage has been eliminated
        assert point.pd_bits / nnz < 4.6
        # EIE format: exactly 8 bits/weight + pointer overhead
        assert point.unstructured_bits / nnz >= 8.0
