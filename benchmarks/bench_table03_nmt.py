"""Table III: Stanford NMT (4 stacked LSTMs, 32 FC matrices) with p = 8.

Paper rows (IWSLT'15 English-Vietnamese):

=========================  =====  ================
model                      BLEU   FC storage
=========================  =====  ================
original 32-bit float      23.3   419.4 MB (1x)
32-bit float with PD p=8   23.3   52.4 MB (8x)
16-bit fixed with PD p=8   23.2   26.2 MB (16x)
=========================  =====  ================

Here: the storage ratio is exact arithmetic; BLEU is measured on the
synthetic translation corpus with a scaled 4-LSTM seq2seq.  The claim to
verify is *BLEU(PD) ~= BLEU(dense)* at the same training budget.
"""

import numpy as np
import pytest

from _common import emit, format_table
from repro.datasets import TranslationCorpus
from repro.metrics import corpus_bleu, model_storage_report
from repro.models import Seq2SeqNMT
from repro.nn import Adam, CrossEntropyLoss
from repro.nn.quantization import quantize_fixed_point

STEPS = 220


def _train_and_bleu(p, corpus, quantize=False, seed=0):
    model = Seq2SeqNMT(
        vocab_size=corpus.vocab.size, embed_dim=20, hidden=40, p=p,
        num_layers=2, rng=seed,
    )
    optimizer = Adam(model.parameters(), lr=8e-3)
    loss_fn = CrossEntropyLoss(ignore_index=corpus.vocab.PAD)
    gen = np.random.default_rng(seed + 1)
    for _ in range(STEPS):
        src, tgt_in, tgt_out = corpus.to_batch(corpus.sample_pairs(32, gen))
        model.train_batch(src, tgt_in, tgt_out, optimizer, loss_fn)
    if quantize:
        for param in model.parameters():
            param.value[...] = quantize_fixed_point(param.value, total_bits=16)
    pairs = corpus.sample_pairs(120, np.random.default_rng(4242))
    src, _, _ = corpus.to_batch(pairs)
    hyps = model.greedy_decode(
        src, bos=corpus.vocab.BOS, eos=corpus.vocab.EOS, max_len=12
    )
    return model, corpus_bleu([t for _, t in pairs], hyps)


def test_table03_nmt(benchmark):
    corpus = TranslationCorpus(vocab_size=20, min_len=3, max_len=5, seed=0)

    dense_model, dense_bleu = _train_and_bleu(None, corpus)
    pd_model, pd_bleu = benchmark.pedantic(
        lambda: _train_and_bleu(4, corpus), rounds=1, iterations=1
    )
    __, fixed_bleu = _train_and_bleu(4, corpus, quantize=True)

    report = model_storage_report(pd_model)
    # paper-scale storage arithmetic: 32 matrices at p=8 is exactly 8x
    paper_ratio_32 = 8.0
    rows = [
        ("original 32-bit float", f"{dense_bleu:.1f}", "1x", "23.3 / 1x"),
        (
            "32-bit float with PD",
            f"{pd_bleu:.1f}",
            f"{report.compression_ratio:.1f}x (paper p=8: {paper_ratio_32:.0f}x)",
            "23.3 / 8x",
        ),
        (
            "16-bit fixed with PD",
            f"{fixed_bleu:.1f}",
            f"{2 * report.compression_ratio:.1f}x vs 32-bit dense",
            "23.2 / 16x",
        ),
    ]
    emit(
        "table03_nmt",
        format_table(["model", "BLEU (scaled task)", "LSTM compression", "paper"], rows),
    )

    assert pd_bleu > dense_bleu - 3.0, "PD BLEU must track dense BLEU"
    assert fixed_bleu > pd_bleu - 3.0, "16-bit fixed must not collapse BLEU"
    assert report.compression_ratio == pytest.approx(3.8, abs=0.3)  # p=4 scaled
