"""Ablations of the design choices DESIGN.md calls out.

1. natural vs random ``k_l`` (paper: "no difference between task
   performance for these two setting methods");
2. zero-skipping on/off (the Fig. 5 mechanism);
3. block-size ``p`` sweep: accuracy vs compression trade-off;
4. 4-bit weight sharing on/off (footnote 11: no accuracy drop);
5. EIE FIFO depth (how much imbalance the load-balance FIFO hides).
"""

import numpy as np
import pytest

from _common import emit, format_table
from repro.core import PermutationSpec
from repro.datasets import GaussianMixtureDataset
from repro.hw import PermDNNEngine, TABLE_VII_WORKLOADS, make_workload_instance
from repro.hw.baselines import EIEConfig, EIESimulator
from repro.nn import (
    Adam,
    CrossEntropyLoss,
    PermDiagLinear,
    ReLU,
    Sequential,
    Trainer,
)
from repro.nn.quantization import WeightSharingCodebook


def _train_pd_mlp(p=4, scheme="natural", seed=0, epochs=8):
    dataset = GaussianMixtureDataset(
        num_features=64, num_classes=10, separation=2.5, seed=0
    )
    x_train, y_train, x_test, y_test = dataset.train_test_split(2500, 600)
    spec = PermutationSpec(scheme, seed=seed)
    model = Sequential(
        PermDiagLinear(64, 128, p=p, spec=spec, rng=seed),
        ReLU(),
        PermDiagLinear(128, 128, p=p, spec=spec, rng=seed + 1),
        ReLU(),
        PermDiagLinear(128, 10, p=2, spec=spec, rng=seed + 2),
    )
    trainer = Trainer(
        model, Adam(model.parameters(), lr=3e-3), CrossEntropyLoss(),
        batch_size=64, rng=seed,
    )
    history = trainer.fit(x_train, y_train, x_test, y_test, epochs=epochs)
    return model, history.final_test_accuracy, (x_test, y_test)


def test_ablation_natural_vs_random_indexing(benchmark):
    natural = benchmark.pedantic(
        lambda: _train_pd_mlp(scheme="natural")[1], rounds=1, iterations=1
    )
    random_acc = _train_pd_mlp(scheme="random")[1]
    emit(
        "ablation_kl_scheme",
        format_table(
            ["k_l scheme", "test accuracy"],
            [("natural", f"{natural:.2%}"), ("random", f"{random_acc:.2%}")],
        )
        + "\npaper: 'no difference between task performance'",
    )
    assert abs(natural - random_acc) < 0.06


def test_ablation_zero_skipping(benchmark):
    engine = PermDNNEngine()
    rows = []
    gains = {}

    def run():
        for workload in TABLE_VII_WORKLOADS:
            matrix, x = make_workload_instance(workload, rng=0)
            on = engine.run_fc_layer(matrix, x, zero_skip=True)
            off = engine.run_fc_layer(matrix, x, zero_skip=False)
            gain = off.cycles / on.cycles
            gains[workload.name] = gain
            rows.append(
                (workload.name, f"{workload.activation_density:.1%}",
                 on.cycles, off.cycles, f"{gain:.2f}x")
            )
        return gains

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_zero_skipping",
        format_table(
            ["layer", "act density", "cycles (skip)", "cycles (no skip)", "gain"],
            rows,
        ),
    )
    # gain ~= 1/activation_density for the sparse-input layers
    assert gains["Alex-FC7"] == pytest.approx(1 / 0.206, rel=0.1)
    assert gains["NMT-1"] == pytest.approx(1.0, abs=0.02)  # dense input: none


def test_ablation_block_size_tradeoff(benchmark):
    def sweep():
        out = []
        for p in (1, 2, 4, 8):
            model, acc, _ = _train_pd_mlp(p=p, epochs=6)
            from repro.metrics import model_storage_report

            ratio = model_storage_report(model).compression_ratio
            out.append((p, acc, ratio))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (p, f"{acc:.2%}", f"{ratio:.2f}x") for p, acc, ratio in results
    ]
    emit(
        "ablation_block_size",
        format_table(["p", "accuracy", "compression"], rows)
        + "\ncompression is exactly controllable by p (Sec. III-G)",
    )
    # compression tracks p; accuracy degrades gracefully, not catastrophically
    ratios = [r for _, _, r in results]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    accs = [a for _, a, _ in results]
    assert accs[-1] > 0.5 * accs[0]


def test_ablation_weight_sharing(benchmark):
    model, acc, (x_test, y_test) = _train_pd_mlp(p=4)

    def quantize_and_eval():
        for layer in model.layers:
            if isinstance(layer, PermDiagLinear):
                codebook = WeightSharingCodebook(bits=4, rng=0).fit(
                    layer.weight.value
                )
                layer.weight.value[...] = codebook.apply(layer.weight.value)
        from repro.nn import evaluate_classifier

        return evaluate_classifier(model, x_test, y_test)

    shared_acc = benchmark.pedantic(quantize_and_eval, rounds=1, iterations=1)
    emit(
        "ablation_weight_sharing",
        format_table(
            ["weights", "accuracy"],
            [("float", f"{acc:.2%}"), ("4-bit shared", f"{shared_acc:.2%}")],
        )
        + "\npaper footnote 11: '4-bit weight sharing does not cause accuracy drop'",
    )
    assert shared_acc > acc - 0.03


def test_ablation_eie_fifo_depth(benchmark):
    workload = TABLE_VII_WORKLOADS[0]
    pruned = EIESimulator.prune_reference(
        (workload.m, workload.n), workload.weight_density, rng=1
    )
    _, x = make_workload_instance(workload, rng=0)

    def sweep():
        out = []
        for depth in (1, 2, 4, 8, 32, 256):
            sim = EIESimulator(EIEConfig.projected_28nm(fifo_depth=depth))
            out.append((depth, sim.run_fc_layer(pruned, x).cycles))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(d, c) for d, c in results]
    emit(
        "ablation_eie_fifo",
        format_table(["FIFO depth", "EIE cycles (Alex-FC6)"], rows)
        + "\ndeeper FIFOs hide load imbalance, with diminishing returns",
    )
    cycles = [c for _, c in results]
    assert cycles == sorted(cycles, reverse=True)
    # even infinite-ish FIFOs cannot beat the load-balance bound, which
    # PermDNN achieves structurally
    assert cycles[-1] > 0
