"""Compression-factory benchmark: wall time and accuracy-vs-compression.

Drives ``repro.compress`` the way the factory is meant to run: the full
zoo batch (``run_zoo``) with per-phase wall time (permutation search,
fine-tune, bundle export) per entry, followed by a compression-vs-
accuracy curve on the AlexNet-FC stack -- the same pretrained dense
model compressed at ``p`` in {2, 4, 8, 16} to trace how retained
accuracy falls as the block size (and so the compression ratio) grows.

Every zoo bundle must come back ``verified=True`` (bit-identical
from-bundle serving, zero index-plan builds under the sanitizer) and
every entry must hit >= 2x parameter compression; the script exits
non-zero otherwise.

Usage::

    python benchmarks/bench_compress.py            # full zoo + p-sweep
    python benchmarks/bench_compress.py --smoke    # CI canary (seconds)
    python benchmarks/bench_compress.py --out runs/zoo   # keep bundles
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from _common import emit, format_table
from repro.compress import (
    compress_model,
    format_zoo_results,
    run_zoo,
    zoo_entry,
)

MIN_COMPRESSION = 2.0


def _run_batch(out_dir: str, entries: tuple[str, ...], name: str) -> bool:
    results = run_zoo(out_dir, entries, progress=print)
    timing_rows = [
        (
            r.name,
            f"{r.report.compression_ratio:.2f}x",
            f"{r.report.timings.search_s:.2f}",
            f"{r.report.timings.finetune_s:.2f}",
            f"{r.report.timings.export_s:.2f}",
            f"{r.report.timings.total_s:.2f}",
            str(r.report.verified),
        )
        for r in results
    ]
    text = format_zoo_results(results) + "\n\n" + format_table(
        ["entry", "compress", "search_s", "finetune_s", "export_s",
         "total_s", "verified"],
        timing_rows,
    )
    emit(name, text)
    ok = True
    for r in results:
        if not r.report.verified:
            print(f"FAIL: {r.name}: bundle not verified", file=sys.stderr)
            ok = False
        if r.report.compression_ratio < MIN_COMPRESSION:
            print(
                f"FAIL: {r.name}: compression "
                f"{r.report.compression_ratio:.2f}x < {MIN_COMPRESSION}x",
                file=sys.stderr,
            )
            ok = False
    return ok


def _accuracy_curve(name: str, p_values: tuple[int, ...]) -> None:
    """Same pretrained dense FC stack, compressed at increasing p."""
    from repro.nn import Adam, CrossEntropyLoss, Trainer

    entry = zoo_entry("alexnet-fc")
    data = entry.dataset(entry.seed)
    model = entry.builder(entry.seed)
    Trainer(
        model,
        Adam(model.parameters(), lr=entry.pretrain_lr),
        CrossEntropyLoss(),
        batch_size=entry.batch_size,
        rng=entry.seed,
    ).fit(data[0], data[1], epochs=entry.pretrain_epochs)

    rows = []
    for p in p_values:
        result = compress_model(
            model,
            data,
            name=f"alexnet-fc@p={p}",
            fc_p=p,
            head_p=min(p, entry.head_p),
            strategy=entry.strategy,
            finetune_epochs=entry.finetune_epochs,
            lr=entry.finetune_lr,
            batch_size=entry.batch_size,
            seed=entry.seed,
        )
        report = result.report
        rows.append(
            (
                p,
                f"{report.compression_ratio:.2f}x",
                f"{report.dense_metric:.4f}",
                f"{report.projected_metric:.4f}",
                f"{report.finetuned_metric:.4f}",
                f"{report.metric_delta:+.4f}",
            )
        )
        print(f"p={p}: {report.compression_ratio:.2f}x, "
              f"accuracy {report.finetuned_metric:.4f}")
    emit(name, format_table(
        ["p", "compress", "dense", "projected", "fine-tuned", "delta"],
        rows,
    ))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI canary: the tiny lenet-smoke entry and a "
                             "two-point p-sweep")
    parser.add_argument("--out", default=None,
                        help="keep bundles/reports here (default: a "
                             "temporary directory)")
    args = parser.parse_args(argv)

    if args.smoke:
        entries = ("lenet-smoke",)
        batch_name = "bench_compress_smoke"
        curve_name = "bench_compress_curve_smoke"
        p_values = (2, 8)
    else:
        entries = tuple(
            n for n in ("lenet", "alexnet-fc", "resnet20", "nmt")
        )
        batch_name = "bench_compress"
        curve_name = "bench_compress_curve"
        p_values = (2, 4, 8, 16)

    if args.out is not None:
        ok = _run_batch(args.out, entries, batch_name)
    else:
        with tempfile.TemporaryDirectory() as out_dir:
            ok = _run_batch(out_dir, entries, batch_name)
    _accuracy_curve(curve_name, p_values)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
