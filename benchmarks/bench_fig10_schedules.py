"""Fig. 10: computation schedules of a 2-PE PermDNN (N_MUL=1, N_ACC=4).

Reproduces the paper's worked example on an 8x8 weight matrix:

- Fig. 10(a), p=2: Case 1 -- two cycles per column, continuous.
- Fig. 10(b), p=3: Case 2 -- accumulators run out; rows are processed in
  chunks and the input columns are re-walked (partial-then-release).
"""

import pytest

from _common import emit, format_table
from repro.hw.scheduler import classify_case, cycles_per_column, schedule_trace


def test_fig10_schedules(benchmark):
    # Fig. 10(a): 8x8, p=2 -> each PE owns 4 rows
    trace_a = benchmark(
        schedule_trace, 8, 4, 2, 1, 4
    )
    schedule_a = cycles_per_column(4, 2, 1, 4)

    # Fig. 10(b): p=3 -> padded matrix, each PE owns ~6 rows, N_ACC=4 < 6
    schedule_b = cycles_per_column(6, 3, 1, 4)
    trace_b = schedule_trace(4, 6, 3, 1, 4)

    rows_a = [
        (e["cycle"], f"col {e['column']}", e["pass"], e["rows"])
        for e in trace_a[:8]
    ]
    rows_b = [
        (e["cycle"], f"col {e['column']}", e["pass"], e["rows"])
        for e in trace_b
    ]
    text = (
        "Fig. 10(a)  p=2: case {} -- {} cycles/column, continuous\n{}\n\n"
        "Fig. 10(b)  p=3: case {} -- {} passes, {} cycles/column total\n{}"
    ).format(
        schedule_a.case,
        int(schedule_a.cycles_per_column),
        format_table(["cycle", "column", "pass", "PE-local rows"], rows_a),
        schedule_b.case,
        schedule_b.passes,
        int(schedule_b.cycles_per_column),
        format_table(["cycle", "column", "pass", "PE-local rows"], rows_b),
    )
    emit("fig10_schedules", text)

    # paper: p=2 example takes two cycles per column, continuously
    assert schedule_a.case == 1
    assert schedule_a.cycles_per_column == 2.0
    # paper: p=3 example must split rows across accumulator chunks and
    # revisit columns (the "release and redo" procedure)
    assert schedule_b.case == 2
    assert schedule_b.passes == 2
    passes_seen = {e["pass"] for e in trace_b}
    assert passes_seen == {0, 1}
    # every pass walks all 4 columns
    for pass_idx in passes_seen:
        cols = {e["column"] for e in trace_b if e["pass"] == pass_idx}
        assert cols == {0, 1, 2, 3}
