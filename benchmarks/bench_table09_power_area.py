"""Table IX: power and area breakdowns (PE and whole engine).

The area/power model is calibrated at the paper's design point, so the
default configuration must reproduce the published breakdown; the bench
also exercises the model's scaling axes (frequency, PE count).
"""

import pytest

from _common import emit, format_table
from repro.hw import AreaPowerModel, EngineConfig, PEConfig

PAPER_PE_POWER = {
    "memory": 3.575, "register": 4.755, "combinational": 10.48, "clock": 3.064,
}
PAPER_PE_AREA = {
    "memory": 0.178, "register": 0.01, "combinational": 0.015,
    "clock": 0.0005, "filler": 0.0678,
}


def test_table09_power_area(benchmark):
    model = AreaPowerModel()
    breakdown = benchmark(model.pe_breakdown, PEConfig())
    engine = model.engine_breakdown(EngineConfig())

    rows = []
    for component in ("memory", "register", "combinational", "clock", "filler"):
        power = breakdown.power_mw.get(component)
        area = breakdown.area_mm2.get(component)
        rows.append(
            (
                component,
                f"{power:.3f}" if power is not None else "--",
                f"{PAPER_PE_POWER.get(component, float('nan')):.3f}"
                if component in PAPER_PE_POWER else "--",
                f"{area:.4f}",
                f"{PAPER_PE_AREA[component]:.4f}",
            )
        )
    rows.append(
        ("PE total", f"{breakdown.total_power_mw:.3f}", "21.874",
         f"{breakdown.total_area_mm2:.3f}", "0.271")
    )
    rows.append(
        ("engine total", f"{engine.total_power_w * 1000:.1f} mW", "703.4 mW",
         f"{engine.total_area_mm2:.2f} mm2", "8.85 mm2")
    )
    emit(
        "table09_power_area",
        format_table(
            ["component", "power mW", "paper", "area mm2", "paper "], rows
        ),
    )

    assert breakdown.total_power_mw == pytest.approx(21.874, rel=1e-4)
    assert breakdown.total_area_mm2 == pytest.approx(0.271, abs=0.001)
    assert engine.total_power_w == pytest.approx(0.7034, rel=1e-3)
    assert engine.total_area_mm2 == pytest.approx(8.85, rel=0.003)
    for component, value in PAPER_PE_POWER.items():
        assert breakdown.power_mw[component] == pytest.approx(value, rel=1e-6)
