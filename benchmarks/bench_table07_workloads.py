"""Table VII: the six benchmark FC layers and their sparsity ratios.

Regenerates the workload table: layer sizes, constant weight density
(= 1/p by construction -- measured here from actual instantiated
matrices) and activation density.  For the AlexNet layers we additionally
measure ReLU-induced activation density of a trained scaled model to show
the 20-45% band the paper reports statistically.
"""

import numpy as np
import pytest

from _common import emit, format_table
from repro.datasets import GaussianMixtureDataset
from repro.hw import TABLE_VII_WORKLOADS, make_workload_instance
from repro.metrics import activation_sparsity, weight_sparsity
from repro.models import build_alexnet_fc
from repro.nn import Adam, CrossEntropyLoss, Trainer

PAPER_ACT_DENSITY = {
    "Alex-FC6": 0.358, "Alex-FC7": 0.206, "Alex-FC8": 0.444,
    "NMT-1": 1.0, "NMT-2": 1.0, "NMT-3": 1.0,
}


def _measured_relu_densities():
    """Train the scaled AlexNet-FC stack and measure FC7/FC8 input density."""
    scale = 64
    dataset = GaussianMixtureDataset(
        num_features=9216 // scale, num_classes=1000 // scale, separation=3.0,
        seed=0,
    )
    x_train, y_train, x_test, __ = dataset.train_test_split(2000, 512)
    model = build_alexnet_fc(scale=scale, num_classes=1000 // scale,
                             dropout=0.2, rng=0)
    Trainer(
        model, Adam(model.parameters(), lr=2e-3), CrossEntropyLoss(),
        batch_size=64, rng=0,
    ).fit(x_train, y_train, epochs=5)
    # layer indices in the Sequential: 0 FC6, 1 ReLU, 2 Drop, 3 FC7, ...
    fc7_density = activation_sparsity(model, x_test, layer_index=3)
    fc8_density = activation_sparsity(model, x_test, layer_index=6)
    return fc7_density, fc8_density


def test_table07_workloads(benchmark):
    rows = []
    for workload in TABLE_VII_WORKLOADS:
        matrix, x = make_workload_instance(workload, rng=0)
        measured_w = weight_sparsity(matrix.to_dense())
        measured_a = float((x != 0).mean())
        rows.append(
            (
                workload.name,
                f"{workload.m}, {workload.n}",
                f"{measured_w:.1%} (p={workload.p})",
                f"{measured_a:.1%}",
                f"{PAPER_ACT_DENSITY[workload.name]:.1%}",
                workload.description,
            )
        )
        assert measured_w == pytest.approx(1.0 / workload.p, abs=0.005)
        assert measured_a == pytest.approx(workload.activation_density, abs=0.005)

    fc7_density, fc8_density = benchmark.pedantic(
        _measured_relu_densities, rounds=1, iterations=1
    )
    rows.append(
        ("(measured)", "ReLU outputs of trained scaled model",
         "--", f"FC7-in {fc7_density:.1%} / FC8-in {fc8_density:.1%}",
         "20.6% / 44.4%", "dynamic sparsity source")
    )
    emit(
        "table07_workloads",
        format_table(
            ["layer", "size", "weight density", "act density", "paper act", "description"],
            rows,
        ),
    )
    # trained ReLU layers do produce substantial dynamic sparsity
    assert fc7_density < 0.7
    assert fc8_density < 0.8
