"""Sec. III-E (second half): approximation power scales with parameters.

The paper claims PD networks are universal approximators with error bound
O(1/n) in the parameter count.  We fit a fixed smooth 1-D function with PD
networks of growing width and check (1) the error falls as parameters grow
and (2) a PD network is competitive with a *dense* network of comparable
parameter count -- the comparison the bound implies.
"""

import pytest

from _common import emit, format_table
from repro.analysis import approximation_error_curve, fit_function


def test_sec3e_approximation_power(benchmark):
    curve = benchmark.pedantic(
        lambda: approximation_error_curve(widths=(8, 16, 32, 64), p=4, steps=700),
        rounds=1,
        iterations=1,
    )
    # dense reference matched on parameter count: dense width w has ~w^2
    # hidden params, PD width w has w^2/4 -- so dense width w/2 is the
    # equal-parameter comparison for PD width w.
    dense_ref = fit_function(width=32, p=None, steps=700, seed=0)

    rows = [
        (f"PD p=4, width {r.width}", r.parameters, f"{r.l2_error:.4f}")
        for r in curve
    ]
    rows.append(
        ("dense, width 32 (equal-param ref)", dense_ref.parameters,
         f"{dense_ref.l2_error:.4f}")
    )
    emit(
        "sec3e_approximation",
        format_table(["network", "parameters", "L2 error"], rows)
        + "\npaper: universal approximation with error bound O(1/n)",
    )

    errors = [r.l2_error for r in curve]
    # error decreases from the smallest to the largest network
    assert errors[-1] < errors[0]
    # the largest PD network achieves a usably small error
    assert errors[-1] < 0.25
    # PD (width 64, ~2.2k params) is in the same league as the dense
    # equal-parameter reference
    assert errors[-1] < dense_ref.l2_error * 3
