"""Sharded serving throughput vs the single-engine batch baseline.

Runs the AlexNet-FC serving workload (FC6 -> FC7 -> FC8 at Table II block
sizes, inputs at Alex-FC6's Table VII activation density) through
``repro.serve.ModelServer`` at several shard counts and compares simulated
requests/sec and latency against the natural single-engine loop
(``PermDNNEngine.run_fc_batch`` layer by layer).  Outputs must match the
baseline **bit for bit** at every shard count.

The tracked acceptance point is the 4-shard row: ``speedup >= 2.0`` on the
full-scale stack (the script exits non-zero below that bar, or on any
output mismatch).

``--open-loop`` switches to the tail-latency study: seeded Poisson /
bursty / diurnal arrival streams drive the 4-shard stack across offered
loads, reporting p50/p90/p99 latency vs offered load, the max sustainable
QPS under a p99 SLO (knee found by bisection), and graceful degradation
under 2x-knee overload with a bounded queue (reject-newest shedding).
Exit is non-zero on any admitted-output mismatch vs the single-engine
baseline, a missing knee, or an SLO miss under shedding.  Methodology in
``docs/BENCHMARKS.md``.

Usage::

    python benchmarks/bench_serving.py            # full scale, shards 1/2/4/8
    python benchmarks/bench_serving.py --smoke    # CI canary (scale 1/8)
    python benchmarks/bench_serving.py --shards 4 --requests 64
    python benchmarks/bench_serving.py --dtype float32        # storage mode
    python benchmarks/bench_serving.py --open-loop            # latency vs load
    python benchmarks/bench_serving.py --open-loop --smoke    # CI canary
    python benchmarks/bench_serving.py --workloads            # FC+conv+recurrent
    python benchmarks/bench_serving.py --workloads --smoke    # CI canary

``--workloads`` serves the whole workload matrix -- the AlexNet FC
stack, LeNet-style and ResNet-20-style PD conv pipelines, and the NMT
LSTM cell -- sharded and multi-threaded against unsharded sequential
references (bit-exactness required for every stage kind), then splits
one bursty open-loop arrival stream between a vision (LeNet) and a
translation (NMT) server.

The closed-loop run also emits a host-time thread comparison: the same
drain at the acceptance shard count across executor thread counts, with
real wall-clock per drain and the bit-exactness check.  Simulated
metrics are thread-count independent by construction (shard outputs are
stitched in shard order), so only wall time moves -- and only on hosts
with more than one CPU.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from _common import emit, format_table
from repro.serve import (
    format_mixed_report,
    format_open_loop_report,
    format_workload_matrix,
    run_mixed_traffic,
    run_open_loop_sweep,
    run_serving_sweep,
    run_workload_matrix,
)

FULL_SHARDS = (1, 2, 4, 8)
SMOKE_SHARDS = (1, 4)

# The acceptance criterion is pinned to this shard count.
ACCEPTANCE_SHARDS = 4
ACCEPTANCE_SPEEDUP = 2.0

OPEN_LOOP_ARRIVALS = ("poisson", "bursty", "diurnal")


def run_open_loop(args) -> int:
    """The ``--open-loop`` path: latency percentiles vs offered load."""
    smoke = args.smoke
    scale = args.scale if args.scale is not None else (8 if smoke else 1)
    # The window doubles as the measurement length for knee evaluations:
    # it must be long enough for queueing past saturation to express
    # (see run_open_loop_sweep), hence the large full-scale default.
    requests = (
        args.requests if args.requests is not None else (16 if smoke else 256)
    )
    start = time.perf_counter()
    report = run_open_loop_sweep(
        arrivals=OPEN_LOOP_ARRIVALS,
        load_fractions=(0.5, 1.0) if smoke else (0.5, 0.8, 1.0, 1.3),
        num_requests=requests,
        num_shards=ACCEPTANCE_SHARDS,
        scale=scale,
        seed=args.seed,
        slo_us=args.slo_us,
        max_batch_size=args.max_batch,
        flush_deadline_us=args.deadline_us,
        knee_iters=5 if smoke else 8,
    )
    wall = time.perf_counter() - start
    text = format_open_loop_report(report) + f"\n\n(wall time {wall:.1f}s)"
    emit(
        "bench_serving_openloop_smoke" if smoke else "bench_serving_openloop",
        text,
    )
    failures = report.failures()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def run_workloads(args) -> int:
    """The ``--workloads`` path: FC + conv + recurrent serving matrix.

    Every named workload (AlexNet-FC, LeNet-style conv, ResNet-20-style
    conv, NMT LSTM cell) runs sharded and multi-threaded against its
    unsharded sequential reference, bit-exactness required, followed by
    a mixed vision+translation run: one open-loop arrival stream (PR 7
    generators) split between a LeNet server and an NMT server.
    """
    smoke = args.smoke
    scale = args.scale if args.scale is not None else 8
    # Default to a multiple of the batch limit: a trailing partial batch
    # would wait out the deadline flush and the matrix would measure the
    # deadline, not the engines.
    requests = (
        args.requests if args.requests is not None else (8 if smoke else 32)
    )
    thread_counts = tuple(args.threads) if args.threads else (
        (2,) if smoke else (1, 2)
    )
    start = time.perf_counter()
    sections = []
    failures = []
    for threads in thread_counts:
        rows = run_workload_matrix(
            num_shards=ACCEPTANCE_SHARDS,
            num_requests=requests,
            max_batch_size=args.max_batch,
            flush_deadline_us=args.deadline_us,
            scale=scale,
            seed=args.seed,
            num_threads=threads,
            value_dtype=args.dtype if args.dtype != "float64" else None,
        )
        sections.append(format_workload_matrix(rows))
        failures.extend(
            f"{row.workload} @ {row.num_threads} threads: outputs diverge "
            "from the unsharded reference"
            for row in rows
            if not row.outputs_match
        )
    mixed = run_mixed_traffic(
        process="bursty",
        load=0.8,
        num_requests=requests,
        num_shards=ACCEPTANCE_SHARDS,
        num_threads=thread_counts[-1],
        seed=args.seed,
        max_batch_size=args.max_batch,
        flush_deadline_us=args.deadline_us,
    )
    sections.append(format_mixed_report(mixed))
    failures.extend(mixed.failures())
    wall = time.perf_counter() - start
    text = "\n\n".join(sections) + f"\n\n(wall time {wall:.1f}s)"
    emit(
        "bench_serving_workloads_smoke" if smoke else "bench_serving_workloads",
        text,
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small scale + few requests for CI")
    parser.add_argument("--shards", type=int, action="append", default=None,
                        help="shard count to measure (repeatable)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--scale", type=int, default=None,
                        help="divide the AlexNet-FC widths by this factor")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--deadline-us", type=float, default=50.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dtype", default="float64",
                        choices=("float64", "float32", "int16"),
                        help="value-storage mode served "
                             "(quantize-at-export)")
    parser.add_argument("--threads", type=int, action="append", default=None,
                        help="thread count for the host-time comparison "
                             "(repeatable; default 1/2/4)")
    parser.add_argument("--open-loop", action="store_true",
                        help="tail-latency study under open-loop arrivals "
                             "(Poisson/bursty/diurnal) instead of the "
                             "closed-loop shard sweep")
    parser.add_argument("--workloads", action="store_true",
                        help="serve the whole workload matrix (FC + conv + "
                             "recurrent) plus a mixed vision+translation "
                             "traffic run instead of the shard sweep")
    parser.add_argument("--slo-us", type=float, default=None,
                        help="p99 SLO for knee finding (open-loop mode; "
                             "default 2x the unloaded p99)")
    args = parser.parse_args()

    if args.open_loop:
        return run_open_loop(args)
    if args.workloads:
        return run_workloads(args)

    scale = args.scale if args.scale is not None else (8 if args.smoke else 1)
    requests = (
        args.requests if args.requests is not None else (8 if args.smoke else 32)
    )
    shard_counts = tuple(args.shards) if args.shards else (
        SMOKE_SHARDS if args.smoke else FULL_SHARDS
    )
    # Throughput is measured under an all-at-once burst; cap the batch
    # limit at the request count so partial batches don't sit out the
    # deadline flush (which would measure the deadline, not the engines).
    max_batch = min(args.max_batch, requests)

    start = time.perf_counter()
    # One sweep call: the workload and the single-engine baseline are
    # built once and shared across every shard count.
    reports = run_serving_sweep(
        shard_counts,
        num_requests=requests,
        max_batch_size=max_batch,
        flush_deadline_us=args.deadline_us,
        scale=scale,
        seed=args.seed,
        value_dtype=args.dtype,
    )
    wall = time.perf_counter() - start

    rows = []
    failures = []
    for report in reports:
        rows.append((
            report.num_shards,
            f"{report.sharded_rps:,.0f}",
            f"{report.speedup:.2f}x",
            f"{report.p50_latency_us:.1f}",
            f"{report.p99_latency_us:.1f}",
            "yes" if report.outputs_match else "NO",
        ))
        if not report.outputs_match:
            failures.append(
                f"{report.num_shards}-shard outputs diverge from baseline"
            )
        if (
            report.num_shards == ACCEPTANCE_SHARDS
            and report.speedup < ACCEPTANCE_SPEEDUP
        ):
            failures.append(
                f"{report.num_shards}-shard speedup {report.speedup:.2f}x "
                f"below the {ACCEPTANCE_SPEEDUP:.1f}x acceptance bar"
            )

    header = (
        f"AlexNet-FC serving, scale 1/{scale}, {requests} requests, "
        f"max batch {reports[0].max_batch_size}, "
        f"deadline {args.deadline_us:.0f} us, "
        f"{args.dtype} value storage\n"
        f"baseline (1 engine, run_fc_batch): "
        f"{reports[0].baseline_rps:,.0f} req/s\n\n"
    )
    table = format_table(
        ["shards", "req/s", "speedup", "p50_us", "p99_us", "bit-exact"],
        rows,
    )
    table += f"\n\n(sweep wall time {wall:.1f}s)"

    # Host-time thread comparison: the same drain at the acceptance shard
    # count, across executor thread counts.  Simulated rows above do not
    # move; only real wall time can.
    thread_counts = tuple(args.threads) if args.threads else (1, 2, 4)
    thread_rows = []
    for threads in thread_counts:
        [rep] = run_serving_sweep(
            (ACCEPTANCE_SHARDS,),
            num_requests=requests,
            max_batch_size=max_batch,
            flush_deadline_us=args.deadline_us,
            scale=scale,
            seed=args.seed,
            num_threads=threads,
            value_dtype=args.dtype,
        )
        thread_rows.append((
            rep.num_threads,
            f"{rep.host_wall_s * 1e3:.1f}",
            f"{rep.sharded_rps:,.0f}",
            "yes" if rep.outputs_match else "NO",
        ))
        if not rep.outputs_match:
            failures.append(
                f"{rep.num_threads}-thread outputs diverge from baseline"
            )
    host_cpus = os.cpu_count() or 1
    table += (
        f"\n\nhost-time thread comparison "
        f"({ACCEPTANCE_SHARDS} shards, {host_cpus}-CPU host):\n"
        + format_table(
            ["threads", "drain_wall_ms", "sim_req/s", "bit-exact"],
            thread_rows,
        )
    )
    if host_cpus == 1:
        table += (
            "\n(single-CPU host: thread counts cannot change wall time "
            "here; the comparison pins determinism and overhead)"
        )
    # Smoke runs get their own artifact so a CI canary never clobbers the
    # committed full-scale reference table.
    emit("bench_serving_smoke" if args.smoke else "bench_serving",
         header + table)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
