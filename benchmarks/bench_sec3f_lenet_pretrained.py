"""Sec. III-F: compress a *pre-trained* dense LeNet-5 via PD approximation.

Paper: "for pre-trained dense LeNet-5 on MNIST, with p=4 for CONV and
p=100 for FC, the finally converted permuted-diagonal network after
re-training achieves 99.06% test accuracy and overall 40x compression
without quantization."

Scaled flow on procedural digits: dense pre-train -> optimal-L2 PD
projection (accuracy collapses) -> structure-preserving fine-tune
(accuracy recovers to ~dense).  The shape to verify is that V-curve plus
the compression accounting.
"""

import numpy as np
import pytest

from _common import emit, format_table
from repro.core import approximate_pd
from repro.datasets import make_digits
from repro.metrics import model_storage_report
from repro.nn import (
    Adam,
    CrossEntropyLoss,
    Flatten,
    Linear,
    MaxPool2D,
    PermDiagLinear,
    ReLU,
    Sequential,
    Trainer,
    evaluate_classifier,
)
from repro.nn.layers.conv2d import Conv2D

FC_P = 16  # scaled stand-in for the paper's p=100 (our FC layers are smaller)


def _build_dense(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2D(1, 6, 5, padding=2, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Linear(6 * 14 * 14, 128, rng=rng),
        ReLU(),
        Linear(128, 64, rng=rng),
        ReLU(),
        Linear(64, 10, rng=rng),
    )


def _convert(model):
    layers = []
    for layer in model.layers:
        if isinstance(layer, Linear) and layer.out_features > 10:
            approx = approximate_pd(layer.weight.value, p=FC_P, scheme="best")
            layers.append(PermDiagLinear.from_matrix(approx, bias=layer.bias.value))
        else:
            layers.append(layer)
    return Sequential(*layers)


def test_sec3f_lenet_pretrained_flow(benchmark):
    x_train, y_train = make_digits(2500, noise=0.12, seed=0)
    x_test, y_test = make_digits(700, noise=0.12, seed=1)

    dense = _build_dense()
    Trainer(
        dense, Adam(dense.parameters(), lr=2e-3), CrossEntropyLoss(),
        batch_size=64, rng=0,
    ).fit(x_train, y_train, epochs=3)
    dense_acc = evaluate_classifier(dense, x_test, y_test)

    compressed = _convert(dense)
    projected_acc = evaluate_classifier(compressed, x_test, y_test)

    def fine_tune():
        # p=16 leaves each hidden unit ~8 effective inputs, so recovery
        # needs a real budget (the paper fine-tunes on the full 60k MNIST)
        Trainer(
            compressed, Adam(compressed.parameters(), lr=2e-3),
            CrossEntropyLoss(), batch_size=64, rng=1,
        ).fit(x_train, y_train, epochs=8)
        return evaluate_classifier(compressed, x_test, y_test)

    tuned_acc = benchmark.pedantic(fine_tune, rounds=1, iterations=1)
    report = model_storage_report(compressed)

    rows = [
        ("dense pre-trained", f"{dense_acc:.2%}", "--"),
        ("after PD projection", f"{projected_acc:.2%}", "--"),
        ("after fine-tuning", f"{tuned_acc:.2%}",
         f"{report.compression_ratio:.1f}x FC compression"),
        ("paper (MNIST)", "99.06%", "40x overall"),
    ]
    emit("sec3f_lenet_pretrained", format_table(["stage", "accuracy", "compression"], rows))

    assert dense_acc > 0.9, "dense pre-training must succeed"
    assert projected_acc < dense_acc - 0.05, "projection alone costs accuracy"
    assert tuned_acc > dense_acc - 0.03, "fine-tuning must recover accuracy"
    assert report.compression_ratio > 5.0
