"""Table VIII: design configuration parameters of the 32-PE engine.

Regenerates the configuration table and checks every derived quantity the
paper states in the surrounding text: 128 KB weight SRAM, 12 KB
permutation SRAM, 128 KB activation SRAM (a 16-bit 64K-vector), 614.4
GOPS peak, and the 8M-parameter over-design capacity claim.
"""

import pytest

from _common import emit, format_table
from repro.hw import EngineConfig, PermDNNEngine


def test_table08_configuration(benchmark):
    config = benchmark(EngineConfig)
    pe = config.pe
    engine = PermDNNEngine(config)

    rows = [
        ("Multiplier amount (N_MUL)", pe.n_mul, 8),
        ("Multiplier width", f"{pe.mul_width} bits", "16 bits"),
        ("Accumulator amount (N_ACC)", pe.n_acc, 128),
        ("Accumulator width", f"{pe.acc_width} bits", "24 bits"),
        ("Weight SRAM sub-banks", pe.weight_sram_banks, 16),
        ("Weight SRAM width x depth", f"{pe.weight_sram_width}b x {pe.weight_sram_depth}", "32b x 2048"),
        ("Weight SRAM total", f"{pe.weight_sram_bits // 8 // 1024} KB", "128 KB"),
        ("Permutation SRAM", f"{pe.perm_sram_width}b x {pe.perm_sram_depth} = {pe.perm_sram_bits // 8 // 1024} KB", "48b x 2048 = 12 KB"),
        ("Amount of PEs (N_PE)", config.n_pe, 32),
        ("Quantization", f"{config.quant_bits} bits", "16 bits"),
        ("Weight sharing", f"{config.weight_sharing_bits} bits", "4 bits"),
        ("Pipeline stages", config.pipeline_stages, 5),
        ("Activation SRAM banks (N_ACTMB)", config.act_sram_banks, 8),
        ("Activation SRAM width (W_ACTM)", f"{config.act_sram_width} bits", "64 bits"),
        ("Activation SRAM total", f"{config.act_sram_banks * config.act_sram_width * config.act_sram_depth // 8 // 1024} KB", "128 KB"),
        ("Activation FIFO", f"{config.act_fifo_width}b x {config.act_fifo_depth}", "32b x 32"),
        ("Clock", f"{config.clock_ghz} GHz", "1.2 GHz"),
        ("Peak throughput", f"{config.peak_gops} GOPS", "614.4 GOPS"),
    ]
    emit("table08_config", format_table(["parameter", "this repo", "paper"], rows))

    assert pe.weight_sram_bits == 128 * 1024 * 8
    assert pe.perm_sram_bits == 12 * 1024 * 8
    act_bits = config.act_sram_banks * config.act_sram_width * config.act_sram_depth
    assert act_bits == 128 * 1024 * 8
    # "corresponds to a 16-bit 64K-length vector"
    assert act_bits // config.quant_bits == 64 * 1024
    assert config.peak_gops == pytest.approx(614.4)
    # over-design: 32 PEs with 4-bit sharing store an 8M-parameter layer
    capacity = engine.weight_sram.capacity_words(4) * config.n_pe
    assert capacity >= 8_000_000
