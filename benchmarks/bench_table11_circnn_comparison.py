"""Table XI: CirCNN vs PermDNN (both from synthesis reports).

Paper rows:

======================  ========  ==========  =========
design                  CirCNN    CirCNN@28   PermDNN
======================  ========  ==========  =========
clock (MHz)             200       320         1200
power (W)               0.08      0.08        0.236
equiv. throughput TOPS  0.8       1.28        14.74 (11.51x)
equiv. TOPS/W           10.0      16.0        62.28 (3.89x)
======================  ========  ==========  =========

PermDNN's equivalent TOPS uses the paper's *pessimistic* conversion:
peak 614.4 GOPS (compressed) x 8 (weight compression) x 3 (activation
sparsity) = 14.74 TOPS.

The bench also runs the two *mechanism* simulators on an equal-multiplier
budget to show where the gap comes from: 4x real-vs-complex arithmetic
plus (on sparse inputs) the zero-skipping CirCNN cannot do.
"""

import numpy as np
import pytest

from _common import emit, format_table
from repro.hw import PermDNNEngine, TABLE_VII_WORKLOADS, make_workload_instance
from repro.hw.baselines.circnn import (
    CIRCNN_DESIGN_45NM,
    CirCNNConfig,
    CirCNNSimulator,
)
from repro.hw.energy import SYNTHESIS_AREA_MM2, SYNTHESIS_POWER_W
from repro.hw.technology import project_design

WEIGHT_COMPRESSION = 8.0  # paper's pessimistic conversion factors
ACTIVATION_SPARSITY = 3.0


def test_table11_circnn_comparison(benchmark):
    engine = PermDNNEngine()
    projected = project_design(CIRCNN_DESIGN_45NM, 28)

    perm_equiv_tops = (
        engine.config.peak_gops * WEIGHT_COMPRESSION * ACTIVATION_SPARSITY / 1000
    )
    perm_tops_per_w = perm_equiv_tops / SYNTHESIS_POWER_W
    circ_reported_tops = 0.8
    circ_projected_tops = circ_reported_tops * (projected.clock_ghz / 0.2)
    circ_projected_eff = circ_projected_tops / projected.power_w

    throughput_ratio = perm_equiv_tops / circ_projected_tops
    efficiency_ratio = perm_tops_per_w / circ_projected_eff

    rows = [
        ("CMOS tech", "45 nm", "28 nm (projected)", "28 nm"),
        ("Clock (MHz)", 200, f"{projected.clock_ghz * 1000:.0f}", 1200),
        ("Power (W)", 0.08, f"{projected.power_w:.2f}", f"{SYNTHESIS_POWER_W}"),
        ("Area (mm2)", "N/A", "N/A", f"{SYNTHESIS_AREA_MM2}"),
        ("Equiv. TOPS", circ_reported_tops, f"{circ_projected_tops:.2f}",
         f"{perm_equiv_tops:.2f} ({throughput_ratio:.2f}x)"),
        ("Equiv. TOPS/W", 10.0, f"{circ_projected_eff:.1f}",
         f"{perm_tops_per_w:.2f} ({efficiency_ratio:.2f}x)"),
    ]
    emit(
        "table11_circnn_comparison",
        format_table(["metric", "CirCNN reported", "CirCNN projected", "PermDNN"], rows),
    )

    # headline ratios (paper: 11.51x throughput, 3.89x energy efficiency)
    assert perm_equiv_tops == pytest.approx(14.74, abs=0.02)
    assert throughput_ratio == pytest.approx(11.51, rel=0.02)
    assert efficiency_ratio == pytest.approx(3.89, rel=0.02)

    # mechanism check on equal multiplier budgets (timed as the benchmark)
    def mechanism_gap():
        workload = TABLE_VII_WORKLOADS[0]  # Alex-FC6: 35.8% input density
        matrix, x = make_workload_instance(workload, rng=0)
        perm = engine.performance(
            engine.run_fc_layer(matrix, x), (workload.m, workload.n)
        )
        circ = CirCNNSimulator(
            CirCNNConfig(
                n_real_mul=engine.config.peak_macs_per_cycle,
                clock_ghz=engine.config.clock_ghz,
            )
        )
        mb, nb = workload.m // 8, workload.n // 8
        blocks = np.random.default_rng(1).normal(size=(mb, nb, 8))
        circ_perf = circ.performance(
            circ.run_fc_layer(blocks, x), (workload.m, workload.n)
        )
        return circ_perf.time_s / perm.time_s

    gap = benchmark.pedantic(mechanism_gap, rounds=1, iterations=1)
    # ~4x from complex arithmetic x ~2.8x from unexploited input sparsity
    assert gap > 6.0, f"mechanism gap only {gap:.1f}x"
