"""Table X: design-parameter comparison of EIE and PermDNN.

Regenerates the table: EIE reported at 45 nm, projected to 28 nm with the
footnote-10 rule (linear frequency, quadratic area, constant power), side
by side with the PermDNN 32-PE design point.
"""

import pytest

from _common import emit, format_table
from repro.hw import PermDNNEngine, project_design
from repro.hw.baselines.eie import EIE_DESIGN_45NM


def test_table10_eie_comparison(benchmark):
    projected = benchmark(project_design, EIE_DESIGN_45NM, 28)
    engine = PermDNNEngine()

    rows = [
        ("Number of PEs", 64, 64, engine.config.n_pe),
        ("CMOS tech", "45 nm", "28 nm (projected)", "28 nm"),
        ("Clock (MHz)", 800, f"{projected.clock_ghz * 1000:.0f}", 1200),
        ("Weight sharing", "4 bits", "4 bits", "4 bits"),
        ("Quantization", "16 bits", "16 bits", "16 bits"),
        ("Area (mm2)", 40.8, f"{projected.area_mm2:.1f}", f"{engine.area_mm2:.2f}"),
        ("Power (W)", 0.59, f"{projected.power_w:.2f}", f"{engine.power_w:.2f}"),
    ]
    emit(
        "table10_eie_comparison",
        format_table(
            ["design", "EIE reported", "EIE projected", "PermDNN"], rows
        ),
    )

    # paper's projected values: 1285 MHz, 15.7 mm2, 0.59 W
    assert projected.clock_ghz * 1000 == pytest.approx(1285, abs=2)
    assert projected.area_mm2 == pytest.approx(15.7, rel=0.02)
    assert projected.power_w == pytest.approx(0.59)
    # PermDNN design point: 8.85 mm2, 0.70 W at 1.2 GHz
    assert engine.area_mm2 == pytest.approx(8.85, rel=0.003)
    assert engine.power_w == pytest.approx(0.7034, rel=1e-3)
