"""Sec. I motivation: weight-fetch energy, dense vs PD-compressed.

The paper's opening argument: models that overflow on-chip SRAM stream
weights from DRAM at >100x the energy per access.  We quantify it for the
AlexNet FC stack against the PermDNN engine's aggregate weight SRAM
(32 PEs x 128 KB = 4 MB; 2M 16-bit words or 8M 4-bit shared words).
"""

import pytest

from _common import emit, format_table
from repro.analysis import weight_access_energy
from repro.metrics import model_storage_report
from repro.models import build_alexnet_fc


def test_sec1_memory_energy(benchmark):
    dense_report = model_storage_report(build_alexnet_fc(None, scale=1, dropout=0.0))
    pd_report = model_storage_report(build_alexnet_fc(scale=1, dropout=0.0))

    # engine aggregate weight SRAM: 32 PEs x 128 KB, as 4-bit shared words
    budget_4bit = 32 * 128 * 1024 * 8 // 4

    def analyze():
        return (
            weight_access_energy(dense_report.stored_weights, budget_4bit),
            weight_access_energy(pd_report.stored_weights, budget_4bit),
        )

    dense_access, pd_access = benchmark(analyze)
    rows = [
        ("dense 32-bit AlexNet FC", f"{dense_report.stored_weights:,}",
         str(dense_access.fits_on_chip), f"{dense_access.energy_uj:,.0f}"),
        ("PD p=10/10/4 (4-bit shared)", f"{pd_report.stored_weights:,}",
         str(pd_access.fits_on_chip), f"{pd_access.energy_uj:,.0f}"),
    ]
    emit(
        "sec1_memory_energy",
        format_table(
            ["model", "stored weights", "fits 4MB engine SRAM",
             "weight-fetch uJ/inference"],
            rows,
        )
        + "\npaper Sec. I: DRAM costs >100x SRAM per access; compression "
        "that brings the model on-chip removes that premium entirely",
    )

    # dense AlexNet FC (58.6M weights) cannot fit; the PD model (6.5M) can
    assert not dense_access.fits_on_chip
    assert pd_access.fits_on_chip
    assert dense_access.energy_uj / pd_access.energy_uj > 100
