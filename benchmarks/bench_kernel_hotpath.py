"""Hot-path throughput of the block-PD kernel across (m, n, p, batch) grids.

Measures the three products every training step pays --

- forward: ``Y = matmat(X)``;
- backward: ``dX = rmatmat(dY)`` plus ``dQ = grad_data(X, dY)``;

-- through the cached index plan and the selected kernel backend, and
compares against two frozen baselines:

- **naive** (pre-PR 1): a fresh structured matrix per call (indices and
  support recomputed from scratch) whose input gradient goes through a
  materialized ``transpose()`` object.  ``bwd_speedup`` against it is the
  tracked regression metric for the kernel cache.
- **pr1**: the PR 1 kernel -- cached plan, transpose-free backward, but
  int64 CSR skeletons and the pre-dispatch ``grad_data``.  ``grad_vs_pr1``
  (and ``bwd_ms`` vs ``pr1_bwd_ms``) track what the int32-CSR backend
  dispatch layer buys on top of the plan cache; the acceptance bar is
  ``grad_vs_pr1 >= 1.0`` at (m=n=4096, p=64, batch=128).

Usage::

    python benchmarks/bench_kernel_hotpath.py                     # full grid
    python benchmarks/bench_kernel_hotpath.py --smoke             # CI canary
    python benchmarks/bench_kernel_hotpath.py --backend gather    # pin backend
    python benchmarks/bench_kernel_hotpath.py --compare-backends  # per-backend table
    python benchmarks/bench_kernel_hotpath.py --dtype float32     # reduced precision
    python benchmarks/bench_kernel_hotpath.py --dtype all         # dtype sweep table

The ``--dtype`` axis times the value-storage modes (float64 default,
float32 storage+compute, int16 fixed-point codes decoded into float64
accumulation).  The naive/pr1 baselines always run at float64 -- they
replicate pre-dtype-storage code, which *was* float64 -- so the speedup
columns fold in whatever the reduced-precision storage buys.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from _common import emit, format_table
from repro.core import BlockPermutedDiagonalMatrix, available_backends

# (m, n, p, batch); the (4096, 4096, 64, 128) point is the acceptance grid.
FULL_GRID = [
    (512, 512, 16, 32),
    (1024, 1024, 32, 64),
    (2048, 1024, 32, 128),
    (4096, 4096, 64, 128),
]
SMOKE_GRID = [
    (128, 128, 8, 16),
    (130, 96, 8, 16),  # non-multiple-of-p shapes keep the padded path honest
]


def _time(fn, reps: int, warmup: int = 1) -> float:
    """Best-of-``reps`` wall time of ``fn`` in seconds."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _naive_backward(matrix: BlockPermutedDiagonalMatrix, x, dy) -> None:
    """Faithful replica of the pre-plan (PR 0) backward step.

    Before the index-plan cache the backward pass (a) materialized a brand
    new ``transpose()`` matrix object whose indices were recomputed from
    scratch, (b) ran the input gradient as a batch-major gather + einsum,
    and (c) zero-padded ``x``/``dy`` unconditionally in ``grad_data`` and
    re-derived the gather columns and support mask per call.  Reproduced
    here verbatim so ``bwd_speedup`` measures the kernel-cache win.
    """
    # (a) + (b): dx = W.T @ dy through a freshly-built transpose object
    fresh = BlockPermutedDiagonalMatrix(matrix.data, matrix.ks, shape=matrix.shape)
    transposed = fresh.transpose()
    t_plan = transposed._get_plan()
    batch = dy.shape[0]
    dy_pad = np.zeros((batch, transposed.nb * transposed.p))
    dy_pad[:, : dy.shape[1]] = dy
    gathered = dy_pad[:, t_plan.cols.reshape(-1)].reshape(
        batch, transposed.mb, transposed.nb, transposed.p
    )
    np.einsum("ijc,bijc->bic", transposed.data, gathered)
    # (c): dq with unconditional pads, batch-major gather, per-call masking
    plan = fresh._get_plan()
    x_pad = np.zeros((batch, fresh.nb * fresh.p))
    x_pad[:, : x.shape[1]] = x
    dy_pad = np.zeros((batch, fresh.mb * fresh.p))
    dy_pad[:, : dy.shape[1]] = dy
    dy_blocks = dy_pad.reshape(batch, fresh.mb, fresh.p)
    gathered = x_pad[:, plan.cols.reshape(-1)].reshape(
        batch, fresh.mb, fresh.nb, fresh.p
    )
    np.einsum("bic,bijc->ijc", dy_blocks, gathered) * plan.support


def _pr1_style_matrix(
    matrix: BlockPermutedDiagonalMatrix,
) -> BlockPermutedDiagonalMatrix:
    """An independent copy of ``matrix`` frozen at PR 1 behaviour.

    PR 1 cached the index plan and ran the backward transpose-free, but its
    CSR skeletons stored int64 ``indptr``/``indices``.  The copy gets its
    own plan whose cached skeletons are re-cast to int64, so spmm against
    it pays exactly the PR 1 index traffic.
    """
    pr1 = BlockPermutedDiagonalMatrix(matrix.data, matrix.ks, shape=matrix.shape)
    plan = pr1._get_plan().warm()
    for key in (False, True):
        indptr, indices, perm = plan.csr_struct(key)
        plan._csr_structs[key] = (
            indptr.astype(np.int64),
            indices.astype(np.int64),
            perm.astype(np.int64),
        )
    return pr1


def _pr1_grad(matrix: BlockPermutedDiagonalMatrix, x, dy) -> np.ndarray:
    """Verbatim replica of the PR 1 ``grad_data`` (transposed gather)."""
    plan = matrix._get_plan()
    batch = x.shape[0]
    x_t = np.ascontiguousarray(x.T)
    dy_t = np.ascontiguousarray(dy.T)
    if not plan.aligned_n:
        x_pad = np.zeros((matrix.nb * matrix.p, batch))
        x_pad[: x_t.shape[0]] = x_t
        x_t = x_pad
    if not plan.aligned_m:
        dy_pad = np.zeros((matrix.mb * matrix.p, batch))
        dy_pad[: dy_t.shape[0]] = dy_t
        dy_t = dy_pad
    dy_blocks = dy_t.reshape(matrix.mb, matrix.p, batch)
    gathered = x_t[plan.flat_cols].reshape(matrix.mb, matrix.nb, matrix.p, batch)
    grad = np.einsum("icb,ijcb->ijc", dy_blocks, gathered)
    if plan.full_support:
        return grad
    return grad * plan.support


def bench_point(
    m: int,
    n: int,
    p: int,
    batch: int,
    reps: int,
    backend: str | None,
    value_dtype: str = "float64",
) -> tuple:
    rng = np.random.default_rng(0)
    base = BlockPermutedDiagonalMatrix.random((m, n), p, rng=rng, backend=backend)
    matrix = (
        base if value_dtype == "float64" else base.with_value_dtype(value_dtype)
    )
    pr1 = _pr1_style_matrix(base)
    # Inputs arrive in the kernel's compute dtype (the serving path hands
    # float32 activations to a float32 layer); baselines stay float64.
    x64 = rng.normal(size=(batch, n))
    dy64 = rng.normal(size=(batch, m))
    x = x64.astype(matrix.compute_dtype)
    dy = dy64.astype(matrix.compute_dtype)

    fwd_s = _time(lambda: matrix.matmat(x), reps)
    bwd_s = _time(
        lambda: (matrix.rmatmat(dy), matrix.grad_data(x, dy)), reps
    )
    grad_s = _time(lambda: matrix.grad_data(x, dy), reps)
    pr1_bwd_s = _time(
        lambda: (pr1.rmatmat(dy64), _pr1_grad(pr1, x64, dy64)), reps
    )
    pr1_grad_s = _time(lambda: _pr1_grad(pr1, x64, dy64), reps)
    naive_s = _time(lambda: _naive_backward(base, x64, dy64), reps)

    # A forward touches batch * nnz multiply-accumulates; the backward pair
    # touches twice that.  Report effective GMAC/s on the stored weights.
    macs = batch * matrix.nnz
    fwd_gmacs = macs / fwd_s / 1e9
    bwd_gmacs = 2 * macs / bwd_s / 1e9
    return (
        m,
        n,
        p,
        batch,
        matrix.resolved_backend(),
        value_dtype,
        f"{fwd_s * 1e3:.2f}",
        f"{fwd_gmacs:.2f}",
        f"{bwd_s * 1e3:.2f}",
        f"{bwd_gmacs:.2f}",
        f"{grad_s * 1e3:.2f}",
        f"{pr1_bwd_s * 1e3:.2f}",
        f"{pr1_grad_s * 1e3:.2f}",
        f"{naive_s * 1e3:.2f}",
        f"{pr1_grad_s / grad_s:.2f}x",
        f"{naive_s / bwd_s:.2f}x",
    )


HEADERS = [
    "m",
    "n",
    "p",
    "batch",
    "backend",
    "dtype",
    "fwd_ms",
    "fwd_GMAC/s",
    "bwd_ms",
    "bwd_GMAC/s",
    "grad_ms",
    "pr1_bwd_ms",
    "pr1_grad_ms",
    "naive_bwd_ms",
    "grad_vs_pr1",
    "bwd_speedup",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid + few reps: a fast CI regression canary",
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="timing repetitions per point"
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("auto", "gather", "csr", "numba"),
        help="pin the kernel backend under test (default: auto selection)",
    )
    parser.add_argument(
        "--compare-backends",
        action="store_true",
        help="run every available backend per grid point and emit a "
        "side-by-side table (bench_kernel_backends.txt)",
    )
    parser.add_argument(
        "--dtype",
        default="float64",
        choices=("float64", "float32", "int16", "all"),
        help="value-storage dtype under test; 'all' sweeps every mode per "
        "grid point and emits bench_kernel_dtypes.txt",
    )
    args = parser.parse_args()
    grid = SMOKE_GRID if args.smoke else FULL_GRID
    reps = args.reps if args.reps is not None else (2 if args.smoke else 5)
    if reps < 1:
        parser.error("--reps must be >= 1")
    if args.compare_backends and args.dtype == "all":
        parser.error("--compare-backends sweeps backends; pick one --dtype")

    if args.compare_backends:
        rows = []
        for point in grid:
            for backend in available_backends():
                rows.append(bench_point(*point, reps, backend, args.dtype))
        emit("bench_kernel_backends", format_table(HEADERS, rows))
        return

    backend = None if args.backend in (None, "auto") else args.backend
    if backend is not None and backend not in available_backends():
        parser.error(
            f"backend {backend!r} is not available on this machine "
            f"(available: {', '.join(available_backends())})"
        )
    if args.dtype == "all":
        rows = [
            bench_point(*point, reps, backend, value_dtype)
            for point in grid
            for value_dtype in ("float64", "float32", "int16")
        ]
        emit("bench_kernel_dtypes", format_table(HEADERS, rows))
        return
    rows = [bench_point(*point, reps, backend, args.dtype) for point in grid]
    emit("bench_kernel_hotpath", format_table(HEADERS, rows))


if __name__ == "__main__":
    main()
