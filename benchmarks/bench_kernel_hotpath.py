"""Hot-path throughput of the block-PD kernel across (m, n, p, batch) grids.

Measures the three products every training step pays --

- forward: ``Y = matmat(X)``;
- backward: ``dX = rmatmat(dY)`` plus ``dQ = grad_data(X, dY)``;

-- through the cached index plan, and compares the backward pass against a
*naive* baseline that mimics the pre-plan kernel: a fresh structured matrix
per call (indices and support recomputed from scratch) whose input gradient
goes through a materialized ``transpose()`` object.  The ``bwd_speedup``
column is therefore the tracked regression metric for the kernel cache.

Usage::

    python benchmarks/bench_kernel_hotpath.py           # full grid
    python benchmarks/bench_kernel_hotpath.py --smoke   # tiny grid for CI
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from _common import emit, format_table
from repro.core import BlockPermutedDiagonalMatrix

# (m, n, p, batch); the (4096, 4096, 64, 128) point is the acceptance grid.
FULL_GRID = [
    (512, 512, 16, 32),
    (1024, 1024, 32, 64),
    (2048, 1024, 32, 128),
    (4096, 4096, 64, 128),
]
SMOKE_GRID = [
    (128, 128, 8, 16),
    (130, 96, 8, 16),  # non-multiple-of-p shapes keep the padded path honest
]


def _time(fn, reps: int, warmup: int = 1) -> float:
    """Best-of-``reps`` wall time of ``fn`` in seconds."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _naive_backward(matrix: BlockPermutedDiagonalMatrix, x, dy) -> None:
    """Faithful replica of the pre-plan backward step.

    Before the index-plan cache the backward pass (a) materialized a brand
    new ``transpose()`` matrix object whose indices were recomputed from
    scratch, (b) ran the input gradient as a batch-major gather + einsum,
    and (c) zero-padded ``x``/``dy`` unconditionally in ``grad_data`` and
    re-derived the gather columns and support mask per call.  Reproduced
    here verbatim so ``bwd_speedup`` measures the kernel-cache win.
    """
    # (a) + (b): dx = W.T @ dy through a freshly-built transpose object
    fresh = BlockPermutedDiagonalMatrix(matrix.data, matrix.ks, shape=matrix.shape)
    transposed = fresh.transpose()
    t_plan = transposed._get_plan()
    batch = dy.shape[0]
    dy_pad = np.zeros((batch, transposed.nb * transposed.p))
    dy_pad[:, : dy.shape[1]] = dy
    gathered = dy_pad[:, t_plan.cols.reshape(-1)].reshape(
        batch, transposed.mb, transposed.nb, transposed.p
    )
    np.einsum("ijc,bijc->bic", transposed.data, gathered)
    # (c): dq with unconditional pads, batch-major gather, per-call masking
    plan = fresh._get_plan()
    x_pad = np.zeros((batch, fresh.nb * fresh.p))
    x_pad[:, : x.shape[1]] = x
    dy_pad = np.zeros((batch, fresh.mb * fresh.p))
    dy_pad[:, : dy.shape[1]] = dy
    dy_blocks = dy_pad.reshape(batch, fresh.mb, fresh.p)
    gathered = x_pad[:, plan.cols.reshape(-1)].reshape(
        batch, fresh.mb, fresh.nb, fresh.p
    )
    np.einsum("bic,bijc->ijc", dy_blocks, gathered) * plan.support


def bench_point(m: int, n: int, p: int, batch: int, reps: int) -> tuple:
    rng = np.random.default_rng(0)
    matrix = BlockPermutedDiagonalMatrix.random((m, n), p, rng=rng)
    x = rng.normal(size=(batch, n))
    dy = rng.normal(size=(batch, m))

    fwd_s = _time(lambda: matrix.matmat(x), reps)
    bwd_s = _time(
        lambda: (matrix.rmatmat(dy), matrix.grad_data(x, dy)), reps
    )
    naive_s = _time(lambda: _naive_backward(matrix, x, dy), reps)

    # A forward touches batch * nnz multiply-accumulates; the backward pair
    # touches twice that.  Report effective GMAC/s on the stored weights.
    macs = batch * matrix.nnz
    fwd_gmacs = macs / fwd_s / 1e9
    bwd_gmacs = 2 * macs / bwd_s / 1e9
    return (
        m,
        n,
        p,
        batch,
        f"{fwd_s * 1e3:.2f}",
        f"{fwd_gmacs:.2f}",
        f"{bwd_s * 1e3:.2f}",
        f"{bwd_gmacs:.2f}",
        f"{naive_s * 1e3:.2f}",
        f"{naive_s / bwd_s:.2f}x",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid + few reps: a fast CI regression canary",
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="timing repetitions per point"
    )
    args = parser.parse_args()
    grid = SMOKE_GRID if args.smoke else FULL_GRID
    reps = args.reps if args.reps is not None else (2 if args.smoke else 5)
    if reps < 1:
        parser.error("--reps must be >= 1")

    rows = [bench_point(m, n, p, batch, reps) for m, n, p, batch in grid]
    table = format_table(
        [
            "m",
            "n",
            "p",
            "batch",
            "fwd_ms",
            "fwd_GMAC/s",
            "bwd_ms",
            "bwd_GMAC/s",
            "naive_bwd_ms",
            "bwd_speedup",
        ],
        rows,
    )
    emit("bench_kernel_hotpath", table)


if __name__ == "__main__":
    main()
