"""Table II: AlexNet FC layers -- accuracy and compression under PD.

Paper rows (ImageNet, FC6/FC7/FC8 with p = 10/10/4):

=============================  =========  ==============
model                          top-5 acc  FC storage
=============================  =========  ==============
original 32-bit float          80.20%     234.5 MB (1x)
32-bit float with PD           80.00%     25.9 MB (9.0x)
16-bit fixed with PD           79.90%     12.9 MB (18.1x)
=============================  =========  ==============

Here: storage is computed at *paper scale* (exact arithmetic -- compare the
MB column), accuracy at 1/64 scale on the Gaussian-mixture substitute
(compare the *gap* between dense and PD rows, which the paper reports as
0.2-0.3%; expect a small single-digit gap at our scale).
"""

import numpy as np
import pytest

from _common import emit, format_table
from repro.datasets import GaussianMixtureDataset
from repro.metrics import model_storage_report, top_k_accuracy
from repro.models import ALEXNET_FC_SHAPES, ALEXNET_PD_BLOCKS, build_alexnet_fc
from repro.nn import Adam, CrossEntropyLoss, Trainer
from repro.nn.quantization import quantize_fixed_point


def _paper_scale_storage():
    """Exact MB figures for the paper-sized FC stack."""
    from repro.core import StorageReport

    rows = []
    for weight_bits, label in ((32, "32-bit float with PD"), (16, "16-bit fixed with PD")):
        dense_mb = compressed_mb = 0.0
        for (n_in, n_out), p in zip(ALEXNET_FC_SHAPES, ALEXNET_PD_BLOCKS):
            report = StorageReport.for_pd_layer(n_out, n_in, p, 32, weight_bits)
            dense_mb += report.dense_megabytes
            compressed_mb += report.compressed_megabytes
        rows.append((label, dense_mb, compressed_mb))
    return rows


def _train_scaled(p_values, seed=0):
    scale = 64
    dataset = GaussianMixtureDataset(
        num_features=9216 // scale, num_classes=1000 // scale, separation=3.5,
        seed=0,
    )
    x_train, y_train, x_test, y_test = dataset.train_test_split(3000, 800)
    # dropout off and a longer budget: at 1/64 scale the PD fan-in is only
    # ~14 inputs/unit (vs ~920 at paper scale), so the compressed model
    # needs the extra epochs to close the gap -- the paper's full-scale
    # models do not have this constraint.
    model = build_alexnet_fc(
        p_values=p_values, scale=scale, num_classes=1000 // scale,
        dropout=0.0, rng=seed,
    )
    trainer = Trainer(
        model, Adam(model.parameters(), lr=2e-3), CrossEntropyLoss(),
        batch_size=64, rng=seed,
    )
    trainer.fit(x_train, y_train, epochs=25)
    model.eval()
    logits = model.forward(x_test)
    return model, top_k_accuracy(logits, y_test, k=5)


def test_table02_alexnet(benchmark):
    storage_rows = _paper_scale_storage()
    dense_mb = storage_rows[0][1]

    dense_model, dense_acc = _train_scaled(None, seed=0)
    pd_model, pd_acc = benchmark.pedantic(
        lambda: _train_scaled(ALEXNET_PD_BLOCKS, seed=0), rounds=1, iterations=1
    )

    # 16-bit fixed row: quantize the trained PD model's weights in place
    for param in pd_model.parameters():
        param.value[...] = quantize_fixed_point(param.value, total_bits=16)
    dataset = GaussianMixtureDataset(
        num_features=9216 // 64, num_classes=1000 // 64, separation=3.5, seed=0
    )
    __, __, x_test, y_test = dataset.train_test_split(3000, 800)
    pd_model.eval()
    fixed_acc = top_k_accuracy(pd_model.forward(x_test), y_test, k=5)

    report = model_storage_report(pd_model)
    rows = [
        ("original 32-bit float", f"{dense_acc:.2%}", f"{dense_mb:.1f} MB (1x)",
         "80.20% / 234.5 MB (1x)"),
        (
            "32-bit float with PD",
            f"{pd_acc:.2%}",
            f"{storage_rows[0][2]:.1f} MB ({dense_mb / storage_rows[0][2]:.1f}x)",
            "80.00% / 25.9 MB (9.0x)",
        ),
        (
            "16-bit fixed with PD",
            f"{fixed_acc:.2%}",
            f"{storage_rows[1][2]:.1f} MB ({dense_mb / storage_rows[1][2]:.1f}x)",
            "79.90% / 12.9 MB (18.1x)",
        ),
    ]
    emit(
        "table02_alexnet",
        format_table(
            ["model", "top-5 acc (scaled)", "FC storage (paper scale)", "paper"],
            rows,
        ),
    )

    # shape assertions: storage exact, accuracy gap negligible
    assert dense_mb == pytest.approx(234.5, rel=0.02)
    assert storage_rows[0][2] == pytest.approx(25.9, rel=0.03)
    assert storage_rows[1][2] == pytest.approx(12.9, rel=0.04)
    assert report.compression_ratio == pytest.approx(9.0, rel=0.06)
    assert pd_acc > dense_acc - 0.08, "PD accuracy should track dense"
    assert fixed_acc > pd_acc - 0.02, "16-bit fixed should not hurt"
