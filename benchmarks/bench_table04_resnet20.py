"""Table IV: ResNet-20 on CIFAR-10 with PD CONV tensors (p=2).

Paper rows:

==========================  =======  ==================
model                       acc      CONV storage
==========================  =======  ==================
original 32-bit float       91.25%   1.09 MB (1x)
32-bit float with PD p=2    90.85%   0.70 MB (1.55x)
16-bit fixed with PD p=2    90.60%   0.35 MB (3.10x)
==========================  =======  ==================

Storage is computed on the *real* ResNet-20 topology (exact); accuracy on
a width-reduced variant trained on the procedural CIFAR substitute.  The
claims to verify: the overall CONV compression lands near 1.55x (p=2 on
3x3 convs, dense 1x1/stem), and PD accuracy tracks dense accuracy.
"""

import pytest

from _common import emit, format_table
from repro.datasets import make_cifar_like
from repro.metrics import model_storage_report
from repro.models import RESNET20_POLICY, build_resnet
from repro.models.resnet import PDPolicy
from repro.nn import Adam, CrossEntropyLoss, Trainer


def _paper_topology_storage():
    """Exact storage of full-width ResNet-20, dense vs PD."""
    dense = build_resnet(depth=20, policy=PDPolicy(1, 1), base_width=16, rng=0)
    compressed = build_resnet(depth=20, policy=RESNET20_POLICY, base_width=16, rng=0)
    return model_storage_report(dense), model_storage_report(compressed)


def _train_reduced(policy, epochs=3, seed=0):
    x_train, y_train = make_cifar_like(700, noise=0.2, seed=0)
    x_test, y_test = make_cifar_like(200, noise=0.2, seed=1)
    model = build_resnet(depth=8, policy=policy, base_width=8, rng=seed)
    trainer = Trainer(
        model, Adam(model.parameters(), lr=3e-3), CrossEntropyLoss(),
        batch_size=50, rng=seed,
    )
    history = trainer.fit(x_train, y_train, x_test, y_test, epochs=epochs)
    return history.final_test_accuracy


def test_table04_resnet20(benchmark):
    dense_report, pd_report = _paper_topology_storage()
    dense_mb = dense_report.megabytes(32)
    pd_mb_32 = pd_report.megabytes(32)
    pd_mb_16 = pd_report.megabytes(16)

    dense_acc = _train_reduced(PDPolicy(1, 1), seed=0)
    pd_acc = benchmark.pedantic(
        lambda: _train_reduced(RESNET20_POLICY, seed=0), rounds=1, iterations=1
    )

    rows = [
        ("original 32-bit float", f"{dense_acc:.2%}", f"{dense_mb:.2f} MB (1x)",
         "91.25% / 1.09 MB (1x)"),
        (
            "32-bit float with PD p=2",
            f"{pd_acc:.2%}",
            f"{pd_mb_32:.2f} MB ({dense_mb / pd_mb_32:.2f}x)",
            "90.85% / 0.70 MB (1.55x)",
        ),
        (
            "16-bit fixed with PD p=2",
            "(same weights)",
            f"{pd_mb_16:.2f} MB ({dense_mb / pd_mb_16:.2f}x)",
            "90.60% / 0.35 MB (3.10x)",
        ),
    ]
    emit(
        "table04_resnet20",
        format_table(
            ["model", "acc (reduced width)", "CONV storage (paper topology)", "paper"],
            rows,
        ),
    )

    # Paper topology is ~1.09 MB dense.  Our policy puts p=2 on *every*
    # 3x3 conv and lands at ~1.97x; the paper's "p=2 for most layers"
    # keeps an unspecified subset dense and reports 1.55x.  The shape to
    # hold: 1.55 <= ratio <= 2 (i.e. between the paper's point and the
    # all-layers upper bound), and 16-bit doubles it.
    assert dense_mb == pytest.approx(1.09, rel=0.06)
    ratio_32 = dense_mb / pd_mb_32
    assert 1.5 <= ratio_32 <= 2.05
    assert dense_mb / pd_mb_16 == pytest.approx(2 * ratio_32, rel=0.01)
    assert dense_acc > 0.5, "dense ResNet must actually learn the task"
    assert pd_acc > 0.5, "PD ResNet must actually learn the task"
    assert pd_acc > dense_acc - 0.10, "PD accuracy must track dense"
