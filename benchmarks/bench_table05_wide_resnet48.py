"""Table V: Wide ResNet-48 (widening factor 8) with PD CONV tensors (p=4).

Paper rows:

==========================  =======  ===================
model                       acc      CONV storage
==========================  =======  ===================
original 32-bit float       95.14%   190.2 MB (1x)
32-bit float with PD p=4    94.92%   61.9 MB (3.07x)
16-bit fixed with PD p=4    94.76%   30.9 MB (6.14x)
==========================  =======  ===================

Storage: our closest 6n+2 topology to "WRN-48 widen 8" is depth 50 /
widen 8, whose dense CONV storage (193 MB) matches the paper's 190.2 MB
within 1.5%.  As in Table IV, p=4 on *every* 3x3 conv over-delivers
(~3.96x) relative to the paper's "most layers" 3.07x.

Accuracy: width-reduced WRN (depth 8, widen 2) on the CIFAR substitute;
the claim is PD-p=4 accuracy tracks dense accuracy.
"""

import pytest

from _common import emit, format_table
from repro.datasets import make_cifar_like
from repro.metrics import model_storage_report
from repro.models import WRN48_POLICY, build_resnet
from repro.models.resnet import PDPolicy
from repro.nn import Adam, CrossEntropyLoss, Trainer


def _paper_topology_storage():
    dense = build_resnet(
        depth=50, policy=PDPolicy(1, 1), base_width=16, widen_factor=8, rng=0
    )
    compressed = build_resnet(
        depth=50, policy=WRN48_POLICY, base_width=16, widen_factor=8, rng=0
    )
    return model_storage_report(dense), model_storage_report(compressed)


def _train_reduced(policy, seed=0):
    x_train, y_train = make_cifar_like(600, noise=0.2, seed=0)
    x_test, y_test = make_cifar_like(200, noise=0.2, seed=1)
    model = build_resnet(
        depth=8, policy=policy, base_width=8, widen_factor=2, rng=seed
    )
    trainer = Trainer(
        model, Adam(model.parameters(), lr=3e-3), CrossEntropyLoss(),
        batch_size=50, rng=seed,
    )
    history = trainer.fit(x_train, y_train, x_test, y_test, epochs=3)
    return history.final_test_accuracy


def test_table05_wide_resnet48(benchmark):
    dense_report, pd_report = _paper_topology_storage()
    dense_mb = dense_report.megabytes(32)
    pd_mb_32 = pd_report.megabytes(32)
    pd_mb_16 = pd_report.megabytes(16)

    dense_acc = _train_reduced(PDPolicy(1, 1), seed=0)
    pd_acc = benchmark.pedantic(
        lambda: _train_reduced(WRN48_POLICY, seed=0), rounds=1, iterations=1
    )

    rows = [
        ("original 32-bit float", f"{dense_acc:.2%}",
         f"{dense_mb:.1f} MB (1x)", "95.14% / 190.2 MB (1x)"),
        (
            "32-bit float with PD p=4",
            f"{pd_acc:.2%}",
            f"{pd_mb_32:.1f} MB ({dense_mb / pd_mb_32:.2f}x)",
            "94.92% / 61.9 MB (3.07x)",
        ),
        (
            "16-bit fixed with PD p=4",
            "(same weights)",
            f"{pd_mb_16:.1f} MB ({dense_mb / pd_mb_16:.2f}x)",
            "94.76% / 30.9 MB (6.14x)",
        ),
    ]
    emit(
        "table05_wide_resnet48",
        format_table(
            ["model", "acc (reduced)", "CONV storage (paper topology)", "paper"],
            rows,
        ),
    )

    assert dense_mb == pytest.approx(190.2, rel=0.03)
    ratio_32 = dense_mb / pd_mb_32
    assert 3.0 <= ratio_32 <= 4.1  # paper 3.07x, all-layers bound ~3.96x
    assert dense_mb / pd_mb_16 == pytest.approx(2 * ratio_32, rel=0.01)
    assert dense_acc > 0.5, "dense WRN must actually learn the task"
    assert pd_acc > 0.5, "PD WRN must actually learn the task"
    assert pd_acc > dense_acc - 0.10
