"""Fig. 12: PermDNN vs EIE on the benchmark FC layers.

Paper headline (on Alex-FC6/7/8, both designs at 28 nm):

- speedup             3.3x - 4.8x
- area efficiency     5.9x - 8.5x
- energy efficiency   2.8x - 4.0x

Both engines execute models of identical weight density (EIE runs an
unstructured magnitude-pruned matrix, PermDNN the PD matrix) with the
same input activation vector.  The ratios come out of the two cycle-level
simulators -- nothing is copied from the paper.
"""

import pytest

from _common import emit, format_table
from repro.hw import PermDNNEngine, TABLE_VII_WORKLOADS, make_workload_instance
from repro.hw.baselines import EIEConfig, EIESimulator

PAPER_BANDS = {"speedup": (3.3, 4.8), "area": (5.9, 8.5), "energy": (2.8, 4.0)}


def _compare_all():
    engine = PermDNNEngine()
    eie = EIESimulator(EIEConfig.projected_28nm())
    rows = []
    ratios = []
    for workload in TABLE_VII_WORKLOADS:
        matrix, x = make_workload_instance(workload, rng=0)
        perm = engine.performance(
            engine.run_fc_layer(matrix, x), (workload.m, workload.n)
        )
        pruned = EIESimulator.prune_reference(
            (workload.m, workload.n), workload.weight_density, rng=1
        )
        eie_result = eie.run_fc_layer(pruned, x)
        ref = eie.performance(eie_result, (workload.m, workload.n))
        speed = perm.speedup_over(ref)
        area = perm.area_efficiency_ratio(ref)
        energy = perm.energy_efficiency_ratio(ref)
        rows.append(
            (
                workload.name,
                f"{perm.frames_per_second:,.0f}",
                f"{ref.frames_per_second:,.0f}",
                f"{speed:.2f}x",
                f"{area:.2f}x",
                f"{energy:.2f}x",
                f"{eie_result.load_imbalance:.3f}",
            )
        )
        ratios.append((workload.name, speed, area, energy))
    return rows, ratios


def test_fig12_eie_performance(benchmark):
    rows, ratios = benchmark.pedantic(_compare_all, rounds=1, iterations=1)
    table = format_table(
        ["layer", "PermDNN fps", "EIE fps", "speedup", "area-eff",
         "energy-eff", "EIE imbalance"],
        rows,
    )
    emit(
        "fig12_eie_performance",
        table + "\npaper bands (Alex layers): speedup 3.3-4.8x, "
        "area 5.9-8.5x, energy 2.8-4.0x",
    )

    alex = [r for r in ratios if r[0].startswith("Alex")]
    speeds = [r[1] for r in alex]
    areas = [r[2] for r in alex]
    energies = [r[3] for r in alex]
    # within ~10% of the paper's bands
    assert min(speeds) > PAPER_BANDS["speedup"][0] * 0.9
    assert max(speeds) < PAPER_BANDS["speedup"][1] * 1.1
    assert min(areas) > PAPER_BANDS["area"][0] * 0.9
    assert max(areas) < PAPER_BANDS["area"][1] * 1.1
    assert min(energies) > PAPER_BANDS["energy"][0] * 0.9
    assert max(energies) < PAPER_BANDS["energy"][1] * 1.1
    # PermDNN wins on every single workload
    assert all(r[1] > 1.0 for r in ratios)
