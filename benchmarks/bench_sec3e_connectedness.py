"""Sec. III-E: connectedness behind the universal-approximation proof.

The paper's lemma: with non-identical permutation parameters, stacked PD
layers "do not block away information from any neuron".  We regenerate the
connectivity-vs-depth series for identical-k (pathological) and natural /
random indexing, confirming the lemma computationally.
"""

import numpy as np
import pytest

from _common import emit, format_table
from repro.analysis import connectivity_fraction
from repro.core import BlockPermutedDiagonalMatrix, PermutationSpec

WIDTH, P = 16, 4
DEPTHS = (1, 2, 3, 4)


def _stack(depth, scheme, seed=0):
    if scheme == "identical":
        ks = np.zeros((WIDTH // P, WIDTH // P), dtype=int)
        return [
            BlockPermutedDiagonalMatrix.zeros((WIDTH, WIDTH), P, ks=ks)
            for _ in range(depth)
        ]
    return [
        BlockPermutedDiagonalMatrix.zeros(
            (WIDTH, WIDTH), P, spec=PermutationSpec(scheme, seed=seed + d)
        )
        for d in range(depth)
    ]


def _series():
    out = {}
    for scheme in ("identical", "natural", "random"):
        out[scheme] = [
            connectivity_fraction(_stack(depth, scheme)) for depth in DEPTHS
        ]
    return out


def test_sec3e_connectedness(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    rows = [
        (scheme,) + tuple(f"{frac:.2f}" for frac in fractions)
        for scheme, fractions in series.items()
    ]
    emit(
        "sec3e_connectedness",
        format_table(
            ["k_l scheme"] + [f"depth {d}" for d in DEPTHS], rows
        )
        + "\n1.00 = every input neuron reaches every output neuron",
    )

    # identical k_l never becomes fully connected (information is blocked)
    assert max(series["identical"]) < 1.0
    # non-identical k_l reach full connectivity within a few layers
    assert series["natural"][-1] == pytest.approx(1.0)
    assert series["random"][-1] == pytest.approx(1.0)
    # connectivity is monotone in depth for the varying schemes
    for scheme in ("natural", "random"):
        fractions = series[scheme]
        assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
