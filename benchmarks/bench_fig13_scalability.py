"""Fig. 13: speedup of the PermDNN engine with growing PE count.

The paper sweeps PE count on all six benchmarks and reports near-linear
speedup ("our design achieves very good scalability on all benchmarks"),
enabled by the structural load balance of block-PD matrices.
"""

import pytest

from _common import emit, format_table
from repro.hw import (
    EngineConfig,
    PermDNNEngine,
    TABLE_VII_WORKLOADS,
    make_workload_instance,
)

PE_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def _sweep():
    table = {}
    for workload in TABLE_VII_WORKLOADS:
        matrix, x = make_workload_instance(workload, rng=0)
        cycles = []
        for n_pe in PE_COUNTS:
            engine = PermDNNEngine(EngineConfig(n_pe=n_pe))
            cycles.append(
                engine.run_fc_layer(matrix, x, enforce_capacity=False).cycles
            )
        table[workload.name] = [cycles[0] / c for c in cycles]
    return table


def test_fig13_scalability(benchmark):
    speedups = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        (name,) + tuple(f"{s:.2f}" for s in series)
        for name, series in speedups.items()
    ]
    emit(
        "fig13_scalability",
        format_table(["layer"] + [f"{n} PE" for n in PE_COUNTS], rows),
    )

    for name, series in speedups.items():
        # monotone speedup
        assert all(b >= a for a, b in zip(series, series[1:])), name
        # near-linear through 32 PEs: at least 85% parallel efficiency
        assert series[PE_COUNTS.index(32)] > 0.85 * 32, name
        # still strong at 64
        assert series[-1] > 0.8 * 64, name
