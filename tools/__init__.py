"""Repository tooling: static analysis and docs checks (not shipped)."""
