"""Core machinery of ``repro-lint``: findings, rules, noqa, file walking.

The linter is a thin AST pass: every :class:`Rule` receives a parsed
:class:`FileContext` and yields :class:`Finding` objects.  Rules are
registered declaratively (:func:`register`) and scoped by repo-relative
path prefixes, so ``tools/repro_lint/rules.py`` reads as a table of the
project's invariants rather than a visitor zoo.

Suppression follows the flake8 convention: a ``# noqa`` comment on the
flagged line silences every rule, ``# noqa: RPR001`` (comma-separated
codes allowed) silences specific ones.  Suppressions are matched against
the *physical line of the finding* (``node.lineno``).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "findings_to_json",
    "format_finding",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register",
]

# Wire-format version of the --json payload (bump on breaking changes).
JSON_SCHEMA_VERSION = 1

# Finding emitted when a file cannot be parsed at all.
SYNTAX_ERROR_CODE = "RPR000"

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<codes>:\s*[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)?",
    re.IGNORECASE,
)
_CODE_RE = re.compile(r"[A-Z]{3}\d{3}", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    code: str
    rule: str
    message: str
    path: str  # repo-relative, posix separators
    line: int  # 1-indexed
    col: int  # 0-indexed, matching ast

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass
class FileContext:
    """Everything a rule needs about one file: source, lines, AST, path."""

    rel: str  # repo-relative posix path, e.g. "src/repro/serve/server.py"
    source: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, rel: str, source: str) -> "FileContext":
        tree = ast.parse(source)
        return cls(rel=rel, source=source, tree=tree, lines=source.splitlines())

    def suppressed(self, finding: Finding) -> bool:
        """True when the finding's line carries a matching ``# noqa``."""
        if not (1 <= finding.line <= len(self.lines)):
            return False
        match = _NOQA_RE.search(self.lines[finding.line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True  # bare noqa silences everything
        listed = {c.upper() for c in _CODE_RE.findall(codes)}
        return finding.code.upper() in listed


class Rule:
    """One project invariant, checked over a parsed file.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` / ``exempt`` are repo-relative posix path prefixes (a file
    matches when its path starts with any prefix; an empty ``scope``
    means every file).
    """

    code: str = ""
    name: str = ""
    invariant: str = ""
    rationale: str = ""
    scope: tuple[str, ...] = ()
    exempt: tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        if any(rel.startswith(prefix) for prefix in self.exempt):
            return False
        if not self.scope:
            return True
        return any(rel.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            rule=self.name,
            message=message,
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


_REGISTRY: list[Rule] = []


def register(rule_cls: type) -> type:
    """Class decorator adding a rule instance to the global registry."""
    rule = rule_cls()
    if not rule.code or not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} must define code and name")
    if any(existing.code == rule.code for existing in _REGISTRY):
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY.append(rule)
    return rule_cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by code."""
    return sorted(_REGISTRY, key=lambda rule: rule.code)


def _selected(rules: Iterable[Rule], select: set[str] | None,
              ignore: set[str] | None) -> list[Rule]:
    chosen = list(rules)
    if select:
        chosen = [rule for rule in chosen if rule.code in select]
    if ignore:
        chosen = [rule for rule in chosen if rule.code not in ignore]
    return chosen


def lint_source(
    source: str,
    rel: str,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Lint one source string as if it lived at repo-relative ``rel``.

    This is the test-friendly entry point: fixtures lint synthetic
    snippets under virtual paths (rule scoping keys off ``rel``).
    """
    try:
        ctx = FileContext.parse(rel, source)
    except SyntaxError as exc:
        return [
            Finding(
                code=SYNTAX_ERROR_CODE,
                rule="syntax-error",
                message=f"file does not parse: {exc.msg}",
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    findings: list[Finding] = []
    for rule in _selected(all_rules(), select, ignore):
        if not rule.applies_to(rel):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding):
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def iter_python_files(paths: list[Path], root: Path) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, sorted, skipping caches."""
    seen: set[Path] = set()
    for path in paths:
        path = path if path.is_absolute() else root / path
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            continue
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: list[Path],
    root: Path,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint every python file under ``paths``.

    Returns:
        ``(findings, files_checked)``; findings are globally sorted.
    """
    findings: list[Finding] = []
    checked = 0
    for path in iter_python_files(paths, root):
        checked += 1
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        findings.extend(
            lint_source(
                path.read_text(encoding="utf-8"), rel,
                select=select, ignore=ignore,
            )
        )
    findings.sort(key=Finding.sort_key)
    return findings, checked


def format_finding(finding: Finding) -> str:
    return (
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.code} [{finding.rule}] {finding.message}"
    )


def findings_to_json(
    findings: list[Finding], files_checked: int, root: Path
) -> str:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "root": str(root),
        "files_checked": files_checked,
        "findings": [finding.to_dict() for finding in findings],
        "counts": dict(sorted(counts.items())),
    }
    return json.dumps(payload, indent=2) + "\n"


# ----------------------------------------------------------------------
# Shared AST helpers for the rules
# ----------------------------------------------------------------------


def name_hints(node: ast.AST) -> set[str]:
    """Lower-cased identifier fragments reachable from an expression.

    Collects plain names and attribute names from ``Name``/``Attribute``/
    ``Call``/``Subscript``/``BinOp`` chains -- the heuristic the
    structured-matrix rules use to decide whether an operand *looks like*
    PD-matrix state without type inference.
    """
    hints: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            hints.add(sub.id.lower())
        elif isinstance(sub, ast.Attribute):
            hints.add(sub.attr.lower())
    return hints


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_keyword(node: ast.Call, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def statements_with_conditionality(
    body: list[ast.stmt],
    conditional: bool = False,
) -> Iterator[tuple[ast.stmt, bool]]:
    """Yield ``(statement, is_conditional)`` over a statement tree.

    A statement is *conditional* when any enclosing block is an ``if`` /
    ``elif`` / ``else`` / ``try`` arm; plain loop bodies count as
    unconditional (the linter cannot prove loop trip counts, so it gives
    loops the benefit of the doubt).
    """
    for stmt in body:
        yield stmt, conditional
        if isinstance(stmt, ast.If):
            yield from statements_with_conditionality(stmt.body, True)
            yield from statements_with_conditionality(stmt.orelse, True)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            yield from statements_with_conditionality(stmt.body, conditional)
            yield from statements_with_conditionality(stmt.orelse, True)
        elif isinstance(stmt, ast.Try):
            yield from statements_with_conditionality(stmt.body, True)
            for handler in stmt.handlers:
                yield from statements_with_conditionality(handler.body, True)
            yield from statements_with_conditionality(stmt.orelse, True)
            yield from statements_with_conditionality(stmt.finalbody, conditional)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            yield from statements_with_conditionality(stmt.body, conditional)
