"""``repro-lint`` command line: one analysis entry point for CI.

Usage::

    python -m tools.repro_lint src benchmarks tools       # python rules
    python -m tools.repro_lint --docs                     # docs links only
    python -m tools.repro_lint src tools --docs --json    # both, as JSON
    python -m tools.repro_lint --list-rules               # rule table

Exit status: 0 when clean, 1 on findings, 2 on usage errors -- suitable
for CI.  ``--select``/``--ignore`` take comma-separated rule codes;
per-line suppression uses ``# noqa: RPR0xx``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.repro_lint import rules as _rules  # noqa: F401  (registers rules)
from tools.repro_lint.docs import check_docs
from tools.repro_lint.framework import (
    all_rules,
    findings_to_json,
    format_finding,
    lint_paths,
)

__all__ = ["build_parser", "main"]

_DEFAULT_PATHS = ("src", "benchmarks", "tools")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the PermDNN stack",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default when no --docs: "
             f"{' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent.parent,
        help="repository root (default: this checkout)",
    )
    parser.add_argument(
        "--docs",
        action="store_true",
        help="also check markdown docs links (alone: docs only)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    parser.add_argument(
        "--select", default="", help="comma-separated rule codes to run"
    )
    parser.add_argument(
        "--ignore", default="", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    return parser


def _codes(raw: str) -> set[str] | None:
    codes = {code.strip().upper() for code in raw.split(",") if code.strip()}
    return codes or None


def _print_rules() -> None:
    print(f"{'code':<8} {'name':<26} invariant")
    for rule in all_rules():
        print(f"{rule.code:<8} {rule.name:<26} {rule.invariant}")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    root = args.root.resolve()
    if not root.is_dir():
        print(f"repro-lint: root {root} is not a directory", file=sys.stderr)
        return 2
    run_code = bool(args.paths) or not args.docs
    findings = []
    files_checked = 0
    if run_code:
        paths = [Path(p) for p in (args.paths or _DEFAULT_PATHS)]
        missing = [
            p for p in paths if not (p if p.is_absolute() else root / p).exists()
        ]
        if missing:
            print(
                f"repro-lint: no such path(s): "
                f"{', '.join(str(p) for p in missing)}",
                file=sys.stderr,
            )
            return 2
        findings, files_checked = lint_paths(
            paths, root, select=_codes(args.select), ignore=_codes(args.ignore)
        )
    if args.docs:
        doc_findings, doc_count = check_docs(root)
        findings = sorted(findings + doc_findings, key=lambda f: f.sort_key())
        files_checked += doc_count
    if args.json:
        sys.stdout.write(findings_to_json(findings, files_checked, root))
    else:
        for finding in findings:
            print(format_finding(finding))
        summary = (
            f"repro-lint: {len(findings)} finding(s) in "
            f"{files_checked} file(s)"
        )
        print(summary if findings else f"repro-lint: OK ({files_checked} files)",
              file=sys.stderr if findings else sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
