"""``repro-lint``: AST-based invariant checker for the PermDNN stack.

A small rule framework (:mod:`tools.repro_lint.framework`) plus the
project's invariants as ``RPR0xx`` rules (:mod:`tools.repro_lint.rules`)
and the markdown docs check (:mod:`tools.repro_lint.docs`), behind one
CLI::

    python -m tools.repro_lint src benchmarks tools [--docs] [--json]

See ``docs/STATIC_ANALYSIS.md`` for the rule table and rationale; the
runtime counterpart (aliasing sanitizer) lives in
``src/repro/debug/sanitizer.py``.
"""

from tools.repro_lint import rules  # noqa: F401  (registers the rule set)
from tools.repro_lint.cli import main
from tools.repro_lint.docs import check_docs
from tools.repro_lint.framework import (
    Finding,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "check_docs",
    "lint_paths",
    "lint_source",
    "main",
]
