"""Markdown docs checking, unified under the ``repro-lint`` CLI.

Every relative link/image target in README.md, CHANGES.md and
``docs/**/*.md`` must resolve on disk.  External (``http(s)://``,
``mailto:``) and pure-anchor targets are skipped; anchor suffixes on
relative targets are ignored for the existence check.  Fenced code blocks
and inline code spans are not linted.

Findings carry code :data:`DOCS_BROKEN_LINK_CODE` so ``--json`` output is
uniform with the python rules.  (``tools/docs_lint.py`` remains as a
compatibility wrapper over this module.)
"""

from __future__ import annotations

import re
from pathlib import Path

from tools.repro_lint.framework import Finding

__all__ = ["DOCS_BROKEN_LINK_CODE", "check_docs", "doc_files"]

DOCS_BROKEN_LINK_CODE = "RPR900"
DOCS_RULE_NAME = "docs-broken-link"

# Inline markdown link/image: [text](target) -- stops at whitespace or a
# closing parenthesis inside the target, which is enough for these docs.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_INLINE_CODE_RE = re.compile(r"`[^`]*`")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:")


def doc_files(root: Path) -> list[Path]:
    """The markdown set the repo lints: README, CHANGES, docs/**/*.md."""
    files = [root / "README.md", root / "CHANGES.md"]
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return [path for path in files if path.is_file()]


def _check_file(doc: Path, root: Path) -> list[Finding]:
    findings: list[Finding] = []
    rel = doc.relative_to(root).as_posix()
    in_fence = False
    for lineno, line in enumerate(
        doc.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = _INLINE_CODE_RE.sub("", line)
        for match in _LINK_RE.finditer(stripped):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if not (doc.parent / path_part).resolve().exists():
                findings.append(
                    Finding(
                        code=DOCS_BROKEN_LINK_CODE,
                        rule=DOCS_RULE_NAME,
                        message=f"broken link -> {target}",
                        path=rel,
                        line=lineno,
                        col=match.start(),
                    )
                )
    return findings


def check_docs(root: Path) -> tuple[list[Finding], int]:
    """Lint every tracked markdown file under ``root``.

    Returns:
        ``(findings, files_checked)``.
    """
    findings: list[Finding] = []
    docs = doc_files(root)
    for doc in docs:
        findings.extend(_check_file(doc, root))
    findings.sort(key=Finding.sort_key)
    return findings, len(docs)
