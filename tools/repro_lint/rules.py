"""The project-specific invariants ``repro-lint`` enforces.

Each rule guards a contract the PermDNN stack is built on (see
``docs/STATIC_ANALYSIS.md`` for the full table with rationale and
examples).  Codes are stable: tests, ``# noqa`` comments, and CI reports
refer to them.

| Code   | Invariant                                                    |
| ------ | ------------------------------------------------------------ |
| RPR001 | plan/value private state is mutated only inside ``core/``     |
| RPR002 | nn/hw/serve matmuls on PD state dispatch through backends     |
| RPR003 | CSR index arrays carry an explicit, never-int64 dtype         |
| RPR004 | ``SystemExit`` is raised only by ``repro.cli``                |
| RPR005 | no bare ``except:`` and no silently-swallowed exceptions      |
| RPR006 | ``np.empty`` buffers in kernels are unconditionally filled    |
| RPR007 | serving/serialization never copies aliased parameter storage  |
| RPR008 | read-only buffer flags are lifted only by core/ and debug/    |
| RPR009 | kernel buffer allocations in core/backends/ pin a dtype       |
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.framework import (
    FileContext,
    Finding,
    Rule,
    call_keyword,
    dotted_name,
    name_hints,
    register,
    statements_with_conditionality,
    walk_functions,
)

# Private attributes making up a matrix's cached-plan/value state.  The
# only sanctioned mutation points live in ``src/repro/core/`` (the
# ``data`` property setter, ``set_structure``, ``adopt_plan``, ...).
_PRIVATE_STATE_ATTRS = frozenset(
    {"_plan", "_data", "_csr_cache", "_ks", "_shape",
     "_value_dtype", "_fixed_point"}
)

# Identifier fragments that mark an expression as (probably) structured
# PD-matrix state.  Heuristic by design; false positives carry a noqa.
_MATRIX_HINTS = frozenset({"matrix", "bpd", "plane", "shard", "shards"})

_NUMPY_CONSTRUCTORS = frozenset(
    {"zeros", "empty", "arange", "array", "asarray", "full", "ones"}
)

# Names an index-array variable can take on a CSR path.
_CSR_INDEX_NAMES = ("indptr", "indices")


def _is_csr_index_name(name: str) -> bool:
    lowered = name.lower()
    return any(
        lowered == token or lowered.endswith(f"_{token}")
        for token in _CSR_INDEX_NAMES
    )


def _matrix_like(node: ast.AST) -> bool:
    hints = name_hints(node)
    return any(
        hint in _MATRIX_HINTS or hint.endswith("matrix") for hint in hints
    )


def _is_np_call(node: ast.AST, *names: str) -> bool:
    """True when ``node`` is ``np.<name>(...)`` / ``numpy.<name>(...)``."""
    if not isinstance(node, ast.Call):
        return False
    dotted = dotted_name(node.func)
    if dotted is None:
        return False
    return any(dotted in (f"np.{n}", f"numpy.{n}") for n in names)


@register
class PrivateStateMutationRule(Rule):
    """RPR001: `_plan`/`_data` (and friends) are mutated only in core/."""

    code = "RPR001"
    name = "private-state-mutation"
    invariant = (
        "index-plan and value-storage private attributes (`_plan`, `_data`, "
        "`_csr_cache`, `_ks`, `_shape`) are assigned only inside "
        "`src/repro/core/`"
    )
    rationale = (
        "plans may only be invalidated through `set_structure`; an ad-hoc "
        "`obj._plan = None` or `obj._data = arr` elsewhere silently breaks "
        "the cache and aliasing contracts"
    )
    exempt = ("src/repro/core/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                # unwrap starred/tuple targets
                parts = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for part in parts:
                    inner = part
                    if isinstance(inner, ast.Starred):
                        inner = inner.value
                    if isinstance(inner, ast.Subscript):
                        inner = inner.value
                    if (
                        isinstance(inner, ast.Attribute)
                        and inner.attr in _PRIVATE_STATE_ATTRS
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"mutation of private matrix state "
                            f"`.{inner.attr}` outside core/ -- go through "
                            f"`set_structure` / the `data` property",
                        )


@register
class BackendBypassRule(Rule):
    """RPR002: PD products in nn/hw/serve go through the backend registry."""

    code = "RPR002"
    name = "backend-bypass"
    invariant = (
        "nn/, hw/ and serve/ never multiply structured-matrix state with "
        "raw `@`, `np.dot`/`np.matmul`, or `scipy.sparse` products; "
        "serve/ additionally bans *every* raw `@` and the matmul-shaped "
        "numpy reductions (`einsum`/`tensordot`/`inner`/`vdot`)"
    )
    rationale = (
        "every PD product must dispatch through `repro.core.backends` so "
        "backend selection, int32 CSR skeletons and the plan cache apply "
        "uniformly; raw products silently fork the execution path.  Served "
        "stages are held to the strict form: everything a stage multiplies "
        "is shard state by construction, so name heuristics would only "
        "hide bypasses"
    )
    scope = (
        "src/repro/nn/",
        "src/repro/hw/",
        "src/repro/serve/",
        "src/repro/compress/",
    )
    # The baseline simulators (EIE, CirCNN) model *other accelerators'*
    # storage formats -- bypassing the PD registry is their entire point.
    exempt = ("src/repro/hw/baselines/",)

    # Under these prefixes, every `@` product and matmul-shaped numpy
    # reduction is a finding -- no matrix-likeness heuristic.
    _STRICT_PREFIXES = ("src/repro/serve/",)
    _STRICT_NP_REDUCTIONS = ("einsum", "tensordot", "inner", "vdot")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        strict = any(
            ctx.rel.startswith(prefix) for prefix in self._STRICT_PREFIXES
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("scipy"):
                        yield self.finding(
                            ctx, node,
                            "scipy import outside core/ -- sparse products "
                            "belong to the backend registry",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").startswith("scipy"):
                    yield self.finding(
                        ctx, node,
                        "scipy import outside core/ -- sparse products "
                        "belong to the backend registry",
                    )
            elif _is_np_call(node, "dot", "matmul"):
                yield self.finding(
                    ctx, node,
                    "raw np.dot/np.matmul -- structured products must "
                    "dispatch through the kernel backend registry",
                )
            elif strict and _is_np_call(node, *self._STRICT_NP_REDUCTIONS):
                yield self.finding(
                    ctx, node,
                    "matmul-shaped numpy reduction in serve/ -- served "
                    "stages drive the engine (backend-dispatched), never "
                    "multiply on the host",
                )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.MatMult
            ):
                if strict:
                    yield self.finding(
                        ctx, node,
                        "raw `@` product in serve/ -- served stages drive "
                        "the engine (backend-dispatched), never multiply "
                        "on the host",
                    )
                elif _matrix_like(node.left) or _matrix_like(node.right):
                    yield self.finding(
                        ctx, node,
                        "raw `@` product on structured-matrix state -- use "
                        "`.matmat`/`.rmatmat`/`.matvec` (backend-dispatched)",
                    )


@register
class CsrIndexDtypeRule(Rule):
    """RPR003: CSR index arrays get an explicit dtype and never int64."""

    code = "RPR003"
    name = "csr-index-dtype"
    invariant = (
        "arrays named `indptr`/`indices` are constructed with an explicit "
        "dtype expression and never hard-coded to int64 (or cast to it)"
    )
    rationale = (
        "the CSR skeletons are int32 whenever dimensions permit (half the "
        "index memory traffic of int64); an untyped or int64 construction "
        "silently doubles spmm index bytes"
    )
    scope = ("src/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            names = [
                target.id
                for target in node.targets
                if isinstance(target, ast.Name) and _is_csr_index_name(target.id)
            ]
            if not names:
                continue
            value = node.value
            # foo.astype(np.int64) / .astype(int)
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "astype"
                and value.args
                and self._is_int64_literal(value.args[0])
            ):
                yield self.finding(
                    ctx, node,
                    f"`{names[0]}` cast to a hard-coded wide integer dtype "
                    f"-- CSR index arrays stay int32 when dimensions fit",
                )
                continue
            if _is_np_call(value, *_NUMPY_CONSTRUCTORS):
                dtype = call_keyword(value, "dtype")
                if dtype is None:
                    yield self.finding(
                        ctx, node,
                        f"`{names[0]}` constructed without an explicit "
                        f"dtype -- CSR index arrays must state their index "
                        f"type (int32 when dimensions fit)",
                    )
                elif self._is_int64_literal(dtype):
                    yield self.finding(
                        ctx, node,
                        f"`{names[0]}` hard-coded to int64 -- CSR index "
                        f"arrays stay int32 when dimensions fit",
                    )

    @staticmethod
    def _is_int64_literal(node: ast.expr) -> bool:
        dotted = dotted_name(node)
        if dotted in ("np.int64", "numpy.int64", "int"):
            return True
        return isinstance(node, ast.Constant) and node.value == "int64"


@register
class SystemExitRule(Rule):
    """RPR004: only ``repro.cli`` turns errors into ``SystemExit``."""

    code = "RPR004"
    name = "systemexit-outside-cli"
    invariant = (
        "`raise SystemExit` / `sys.exit()` appear only in `src/repro/cli.py`"
    )
    rationale = (
        "library code raises typed exceptions so it stays usable as a "
        "library; only the CLI boundary converts them for terminal users"
    )
    scope = ("src/repro/",)
    exempt = ("src/repro/cli.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                if dotted_name(exc) == "SystemExit":
                    yield self.finding(
                        ctx, node,
                        "raise SystemExit outside cli.py -- raise a typed "
                        "library exception instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in ("sys.exit", "exit", "quit"):
                    yield self.finding(
                        ctx, node,
                        f"`{dotted}()` outside cli.py -- library code must "
                        f"not terminate the process",
                    )


@register
class ExceptionSwallowRule(Rule):
    """RPR005: no bare ``except:`` and no broad handlers that only pass."""

    code = "RPR005"
    name = "exception-swallow"
    invariant = (
        "no bare `except:`; no `except Exception`/`BaseException` handler "
        "whose entire body is `pass`"
    )
    rationale = (
        "a swallowed exception hides broken invariants (the aliasing and "
        "plan contracts fail silently); handlers must be typed and act"
    )

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare `except:` -- catch a typed exception",
                )
                continue
            if self._is_broad(node.type) and self._only_passes(node.body):
                yield self.finding(
                    ctx, node,
                    "broad exception handler silently swallows the error "
                    "-- narrow the type or handle it",
                )

    def _is_broad(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(elt) for elt in node.elts)
        return dotted_name(node) in self._BROAD

    @staticmethod
    def _only_passes(body: list[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in body
        )


@register
class EmptyPartialWriteRule(Rule):
    """RPR006: ``np.empty`` kernels buffers must be unconditionally filled."""

    code = "RPR006"
    name = "empty-partial-write"
    invariant = (
        "an `np.empty`/`np.empty_like` buffer in kernel code is filled by "
        "at least one unconditional write (or handed to a kernel call) "
        "before it can escape"
    )
    rationale = (
        "uninitialized memory behind an `if` is a heisenbug: results "
        "contain garbage exactly when the guard fails; kernels must write "
        "every slot or start from zeros"
    )
    scope = (
        "src/repro/core/backends/",
        "src/repro/hw/engine.py",
        "src/repro/serve/",
        "src/repro/nn/layers/",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in walk_functions(ctx.tree):
            yield from self._check_block(ctx, func.body)

    def _check_block(self, ctx, body: list[ast.stmt]) -> Iterator[Finding]:
        """Check one statement block; conditionality is judged *relative*
        to the ``np.empty`` assignment's own block, so an allocation and
        its loop-fill living together inside an ``else`` branch are fine.
        """
        for idx, stmt in enumerate(body):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and _is_np_call(stmt.value, "empty", "empty_like")
            ):
                target = stmt.targets[0].id
                suffix = list(
                    statements_with_conditionality(body[idx + 1:])
                )
                if not self._unconditionally_filled(target, suffix):
                    yield self.finding(
                        ctx, stmt,
                        f"`{target}` = np.empty(...) is never "
                        f"unconditionally filled -- a guarded partial write "
                        f"leaks uninitialized memory; write every slot or "
                        f"use np.zeros",
                    )
            # Recurse into nested blocks (but not nested functions, which
            # check() visits on its own).
            for child_body in self._child_blocks(stmt):
                yield from self._check_block(ctx, child_body)

    @staticmethod
    def _child_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return []
        blocks = []
        for attr in ("body", "orelse", "finalbody"):
            child = getattr(stmt, attr, None)
            if child:
                blocks.append(child)
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks

    @staticmethod
    def _unconditionally_filled(target: str, entries) -> bool:
        for stmt, conditional in entries:
            if conditional:
                continue
            # target[...] = ... / target[...] += ...
            stores = []
            if isinstance(stmt, ast.Assign):
                stores = stmt.targets
            elif isinstance(stmt, ast.AugAssign):
                stores = [stmt.target]
            for store in stores:
                if (
                    isinstance(store, ast.Subscript)
                    and isinstance(store.value, ast.Name)
                    and store.value.id == target
                ):
                    return True
            # handed to a kernel call that fills it (out= style)
            if isinstance(stmt, (ast.Expr, ast.Assign)):
                value = stmt.value
                if isinstance(value, ast.Call):
                    operands = list(value.args) + [
                        kw.value for kw in value.keywords
                    ]
                    if any(
                        isinstance(arg, ast.Name) and arg.id == target
                        for arg in operands
                    ):
                        return True
        return False


@register
class AliasBreakingCopyRule(Rule):
    """RPR007: serving/serialization keep parameter storage aliased."""

    code = "RPR007"
    name = "alias-breaking-copy"
    invariant = (
        "serve/ and nn/serialization.py never call `.copy()`, "
        "`.flatten()`, `np.copy`, `np.ascontiguousarray` or "
        "`.reshape(-1)` on parameter/shard storage"
    )
    rationale = (
        "the serving stack's zero-copy story (live weight updates visible "
        "to every shard engine) rests on `data` staying a view of parent "
        "storage; one silent copy decouples the weights being served from "
        "the weights being trained"
    )
    scope = ("src/repro/serve/", "src/repro/nn/serialization.py")

    _COPY_METHODS = ("copy", "flatten")
    _STORAGE_HINTS = frozenset({"data", "value", "_data"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                method = node.func.attr
                receiver = node.func.value
                if method in self._COPY_METHODS and self._is_storage(receiver):
                    yield self.finding(
                        ctx, node,
                        f"`.{method}()` on parameter/shard storage breaks "
                        f"the aliasing contract -- keep a view",
                    )
                elif method == "reshape" and self._is_storage(receiver):
                    if self._is_flattening(node):
                        yield self.finding(
                            ctx, node,
                            "`.reshape(-1)` on parameter/shard storage may "
                            "silently copy non-contiguous views -- keep the "
                            "(mb, nb, p) layout or use `.ravel()` plus an "
                            "explicit contiguity check",
                        )
            if _is_np_call(node, "copy", "ascontiguousarray"):
                if node.args and self._is_storage(node.args[0]):
                    yield self.finding(
                        ctx, node,
                        "numpy copy of parameter/shard storage breaks the "
                        "aliasing contract -- keep a view",
                    )

    def _is_storage(self, node: ast.AST) -> bool:
        hints = name_hints(node)
        if hints & self._STORAGE_HINTS:
            return True
        return any("shard" in hint or "param" in hint for hint in hints)

    @staticmethod
    def _is_flattening(node: ast.Call) -> bool:
        args = node.args
        if len(args) == 1 and isinstance(args[0], ast.Tuple):
            args = args[0].elts
        return (
            len(args) == 1
            and isinstance(args[0], ast.UnaryOp)
            and isinstance(args[0].op, ast.USub)
            and isinstance(args[0].operand, ast.Constant)
            and args[0].operand.value == 1
        )


@register
class SetflagsUnfreezeRule(Rule):
    """RPR008: read-only buffers are unfrozen only by core/ and debug/."""

    code = "RPR008"
    name = "setflags-unfreeze"
    invariant = (
        "`setflags(write=True)` / `flags.writeable = True` appear only in "
        "`src/repro/core/` and `src/repro/debug/`"
    )
    rationale = (
        "plan arrays and sanitizer-frozen buffers are read-only on "
        "purpose; lifting the flag elsewhere defeats both the shared-plan "
        "immutability and the aliasing sanitizer"
    )
    exempt = ("src/repro/core/", "src/repro/debug/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setflags"
            ):
                write = call_keyword(node, "write")
                if (
                    isinstance(write, ast.Constant) and bool(write.value)
                ):
                    yield self.finding(
                        ctx, node,
                        "setflags(write=True) outside core//debug/ unfreezes "
                        "a shared read-only buffer",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "writeable"
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "flags"
                        and isinstance(node.value, ast.Constant)
                        and bool(node.value.value)
                    ):
                        yield self.finding(
                            ctx, node,
                            "flags.writeable = True outside core//debug/ "
                            "unfreezes a shared read-only buffer",
                        )


@register
class DtypelessAllocationRule(Rule):
    """RPR009: kernel buffer allocations always pin an explicit dtype."""

    code = "RPR009"
    name = "dtypeless-allocation"
    invariant = (
        "`np.zeros`/`np.empty`/`np.ones`/`np.full` in "
        "`src/repro/core/backends/` always pass a `dtype`"
    )
    rationale = (
        "a dtype-less allocation defaults to float64, which silently "
        "upcasts float32/int16 value storage the first time a kernel "
        "writes into it; `*_like` constructors inherit the source dtype "
        "and stay exempt"
    )
    scope = ("src/repro/core/backends/",)

    # Positional index where `dtype` lands per constructor signature:
    # zeros/empty/ones take (shape, dtype, ...); full takes
    # (shape, fill_value, dtype, ...).
    _ALLOCATORS = {"zeros": 1, "empty": 1, "ones": 1, "full": 2}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_np_call(node, *self._ALLOCATORS):
                continue
            name = dotted_name(node.func)
            assert name is not None  # _is_np_call resolved it
            dtype_pos = self._ALLOCATORS[name.rpartition(".")[2]]
            if (
                call_keyword(node, "dtype") is None
                and len(node.args) <= dtype_pos
            ):
                yield self.finding(
                    ctx, node,
                    f"`{name}(...)` without `dtype=` allocates float64 and "
                    "silently upcasts reduced-precision value storage -- "
                    "pass the kernel's compute dtype explicitly",
                )
