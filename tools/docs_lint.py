#!/usr/bin/env python
"""Docs lint: every relative link in the markdown docs must resolve.

Scans README.md, docs/**/*.md and CHANGES.md for inline markdown links and
images (``[text](target)`` / ``![alt](target)``), resolves relative
targets against the containing file, and fails listing every target that
does not exist.  External (``http(s)://``, ``mailto:``) and pure-anchor
(``#...``) targets are skipped; an anchor suffix on a relative target is
ignored when checking existence.

Usage::

    python tools/docs_lint.py [--root PATH]

Exit status is 0 when all links resolve, 1 otherwise -- suitable for CI.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Inline markdown link/image: [text](target) -- stops at whitespace or a
# closing parenthesis inside the target, which is enough for these docs.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:")


def _doc_files(root: Path) -> list[Path]:
    files = [root / "README.md", root / "CHANGES.md"]
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return [path for path in files if path.is_file()]


def _strip_code_spans(text: str) -> str:
    """Drop fenced and inline code so example links are not linted."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def check_links(root: Path) -> list[str]:
    """All broken relative links under ``root``, as printable messages."""
    problems = []
    for doc in _doc_files(root):
        body = _strip_code_spans(doc.read_text(encoding="utf-8"))
        for match in _LINK_RE.finditer(body):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(root)}: broken link -> {target}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root to lint (default: this checkout)",
    )
    args = parser.parse_args(argv)
    docs = _doc_files(args.root)
    if not docs:
        print("docs_lint: no markdown files found", file=sys.stderr)
        return 1
    problems = check_links(args.root)
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = ", ".join(str(d.relative_to(args.root)) for d in docs)
    if problems:
        print(f"docs_lint: {len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"docs_lint: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
