#!/usr/bin/env python
"""Compatibility wrapper: the docs check now lives in ``tools.repro_lint``.

``python tools/docs_lint.py [--root PATH]`` keeps working (old CI legs,
muscle memory), but the implementation is
:func:`tools.repro_lint.docs.check_docs` and the canonical invocation is::

    python -m tools.repro_lint --docs

Exit status is 0 when all links resolve, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

# Running as a script puts tools/ (not the repo root) on sys.path; the
# package import below needs the root.
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from tools.repro_lint.docs import check_docs, doc_files  # noqa: E402
from tools.repro_lint.framework import format_finding  # noqa: E402


def check_links(root: Path) -> list[str]:
    """All broken relative links under ``root``, as printable messages.

    Retained for callers of the old API; formatting now matches the
    unified linter (``path:line:col: RPR900 [docs-broken-link] ...``).
    """
    findings, _ = check_docs(root)
    return [format_finding(finding) for finding in findings]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=Path,
        default=_REPO_ROOT,
        help="repository root to lint (default: this checkout)",
    )
    args = parser.parse_args(argv)
    docs = doc_files(args.root)
    if not docs:
        print("docs_lint: no markdown files found", file=sys.stderr)
        return 1
    problems = check_links(args.root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"docs_lint: {len(problems)} broken link(s)", file=sys.stderr)
        return 1
    checked = ", ".join(str(d.relative_to(args.root)) for d in docs)
    print(f"docs_lint: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
