"""Setuptools entry point (kept for offline `pip install -e .` support)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PermDNN reproduction: compressed DNNs with permuted diagonal "
        "matrices, plus cycle-level accelerator simulation (MICRO 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
