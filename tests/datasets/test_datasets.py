"""Tests for the synthetic dataset substitutes."""

import numpy as np
import pytest

from repro.datasets import (
    GaussianMixtureDataset,
    TranslationCorpus,
    Vocabulary,
    make_cifar_like,
    make_digits,
)


class TestGaussianMixture:
    def test_shapes(self):
        ds = GaussianMixtureDataset(num_features=32, num_classes=5)
        x, y = ds.sample(100, rng=0)
        assert x.shape == (100, 32)
        assert y.shape == (100,)
        assert y.min() >= 0 and y.max() < 5

    def test_reproducible(self):
        ds = GaussianMixtureDataset(seed=7)
        x1, y1 = ds.sample(10, rng=3)
        x2, y2 = ds.sample(10, rng=3)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_separation_controls_difficulty(self):
        """A trivial nearest-mean classifier should do better with more
        separation -- the knob the benchmarks rely on."""

        def nearest_mean_accuracy(sep):
            ds = GaussianMixtureDataset(
                num_features=16, num_classes=4, separation=sep, seed=0
            )
            x, y = ds.sample(500, rng=1)
            dists = ((x[:, None, :] - ds._means[None]) ** 2).sum(axis=2)
            return (dists.argmin(axis=1) == y).mean()

        assert nearest_mean_accuracy(6.0) > nearest_mean_accuracy(0.5)

    def test_validates_config(self):
        with pytest.raises(ValueError):
            GaussianMixtureDataset(num_features=0)
        with pytest.raises(ValueError):
            GaussianMixtureDataset(num_classes=1)

    def test_train_test_split_disjoint_draws(self):
        ds = GaussianMixtureDataset(seed=0)
        x_train, y_train, x_test, y_test = ds.train_test_split(50, 20)
        assert x_train.shape[0] == 50 and x_test.shape[0] == 20


class TestDigits:
    def test_shapes_and_range(self):
        x, y = make_digits(50, seed=0)
        assert x.shape == (50, 1, 28, 28)
        assert y.shape == (50,)
        assert x.min() >= 0.0

    def test_all_ten_classes_renderable(self):
        x, y = make_digits(200, seed=1)
        assert set(np.unique(y)) == set(range(10))

    def test_classes_are_visually_distinct(self):
        """Noise-free class templates must differ pairwise."""
        x, y = make_digits(400, noise=0.0, max_shift=0, seed=2)
        templates = [x[y == digit][0, 0] for digit in range(10)]
        for a in range(10):
            for b in range(a + 1, 10):
                assert np.abs(templates[a] - templates[b]).sum() > 1.0

    def test_custom_size(self):
        x, _ = make_digits(5, image_size=20, seed=3)
        assert x.shape == (5, 1, 20, 20)

    def test_noise_increases_variance(self):
        clean, _ = make_digits(20, noise=0.0, seed=4)
        noisy, _ = make_digits(20, noise=0.5, seed=4)
        assert noisy.var() > clean.var()


class TestCifarLike:
    def test_shapes(self):
        x, y = make_cifar_like(30, seed=0)
        assert x.shape == (30, 3, 32, 32)
        assert y.shape == (30,)

    def test_num_classes_limit(self):
        with pytest.raises(ValueError):
            make_cifar_like(10, num_classes=17)

    def test_classes_distinguishable_by_spectrum(self):
        """Per-class mean spectra should differ (textures are separable)."""
        x, y = make_cifar_like(300, num_classes=4, noise=0.05, seed=1)
        spectra = []
        for cls in range(4):
            imgs = x[y == cls][:, 0]
            mag = np.abs(np.fft.fft2(imgs)).mean(axis=0)
            spectra.append(mag / mag.sum())
        for a in range(4):
            for b in range(a + 1, 4):
                assert np.abs(spectra[a] - spectra[b]).sum() > 1e-3

    def test_custom_image_size(self):
        x, _ = make_cifar_like(4, image_size=16, seed=2)
        assert x.shape == (4, 3, 16, 16)


class TestTranslationCorpus:
    def test_vocabulary_reserved_ids(self):
        vocab = Vocabulary(16)
        assert (vocab.PAD, vocab.BOS, vocab.EOS) == (0, 1, 2)
        assert vocab.num_content == 13

    def test_vocab_minimum_size(self):
        with pytest.raises(ValueError):
            Vocabulary(4)

    def test_translation_is_deterministic(self):
        corpus = TranslationCorpus(seed=0)
        sentence = [3, 4, 5, 6]
        assert corpus.translate(sentence) == corpus.translate(sentence)

    def test_translation_is_bijective_mapping_with_swaps(self):
        corpus = TranslationCorpus(vocab_size=16, seed=1)
        source = [3, 4, 5, 6]
        target = corpus.translate(source)
        assert len(target) == len(source)
        # undo the swap, then the dictionary must invert
        unswapped = target.copy()
        for idx in range(0, len(unswapped) - 1, 2):
            unswapped[idx], unswapped[idx + 1] = unswapped[idx + 1], unswapped[idx]
        inverse = {v: k for k, v in corpus._dictionary.items()}
        assert [inverse[tok] for tok in unswapped] == source

    def test_sample_pairs_lengths(self):
        corpus = TranslationCorpus(min_len=3, max_len=5, seed=2)
        pairs = corpus.sample_pairs(50, rng=0)
        assert all(3 <= len(s) <= 5 for s, _ in pairs)
        assert all(len(s) == len(t) for s, t in pairs)

    def test_to_batch_layout(self):
        corpus = TranslationCorpus(vocab_size=16, min_len=2, max_len=3, seed=3)
        pairs = [([3, 4], [5, 6]), ([3, 4, 5], [6, 7, 8])]
        src, tgt_in, tgt_out = corpus.to_batch(pairs)
        vocab = corpus.vocab
        assert src.shape == (2, 3)
        assert tgt_in[0, 0] == vocab.BOS
        assert tgt_out[0, 2] == vocab.EOS
        assert src[0, 2] == vocab.PAD  # padded short sentence

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            TranslationCorpus(min_len=1, max_len=3)
        with pytest.raises(ValueError):
            TranslationCorpus(min_len=4, max_len=3)
