"""Tests for the reference networks (AlexNet-FC, LeNet, ResNet, NMT)."""

import numpy as np
import pytest

from repro.datasets import TranslationCorpus, make_cifar_like, make_digits
from repro.metrics import model_storage_report
from repro.models import (
    ALEXNET_FC_SHAPES,
    RESNET20_POLICY,
    WRN48_POLICY,
    Seq2SeqNMT,
    build_alexnet_fc,
    build_lenet5,
    build_resnet,
)
from repro.nn import Adam, CrossEntropyLoss, PermDiagLinear


class TestAlexNetFC:
    def test_paper_scale_shapes(self):
        assert ALEXNET_FC_SHAPES == ((9216, 4096), (4096, 4096), (4096, 1000))

    def test_scaled_model_runs(self):
        model = build_alexnet_fc(scale=64, rng=0)
        x = np.random.default_rng(0).normal(size=(4, 9216 // 64))
        out = model.forward(x)
        assert out.shape == (4, 1000 // 64)

    def test_dense_variant(self):
        model = build_alexnet_fc(p_values=None, scale=64, rng=0)
        report = model_storage_report(model)
        assert report.compression_ratio == pytest.approx(1.0)

    def test_pd_block_sizes_applied(self):
        model = build_alexnet_fc(scale=8, rng=0)
        pd_layers = [m for m in model.modules() if isinstance(m, PermDiagLinear)]
        assert [layer.p for layer in pd_layers] == [10, 10, 4]

    def test_wrong_p_count_rejected(self):
        with pytest.raises(ValueError):
            build_alexnet_fc(p_values=(10, 10), scale=8)

    def test_paper_scale_compression_matches_table2(self):
        """At paper scale the PD stack compresses ~9x (Table II)."""
        model = build_alexnet_fc(scale=1, dropout=0.0, rng=0)
        report = model_storage_report(model)
        assert report.compression_ratio == pytest.approx(9.0, rel=0.05)


class TestLeNet:
    def test_forward_shape(self):
        model = build_lenet5(rng=0)
        x, _ = make_digits(4, seed=0)
        assert model.forward(x).shape == (4, 10)

    def test_pd_variant_compresses(self):
        dense = model_storage_report(build_lenet5(rng=0))
        compressed = model_storage_report(build_lenet5(conv_p=2, fc_p=8, rng=0))
        assert compressed.compression_ratio > 2.0
        assert dense.compression_ratio == pytest.approx(1.0)

    def test_trains_on_digits(self):
        from repro.nn import Trainer

        x, y = make_digits(400, noise=0.1, max_shift=2, seed=0)
        x_test, y_test = make_digits(120, noise=0.1, max_shift=2, seed=1)
        model = build_lenet5(conv_p=2, fc_p=4, widths=(4, 8, 32, 16), rng=0)
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), CrossEntropyLoss(),
            batch_size=32, rng=0,
        )
        history = trainer.fit(x, y, x_test, y_test, epochs=6)
        assert history.final_test_accuracy > 0.5  # far above 10% chance


class TestResNet:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            build_resnet(depth=21)

    def test_resnet20_block_count(self):
        model = build_resnet(depth=20, base_width=4, rng=0)
        from repro.models.resnet import BasicBlock

        blocks = [m for m in model.modules() if isinstance(m, BasicBlock)]
        assert len(blocks) == 9  # 3 stages x 3 blocks

    def test_forward_backward_shapes(self):
        model = build_resnet(depth=8, base_width=8, rng=0)
        x, _ = make_cifar_like(2, seed=0)
        out = model.forward(x)
        assert out.shape == (2, 10)
        dx = model.backward(np.ones_like(out))
        assert dx.shape == x.shape

    def test_policy_applies_p2_to_3x3_only(self):
        from repro.nn import PermDiagConv2D

        model = build_resnet(depth=8, policy=RESNET20_POLICY, base_width=8, rng=0)
        pd_convs = [m for m in model.modules() if isinstance(m, PermDiagConv2D)]
        assert pd_convs, "expected PD convs under the ResNet-20 policy"
        assert all(conv.p == 2 for conv in pd_convs)
        assert all(conv.kernel_size == (3, 3) for conv in pd_convs)

    def test_wrn_policy_uses_p4(self):
        from repro.nn import PermDiagConv2D

        model = build_resnet(
            depth=8, policy=WRN48_POLICY, base_width=8, widen_factor=2, rng=0
        )
        pd_convs = [m for m in model.modules() if isinstance(m, PermDiagConv2D)]
        assert all(conv.p == 4 for conv in pd_convs)

    def test_compression_ratio_between_1_and_p(self):
        """Whole-model ratio is < p because 1x1/stem/classifier stay dense
        (matches the paper: ResNet-20 compresses 1.55x overall with p=2)."""
        model = build_resnet(depth=14, policy=RESNET20_POLICY, base_width=8, rng=0)
        report = model_storage_report(model)
        assert 1.2 < report.compression_ratio < 2.0


class TestSeq2SeqNMT:
    def test_has_4_lstms_and_32_matrices(self):
        model = Seq2SeqNMT(vocab_size=16, p=4, rng=0)
        assert len(model.lstms) == 4
        assert model.num_weight_matrices == 32

    def test_forward_shapes(self):
        model = Seq2SeqNMT(vocab_size=16, embed_dim=8, hidden=16, p=4, rng=0)
        src = np.zeros((3, 5), dtype=int)
        tgt = np.zeros((3, 6), dtype=int)
        logits = model.forward(src, tgt)
        assert logits.shape == (3, 6, 16)

    def test_greedy_decode_stops_at_eos(self):
        model = Seq2SeqNMT(vocab_size=16, embed_dim=8, hidden=16, p=4, rng=0)
        outputs = model.greedy_decode(
            np.zeros((2, 4), dtype=int), bos=1, eos=2, max_len=7
        )
        assert len(outputs) == 2
        assert all(len(out) <= 7 for out in outputs)
        assert all(2 not in out for out in outputs)

    def test_learns_tiny_translation_task(self):
        corpus = TranslationCorpus(vocab_size=12, min_len=2, max_len=3, seed=0)
        model = Seq2SeqNMT(
            vocab_size=12, embed_dim=12, hidden=24, p=2, num_layers=1, rng=0
        )
        opt = Adam(model.parameters(), lr=0.01)
        loss_fn = CrossEntropyLoss(ignore_index=corpus.vocab.PAD)
        gen = np.random.default_rng(1)
        first_loss = last_loss = None
        for step in range(40):
            src, ti, to = corpus.to_batch(corpus.sample_pairs(32, gen))
            last_loss = model.train_batch(src, ti, to, opt, loss_fn)
            if first_loss is None:
                first_loss = last_loss
        assert last_loss < first_loss * 0.8

    def test_pd_structure_preserved_after_training(self):
        from repro.nn.layers.recurrent import _PDOp

        corpus = TranslationCorpus(vocab_size=12, min_len=2, max_len=3, seed=0)
        model = Seq2SeqNMT(
            vocab_size=12, embed_dim=8, hidden=16, p=4, num_layers=1, rng=0
        )
        opt = Adam(model.parameters(), lr=0.01)
        loss_fn = CrossEntropyLoss(ignore_index=corpus.vocab.PAD)
        src, ti, to = corpus.to_batch(corpus.sample_pairs(16, np.random.default_rng(0)))
        for _ in range(3):
            model.train_batch(src, ti, to, opt, loss_fn)
        for lstm in model.lstms:
            for op in lstm.cell.weight_matrices:
                assert isinstance(op, _PDOp)
                dense = op.matrix.to_dense()
                assert np.all(dense[~op.matrix.dense_mask()] == 0)

    def test_dense_variant_has_no_compression(self):
        model = Seq2SeqNMT(vocab_size=16, embed_dim=8, hidden=16, p=None, rng=0)
        report = model_storage_report(model)
        assert report.compression_ratio == pytest.approx(1.0)
