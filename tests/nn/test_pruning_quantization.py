"""Tests for magnitude pruning and quantization (weight sharing, fixed point)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Linear
from repro.nn.pruning import layerwise_density, magnitude_mask, prune_linear
from repro.nn.quantization import (
    FixedPointFormat,
    WeightSharingCodebook,
    choose_fixed_point_format,
    quantize_fixed_point,
)

rng = np.random.default_rng(31)


class TestMagnitudeMask:
    def test_keeps_exact_count(self):
        weight = rng.normal(size=(20, 20))
        mask = magnitude_mask(weight, density=0.1)
        assert mask.sum() == 40

    def test_keeps_largest_magnitudes(self):
        weight = np.array([[0.1, -5.0], [3.0, 0.01]])
        mask = magnitude_mask(weight, density=0.5)
        np.testing.assert_array_equal(mask, [[False, True], [True, False]])

    def test_density_one_keeps_all(self):
        weight = rng.normal(size=(5, 5))
        assert magnitude_mask(weight, 1.0).all()

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            magnitude_mask(np.ones((2, 2)), 0.0)

    @given(st.floats(0.05, 1.0))
    @settings(max_examples=20)
    def test_exact_count_with_ties(self, density):
        weight = np.ones((10, 10))  # every entry ties
        mask = magnitude_mask(weight, density)
        assert mask.sum() == max(1, round(100 * density))

    def test_pd_weight_sparsity_equivalent(self):
        """Table VII: PD with p=10 has the same 10% density EIE would see."""
        from repro.core import BlockPermutedDiagonalMatrix

        pd = BlockPermutedDiagonalMatrix.random((100, 100), 10, rng=0)
        assert (pd.to_dense() != 0).mean() == pytest.approx(0.1)


class TestPruneLinear:
    def test_surviving_weights_keep_values(self):
        layer = Linear(10, 8, rng=0)
        pruned = prune_linear(layer, density=0.25)
        mask = pruned.mask
        np.testing.assert_allclose(
            pruned.weight.value[mask], layer.weight.value[mask]
        )
        assert np.all(pruned.weight.value[~mask] == 0)

    def test_bias_carried_over(self):
        layer = Linear(6, 4, rng=1)
        layer.bias.value[...] = np.arange(4.0)
        pruned = prune_linear(layer, 0.5)
        np.testing.assert_allclose(pruned.bias.value, np.arange(4.0))

    def test_forward_close_to_dense_at_high_density(self):
        layer = Linear(20, 10, rng=2)
        pruned = prune_linear(layer, density=0.95)
        x = rng.normal(size=(4, 20))
        dense_out = layer.forward(x)
        sparse_out = pruned.forward(x)
        assert np.abs(dense_out - sparse_out).max() < np.abs(dense_out).max()

    def test_layerwise_density(self):
        masks = [np.ones((2, 2), dtype=bool), np.zeros((2, 2), dtype=bool)]
        assert layerwise_density(masks) == pytest.approx(0.5)


class TestFixedPoint:
    def test_format_properties(self):
        fmt = FixedPointFormat(16, 12)
        assert fmt.scale == 4096
        assert fmt.resolution == pytest.approx(1 / 4096)
        assert fmt.max_value == pytest.approx((2**15 - 1) / 4096)

    def test_rejects_bad_format(self):
        with pytest.raises(ValueError):
            FixedPointFormat(16, 16)
        with pytest.raises(ValueError):
            FixedPointFormat(1, 0)

    def test_quantization_error_bounded_by_half_lsb(self):
        fmt = FixedPointFormat(16, 12)
        values = rng.uniform(-3, 3, size=1000)
        quantized = quantize_fixed_point(values, fmt)
        in_range = np.abs(values) < fmt.max_value
        assert np.abs(values - quantized)[in_range].max() <= fmt.resolution / 2 + 1e-12

    def test_saturation(self):
        fmt = FixedPointFormat(8, 4)
        quantized = quantize_fixed_point(np.array([100.0, -100.0]), fmt)
        assert quantized[0] == pytest.approx(fmt.max_value)
        assert quantized[1] == pytest.approx(fmt.min_value)

    def test_auto_format_avoids_clipping(self):
        values = rng.normal(size=500) * 7
        fmt = choose_fixed_point_format(values, 16)
        assert fmt.max_value >= np.abs(values).max()

    @given(st.integers(4, 16))
    @settings(max_examples=10)
    def test_more_bits_less_error(self, bits):
        values = rng.uniform(-1, 1, size=200)
        err_low = np.abs(values - quantize_fixed_point(values, total_bits=bits)).max()
        err_high = np.abs(
            values - quantize_fixed_point(values, total_bits=bits + 2)
        ).max()
        assert err_high <= err_low + 1e-12

    def test_16bit_pd_weights_small_error(self):
        """Tables II-V: 16-bit fixed PD weights barely move the model."""
        from repro.core import BlockPermutedDiagonalMatrix

        pd = BlockPermutedDiagonalMatrix.random((64, 64), 8, rng=3)
        quantized = quantize_fixed_point(pd.data)
        rel = np.abs(pd.data - quantized).max() / np.abs(pd.data).max()
        assert rel < 1e-3


class TestWeightSharing:
    def test_num_clusters(self):
        assert WeightSharingCodebook(bits=4).num_clusters == 16

    def test_apply_snaps_to_centroids(self):
        values = rng.normal(size=500)
        codebook = WeightSharingCodebook(bits=4, rng=0).fit(values)
        shared = codebook.apply(values)
        unique = np.unique(shared[shared != 0])
        assert unique.size <= 16

    def test_zeros_stay_zero(self):
        values = np.concatenate([np.zeros(10), rng.normal(size=100)])
        codebook = WeightSharingCodebook(bits=2, rng=1).fit(values)
        shared = codebook.apply(values)
        np.testing.assert_array_equal(shared[:10], 0.0)

    def test_apply_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            WeightSharingCodebook().apply(np.ones(3))

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            WeightSharingCodebook(bits=0)

    def test_4bit_error_smaller_than_2bit(self):
        values = rng.normal(size=2000)
        err4 = WeightSharingCodebook(bits=4, rng=2).fit(values).quantization_error(values)
        err2 = WeightSharingCodebook(bits=2, rng=2).fit(values).quantization_error(values)
        assert err4 < err2

    def test_footnote11_4bit_sharing_preserves_model_output(self):
        """Paper footnote 11: 4-bit weight sharing causes no accuracy drop.
        Proxy check: output perturbation is small relative to signal."""
        from repro.nn import PermDiagLinear

        layer = PermDiagLinear(64, 64, p=8, rng=4)
        codebook = WeightSharingCodebook(bits=4, rng=5).fit(layer.weight.value)
        x = rng.normal(size=(16, 64))
        before = layer.forward(x)
        layer.weight.value[...] = codebook.apply(layer.weight.value)
        after = layer.forward(x)
        rel = np.linalg.norm(after - before) / np.linalg.norm(before)
        # Gaussian weights are the hardest case for 16 clusters; ~10%
        # output-norm perturbation still leaves argmax decisions intact,
        # which is why the paper sees no accuracy drop.
        assert rel < 0.15

    def test_all_zero_input(self):
        codebook = WeightSharingCodebook(bits=3).fit(np.zeros(10))
        np.testing.assert_array_equal(codebook.apply(np.zeros(5)), 0.0)
