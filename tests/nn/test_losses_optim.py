"""Tests for losses, optimizers, and the trainer loop."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CrossEntropyLoss,
    Linear,
    MSELoss,
    PermDiagLinear,
    ReLU,
    SGD,
    Sequential,
    Trainer,
)
from repro.nn.losses import cross_entropy_with_onehot
from repro.nn.optim import clip_grad_norm
from repro.nn.parameter import Parameter

rng = np.random.default_rng(5)


class TestCrossEntropy:
    def test_matches_onehot_formulation(self):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss = CrossEntropyLoss()
        assert loss.forward(logits, labels) == pytest.approx(
            cross_entropy_with_onehot(logits, labels), rel=1e-9
        )

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = logits[1, 2] = 50.0
        loss = CrossEntropyLoss().forward(logits, np.array([1, 2]))
        assert loss < 1e-6

    def test_gradient_matches_numeric(self):
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        loss = CrossEntropyLoss()
        loss.forward(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for idx in np.ndindex(*logits.shape):
            orig = logits[idx]
            logits[idx] = orig + eps
            plus = CrossEntropyLoss().forward(logits, labels)
            logits[idx] = orig - eps
            minus = CrossEntropyLoss().forward(logits, labels)
            logits[idx] = orig
            numeric[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-7)

    def test_ignore_index_masks_positions(self):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, -1, 2, -1])
        loss = CrossEntropyLoss(ignore_index=-1)
        value = loss.forward(logits, labels)
        grad = loss.backward()
        assert np.all(grad[1] == 0) and np.all(grad[3] == 0)
        # equals mean over the two valid rows
        ref = CrossEntropyLoss().forward(logits[[0, 2]], labels[[0, 2]])
        assert value == pytest.approx(ref)

    def test_all_ignored_raises(self):
        loss = CrossEntropyLoss(ignore_index=0)
        with pytest.raises(ValueError):
            loss.forward(rng.normal(size=(2, 3)), np.zeros(2, dtype=int))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss().forward(rng.normal(size=(2, 3)), np.zeros(3, dtype=int))

    def test_numerical_stability_large_logits(self):
        logits = np.array([[1e4, -1e4]])
        loss = CrossEntropyLoss().forward(logits, np.array([0]))
        assert np.isfinite(loss) and loss < 1e-6


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        assert loss.forward(np.array([1.0, 3.0]), np.array([0.0, 1.0])) == pytest.approx(2.5)

    def test_gradient(self):
        loss = MSELoss()
        pred = np.array([2.0, -1.0])
        loss.forward(pred, np.zeros(2))
        np.testing.assert_allclose(loss.backward(), [2.0, -1.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros(2), np.zeros(3))


class TestOptimizers:
    def test_sgd_basic_step(self):
        param = Parameter(np.array([1.0, 2.0]))
        param.grad[...] = [0.5, -0.5]
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.value, [0.95, 2.05])

    def test_sgd_momentum_accumulates(self):
        param = Parameter(np.array([0.0]))
        opt = SGD([param], lr=1.0, momentum=0.5)
        param.grad[...] = [1.0]
        opt.step()  # v=1, x=-1
        param.grad[...] = [1.0]
        opt.step()  # v=1.5, x=-2.5
        np.testing.assert_allclose(param.value, [-2.5])

    def test_sgd_weight_decay(self):
        param = Parameter(np.array([2.0]))
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad[...] = [0.0]
        opt.step()
        np.testing.assert_allclose(param.value, [2.0 - 0.1 * 0.5 * 2.0])

    def test_adam_moves_toward_minimum(self):
        param = Parameter(np.array([5.0]))
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            param.zero_grad()
            param.grad[...] = 2 * param.value  # d/dx x^2
            opt.step()
        assert abs(param.value[0]) < 0.05

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=-1.0)

    def test_clip_grad_norm(self):
        params = [Parameter(np.zeros(3)), Parameter(np.zeros(4))]
        params[0].grad[...] = [3.0, 0.0, 0.0]
        params[1].grad[...] = [0.0, 4.0, 0.0, 0.0]
        pre = clip_grad_norm(params, max_norm=1.0)
        assert pre == pytest.approx(5.0)
        total = np.sqrt(sum((p.grad**2).sum() for p in params))
        assert total == pytest.approx(1.0)


class TestTrainer:
    def _toy_data(self, count=300):
        gen = np.random.default_rng(0)
        x = gen.normal(size=(count, 8))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        return x, y

    def test_dense_model_learns(self):
        x, y = self._toy_data()
        model = Sequential(Linear(8, 16, rng=0), ReLU(), Linear(16, 2, rng=1))
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), CrossEntropyLoss(), rng=0
        )
        history = trainer.fit(x, y, x, y, epochs=10)
        assert history.final_test_accuracy > 0.9

    def test_pd_model_learns_same_task(self):
        """The compressed model should track the dense model's accuracy
        (the paper's central accuracy claim, at toy scale)."""
        x, y = self._toy_data()
        model = Sequential(
            PermDiagLinear(8, 16, p=2, rng=2), ReLU(), PermDiagLinear(16, 2, p=2, rng=3)
        )
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), CrossEntropyLoss(), rng=0
        )
        history = trainer.fit(x, y, x, y, epochs=10)
        assert history.final_test_accuracy > 0.9

    def test_loss_decreases(self):
        x, y = self._toy_data()
        model = Sequential(Linear(8, 8, rng=4), ReLU(), Linear(8, 2, rng=5))
        trainer = Trainer(
            model, SGD(model.parameters(), lr=0.05), CrossEntropyLoss(), rng=0
        )
        history = trainer.fit(x, y, epochs=8)
        assert history.losses[-1] < history.losses[0]

    def test_history_records_all_epochs(self):
        x, y = self._toy_data(64)
        model = Sequential(Linear(8, 2, rng=6))
        trainer = Trainer(
            model, SGD(model.parameters(), lr=0.01), CrossEntropyLoss(), rng=0
        )
        history = trainer.fit(x, y, x, y, epochs=3)
        assert len(history.losses) == 3
        assert len(history.test_accuracy) == 3
