"""Tests for activations, pooling, batch norm, dropout, flatten, embedding."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.gradcheck import check_input_gradient

rng = np.random.default_rng(99)


class TestActivations:
    def test_relu_values(self):
        relu = ReLU()
        np.testing.assert_array_equal(
            relu.forward(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_relu_produces_activation_sparsity(self):
        """ReLU output sparsity is the dynamic sparsity PermDNN exploits."""
        relu = ReLU()
        out = relu.forward(rng.normal(size=10000))
        sparsity = (out == 0).mean()
        assert 0.4 < sparsity < 0.6  # ~50% for zero-mean input

    @pytest.mark.parametrize(
        "layer", [ReLU(), LeakyReLU(0.1), Tanh(), Sigmoid()]
    )
    def test_gradcheck(self, layer):
        x = rng.normal(size=(4, 6)) + 0.1  # avoid the ReLU kink at 0
        assert check_input_gradient(layer, x) < 1e-5

    def test_tanh_range(self):
        out = Tanh().forward(rng.normal(size=100) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_sigmoid_extremes_do_not_overflow(self):
        out = Sigmoid().forward(np.array([-1e4, 1e4]))
        assert np.all(np.isfinite(out))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros(3))


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient_routes_to_argmax(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        pool = MaxPool2D(2)
        pool.forward(x)
        dx = pool.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_array_equal(dx[0, 0], expected)

    def test_maxpool_gradcheck(self):
        x = rng.normal(size=(2, 3, 6, 6))
        assert check_input_gradient(MaxPool2D(2), x) < 1e-5

    def test_avgpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_gradcheck(self):
        x = rng.normal(size=(2, 3, 6, 6))
        assert check_input_gradient(AvgPool2D(2), x) < 1e-5

    def test_global_avgpool(self):
        x = rng.normal(size=(2, 3, 4, 4))
        out = GlobalAvgPool2D().forward(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))

    def test_global_avgpool_gradcheck(self):
        x = rng.normal(size=(2, 3, 4, 4))
        assert check_input_gradient(GlobalAvgPool2D(), x) < 1e-5


class TestBatchNorm:
    def test_normalizes_training_batch(self):
        bn = BatchNorm1D(8)
        x = rng.normal(3.0, 2.0, size=(64, 8))
        out = bn.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_2d_per_channel_stats(self):
        bn = BatchNorm2D(3)
        x = rng.normal(1.0, 2.0, size=(8, 3, 5, 5))
        out = bn.forward(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1D(4, momentum=0.0)  # running stats = last batch
        x = rng.normal(5.0, 3.0, size=(128, 4))
        bn.forward(x)
        bn.eval()
        out = bn.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)

    def test_gradcheck_training_mode(self):
        bn = BatchNorm1D(5)
        x = rng.normal(size=(8, 5))
        assert check_input_gradient(bn, x) < 1e-4

    def test_gradcheck_2d(self):
        bn = BatchNorm2D(3)
        x = rng.normal(size=(4, 3, 4, 4))
        assert check_input_gradient(bn, x) < 1e-4

    def test_feature_count_check(self):
        with pytest.raises(ValueError):
            BatchNorm1D(4).forward(np.zeros((2, 5)))


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = rng.normal(size=(4, 8))
        np.testing.assert_array_equal(drop.forward(x), x)

    def test_training_drops_and_rescales(self):
        drop = Dropout(0.5, rng=0)
        x = np.ones((100, 100))
        out = drop.forward(x)
        dropped = (out == 0).mean()
        assert 0.45 < dropped < 0.55
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling

    def test_backward_uses_same_mask(self):
        drop = Dropout(0.5, rng=1)
        x = np.ones((10, 10))
        out = drop.forward(x)
        dx = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(dx == 0, out == 0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestShapeAndEmbedding:
    def test_flatten_round_trip(self):
        flat = Flatten()
        x = rng.normal(size=(3, 4, 5))
        y = flat.forward(x)
        assert y.shape == (3, 20)
        np.testing.assert_array_equal(flat.backward(y), x)

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, rng=0)
        tokens = np.array([[1, 2], [3, 1]])
        out = emb.forward(tokens)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 0], emb.weight.value[1])

    def test_embedding_grad_accumulates_shared_tokens(self):
        emb = Embedding(10, 4, rng=1)
        tokens = np.array([1, 1, 1])
        emb.forward(tokens)
        emb.zero_grad()
        emb.backward(np.ones((3, 4)))
        np.testing.assert_allclose(emb.weight.grad[1], 3.0)

    def test_embedding_range_check(self):
        with pytest.raises(ValueError):
            Embedding(10, 4).forward(np.array([10]))
