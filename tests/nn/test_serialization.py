"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.core import PermutationSpec
from repro.nn import Linear, PermDiagLinear, ReLU, Sequential
from repro.nn.serialization import load_model, save_model


class TestCheckpointing:
    def _model(self, seed=0):
        return Sequential(
            PermDiagLinear(16, 32, p=4, rng=seed),
            ReLU(),
            Linear(32, 4, rng=seed + 1),
        )

    def test_round_trip_preserves_outputs(self, tmp_path):
        model = self._model(seed=0)
        path = str(tmp_path / "ckpt.npz")
        save_model(path, model)
        clone = self._model(seed=99)  # different init
        load_model(path, clone)
        x = np.random.default_rng(3).normal(size=(4, 16))
        clone.eval()
        model.eval()
        np.testing.assert_allclose(clone.forward(x), model.forward(x))

    def test_pd_checkpoint_is_compact(self, tmp_path):
        import os

        pd_path = str(tmp_path / "pd.npz")
        dense_path = str(tmp_path / "dense.npz")
        rng = np.random.default_rng(0)
        pd = Sequential(PermDiagLinear(256, 256, p=8, bias=False, rng=rng))
        # defeat compression with incompressible random values
        dense = Sequential(Linear(256, 256, bias=False, rng=rng))
        save_model(pd_path, pd)
        save_model(dense_path, dense)
        assert os.path.getsize(pd_path) < os.path.getsize(dense_path) / 4

    def test_shape_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_model(path, self._model())
        wrong = Sequential(PermDiagLinear(16, 32, p=2, rng=0))
        with pytest.raises(ValueError):
            load_model(path, wrong)

    def test_structure_survives_checkpoint(self, tmp_path):
        model = self._model(seed=1)
        path = str(tmp_path / "ckpt.npz")
        save_model(path, model)
        clone = self._model(seed=2)
        load_model(path, clone)
        pd = clone[0]
        dense = pd.to_dense_weight()
        assert np.all(dense[~pd.matrix.dense_mask()] == 0)


class TestPlanCheckpointing:
    def _model(self, seed=0):
        return Sequential(
            PermDiagLinear(16, 32, p=4, rng=seed),
            ReLU(),
            PermDiagLinear(32, 8, p=2, rng=seed + 1),
        )

    def test_include_plans_round_trip_preserves_outputs(self, tmp_path):
        model = self._model(seed=0)
        path = str(tmp_path / "ckpt.npz")
        save_model(path, model, include_plans=True)
        clone = self._model(seed=9)
        load_model(path, clone)
        x = np.random.default_rng(1).normal(size=(4, 16))
        np.testing.assert_allclose(
            clone.eval().forward(x), model.eval().forward(x)
        )

    def test_plans_reattach_without_recompute(self, tmp_path, monkeypatch):
        import repro.core.block_perm_diag as mod

        model = self._model(seed=2)
        path = str(tmp_path / "ckpt.npz")
        save_model(path, model, include_plans=True)
        clone = self._model(seed=3)
        old_plans = [clone[0].matrix._get_plan(), clone[2].matrix._get_plan()]

        def boom(*args, **kwargs):
            raise AssertionError("checkpoint load rebuilt an index plan")

        monkeypatch.setattr(mod._IndexPlan, "__init__", boom)
        load_model(path, clone)
        for layer, old_plan in zip((clone[0], clone[2]), old_plans):
            assert layer.matrix._get_plan() is not old_plan
        x = np.random.default_rng(4).normal(size=(4, 16))
        np.testing.assert_allclose(
            clone.eval().forward(x), model.eval().forward(x)
        )

    def test_plan_free_checkpoints_still_load(self, tmp_path):
        model = self._model(seed=5)
        path = str(tmp_path / "ckpt.npz")
        save_model(path, model)  # no plans embedded
        clone = self._model(seed=6)
        load_model(path, clone)
        x = np.random.default_rng(7).normal(size=(2, 16))
        np.testing.assert_allclose(
            clone.eval().forward(x), model.eval().forward(x)
        )

    def test_conv_channel_plane_plans_included(self, tmp_path, monkeypatch):
        """PD convolutions embed their channel-plane plan too -- loading a
        mixed FC+CONV model must not rebuild any plan."""
        import repro.core.block_perm_diag as mod
        from repro.nn import PermDiagConv2D

        def build(seed):
            return Sequential(
                PermDiagConv2D(8, 8, 3, p=4, rng=seed),
                PermDiagLinear(16, 8, p=2, rng=seed + 1),
            )

        model = build(0)
        path = str(tmp_path / "ckpt.npz")
        save_model(path, model, include_plans=True)
        clone = build(5)

        def boom(*args, **kwargs):
            raise AssertionError("checkpoint load rebuilt an index plan")

        monkeypatch.setattr(mod._IndexPlan, "__init__", boom)
        load_model(path, clone)
        np.testing.assert_array_equal(
            clone[0].channel_mask, model[0].channel_mask
        )

    def test_plan_structure_mismatch_rejected(self, tmp_path):
        model = Sequential(PermDiagLinear(16, 16, p=4, rng=0, bias=False))
        path = str(tmp_path / "ckpt.npz")
        save_model(path, model, include_plans=True)
        wrong = Sequential(
            PermDiagLinear(
                16, 16, p=4, rng=1, bias=False,
                spec=PermutationSpec(scheme="random", seed=3),
            )
        )
        with pytest.raises(ValueError):
            load_model(path, wrong)


class TestUnsupportedLayerError:
    def test_dense_layer_message_pins_class_and_index(self):
        from repro.nn.serialization import (
            UnsupportedLayerError,
            model_engine_layers,
        )

        model = Sequential(
            PermDiagLinear(16, 32, p=4, bias=False, rng=0),
            ReLU(),
            Linear(32, 4, rng=1),  # module index 3 (root Sequential is 0)
        )
        with pytest.raises(
            UnsupportedLayerError,
            match=r"^module 3 \(Linear\) is not servable on the PD FC "
            r"engine \(expected PermDiagLinear \+ ReLU/Tanh stacks\)$",
        ) as excinfo:
            model_engine_layers(model)
        assert excinfo.value.index == 3
        assert excinfo.value.layer_type == "Linear"

    def test_is_a_value_error(self):
        """Existing ``except ValueError`` call sites keep catching it."""
        from repro.nn.serialization import UnsupportedLayerError

        assert issubclass(UnsupportedLayerError, ValueError)

    def test_pooling_layer_rejected_not_skipped(self):
        from repro.nn import MaxPool2D
        from repro.nn.serialization import (
            UnsupportedLayerError,
            model_engine_layers,
        )

        model = Sequential(
            PermDiagLinear(16, 16, p=4, bias=False, rng=0),
            MaxPool2D(2),
        )
        with pytest.raises(
            UnsupportedLayerError, match=r"module 2 \(MaxPool2D\)"
        ):
            model_engine_layers(model)

    def test_nonzero_bias_rejected_with_index(self):
        from repro.nn.serialization import (
            UnsupportedLayerError,
            model_engine_layers,
        )

        model = Sequential(PermDiagLinear(16, 16, p=4, bias=True, rng=0))
        model[0].bias.value[:] = 1.0
        with pytest.raises(
            UnsupportedLayerError,
            match=r"module 1 \(PermDiagLinear\) carries a non-zero bias",
        ):
            model_engine_layers(model)

    def test_orphan_activation_rejected_with_index(self):
        from repro.nn import Tanh
        from repro.nn.serialization import (
            UnsupportedLayerError,
            model_engine_layers,
        )

        model = Sequential(Tanh())
        with pytest.raises(
            UnsupportedLayerError,
            match=r"module 1 \(Tanh\) is an activation that does not "
            r"follow a PD FC layer",
        ):
            model_engine_layers(model)


class TestModelEngineLayersAliasing:
    def test_returned_matrices_are_live(self):
        """model_engine_layers hands out the layers' *live* matrices:
        storage aliased with the trainable parameters, no copies."""
        from repro.nn import PermDiagLinear, ReLU, Sequential
        from repro.nn.serialization import model_engine_layers

        model = Sequential(
            PermDiagLinear(16, 32, p=4, bias=False, rng=0),
            ReLU(),
            PermDiagLinear(32, 8, p=4, bias=False, rng=1),
        )
        pd_modules = [
            m for m in model.modules() if isinstance(m, PermDiagLinear)
        ]
        layers = model_engine_layers(model)
        assert len(layers) == len(pd_modules)
        for (matrix, activation), module in zip(layers, pd_modules):
            assert matrix is module.matrix
            assert np.shares_memory(matrix.data, module.weight.value)
        assert [act for _, act in layers] == ["relu", None]
        # an in-place parameter update is immediately visible
        pd_modules[0].weight.value *= 2.0
        np.testing.assert_array_equal(
            layers[0][0].data, pd_modules[0].weight.value
        )
