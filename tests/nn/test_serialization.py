"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.nn import Linear, PermDiagLinear, ReLU, Sequential
from repro.nn.serialization import load_model, save_model


class TestCheckpointing:
    def _model(self, seed=0):
        return Sequential(
            PermDiagLinear(16, 32, p=4, rng=seed),
            ReLU(),
            Linear(32, 4, rng=seed + 1),
        )

    def test_round_trip_preserves_outputs(self, tmp_path):
        model = self._model(seed=0)
        path = str(tmp_path / "ckpt.npz")
        save_model(path, model)
        clone = self._model(seed=99)  # different init
        load_model(path, clone)
        x = np.random.default_rng(3).normal(size=(4, 16))
        clone.eval()
        model.eval()
        np.testing.assert_allclose(clone.forward(x), model.forward(x))

    def test_pd_checkpoint_is_compact(self, tmp_path):
        import os

        pd_path = str(tmp_path / "pd.npz")
        dense_path = str(tmp_path / "dense.npz")
        rng = np.random.default_rng(0)
        pd = Sequential(PermDiagLinear(256, 256, p=8, bias=False, rng=rng))
        # defeat compression with incompressible random values
        dense = Sequential(Linear(256, 256, bias=False, rng=rng))
        save_model(pd_path, pd)
        save_model(dense_path, dense)
        assert os.path.getsize(pd_path) < os.path.getsize(dense_path) / 4

    def test_shape_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_model(path, self._model())
        wrong = Sequential(PermDiagLinear(16, 32, p=2, rng=0))
        with pytest.raises(ValueError):
            load_model(path, wrong)

    def test_structure_survives_checkpoint(self, tmp_path):
        model = self._model(seed=1)
        path = str(tmp_path / "ckpt.npz")
        save_model(path, model)
        clone = self._model(seed=2)
        load_model(path, clone)
        pd = clone[0]
        dense = pd.to_dense_weight()
        assert np.all(dense[~pd.matrix.dense_mask()] == 0)
