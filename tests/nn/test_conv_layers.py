"""Tests for Conv2D / PermDiagConv2D and the im2col machinery."""

import numpy as np
import pytest

from repro.nn import Conv2D, PermDiagConv2D
from repro.nn.functional import col2im, im2col
from repro.nn.gradcheck import check_input_gradient, check_parameter_gradients

rng = np.random.default_rng(77)


def _reference_conv(x, weight, bias, stride, pad):
    """Naive direct convolution for cross-checking."""
    batch, c_in, height, width = x.shape
    c_out, _, kh, kw = weight.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (x.shape[2] - kh) // stride + 1
    ow = (x.shape[3] - kw) // stride + 1
    out = np.zeros((batch, c_out, oh, ow))
    for b in range(batch):
        for co in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = x[
                        b,
                        :,
                        i * stride : i * stride + kh,
                        j * stride : j * stride + kw,
                    ]
                    out[b, co, i, j] = (patch * weight[co]).sum()
    if bias is not None:
        out += bias[None, :, None, None]
    return out


class TestIm2Col:
    def test_shapes(self):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, (oh, ow) = im2col(x, 3, 3, stride=1, pad=0)
        assert (oh, ow) == (6, 6)
        assert cols.shape == (2, 36, 27)

    def test_stride_and_padding(self):
        x = rng.normal(size=(1, 2, 7, 7))
        cols, (oh, ow) = im2col(x, 3, 3, stride=2, pad=1)
        assert (oh, ow) == (4, 4)

    def test_rejects_too_small_input(self):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(1, 1, 2, 2)), 3, 3, 1, 0)

    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), c> == <x, col2im(c)> for random c (adjoint test)."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, _ = im2col(x, 3, 3, stride=2, pad=1)
        c = rng.normal(size=cols.shape)
        lhs = (cols * c).sum()
        rhs = (x * col2im(c, x.shape, 3, 3, stride=2, pad=1)).sum()
        assert lhs == pytest.approx(rhs)


class TestConv2D:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_reference_conv(self, stride, pad):
        layer = Conv2D(3, 4, 3, stride=stride, padding=pad, rng=0)
        x = rng.normal(size=(2, 3, 8, 8))
        expected = _reference_conv(
            x, layer.weight.value, layer.bias.value, stride, pad
        )
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-10)

    def test_non_square_kernel(self):
        layer = Conv2D(2, 3, (1, 3), rng=1)
        x = rng.normal(size=(2, 2, 5, 7))
        expected = _reference_conv(x, layer.weight.value, layer.bias.value, 1, 0)
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-10)

    def test_gradcheck(self):
        layer = Conv2D(2, 3, 3, stride=2, padding=1, rng=2)
        x = rng.normal(size=(2, 2, 6, 6))
        assert check_input_gradient(layer, x) < 1e-5
        assert check_parameter_gradients(layer, x) < 1e-5

    def test_output_shape_helper(self):
        layer = Conv2D(3, 8, 3, stride=2, padding=1)
        assert layer.output_shape(32, 32) == (16, 16)

    def test_input_shape_check(self):
        with pytest.raises(ValueError):
            Conv2D(3, 4, 3).forward(np.zeros((2, 2, 8, 8)))


class TestPermDiagConv2D:
    def test_kernels_off_support_are_zero(self):
        layer = PermDiagConv2D(8, 8, 3, p=4, rng=3)
        mask = layer.channel_mask
        weight = layer._effective_weight()
        for i in range(8):
            for j in range(8):
                if not mask[i, j]:
                    assert np.all(weight[i, j] == 0)

    def test_forward_matches_masked_dense_conv(self):
        layer = PermDiagConv2D(4, 8, 3, p=2, padding=1, rng=4)
        dense = Conv2D(4, 8, 3, padding=1, rng=5)
        dense.weight.value[...] = layer._effective_weight()
        dense.bias.value[...] = layer.bias.value
        x = rng.normal(size=(2, 4, 6, 6))
        np.testing.assert_allclose(layer.forward(x), dense.forward(x), atol=1e-12)

    def test_gradcheck(self):
        layer = PermDiagConv2D(4, 6, 3, p=2, stride=2, padding=1, rng=6)
        x = rng.normal(size=(2, 4, 6, 6))
        assert check_input_gradient(layer, x) < 1e-5
        assert check_parameter_gradients(layer, x) < 1e-5

    def test_structure_preserved_after_adam_steps(self):
        from repro.nn import Adam

        layer = PermDiagConv2D(4, 4, 3, p=2, rng=7)
        mask = layer._mask
        opt = Adam(layer.parameters(), lr=0.01)
        for _ in range(5):
            x = rng.normal(size=(2, 4, 5, 5))
            y = layer.forward(x)
            layer.zero_grad()
            layer.backward(y)
            opt.step()
        assert np.all(layer._effective_weight()[~mask] == 0)

    def test_compression_ratio(self):
        layer = PermDiagConv2D(8, 8, 3, p=4, rng=8)
        assert layer.compression_ratio == pytest.approx(4.0)

    def test_p1_equals_dense_support(self):
        layer = PermDiagConv2D(4, 4, 3, p=1, rng=9)
        assert layer._mask.all()

    def test_to_tensor_round_trip(self):
        layer = PermDiagConv2D(4, 8, 3, p=2, rng=10)
        tensor = layer.to_tensor()
        np.testing.assert_allclose(tensor.to_dense(), layer._effective_weight())

    def test_from_tensor(self):
        from repro.core import BlockPermDiagTensor4D

        tensor = BlockPermDiagTensor4D.random(6, 4, (3, 3), p=2, rng=11)
        layer = PermDiagConv2D.from_tensor(tensor, padding=1)
        np.testing.assert_allclose(layer._effective_weight(), tensor.to_dense())
