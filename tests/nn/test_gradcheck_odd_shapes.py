"""Numerical gradient checks for PD layers on odd shapes.

Exercises :mod:`repro.nn.gradcheck` directly (previously only integration
paths touched it) on non-square and non-multiple-of-``p`` configurations,
where the padded support region must receive no gradient and the
structure-preserving backward (Eqns. (2)-(6)) is easiest to get wrong.
"""

import numpy as np
import pytest

from repro.core import PermutationSpec
from repro.nn import PermDiagConv2D, PermDiagLinear
from repro.nn.gradcheck import check_input_gradient, check_parameter_gradients

TOL = 1e-5

# (in_features, out_features, p): non-square, with p dividing neither,
# one, or both dimensions.
LINEAR_CASES = [
    (7, 5, 3),    # p divides neither
    (12, 10, 4),  # p divides in only
    (9, 8, 3),    # p divides in only (other axis)
    (8, 12, 4),   # p divides both, non-square
]


@pytest.mark.parametrize("n_in,n_out,p", LINEAR_CASES)
class TestPermDiagLinearGradcheck:
    def test_input_gradient(self, n_in, n_out, p):
        layer = PermDiagLinear(
            n_in, n_out, p=p,
            spec=PermutationSpec(scheme="random", seed=0), rng=0,
        )
        x = np.random.default_rng(1).normal(size=(3, n_in))
        assert check_input_gradient(layer, x) < TOL

    def test_parameter_gradients(self, n_in, n_out, p):
        layer = PermDiagLinear(
            n_in, n_out, p=p,
            spec=PermutationSpec(scheme="random", seed=0), rng=0,
        )
        x = np.random.default_rng(2).normal(size=(3, n_in))
        assert check_parameter_gradients(layer, x) < TOL

    def test_padded_slots_receive_no_gradient(self, n_in, n_out, p):
        layer = PermDiagLinear(n_in, n_out, p=p, rng=0)
        x = np.random.default_rng(3).normal(size=(4, n_in))
        layer.zero_grad()
        y = layer.forward(x)
        layer.backward(np.ones_like(y))
        support = layer.matrix.support_mask()
        assert not np.any(layer.weight.grad[~support])


# (in_channels, out_channels, kernel, p): non-square channel planes with
# channels not divisible by p.
CONV_CASES = [
    (5, 3, 3, 2),  # p divides neither channel count
    (6, 4, 2, 4),  # p divides neither; kernel 2x2
    (4, 6, 3, 2),  # p divides both, non-square plane
]


@pytest.mark.parametrize("c_in,c_out,k,p", CONV_CASES)
class TestPermDiagConv2DGradcheck:
    def _layer(self, c_in, c_out, k, p):
        return PermDiagConv2D(
            c_in, c_out, k, p=p, padding=1,
            spec=PermutationSpec(scheme="random", seed=0), rng=0,
        )

    def test_input_gradient(self, c_in, c_out, k, p):
        layer = self._layer(c_in, c_out, k, p)
        x = np.random.default_rng(1).normal(size=(2, c_in, 4, 4))
        assert check_input_gradient(layer, x) < TOL

    def test_parameter_gradients(self, c_in, c_out, k, p):
        layer = self._layer(c_in, c_out, k, p)
        x = np.random.default_rng(2).normal(size=(2, c_in, 4, 4))
        assert check_parameter_gradients(layer, x) < TOL

    def test_masked_kernels_receive_no_gradient(self, c_in, c_out, k, p):
        layer = self._layer(c_in, c_out, k, p)
        x = np.random.default_rng(3).normal(size=(2, c_in, 4, 4))
        layer.zero_grad()
        y = layer.forward(x)
        layer.backward(np.ones_like(y))
        assert not np.any(layer.weight.grad[~layer._mask])
