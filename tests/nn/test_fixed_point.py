"""Fixed-point encode/decode and scale validation (Sec. V quantization)."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.nn.quantization import (
    FixedPointFormat,
    InvalidFixedPointScaleError,
    choose_fixed_point_format,
    decode_fixed_point,
    encode_fixed_point,
    quantize_fixed_point,
)


@dataclass
class _BadFormat:
    """Duck-typed format with an out-of-contract scale.

    ``FixedPointFormat`` itself cannot produce these scales; the entry
    points accept any object with the format attributes, so the
    validation must live there.
    """

    scale: float
    total_bits: int = 16
    frac_bits: int = 12
    min_value: float = -1.0
    max_value: float = 1.0


@pytest.mark.parametrize("scale", [0.0, -4.0, float("inf"), float("nan")])
def test_bad_scales_raise_typed_error(scale):
    values = np.array([0.25, -0.5])
    fmt = _BadFormat(scale=scale)
    with pytest.raises(InvalidFixedPointScaleError):
        quantize_fixed_point(values, fmt)
    with pytest.raises(InvalidFixedPointScaleError):
        encode_fixed_point(values, fmt)
    with pytest.raises(InvalidFixedPointScaleError):
        decode_fixed_point(np.array([1, 2], dtype=np.int16), fmt)


def test_invalid_scale_error_is_a_value_error():
    # Callers that already catch ValueError keep working.
    assert issubclass(InvalidFixedPointScaleError, ValueError)


def test_encode_decode_round_trip_equals_quantize():
    rng = np.random.default_rng(0)
    values = rng.normal(scale=0.3, size=257)
    fmt = choose_fixed_point_format(values)
    codes = encode_fixed_point(values, fmt)
    assert codes.dtype == np.int16
    np.testing.assert_array_equal(
        decode_fixed_point(codes, fmt), quantize_fixed_point(values, fmt)
    )


def test_encode_saturates_at_format_range():
    fmt = FixedPointFormat(total_bits=8, frac_bits=4)
    codes = encode_fixed_point(np.array([1e9, -1e9]), fmt)
    # Saturation clips to the 8-bit format's own code range, not int16's.
    np.testing.assert_array_equal(codes, [127, -128])
    decoded = decode_fixed_point(codes, fmt)
    np.testing.assert_array_equal(decoded, [fmt.max_value, fmt.min_value])


def test_encode_rejects_formats_wider_than_int16():
    with pytest.raises(ValueError, match="16-bit"):
        encode_fixed_point(np.zeros(3), FixedPointFormat(24, 12))


def test_decode_is_exact_for_power_of_two_scales():
    fmt = FixedPointFormat(16, 13)
    codes = np.arange(-(2**15), 2**15, 997, dtype=np.int16)
    decoded = decode_fixed_point(codes, fmt)
    assert decoded.dtype == np.float64
    np.testing.assert_array_equal(decoded * fmt.scale, codes.astype(np.float64))
