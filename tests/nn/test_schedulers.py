"""Tests for learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import SGD
from repro.nn.parameter import Parameter
from repro.nn.schedulers import CosineLR, StepLR


def _optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(2))], lr=lr)


class TestStepLR:
    def test_decays_on_schedule(self):
        opt = _optimizer(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        rates = [sched.step() for _ in range(4)]
        assert rates == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=1, gamma=0.0)

    def test_updates_optimizer_in_place(self):
        opt = _optimizer(0.5)
        StepLR(opt, step_size=1, gamma=0.5).step()
        assert opt.lr == pytest.approx(0.25)


class TestCosineLR:
    def test_endpoints(self):
        opt = _optimizer(1.0)
        sched = CosineLR(opt, total_epochs=10, min_lr=0.1)
        rates = [sched.step() for _ in range(10)]
        assert rates[-1] == pytest.approx(0.1)
        assert rates[0] < 1.0

    def test_monotone_decreasing(self):
        opt = _optimizer(1.0)
        sched = CosineLR(opt, total_epochs=8)
        rates = [sched.step() for _ in range(8)]
        assert all(b <= a for a, b in zip(rates, rates[1:]))

    def test_clamps_after_horizon(self):
        opt = _optimizer(1.0)
        sched = CosineLR(opt, total_epochs=3, min_lr=0.2)
        for _ in range(6):
            last = sched.step()
        assert last == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineLR(_optimizer(), total_epochs=0)

    def test_training_with_schedule_converges(self):
        """End to end: cosine-annealed SGD still drives a PD layer down."""
        from repro.nn import CrossEntropyLoss, PermDiagLinear

        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 16))
        y = (x[:, 0] > 0).astype(int)
        layer = PermDiagLinear(16, 2, p=2, rng=1)
        opt = SGD(layer.parameters(), lr=0.5)
        sched = CosineLR(opt, total_epochs=30)
        loss_fn = CrossEntropyLoss()
        first = last = None
        for _ in range(30):
            logits = layer.forward(x)
            loss = loss_fn.forward(logits, y)
            first = first if first is not None else loss
            opt.zero_grad()
            layer.backward(loss_fn.backward())
            opt.step()
            sched.step()
            last = loss
        assert last < first * 0.5
