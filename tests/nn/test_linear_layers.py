"""Tests for Linear, PermDiagLinear, MaskedLinear and BlockCirculantLinear."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PermutationSpec
from repro.nn import (
    BlockCirculantLinear,
    Linear,
    MaskedLinear,
    PermDiagLinear,
)
from repro.nn.gradcheck import check_input_gradient, check_parameter_gradients

rng = np.random.default_rng(1234)


class TestLinear:
    def test_forward_matches_matmul(self):
        layer = Linear(6, 4, rng=0)
        x = rng.normal(size=(3, 6))
        expected = x @ layer.weight.value.T + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_no_bias(self):
        layer = Linear(6, 4, bias=False, rng=0)
        assert layer.bias is None
        x = rng.normal(size=(2, 6))
        np.testing.assert_allclose(layer.forward(x), x @ layer.weight.value.T)

    def test_input_shape_check(self):
        with pytest.raises(ValueError):
            Linear(6, 4).forward(np.zeros((2, 5)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Linear(6, 4).backward(np.zeros((2, 4)))

    def test_gradcheck(self):
        layer = Linear(5, 7, rng=1)
        x = rng.normal(size=(4, 5))
        assert check_input_gradient(layer, x) < 1e-6
        assert check_parameter_gradients(layer, x) < 1e-6

    def test_grad_accumulates_across_calls(self):
        layer = Linear(3, 2, rng=2)
        x = rng.normal(size=(2, 3))
        layer.forward(x)
        layer.backward(np.ones((2, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((2, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestPermDiagLinear:
    def test_forward_matches_dense_weight(self):
        layer = PermDiagLinear(12, 8, p=4, rng=3)
        x = rng.normal(size=(5, 12))
        expected = x @ layer.to_dense_weight().T + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-12)

    @given(st.integers(1, 6), st.sampled_from(["natural", "random"]))
    @settings(max_examples=15, deadline=None)
    def test_gradcheck_over_block_sizes(self, p, scheme):
        layer = PermDiagLinear(
            12, 9, p=p, spec=PermutationSpec(scheme, seed=0), rng=4
        )
        x = np.random.default_rng(5).normal(size=(3, 12))
        assert check_input_gradient(layer, x) < 1e-5
        assert check_parameter_gradients(layer, x) < 1e-5

    def test_equivalent_to_masked_dense_layer(self):
        """PD layer == dense layer masked to the PD support: identical
        forward values and identical gradient flow (cross-check of the
        structure-preserving training rule)."""
        pd = PermDiagLinear(10, 8, p=2, rng=6)
        mask = pd.matrix.dense_mask()
        masked = MaskedLinear(10, 8, mask, rng=7)
        masked.weight.value[...] = pd.to_dense_weight()
        masked.bias.value[...] = pd.bias.value

        x = rng.normal(size=(4, 10))
        np.testing.assert_allclose(pd.forward(x), masked.forward(x), atol=1e-12)

        dy = rng.normal(size=(4, 8))
        pd.zero_grad()
        masked.zero_grad()
        dx_pd = pd.backward(dy)
        dx_masked = masked.backward(dy)
        np.testing.assert_allclose(dx_pd, dx_masked, atol=1e-12)
        # masked dense grad restricted to support == packed PD grad
        from repro.core import BlockPermutedDiagonalMatrix

        packed = BlockPermutedDiagonalMatrix.from_dense(
            masked.weight.grad, 2, ks=pd.ks
        )
        np.testing.assert_allclose(pd.weight.grad, packed.data, atol=1e-12)

    def test_structure_preserved_after_sgd_steps(self):
        from repro.nn import SGD

        layer = PermDiagLinear(9, 6, p=3, rng=8)
        opt = SGD(layer.parameters(), lr=0.05, momentum=0.9)
        mask = layer.matrix.dense_mask()
        for _ in range(10):
            x = rng.normal(size=(4, 9))
            y = layer.forward(x)
            layer.zero_grad()
            layer.backward(y)  # arbitrary upstream gradient
            opt.step()
        dense = layer.to_dense_weight()
        assert np.all(dense[~mask] == 0)

    def test_compression_ratio(self):
        layer = PermDiagLinear(16, 8, p=4, rng=9)
        assert layer.compression_ratio == pytest.approx(4.0)

    def test_parameter_count_is_compressed(self):
        layer = PermDiagLinear(16, 8, p=4, bias=False, rng=10)
        assert layer.num_parameters() == 16 * 8 // 4

    def test_from_matrix_round_trip(self):
        from repro.core import approximate_pd

        dense = rng.normal(size=(8, 12))
        approx = approximate_pd(dense, p=4)
        layer = PermDiagLinear.from_matrix(approx, bias=np.arange(8.0))
        np.testing.assert_allclose(layer.to_dense_weight(), approx.to_dense())
        np.testing.assert_allclose(layer.bias.value, np.arange(8.0))

    def test_from_matrix_non_divisible_shape_random_spec(self):
        """Regression: from_matrix used to rebuild with a fresh layer and
        poke ``ks``/``shape`` behind validation, breaking non-multiple-of-p
        shapes and non-natural permutation specs."""
        from repro.core import BlockPermutedDiagonalMatrix

        matrix = BlockPermutedDiagonalMatrix.random(
            (10, 13), 4, spec=PermutationSpec(scheme="random", seed=3), rng=3
        )
        layer = PermDiagLinear.from_matrix(matrix, bias=np.ones(10))
        assert layer.in_features == 13 and layer.out_features == 10
        np.testing.assert_array_equal(layer.ks, matrix.ks)
        np.testing.assert_allclose(layer.to_dense_weight(), matrix.to_dense())
        x = rng.normal(size=(4, 13))
        np.testing.assert_allclose(
            layer.forward(x), x @ matrix.to_dense().T + 1.0, atol=1e-12
        )

    def test_from_matrix_gradcheck_non_divisible(self):
        from repro.core import BlockPermutedDiagonalMatrix

        matrix = BlockPermutedDiagonalMatrix.random(
            (9, 11), 4, spec=PermutationSpec(scheme="random", seed=5), rng=5
        )
        layer = PermDiagLinear.from_matrix(matrix, bias=np.zeros(9))
        x = np.random.default_rng(6).normal(size=(3, 11))
        assert check_input_gradient(layer, x) < 1e-5
        assert check_parameter_gradients(layer, x) < 1e-5

    def test_from_matrix_shares_storage_with_parameter(self):
        from repro.core import BlockPermutedDiagonalMatrix

        matrix = BlockPermutedDiagonalMatrix.random((8, 8), 4, rng=7)
        layer = PermDiagLinear.from_matrix(matrix)
        assert layer.weight.value is layer.matrix.data
        layer.weight.value += 1.0  # optimizer-style in-place update
        np.testing.assert_allclose(layer.matrix.data, layer.weight.value)
        assert layer.bias is None

    def test_construction_pins_float64_under_reduced_default(self):
        """Regression: under a process float32 value-dtype default the layer
        used to build a float32 matrix whose storage could not alias the
        float64 Parameter buffer -- the ``matrix.data = weight.value``
        adoption silently cast-copied, optimizer updates never reached the
        served weights, and models trained to random accuracy."""
        from repro.core import set_default_value_dtype

        set_default_value_dtype("float32")
        try:
            layer = PermDiagLinear(12, 8, p=4, rng=0)
        finally:
            set_default_value_dtype("float64")
        assert layer.matrix.value_dtype == "float64"
        assert layer.weight.value is layer.matrix.data
        layer.weight.value += 1.0  # optimizer-style in-place update
        np.testing.assert_allclose(layer.matrix.data, layer.weight.value)

    def test_from_matrix_rejects_reduced_precision_storage(self):
        from repro.core import BlockPermutedDiagonalMatrix

        matrix = BlockPermutedDiagonalMatrix.random(
            (8, 8), 4, rng=9
        ).with_value_dtype("float32")
        with pytest.raises(TypeError, match="float64"):
            PermDiagLinear.from_matrix(matrix)

    def test_from_matrix_rejects_bad_bias(self):
        from repro.core import BlockPermutedDiagonalMatrix

        matrix = BlockPermutedDiagonalMatrix.random((8, 8), 4, rng=8)
        with pytest.raises(ValueError):
            PermDiagLinear.from_matrix(matrix, bias=np.zeros(5))

    def test_from_matrix_structure_preserved_through_training(self):
        from repro.core import BlockPermutedDiagonalMatrix
        from repro.nn import SGD

        matrix = BlockPermutedDiagonalMatrix.random(
            (10, 13), 4, spec=PermutationSpec(scheme="random", seed=9), rng=9
        )
        layer = PermDiagLinear.from_matrix(matrix, bias=np.zeros(10))
        mask = layer.matrix.dense_mask()
        opt = SGD(layer.parameters(), lr=0.05)
        for _ in range(5):
            x = rng.normal(size=(4, 13))
            y = layer.forward(x)
            layer.zero_grad()
            layer.backward(y)
            opt.step()
        dense = layer.to_dense_weight()
        assert np.all(dense[~mask] == 0)
        assert np.any(dense != 0)

    def test_optimizer_update_reflected_in_matrix(self):
        """The Parameter and the structured matrix share storage."""
        layer = PermDiagLinear(6, 6, p=2, rng=11)
        layer.weight.value += 1.0
        x = np.eye(6)
        np.testing.assert_allclose(
            layer.forward(x) - layer.bias.value, layer.to_dense_weight().T
        )

    def test_input_shape_check(self):
        with pytest.raises(ValueError):
            PermDiagLinear(6, 4, p=2).forward(np.zeros((2, 5)))


class TestMaskedLinear:
    def test_mask_shape_check(self):
        with pytest.raises(ValueError):
            MaskedLinear(4, 3, np.ones((4, 4), dtype=bool))

    def test_pruned_weights_stay_zero_through_training(self):
        from repro.nn import SGD

        mask = rng.random((6, 8)) > 0.6
        layer = MaskedLinear(8, 6, mask, rng=12)
        opt = SGD(layer.parameters(), lr=0.1)
        for _ in range(5):
            x = rng.normal(size=(3, 8))
            y = layer.forward(x)
            layer.zero_grad()
            layer.backward(y)
            opt.step()
        assert np.all(layer.weight.value[~mask] * 1.0 == 0)

    def test_gradcheck(self):
        mask = rng.random((5, 7)) > 0.5
        layer = MaskedLinear(7, 5, mask, rng=13)
        x = rng.normal(size=(3, 7))
        assert check_input_gradient(layer, x) < 1e-6
        assert check_parameter_gradients(layer, x) < 1e-6

    def test_density(self):
        mask = np.zeros((4, 5), dtype=bool)
        mask[0, :2] = True
        layer = MaskedLinear(5, 4, mask)
        assert layer.nnz == 2
        assert layer.density == pytest.approx(0.1)


class TestBlockCirculantLinear:
    def test_forward_matches_dense_circulant(self):
        layer = BlockCirculantLinear(12, 8, k=4, rng=14)
        x = rng.normal(size=(5, 12))
        expected = x @ layer.to_dense_weight().T + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-10)

    def test_forward_with_padding(self):
        layer = BlockCirculantLinear(10, 7, k=4, rng=15)
        x = rng.normal(size=(3, 10))
        expected = x @ layer.to_dense_weight().T + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-10)

    @given(st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_gradcheck_over_block_sizes(self, k):
        layer = BlockCirculantLinear(8, 8, k=k, rng=16)
        x = np.random.default_rng(17).normal(size=(3, 8))
        assert check_input_gradient(layer, x) < 1e-5
        assert check_parameter_gradients(layer, x) < 1e-5

    def test_compression_ratio_matches_pd_with_same_block(self):
        circ = BlockCirculantLinear(16, 16, k=4, bias=False, rng=18)
        pd = PermDiagLinear(16, 16, p=4, bias=False, rng=19)
        assert circ.weight.size == pd.weight.size

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            BlockCirculantLinear(8, 8, k=0)

    def test_dense_weight_blocks_are_circulant(self):
        layer = BlockCirculantLinear(8, 8, k=4, rng=20)
        dense = layer.to_dense_weight()
        block = dense[:4, :4]
        for r in range(4):
            for c in range(4):
                assert block[r, c] == pytest.approx(block[(r + 1) % 4, (c + 1) % 4])
