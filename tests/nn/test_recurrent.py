"""Tests for the LSTM with dense and permuted-diagonal weights."""

import numpy as np
import pytest

from repro.core import PermutationSpec
from repro.nn import LSTM, LSTMCell


rng = np.random.default_rng(2024)


def _numeric_input_grad(lstm, x, seed, eps=1e-6):
    num = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        orig = x[idx]
        x[idx] = orig + eps
        plus = (lstm.forward(x) * seed).sum()
        x[idx] = orig - eps
        minus = (lstm.forward(x) * seed).sum()
        x[idx] = orig
        num[idx] = (plus - minus) / (2 * eps)
    return num


class TestLSTMCell:
    def test_has_eight_weight_matrices(self):
        """Paper Table III: '8 FC weight matrices for each LSTM'."""
        cell = LSTMCell(8, 8, rng=0)
        assert len(cell.weight_matrices) == 8

    def test_pd_cell_stores_one_pth_of_dense(self):
        dense = LSTMCell(16, 16, rng=1)
        compressed = LSTMCell(16, 16, p=8, rng=2)
        assert compressed.stored_weights * 8 == dense.stored_weights

    def test_step_shapes(self):
        cell = LSTMCell(6, 10, rng=3)
        h, c, cache = cell.step(
            np.zeros((4, 6)), np.zeros((4, 10)), np.zeros((4, 10))
        )
        assert h.shape == (4, 10) and c.shape == (4, 10)

    def test_forget_bias_initialized(self):
        cell = LSTMCell(4, 4, forget_bias=1.0, rng=4)
        np.testing.assert_allclose(cell.biases["f"].value, 1.0)
        np.testing.assert_allclose(cell.biases["i"].value, 0.0)

    def test_gate_ranges(self):
        cell = LSTMCell(4, 6, rng=5)
        x = rng.normal(size=(3, 4)) * 5
        h, c, cache = cell.step(x, rng.normal(size=(3, 6)), rng.normal(size=(3, 6)))
        for gate in ("i", "f", "o"):
            assert np.all((cache[gate] >= 0) & (cache[gate] <= 1))
        assert np.all(np.abs(cache["g"]) <= 1)


class TestLSTMGradients:
    @pytest.mark.parametrize("p", [None, 2, 4])
    def test_input_gradcheck(self, p):
        lstm = LSTM(4, 8, p=p, rng=6)
        x = rng.normal(size=(2, 4, 4))
        y = lstm.forward(x)
        seed = np.random.default_rng(7).normal(size=y.shape)
        lstm.zero_grad()
        dx = lstm.backward(seed)
        num = _numeric_input_grad(lstm, x.copy(), seed)
        err = np.max(np.abs(dx - num) / (np.abs(dx) + np.abs(num) + 1e-8))
        assert err < 1e-5

    def test_parameter_gradcheck_spot(self):
        lstm = LSTM(3, 5, p=None, rng=8)
        x = rng.normal(size=(2, 3, 3))
        y = lstm.forward(x)
        seed = np.random.default_rng(9).normal(size=y.shape)
        lstm.zero_grad()
        lstm.backward(seed)
        param = lstm.parameters()[0]
        analytic = param.grad.copy()
        eps = 1e-6
        numeric = np.zeros_like(param.value)
        flat_v, flat_n = param.value.reshape(-1), numeric.reshape(-1)
        for idx in range(flat_v.size):
            orig = flat_v[idx]
            flat_v[idx] = orig + eps
            plus = (lstm.forward(x) * seed).sum()
            flat_v[idx] = orig - eps
            minus = (lstm.forward(x) * seed).sum()
            flat_v[idx] = orig
            flat_n[idx] = (plus - minus) / (2 * eps)
        err = np.max(
            np.abs(analytic - numeric) / (np.abs(analytic) + np.abs(numeric) + 1e-8)
        )
        assert err < 1e-5

    def test_pd_structure_preserved_through_training(self):
        from repro.nn import Adam
        from repro.nn.layers.recurrent import _PDOp

        lstm = LSTM(8, 8, p=4, spec=PermutationSpec("natural"), rng=10)
        opt = Adam(lstm.parameters(), lr=0.01)
        for _ in range(5):
            x = rng.normal(size=(2, 3, 8))
            y = lstm.forward(x)
            lstm.zero_grad()
            lstm.backward(y)
            opt.step()
        for op in lstm.cell.weight_matrices:
            assert isinstance(op, _PDOp)
            dense = op.matrix.to_dense()
            assert np.all(dense[~op.matrix.dense_mask()] == 0)


class TestLSTMSequence:
    def test_output_shape(self):
        lstm = LSTM(5, 7, rng=11)
        out = lstm.forward(rng.normal(size=(3, 6, 5)))
        assert out.shape == (3, 6, 7)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            LSTM(5, 7).forward(np.zeros((3, 5)))

    def test_initial_state_passthrough(self):
        lstm = LSTM(4, 4, rng=12)
        x = rng.normal(size=(2, 3, 4))
        h0 = rng.normal(size=(2, 4))
        c0 = rng.normal(size=(2, 4))
        out_with = lstm.forward(x, h0=h0, c0=c0)
        out_without = lstm.forward(x)
        assert not np.allclose(out_with, out_without)

    def test_final_state_exposed(self):
        lstm = LSTM(4, 6, rng=13)
        out = lstm.forward(rng.normal(size=(2, 5, 4)))
        h, c = lstm.final_state
        np.testing.assert_allclose(h, out[:, -1])

    def test_state_grad_exposed_after_backward(self):
        lstm = LSTM(4, 6, rng=14)
        x = rng.normal(size=(2, 5, 4))
        y = lstm.forward(x)
        lstm.zero_grad()
        lstm.backward(np.ones_like(y))
        dh0, dc0 = lstm.state_grad
        assert dh0.shape == (2, 6) and dc0.shape == (2, 6)

    def test_learns_to_remember_first_token(self):
        """End-to-end sanity: the LSTM can carry information across time."""
        from repro.nn import Adam, CrossEntropyLoss, Linear

        steps, width = 5, 8
        gen = np.random.default_rng(0)
        lstm = LSTM(2, width, rng=15)
        head = Linear(width, 2, rng=16)
        loss_fn = CrossEntropyLoss()
        opt = Adam(lstm.parameters() + head.parameters(), lr=0.02)
        final_loss = None
        for _ in range(120):
            labels = gen.integers(0, 2, size=16)
            x = np.zeros((16, steps, 2))
            x[np.arange(16), 0, labels] = 1.0  # class shown only at t=0
            out = lstm.forward(x)
            logits = head.forward(out[:, -1])
            final_loss = loss_fn.forward(logits, labels)
            opt.zero_grad()
            dlast = head.backward(loss_fn.backward())
            dy = np.zeros_like(out)
            dy[:, -1] = dlast
            lstm.backward(dy)
            opt.step()
        assert final_loss < 0.2
