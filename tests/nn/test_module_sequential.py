"""Tests for the Module base class and Sequential container."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1D,
    Dropout,
    Linear,
    PermDiagLinear,
    ReLU,
    Sequential,
)
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class TestParameterDiscovery:
    def test_direct_parameters(self):
        layer = Linear(4, 3)
        names = {p.name for p in layer.parameters()}
        assert names == {"weight", "bias"}

    def test_nested_modules(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        assert len(model.parameters()) == 4

    def test_parameters_in_dicts_and_lists(self):
        class Weird(Module):
            def __init__(self):
                super().__init__()
                self.stuff = {"a": Parameter(np.zeros(2))}
                self.more = [Parameter(np.zeros(3)), Linear(2, 2)]

        assert len(Weird().parameters()) == 4

    def test_shared_parameter_counted_once(self):
        shared = Parameter(np.zeros(4))

        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.a = shared
                self.b = shared

        assert len(Shared().parameters()) == 1

    def test_zero_grad_clears_all(self):
        model = Sequential(Linear(4, 4), ReLU(), Linear(4, 2))
        for param in model.parameters():
            param.grad += 1.0
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())

    def test_num_parameters_counts_stored_only(self):
        dense = Linear(16, 16, bias=False)
        compressed = PermDiagLinear(16, 16, p=4, bias=False)
        assert dense.num_parameters() == 256
        assert compressed.num_parameters() == 64


class TestTrainEvalMode:
    def test_propagates_to_children(self):
        model = Sequential(Linear(4, 4), Dropout(0.5), BatchNorm1D(4))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_eval_changes_dropout_behaviour(self):
        model = Sequential(Dropout(0.9, rng=0))
        x = np.ones((4, 10))
        model.eval()
        np.testing.assert_array_equal(model.forward(x), x)


class TestSequential:
    def test_forward_chains(self):
        model = Sequential(Linear(4, 4, rng=0), ReLU())
        x = np.random.default_rng(1).normal(size=(2, 4))
        out = model.forward(x)
        assert np.all(out >= 0)

    def test_backward_reverses(self):
        model = Sequential(Linear(4, 6, rng=2), ReLU(), Linear(6, 3, rng=3))
        x = np.random.default_rng(4).normal(size=(2, 4))
        y = model.forward(x)
        dx = model.backward(np.ones_like(y))
        assert dx.shape == x.shape

    def test_append_and_len(self):
        model = Sequential()
        model.append(Linear(2, 2)).append(ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_state_dict_round_trip(self):
        model = Sequential(Linear(4, 4, rng=5), ReLU(), Linear(4, 2, rng=6))
        state = model.state_dict()
        clone = Sequential(Linear(4, 4, rng=7), ReLU(), Linear(4, 2, rng=8))
        clone.load_state_dict(state)
        x = np.random.default_rng(9).normal(size=(3, 4))
        np.testing.assert_allclose(model.forward(x), clone.forward(x))

    def test_load_state_dict_shape_check(self):
        model = Sequential(Linear(4, 4))
        other = Sequential(Linear(4, 5))
        with pytest.raises(ValueError):
            other.load_state_dict(model.state_dict())

    def test_load_state_dict_count_check(self):
        model = Sequential(Linear(4, 4))
        with pytest.raises(ValueError):
            model.load_state_dict({})
