"""Tests for conv lowering, batched FC execution, and Case 2/3 engine runs."""

import numpy as np
import pytest

from repro.core import BlockPermDiagTensor4D, BlockPermutedDiagonalMatrix
from repro.hw import EngineConfig, PEConfig, PermDNNEngine
from repro.hw.conv_lowering import run_conv_layer
from repro.nn import PermDiagConv2D


def _small_engine(n_pe=4, n_mul=2, n_acc=8):
    return PermDNNEngine(
        EngineConfig(n_pe=n_pe, pe=PEConfig(n_mul=n_mul, n_acc=n_acc))
    )


class TestConvLowering:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1)])
    def test_matches_software_convolution(self, stride, pad):
        rng = np.random.default_rng(0)
        tensor = BlockPermDiagTensor4D.random(8, 4, (3, 3), p=2, rng=rng)
        x = rng.normal(size=(4, 6, 6))
        engine = _small_engine()
        result = run_conv_layer(engine, tensor, x, stride=stride, padding=pad)
        layer = PermDiagConv2D.from_tensor(
            tensor, stride=stride, padding=pad, bias=np.zeros(8)
        )
        expected = layer.forward(x[None])[0]
        np.testing.assert_allclose(result.output, expected, atol=1e-10)

    def test_input_shape_check(self):
        tensor = BlockPermDiagTensor4D.random(4, 4, (3, 3), p=2, rng=0)
        with pytest.raises(ValueError):
            run_conv_layer(_small_engine(), tensor, np.zeros((3, 6, 6)))

    def test_too_small_spatial_input(self):
        tensor = BlockPermDiagTensor4D.random(4, 4, (5, 5), p=2, rng=0)
        with pytest.raises(ValueError):
            run_conv_layer(_small_engine(), tensor, np.zeros((4, 3, 3)))

    def test_zero_channels_skipped(self):
        # enough channels that per-column cycles dominate (Case 1)
        rng = np.random.default_rng(1)
        tensor = BlockPermDiagTensor4D.random(32, 32, (3, 3), p=2, rng=rng)
        engine = _small_engine()
        dense_in = rng.normal(size=(32, 4, 4))
        sparse_in = dense_in.copy()
        sparse_in[::2] = 0.0  # zero half the channels
        dense_res = run_conv_layer(engine, tensor, dense_in)
        sparse_res = run_conv_layer(engine, tensor, sparse_in)
        assert sparse_res.skipped_columns > dense_res.skipped_columns
        assert sparse_res.cycles < dense_res.cycles

    def test_positions_counted(self):
        tensor = BlockPermDiagTensor4D.random(4, 4, (3, 3), p=2, rng=2)
        result = run_conv_layer(
            _small_engine(), tensor, np.ones((4, 6, 6)), stride=1, padding=0
        )
        assert result.positions == 16  # 4x4 output

    def test_macs_scale_with_compression(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 5, 5))
        engine = _small_engine()
        dense_macs = run_conv_layer(
            engine, BlockPermDiagTensor4D.random(8, 8, (3, 3), p=1, rng=4), x
        ).macs
        pd_macs = run_conv_layer(
            engine, BlockPermDiagTensor4D.random(8, 8, (3, 3), p=4, rng=4), x
        ).macs
        assert pd_macs == pytest.approx(dense_macs / 4, rel=0.01)


class TestBatchedFC:
    def test_outputs_match_matmat(self):
        rng = np.random.default_rng(0)
        matrix = BlockPermutedDiagonalMatrix.random((16, 24), 4, rng=rng)
        x_batch = rng.normal(size=(5, 24))
        engine = _small_engine()
        outputs, cycles = engine.run_fc_batch(matrix, x_batch)
        np.testing.assert_allclose(outputs, matrix.matmat(x_batch), atol=1e-12)
        assert cycles > 0

    def test_pipeline_fill_paid_once(self):
        rng = np.random.default_rng(1)
        matrix = BlockPermutedDiagonalMatrix.random((16, 16), 4, rng=rng)
        engine = _small_engine()
        x = rng.normal(size=(3, 16))
        __, batch_cycles = engine.run_fc_batch(matrix, x)
        singles = sum(
            engine.run_fc_layer(matrix, xi).compute_cycles
            + engine.run_fc_layer(matrix, xi).writeback_cycles
            for xi in x
        )
        assert batch_cycles == engine.config.pipeline_stages + singles

    def test_shape_check(self):
        matrix = BlockPermutedDiagonalMatrix.random((8, 8), 2, rng=0)
        with pytest.raises(ValueError):
            _small_engine().run_fc_batch(matrix, np.zeros((2, 9)))

    def test_sparser_batch_is_faster(self):
        rng = np.random.default_rng(2)
        matrix = BlockPermutedDiagonalMatrix.random((32, 64), 4, rng=rng)
        engine = _small_engine()
        dense = rng.normal(size=(4, 64))
        sparse = dense * (rng.random((4, 64)) < 0.2)
        __, dense_cycles = engine.run_fc_batch(matrix, dense)
        __, sparse_cycles = engine.run_fc_batch(matrix, sparse)
        assert sparse_cycles < dense_cycles


class TestCase2And3OnEngine:
    def test_case2_layer_runs_and_verifies(self):
        """n_acc < rows/PE: chunked Case 2 execution, functionally exact."""
        engine = PermDNNEngine(
            EngineConfig(n_pe=2, pe=PEConfig(n_mul=2, n_acc=8))
        )
        rng = np.random.default_rng(0)
        matrix = BlockPermutedDiagonalMatrix.random((64, 32), 2, rng=rng)
        x = rng.normal(size=32)
        result = engine.run_fc_layer(matrix, x)
        assert result.case == 2
        np.testing.assert_allclose(result.output, matrix.matvec(x), atol=1e-12)
        # Case 2 costs more cycles/column than an n_acc-rich Case 1 engine
        rich = PermDNNEngine(EngineConfig(n_pe=2, pe=PEConfig(n_mul=2, n_acc=32)))
        assert result.compute_cycles >= rich.run_fc_layer(matrix, x).compute_cycles

    def test_case3_layer_runs_and_verifies(self):
        """rows/PE < p*n_mul: multi-column Case 3 execution."""
        engine = PermDNNEngine(
            EngineConfig(n_pe=8, pe=PEConfig(n_mul=8, n_acc=16))
        )
        rng = np.random.default_rng(1)
        matrix = BlockPermutedDiagonalMatrix.random((32, 64), 16, rng=rng)
        x = rng.normal(size=64)
        result = engine.run_fc_layer(matrix, x)
        assert result.case == 3
        np.testing.assert_allclose(result.output, matrix.matvec(x), atol=1e-12)
        # multiple columns retire per cycle
        assert result.compute_cycles < result.nonzero_columns
