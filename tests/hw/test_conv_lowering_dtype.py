"""Conv-lowering dtype regressions (the silent float32->float64 upcast).

Same shape as ``tests/core/test_numba_dtype.py``: warm the plan outside
the observation window, then spy on ``np.zeros``/``np.empty`` and assert
that a float32 lowering never materializes a float64 temporary.
"""

import numpy as np
import pytest

from repro.core import BlockPermDiagTensor4D
from repro.hw import EngineConfig, PEConfig, PermDNNEngine
from repro.hw.conv_lowering import offset_matrices, run_conv_layer


def _small_engine(n_pe=4, n_mul=2, n_acc=8):
    return PermDNNEngine(
        EngineConfig(n_pe=n_pe, pe=PEConfig(n_mul=n_mul, n_acc=n_acc))
    )


def _case(seed=0):
    rng = np.random.default_rng(seed)
    tensor = BlockPermDiagTensor4D.random(8, 4, (3, 3), p=2, rng=rng)
    x = rng.normal(size=(4, 6, 6))
    return tensor, x


class TestLoweringHonorsValueDtype:
    def test_no_float64_materializes_for_float32_lowering(self, monkeypatch):
        tensor, x = _case()
        engine = _small_engine()
        # Warm the channel-plane index plan (int64 arrays) outside the
        # observation window: only steady-state allocations count.
        run_conv_layer(engine, tensor, x, padding=1, value_dtype="float32")
        allocated: list[np.dtype] = []
        real_zeros, real_empty = np.zeros, np.empty

        def spy(real):
            def wrapper(*args, **kwargs):
                out = real(*args, **kwargs)
                allocated.append(out.dtype)
                return out

            return wrapper

        monkeypatch.setattr(np, "zeros", spy(real_zeros))
        monkeypatch.setattr(np, "empty", spy(real_empty))
        result = run_conv_layer(
            engine, tensor, x, padding=1, value_dtype="float32"
        )
        assert result.output.dtype == np.float32
        floats = [dt for dt in allocated if np.issubdtype(dt, np.floating)]
        assert floats, "expected the wrappers to observe float allocations"
        assert all(dt == np.float32 for dt in floats), floats

    def test_float32_output_matches_float64_reference(self):
        tensor, x = _case(1)
        engine = _small_engine()
        ref = run_conv_layer(engine, tensor, x, padding=1)
        assert ref.output.dtype == np.float64
        f32 = run_conv_layer(engine, tensor, x, padding=1, value_dtype="float32")
        np.testing.assert_allclose(
            f32.output, ref.output, rtol=1e-5, atol=1e-5
        )
        # cycle accounting is dtype-independent (same zero pattern)
        assert f32.cycles == ref.cycles
        assert f32.macs == ref.macs

    def test_int16_lowering_accumulates_in_float64(self):
        tensor, x = _case(2)
        engine = _small_engine()
        ref = run_conv_layer(engine, tensor, x)
        q = run_conv_layer(engine, tensor, x, value_dtype="int16")
        # int16 storage dequantizes to float64 accumulation (PR 8 policy)
        assert q.output.dtype == np.float64
        np.testing.assert_allclose(q.output, ref.output, rtol=1e-3, atol=1e-3)

    def test_offset_family_shares_one_plan(self):
        from repro.debug import sanitize

        tensor, x = _case(3)
        run_conv_layer(_small_engine(), tensor, x)  # warm the plane's plan
        with sanitize() as s:
            matrices = offset_matrices(tensor, value_dtype="float32")
            for matrix in matrices:
                matrix.matvec(np.zeros(matrix.shape[1], dtype=np.float32))
            assert s.stats.plan_builds == 0, (
                "reduced-precision offset family must ride the already-"
                "built channel-plane plan"
            )
        assert len(matrices) == 9
        assert all(m.value_dtype == "float32" for m in matrices)
