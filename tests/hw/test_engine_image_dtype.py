"""Engine images (format v2) persist per-layer value dtypes."""

import numpy as np
import pytest

from repro.core import BlockPermutedDiagonalMatrix
from repro.hw.engine import export_engine_image, load_engine_image
from repro.nn.quantization import FixedPointFormat


def _stack():
    return [
        (
            BlockPermutedDiagonalMatrix.random(
                (64, 48), 8, rng=1, value_dtype="float32"
            ),
            "relu",
        ),
        (
            BlockPermutedDiagonalMatrix.random(
                (32, 64),
                8,
                rng=2,
                value_dtype="int16",
                fixed_point=FixedPointFormat(16, 13),
            ),
            None,
        ),
        (BlockPermutedDiagonalMatrix.random((16, 32), 8, rng=3), "tanh"),
    ]


def test_image_round_trip_preserves_value_dtypes(tmp_path):
    path = tmp_path / "image.npz"
    layers = _stack()
    export_engine_image(path, layers)
    loaded = load_engine_image(path)
    assert len(loaded) == len(layers)
    for (orig, orig_act), (mat, act) in zip(layers, loaded):
        assert act == orig_act
        assert mat.value_dtype == orig.value_dtype
        assert mat.fixed_point == orig.fixed_point
        assert mat.data.dtype == orig.data.dtype
        np.testing.assert_array_equal(mat.data, orig.data)


def test_image_round_trip_products_bit_match(tmp_path):
    path = tmp_path / "image.npz"
    layers = _stack()
    export_engine_image(path, layers)
    loaded = load_engine_image(path)
    x = np.random.default_rng(0).normal(size=(5, 48))
    for (orig, _), (mat, _) in zip(layers, loaded):
        if orig.shape[1] != 48:
            x = np.random.default_rng(0).normal(size=(5, orig.shape[1]))
        np.testing.assert_array_equal(mat.matmat(x), orig.matmat(x))


def test_v1_images_load_as_float64(tmp_path):
    # Fabricate a v1 archive: same keys minus the dtype tags.
    path = tmp_path / "v1.npz"
    matrix = BlockPermutedDiagonalMatrix.random((32, 32), 8, rng=4)
    payload = {
        "image_version": np.int64(1),
        "num_layers": np.int64(1),
        "layer0_q": matrix.to_q(),
        "layer0_ks": np.asarray(matrix.ks),
        "layer0_p": np.int64(matrix.p),
        "layer0_shape": np.asarray(matrix.shape, dtype=np.int64),
        "layer0_activation": np.str_(""),
        "layer0_backend": np.str_(""),
        "layer0_plan": np.frombuffer(
            matrix._get_plan().to_bytes(), dtype=np.uint8
        ),
    }
    np.savez_compressed(path, **payload)
    [(loaded, activation)] = load_engine_image(path)
    assert activation is None
    assert loaded.value_dtype == "float64"
    np.testing.assert_array_equal(loaded.data, matrix.data)


def test_future_image_version_rejected(tmp_path):
    path = tmp_path / "future.npz"
    np.savez_compressed(
        path, image_version=np.int64(99), num_layers=np.int64(0)
    )
    with pytest.raises(ValueError, match="version 99"):
        load_engine_image(path)
