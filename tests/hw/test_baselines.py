"""Tests for the EIE and CirCNN baseline simulators."""

import numpy as np
import pytest
from scipy import sparse

from repro.hw import TABLE_VII_WORKLOADS, PermDNNEngine, make_workload_instance
from repro.hw.baselines import (
    CirCNNConfig,
    CirCNNSimulator,
    EIEConfig,
    EIESimulator,
)


def _dense_block_circulant(first_columns):
    mb, nb, k = first_columns.shape
    dense = np.zeros((mb * k, nb * k))
    for bi in range(mb):
        for bj in range(nb):
            w = first_columns[bi, bj]
            for r in range(k):
                for c in range(k):
                    dense[bi * k + r, bj * k + c] = w[(r - c) % k]
    return dense


class TestEIEFunctional:
    def test_output_matches_sparse_matvec(self):
        rng = np.random.default_rng(0)
        weight = EIESimulator.prune_reference((64, 128), 0.1, rng=rng)
        x = rng.normal(size=128) * (rng.random(128) > 0.5)
        result = EIESimulator(EIEConfig.projected_28nm()).run_fc_layer(weight, x)
        np.testing.assert_allclose(result.output, weight @ x)

    def test_input_shape_check(self):
        weight = EIESimulator.prune_reference((8, 8), 0.5, rng=0)
        with pytest.raises(ValueError):
            EIESimulator(EIEConfig.projected_28nm()).run_fc_layer(
                weight, np.zeros(4)
            )

    def test_needs_clock(self):
        with pytest.raises(ValueError):
            EIESimulator(EIEConfig())  # no clock set

    def test_prune_reference_density(self):
        weight = EIESimulator.prune_reference((100, 100), 0.1, rng=0)
        assert weight.nnz == 1000


class TestEIECycleModel:
    def test_zero_input_skipped(self):
        weight = EIESimulator.prune_reference((64, 64), 0.2, rng=0)
        sim = EIESimulator(EIEConfig.projected_28nm())
        x = np.zeros(64)
        result = sim.run_fc_layer(weight, x)
        assert result.cycles == 0 and result.macs == 0

    def test_load_imbalance_at_least_one(self):
        weight = EIESimulator.prune_reference((256, 256), 0.1, rng=1)
        sim = EIESimulator(EIEConfig.projected_28nm())
        result = sim.run_fc_layer(weight, np.ones(256))
        assert result.load_imbalance >= 1.0

    def test_skewed_matrix_suffers_imbalance(self):
        """All non-zeros on rows owned by one PE: cycles ~= total work,
        not total work / n_pe."""
        # every nnz sits on a row that is 0 mod 64 -> all work lands on PE 0
        rows = (np.arange(512) // 64) * 64
        cols = np.arange(512) % 64
        weight = sparse.csc_matrix(
            (np.ones(512), (rows, cols)), shape=(512, 64)
        )
        sim = EIESimulator(EIEConfig.projected_28nm())
        balanced = EIESimulator.prune_reference((128, 64), 512 / (128 * 64), rng=2)
        skewed_res = sim.run_fc_layer(weight, np.ones(64))
        balanced_res = sim.run_fc_layer(balanced, np.ones(64))
        assert skewed_res.cycles > 2 * balanced_res.cycles

    def test_deeper_fifo_hides_imbalance(self):
        weight = EIESimulator.prune_reference((512, 512), 0.1, rng=3)
        x = np.ones(512)
        shallow = EIESimulator(EIEConfig.projected_28nm(fifo_depth=1)).run_fc_layer(
            weight, x
        )
        deep = EIESimulator(EIEConfig.projected_28nm(fifo_depth=64)).run_fc_layer(
            weight, x
        )
        assert deep.cycles <= shallow.cycles

    def test_pointer_overhead_costs_cycles(self):
        weight = EIESimulator.prune_reference((256, 256), 0.1, rng=4)
        x = np.ones(256)
        with_ptr = EIESimulator(
            EIEConfig.projected_28nm(pointer_overhead_cycles=1)
        ).run_fc_layer(weight, x)
        without = EIESimulator(
            EIEConfig.projected_28nm(pointer_overhead_cycles=0)
        ).run_fc_layer(weight, x)
        assert with_ptr.cycles > without.cycles

    def test_storage_charges_index_bits(self):
        """EIE stores 8 bits per weight (4 value + 4 index): double the
        4-bit PD cost -- the Fig. 4 storage argument."""
        weight = EIESimulator.prune_reference((64, 64), 0.25, rng=5)
        sim = EIESimulator(EIEConfig.projected_28nm())
        result = sim.run_fc_layer(weight, np.ones(64))
        assert result.storage_bits >= weight.nnz * 8


class TestFig12Comparison:
    """The headline EIE-vs-PermDNN ratios (Fig. 12) at paper configuration."""

    @pytest.fixture(scope="class")
    def ratios(self):
        engine = PermDNNEngine()
        eie = EIESimulator(EIEConfig.projected_28nm())
        out = {}
        for workload in TABLE_VII_WORKLOADS[:3]:
            matrix, x = make_workload_instance(workload, rng=0)
            perm = engine.performance(
                engine.run_fc_layer(matrix, x), (workload.m, workload.n)
            )
            pruned = EIESimulator.prune_reference(
                (workload.m, workload.n), workload.weight_density, rng=1
            )
            ref = eie.performance(
                eie.run_fc_layer(pruned, x), (workload.m, workload.n)
            )
            out[workload.name] = (
                perm.speedup_over(ref),
                perm.area_efficiency_ratio(ref),
                perm.energy_efficiency_ratio(ref),
            )
        return out

    def test_speedup_in_paper_band(self, ratios):
        speedups = [v[0] for v in ratios.values()]
        assert 3.0 < min(speedups) and max(speedups) < 5.2  # paper: 3.3-4.8

    def test_area_efficiency_in_paper_band(self, ratios):
        areas = [v[1] for v in ratios.values()]
        assert 5.3 < min(areas) and max(areas) < 9.2  # paper: 5.9-8.5

    def test_energy_efficiency_in_paper_band(self, ratios):
        energies = [v[2] for v in ratios.values()]
        assert 2.5 < min(energies) and max(energies) < 4.4  # paper: 2.8-4.0

    def test_fc8_sees_largest_speedup(self, ratios):
        """Paper ordering: Alex-FC8 (p=4, smallest layer) benefits most."""
        assert ratios["Alex-FC8"][0] == max(v[0] for v in ratios.values())


class TestCirCNNFunctional:
    def test_matches_dense_block_circulant(self):
        rng = np.random.default_rng(0)
        first_columns = rng.normal(size=(3, 5, 8))
        x = rng.normal(size=40)
        result = CirCNNSimulator(CirCNNConfig.projected_28nm()).run_fc_layer(
            first_columns, x
        )
        dense = _dense_block_circulant(first_columns)
        np.testing.assert_allclose(result.output, dense @ x, atol=1e-10)

    def test_short_input_zero_padded(self):
        rng = np.random.default_rng(1)
        first_columns = rng.normal(size=(2, 2, 4))
        result = CirCNNSimulator(CirCNNConfig.projected_28nm()).run_fc_layer(
            first_columns, rng.normal(size=6)
        )
        assert result.output.shape == (8,)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            CirCNNSimulator(CirCNNConfig.projected_28nm()).run_fc_layer(
                np.zeros((2, 2)), np.zeros(4)
            )

    def test_rejects_too_long_input(self):
        with pytest.raises(ValueError):
            CirCNNSimulator(CirCNNConfig.projected_28nm()).run_fc_layer(
                np.zeros((2, 2, 4)), np.zeros(9)
            )


class TestCirCNNCycleModel:
    def test_cannot_exploit_input_sparsity(self):
        """The PermDNN argument: zeros in x don't help CirCNN at all."""
        rng = np.random.default_rng(2)
        first_columns = rng.normal(size=(4, 4, 8))
        sim = CirCNNSimulator(CirCNNConfig.projected_28nm())
        dense_x = rng.normal(size=32)
        sparse_x = dense_x * (rng.random(32) < 0.3)
        assert (
            sim.run_fc_layer(first_columns, dense_x).cycles
            == sim.run_fc_layer(first_columns, sparse_x).cycles
        )
        assert sim.run_fc_layer(first_columns, sparse_x).input_sparsity_wasted > 0.5

    def test_complex_ops_cost_4x_real(self):
        rng = np.random.default_rng(3)
        first_columns = rng.normal(size=(2, 2, 8))
        result = CirCNNSimulator(CirCNNConfig.projected_28nm()).run_fc_layer(
            first_columns, rng.normal(size=16)
        )
        assert result.real_mult_ops == 4 * result.complex_mults

    def test_weight_fft_precompute_saves_cycles(self):
        rng = np.random.default_rng(4)
        first_columns = rng.normal(size=(4, 4, 16))
        x = rng.normal(size=64)
        pre = CirCNNSimulator(
            CirCNNConfig(n_real_mul=256, clock_ghz=0.32, fft_precomputed_weights=True)
        ).run_fc_layer(first_columns, x)
        live = CirCNNSimulator(
            CirCNNConfig(n_real_mul=256, clock_ghz=0.32, fft_precomputed_weights=False)
        ).run_fc_layer(first_columns, x)
        assert pre.cycles < live.cycles

    def test_needs_at_least_one_complex_lane(self):
        with pytest.raises(ValueError):
            CirCNNSimulator(CirCNNConfig(n_real_mul=2, clock_ghz=0.2))

    def test_permdnn_beats_circnn_with_equal_multipliers(self):
        """Mechanism check (Sec. III-H): same real-multiplier budget, same
        compression -> PermDNN wins by ~4x arithmetic + input sparsity."""
        workload = TABLE_VII_WORKLOADS[0]  # 35.8% input density
        matrix, x = make_workload_instance(workload, rng=0)
        engine = PermDNNEngine()
        perm = engine.performance(
            engine.run_fc_layer(matrix, x), (workload.m, workload.n)
        )
        n_real = engine.config.peak_macs_per_cycle  # same multiplier budget
        circ = CirCNNSimulator(
            CirCNNConfig(n_real_mul=n_real, clock_ghz=engine.config.clock_ghz)
        )
        mb, nb = workload.m // 8, workload.n // 8
        first_columns = np.random.default_rng(1).normal(size=(mb, nb, 8))
        circ_perf = circ.performance(
            circ.run_fc_layer(first_columns, x), (workload.m, workload.n)
        )
        assert perm.time_s < circ_perf.time_s / 4
