"""Tests for Case 1/2/3 column scheduling (Sec. IV-D, Fig. 10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.scheduler import (
    classify_case,
    cycles_per_column,
    layer_cycles,
    schedule_trace,
)


class TestCaseClassification:
    def test_case1(self):
        # n_rowpe >= p*n_mul and n_acc >= n_rowpe
        assert classify_case(n_rowpe=128, p=10, n_mul=8, n_acc=128) == 1

    def test_case2(self):
        assert classify_case(n_rowpe=256, p=10, n_mul=8, n_acc=128) == 2

    def test_case3(self):
        # n_rowpe < p*n_mul: very sparse model, PEs under-filled
        assert classify_case(n_rowpe=16, p=10, n_mul=8, n_acc=128) == 3

    def test_paper_fig10a_is_case1(self):
        """Fig. 10(a): 2 PEs, n_mul=1, n_acc=4, 8x8, p=2 -> Case 1."""
        assert classify_case(n_rowpe=4, p=2, n_mul=1, n_acc=4) == 1

    def test_paper_fig10b_is_case2(self):
        """Fig. 10(b): p=3 -> n_rowpe=4 >= 3*1, n_acc=4 ... the paper runs
        this as the accumulator-constrained schedule."""
        # 8x8 with p=3 pads to 9 rows -> ~4-5 rows per PE; with n_acc=4 and
        # chunking needed the schedule follows Case 2 mechanics
        assert classify_case(n_rowpe=6, p=3, n_mul=1, n_acc=4) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            classify_case(0, 1, 1, 1)


class TestCyclesPerColumn:
    def test_case1_formula(self):
        """Fig. 10(a): 4 rows per PE, p=2, 1 mul -> 2 cycles per column."""
        schedule = cycles_per_column(4, 2, 1, 4)
        assert schedule.case == 1
        assert schedule.cycles_per_column == 2.0

    def test_case1_alexfc6(self):
        # 4096/32 = 128 rows, p=10, 8 muls -> ceil(12.8/8) = 2 cycles
        schedule = cycles_per_column(128, 10, 8, 128)
        assert schedule.cycles_per_column == 2.0

    def test_case2_chunks_and_refetch(self):
        schedule = cycles_per_column(256, 8, 8, 128)
        assert schedule.case == 2
        assert schedule.passes == 2  # 256 rows in chunks of 128
        # each chunk: ceil(128/8/8) = 2 cycles -> 4 total
        assert schedule.cycles_per_column == 4.0

    def test_case2_uneven_last_chunk(self):
        schedule = cycles_per_column(200, 8, 8, 128)
        assert schedule.passes == 2
        # chunk1: ceil(128/64)=2, chunk2: ceil(72/64)... 72/8 rows /8 = 1.125 -> 2
        assert schedule.cycles_per_column == 2.0 + 2.0

    def test_case3_concurrent_columns(self):
        schedule = cycles_per_column(16, 10, 8, 128)
        assert schedule.case == 3
        assert schedule.columns_per_cycle == 5  # floor(80/16)
        assert schedule.cycles_per_column == pytest.approx(0.2)

    @given(
        st.integers(1, 512),
        st.integers(1, 16),
        st.integers(1, 16),
        st.integers(1, 512),
    )
    @settings(max_examples=60)
    def test_throughput_never_exceeds_multipliers(self, n_rowpe, p, n_mul, n_acc):
        """Per cycle a PE retires at most n_mul weights (physical bound)."""
        n_acc = max(n_acc, n_mul)
        n_acc = (n_acc // n_mul) * n_mul  # keep config valid
        schedule = cycles_per_column(n_rowpe, p, n_mul, n_acc)
        nnz_per_column = n_rowpe / p
        if schedule.case == 3:
            # columns_per_cycle columns retire per single cycle
            weights_per_cycle = nnz_per_column * schedule.columns_per_cycle
        else:
            weights_per_cycle = nnz_per_column / schedule.cycles_per_column
        assert weights_per_cycle <= n_mul + 1e-9


class TestLayerCycles:
    def test_zero_skipping_reduces_cycles(self):
        dense = layer_cycles(1024, 128, 8, 8, 128)
        sparse = layer_cycles(300, 128, 8, 8, 128)
        assert sparse < dense

    def test_linear_in_nonzero_columns(self):
        base = layer_cycles(100, 128, 8, 8, 128, pipeline_stages=0)
        double = layer_cycles(200, 128, 8, 8, 128, pipeline_stages=0)
        assert double == 2 * base

    def test_pipeline_fill_added_once(self):
        with_fill = layer_cycles(10, 128, 8, 8, 128, pipeline_stages=5)
        without = layer_cycles(10, 128, 8, 8, 128, pipeline_stages=0)
        assert with_fill - without == 5

    def test_case3_ceils_concurrent_columns(self):
        # n_rowpe=16, p=10, n_mul=8 -> Case 3 with floor(80/16)=5 columns
        # per cycle; 7 non-zero columns need ceil(7/5)=2 cycles.
        assert layer_cycles(7, 16, 10, 8, 128, pipeline_stages=0) == 2


class TestScheduleTrace:
    def test_fig10a_trace(self):
        """Fig. 10(a): 8x8, p=2, 2 PEs (4 rows each), 1 mul, 4 accs:
        2 cycles per column, continuous processing."""
        trace = schedule_trace(columns=8, n_rowpe=4, p=2, n_mul=1, n_acc=4)
        # 8 columns x 2 non-zeros per column per PE = 16 events
        assert len(trace) == 16
        assert max(e["cycle"] for e in trace) == 15  # continuous, no gaps
        assert all(e["pass"] == 0 for e in trace)

    def test_fig10b_trace_has_multiple_passes(self):
        """Case 2 re-walks the columns once per accumulator chunk."""
        trace = schedule_trace(columns=4, n_rowpe=6, p=3, n_mul=1, n_acc=4)
        passes = {e["pass"] for e in trace}
        assert passes == {0, 1}
        # pass 1 revisits column 0 after pass 0 finished all columns
        last_pass0 = max(e["cycle"] for e in trace if e["pass"] == 0)
        first_pass1 = min(e["cycle"] for e in trace if e["pass"] == 1)
        assert first_pass1 > last_pass0

    def test_trace_covers_every_block_row_once_per_column(self):
        trace = schedule_trace(columns=2, n_rowpe=8, p=2, n_mul=2, n_acc=8)
        col0_rows = [r for e in trace if e["column"] == 0 for r in e["rows"]]
        assert len(col0_rows) == 4  # 8 rows / p=2 -> 4 non-zeros
