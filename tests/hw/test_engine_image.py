"""Engine images: persisted plans reload without index recomputation."""

import numpy as np
import pytest

import repro.core.block_perm_diag as mod
from repro.core import BlockPermutedDiagonalMatrix
from repro.hw import PermDNNEngine, export_engine_image, load_engine_image


def _layers(rng):
    m1 = BlockPermutedDiagonalMatrix.random((64, 48), 4, rng=rng)
    m2 = BlockPermutedDiagonalMatrix.random((30, 64), 8, rng=rng)  # padded m
    return [(m1, "relu"), (m2, None)]


class TestEngineImage:
    def test_round_trip_matches_original_network(self, tmp_path):
        rng = np.random.default_rng(0)
        layers = _layers(rng)
        x = rng.normal(size=48)
        engine = PermDNNEngine()
        reference, _ = engine.run_network(layers, x)

        path = str(tmp_path / "image.npz")
        export_engine_image(path, layers)
        loaded = load_engine_image(path)
        assert len(loaded) == 2
        assert [activation for _, activation in loaded] == ["relu", None]
        output, results = engine.run_network(loaded, x)
        np.testing.assert_allclose(output, reference, atol=1e-12)
        assert len(results) == 2

    def test_loaded_image_never_rebuilds_plans(self, tmp_path, monkeypatch):
        """The acceptance property: a serialized plan reloads and executes
        in the engine without any index arithmetic being recomputed."""
        rng = np.random.default_rng(1)
        layers = _layers(rng)
        x = rng.normal(size=48)
        path = str(tmp_path / "image.npz")
        export_engine_image(path, layers)

        def boom(*args, **kwargs):
            raise AssertionError("engine image load rebuilt an index plan")

        monkeypatch.setattr(mod._IndexPlan, "__init__", boom)
        loaded = load_engine_image(path)
        engine = PermDNNEngine()
        output, _ = engine.run_network(loaded, x)
        # bit-accurate mode exercises like(), which must also reuse the plan
        engine.run_fc_layer(loaded[0][0], x, bit_accurate=True)
        assert output.shape == (30,)

    def test_loaded_matrices_preserve_structure(self, tmp_path):
        rng = np.random.default_rng(2)
        layers = _layers(rng)
        path = str(tmp_path / "image.npz")
        export_engine_image(path, layers)
        for (orig, _), (loaded, _) in zip(layers, load_engine_image(path)):
            assert loaded.shape == orig.shape and loaded.p == orig.p
            np.testing.assert_array_equal(loaded.ks, orig.ks)
            np.testing.assert_allclose(loaded.to_dense(), orig.to_dense())

    def test_metadata_plan_mismatch_rejected(self, tmp_path):
        rng = np.random.default_rng(4)
        path = str(tmp_path / "image.npz")
        export_engine_image(path, _layers(rng))
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["layer0_shape"] = np.asarray([63, 48], dtype=np.int64)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="does not match"):
            load_engine_image(path)

    def test_version_mismatch_rejected(self, tmp_path):
        rng = np.random.default_rng(3)
        path = str(tmp_path / "image.npz")
        export_engine_image(path, _layers(rng))
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["image_version"] = np.int64(999)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_engine_image(path)
