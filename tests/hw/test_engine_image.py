"""Engine images: persisted plans reload without index recomputation."""

import numpy as np
import pytest

import repro.core.block_perm_diag as mod
from repro.core import BlockPermutedDiagonalMatrix
from repro.hw import (
    EngineImageBackendError,
    PermDNNEngine,
    export_engine_image,
    load_engine_image,
)


def _layers(rng):
    m1 = BlockPermutedDiagonalMatrix.random((64, 48), 4, rng=rng)
    m2 = BlockPermutedDiagonalMatrix.random((30, 64), 8, rng=rng)  # padded m
    return [(m1, "relu"), (m2, None)]


class TestEngineImage:
    def test_round_trip_matches_original_network(self, tmp_path):
        rng = np.random.default_rng(0)
        layers = _layers(rng)
        x = rng.normal(size=48)
        engine = PermDNNEngine()
        reference, _ = engine.run_network(layers, x)

        path = str(tmp_path / "image.npz")
        export_engine_image(path, layers)
        loaded = load_engine_image(path)
        assert len(loaded) == 2
        assert [activation for _, activation in loaded] == ["relu", None]
        output, results = engine.run_network(loaded, x)
        np.testing.assert_allclose(output, reference, atol=1e-12)
        assert len(results) == 2

    def test_loaded_image_never_rebuilds_plans(self, tmp_path, monkeypatch):
        """The acceptance property: a serialized plan reloads and executes
        in the engine without any index arithmetic being recomputed."""
        rng = np.random.default_rng(1)
        layers = _layers(rng)
        x = rng.normal(size=48)
        path = str(tmp_path / "image.npz")
        export_engine_image(path, layers)

        def boom(*args, **kwargs):
            raise AssertionError("engine image load rebuilt an index plan")

        monkeypatch.setattr(mod._IndexPlan, "__init__", boom)
        loaded = load_engine_image(path)
        engine = PermDNNEngine()
        output, _ = engine.run_network(loaded, x)
        # bit-accurate mode exercises like(), which must also reuse the plan
        engine.run_fc_layer(loaded[0][0], x, bit_accurate=True)
        assert output.shape == (30,)

    def test_loaded_matrices_preserve_structure(self, tmp_path):
        rng = np.random.default_rng(2)
        layers = _layers(rng)
        path = str(tmp_path / "image.npz")
        export_engine_image(path, layers)
        for (orig, _), (loaded, _) in zip(layers, load_engine_image(path)):
            assert loaded.shape == orig.shape and loaded.p == orig.p
            np.testing.assert_array_equal(loaded.ks, orig.ks)
            np.testing.assert_allclose(loaded.to_dense(), orig.to_dense())

    def test_metadata_plan_mismatch_rejected(self, tmp_path):
        rng = np.random.default_rng(4)
        path = str(tmp_path / "image.npz")
        export_engine_image(path, _layers(rng))
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["layer0_shape"] = np.asarray([63, 48], dtype=np.int64)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="does not match"):
            load_engine_image(path)

    def test_version_mismatch_rejected(self, tmp_path):
        rng = np.random.default_rng(3)
        path = str(tmp_path / "image.npz")
        export_engine_image(path, _layers(rng))
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["image_version"] = np.int64(999)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_engine_image(path)


class TestImageBackendMetadata:
    def _pinned_image(self, tmp_path, backend):
        rng = np.random.default_rng(5)
        layers = _layers(rng)
        layers[0][0].set_backend(backend)
        path = str(tmp_path / "image.npz")
        export_engine_image(path, layers)
        return path

    def test_pinned_backend_round_trips(self, tmp_path):
        path = self._pinned_image(tmp_path, "gather")
        loaded = load_engine_image(path)
        assert loaded[0][0].backend == "gather"
        assert loaded[1][0].backend is None

    def test_unavailable_backend_raises_typed_error(self, tmp_path, monkeypatch):
        path = self._pinned_image(tmp_path, "csr")
        monkeypatch.setattr(mod, "_scipy_sparse", None)  # csr now unavailable
        with pytest.raises(EngineImageBackendError, match="csr"):
            load_engine_image(path)

    def test_unknown_backend_raises_typed_error(self, tmp_path):
        path = self._pinned_image(tmp_path, "gather")
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["layer0_backend"] = np.str_("bogus")
        np.savez_compressed(path, **payload)
        with pytest.raises(EngineImageBackendError, match="bogus"):
            load_engine_image(path)

    def test_fallback_warns_and_uses_default_backend(
        self, tmp_path, monkeypatch
    ):
        path = self._pinned_image(tmp_path, "csr")
        monkeypatch.setattr(mod, "_scipy_sparse", None)
        with pytest.warns(RuntimeWarning, match="falling back"):
            loaded = load_engine_image(path, missing_backend="fallback")
        assert loaded[0][0].backend is None
        # the fallback image still executes (on the default backend)
        rng = np.random.default_rng(6)
        PermDNNEngine().run_network(loaded, rng.normal(size=48))

    def test_invalid_missing_backend_value_rejected(self, tmp_path):
        path = self._pinned_image(tmp_path, "gather")
        with pytest.raises(ValueError, match="missing_backend"):
            load_engine_image(path, missing_backend="ignore")

    def test_images_without_backend_key_still_load(self, tmp_path):
        """Backward compatibility: images written before the backend key
        existed (same format version) load with no pinned backend."""
        rng = np.random.default_rng(7)
        path = str(tmp_path / "image.npz")
        export_engine_image(path, _layers(rng))
        with np.load(path) as archive:
            payload = {
                key: archive[key]
                for key in archive.files
                if not key.endswith("_backend")
            }
        np.savez_compressed(path, **payload)
        loaded = load_engine_image(path)
        assert all(matrix.backend is None for matrix, _ in loaded)
