"""Tests for SRAM/FIFO models, performance reports and workloads."""

import numpy as np
import pytest

from repro.hw import TABLE_VII_WORKLOADS, Workload, make_workload_instance
from repro.hw.fifo import FIFO
from repro.hw.perf import PerformanceReport, equivalent_dense_ops
from repro.hw.sram import SRAMBank


class TestSRAMBank:
    def test_capacity_math(self):
        bank = SRAMBank("w", banks=16, width=32, depth=2048)
        assert bank.total_bits == 16 * 32 * 2048
        assert bank.total_kilobytes == pytest.approx(128.0)
        assert bank.capacity_words(4) == 16 * 32 * 2048 // 4

    def test_check_fits(self):
        bank = SRAMBank("w", 1, 32, 4)
        bank.check_fits(4, 32)
        with pytest.raises(ValueError):
            bank.check_fits(5, 32)

    def test_access_counting(self):
        bank = SRAMBank("a", 1, 64, 16)
        bank.read(3)
        bank.write(2)
        assert bank.stats.reads == 3
        assert bank.stats.writes == 2
        assert bank.stats.total == 5
        bank.reset_stats()
        assert bank.stats.total == 0

    def test_invalid_word_bits(self):
        with pytest.raises(ValueError):
            SRAMBank("w", 1, 32, 4).capacity_words(0)


class TestFIFO:
    def test_push_pop_order(self):
        fifo = FIFO(4)
        for item in (1, 2, 3):
            assert fifo.push(item)
        assert fifo.pop() == 1
        assert fifo.pop() == 2

    def test_full_push_stalls(self):
        fifo = FIFO(2)
        fifo.push(1)
        fifo.push(2)
        assert not fifo.push(3)
        assert fifo.push_stalls == 1

    def test_empty_pop_stalls(self):
        fifo = FIFO(2)
        assert fifo.pop() is None
        assert fifo.pop_stalls == 1

    def test_peak_occupancy(self):
        fifo = FIFO(8)
        for item in range(5):
            fifo.push(item)
        fifo.pop()
        assert fifo.peak_occupancy == 5

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            FIFO(0)


class TestPerformanceReport:
    def _report(self, cycles=1000, clock=1.2, power=0.7, area=8.85):
        return PerformanceReport(
            name="x",
            cycles=cycles,
            clock_ghz=clock,
            compressed_ops=2_000_000,
            dense_ops=20_000_000,
            power_w=power,
            area_mm2=area,
        )

    def test_time_and_gops(self):
        report = self._report()
        assert report.time_s == pytest.approx(1000 / 1.2e9)
        assert report.gops == pytest.approx(2_000_000 / report.time_s / 1e9)

    def test_equivalent_gops_uses_dense_ops(self):
        report = self._report()
        assert report.equivalent_gops == pytest.approx(10 * report.gops)

    def test_efficiencies(self):
        report = self._report()
        assert report.gops_per_watt == pytest.approx(report.equivalent_gops / 0.7)
        assert report.gops_per_mm2 == pytest.approx(report.equivalent_gops / 8.85)

    def test_area_unknown_raises(self):
        report = PerformanceReport("x", 10, 1.0, 10, 10, 1.0, None)
        with pytest.raises(ValueError):
            __ = report.gops_per_mm2

    def test_speedup_is_time_ratio(self):
        fast = self._report(cycles=500)
        slow = self._report(cycles=1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_energy(self):
        report = self._report()
        assert report.energy_j == pytest.approx(0.7 * report.time_s)

    def test_equivalent_dense_ops(self):
        assert equivalent_dense_ops(4096, 9216) == 2 * 4096 * 9216


class TestWorkloads:
    def test_table7_has_six_layers(self):
        assert len(TABLE_VII_WORKLOADS) == 6
        names = [w.name for w in TABLE_VII_WORKLOADS]
        assert names == [
            "Alex-FC6", "Alex-FC7", "Alex-FC8", "NMT-1", "NMT-2", "NMT-3",
        ]

    def test_table7_shapes_and_densities(self):
        fc6 = TABLE_VII_WORKLOADS[0]
        assert (fc6.m, fc6.n, fc6.p) == (4096, 9216, 10)
        assert fc6.weight_density == pytest.approx(0.10)
        assert fc6.activation_density == pytest.approx(0.358)
        nmt1 = TABLE_VII_WORKLOADS[3]
        assert (nmt1.m, nmt1.n, nmt1.p) == (2048, 1024, 8)
        assert nmt1.activation_density == 1.0

    def test_instance_matches_spec(self):
        workload = Workload("t", 64, 128, 4, 0.5)
        matrix, x = make_workload_instance(workload, rng=0)
        assert matrix.shape == (64, 128)
        assert matrix.p == 4
        assert int(np.count_nonzero(x)) == 64  # 128 * 0.5

    def test_compressed_macs_accounting(self):
        workload = Workload("t", 100, 200, 4, 0.5)
        assert workload.compressed_macs == 100 * (100 // 4)
        assert workload.dense_ops == 2 * 100 * 200
