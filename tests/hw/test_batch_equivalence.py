"""Vectorized batch path vs the per-sample model it replaced.

``run_fc_batch_detailed`` computes one batched product and evaluates the
cycle model for the whole batch at once; these tests pin its contract:
bit-identical outputs, identical cycle/MAC totals, and identical SRAM
counters to a sample-by-sample ``run_fc_layer`` loop, at every value
dtype and on every available backend.
"""

import numpy as np
import pytest

from repro.core import BlockPermutedDiagonalMatrix, available_backends
from repro.hw.engine import PermDNNEngine


def _batch(n, rng, sparsity=0.5, size=7):
    x = rng.normal(size=(size, n))
    x[rng.random(size=x.shape) < sparsity] = 0.0
    return x


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("value_dtype", ["float64", "float32", "int16"])
@pytest.mark.parametrize("shape,p", [((96, 64), 8), ((100, 68), 8)])
def test_batched_matches_per_sample_loop(backend, value_dtype, shape, p):
    matrix = BlockPermutedDiagonalMatrix.random(
        shape, p, rng=3, backend=backend, value_dtype=value_dtype
    )
    x_batch = _batch(shape[1], np.random.default_rng(0))

    batched = PermDNNEngine()
    out, cycles, macs = batched.run_fc_batch_detailed(
        matrix, x_batch, activation="relu", enforce_capacity=False
    )

    looped = PermDNNEngine()
    total = looped.config.pipeline_stages
    loop_macs = 0
    ref = np.empty((x_batch.shape[0], shape[0]))
    for row, x in enumerate(x_batch):
        result = looped.run_fc_layer(
            matrix, x, activation="relu", enforce_capacity=False
        )
        ref[row] = result.output
        total += result.compute_cycles + result.writeback_cycles
        loop_macs += result.macs

    assert out.dtype == matrix.compute_dtype
    np.testing.assert_array_equal(out.astype(np.float64), ref)
    assert cycles == total
    assert macs == loop_macs
    for name in ("weight_sram", "perm_sram", "act_sram"):
        got = getattr(batched, name).stats
        want = getattr(looped, name).stats
        assert (got.reads, got.writes) == (want.reads, want.writes), name


def test_zero_skip_off_counts_every_column():
    matrix = BlockPermutedDiagonalMatrix.random((64, 64), 8, rng=0)
    x_batch = _batch(64, np.random.default_rng(1), sparsity=0.8)
    engine = PermDNNEngine()
    _, skipped_cycles, _ = engine.run_fc_batch_detailed(
        matrix, x_batch, zero_skip=True, enforce_capacity=False
    )
    _, dense_cycles, _ = engine.run_fc_batch_detailed(
        matrix, x_batch, zero_skip=False, enforce_capacity=False
    )
    assert dense_cycles > skipped_cycles


def test_batch_rejects_bad_activation_and_shape():
    matrix = BlockPermutedDiagonalMatrix.random((32, 32), 8, rng=0)
    engine = PermDNNEngine()
    with pytest.raises(ValueError, match="activation"):
        engine.run_fc_batch_detailed(
            matrix, np.zeros((2, 32)), activation="gelu"
        )
    with pytest.raises(ValueError, match="expected batch"):
        engine.run_fc_batch_detailed(matrix, np.zeros((2, 31)))


def test_tanh_batch_matches_per_sample():
    matrix = BlockPermutedDiagonalMatrix.random((48, 32), 8, rng=5)
    x_batch = _batch(32, np.random.default_rng(2))
    engine = PermDNNEngine()
    out, _, _ = engine.run_fc_batch_detailed(
        matrix, x_batch, activation="tanh", enforce_capacity=False
    )
    ref = np.stack(
        [
            engine.run_fc_layer(
                matrix, x, activation="tanh", enforce_capacity=False
            ).output
            for x in x_batch
        ]
    )
    np.testing.assert_array_equal(out, ref)
