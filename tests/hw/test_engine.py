"""Tests for the PermDNN engine simulator (functional + cycle behaviour)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockPermutedDiagonalMatrix
from repro.hw import (
    EngineConfig,
    PEConfig,
    PermDNNEngine,
    TABLE_VII_WORKLOADS,
    make_workload_instance,
)
from repro.hw.verify import verify_against_golden, verify_engine


def _small_engine(n_pe=4, n_mul=2, n_acc=8):
    return PermDNNEngine(
        EngineConfig(n_pe=n_pe, pe=PEConfig(n_mul=n_mul, n_acc=n_acc))
    )


class TestFunctionalCorrectness:
    @given(
        st.integers(1, 6).map(lambda v: v * 16),
        st.integers(1, 6).map(lambda v: v * 16),
        st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_golden_for_random_layers(self, m, n, p):
        rng = np.random.default_rng(m * 7 + n * 3 + p)
        matrix = BlockPermutedDiagonalMatrix.random((m, n), p, rng=rng)
        x = rng.normal(size=n) * (rng.random(n) > 0.4)
        assert verify_engine(_small_engine(), matrix, x) == 0.0

    def test_relu_and_tanh_activation_units(self):
        rng = np.random.default_rng(0)
        matrix = BlockPermutedDiagonalMatrix.random((32, 32), 4, rng=rng)
        x = rng.normal(size=32)
        assert verify_engine(_small_engine(), matrix, x, activation="relu") == 0.0
        assert verify_engine(_small_engine(), matrix, x, activation="tanh") == 0.0

    def test_unknown_activation_rejected(self):
        matrix = BlockPermutedDiagonalMatrix.random((16, 16), 4, rng=0)
        with pytest.raises(ValueError):
            _small_engine().run_fc_layer(matrix, np.ones(16), activation="gelu")

    def test_input_shape_check(self):
        matrix = BlockPermutedDiagonalMatrix.random((16, 16), 4, rng=0)
        with pytest.raises(ValueError):
            _small_engine().run_fc_layer(matrix, np.ones(8))

    def test_verify_against_golden_raises_on_divergence(self):
        with pytest.raises(AssertionError):
            verify_against_golden(np.ones(4), np.zeros(4))

    def test_verify_against_golden_raises_on_shape_mismatch(self):
        with pytest.raises(AssertionError):
            verify_against_golden(np.ones(4), np.zeros(5))

    def test_verify_returns_error_magnitude(self):
        err = verify_against_golden(np.ones(3), np.ones(3) + 1e-12)
        assert err <= 1e-11

    def test_all_table7_workloads_verify(self):
        engine = PermDNNEngine()
        for workload in TABLE_VII_WORKLOADS:
            matrix, x = make_workload_instance(workload, rng=0)
            assert verify_engine(engine, matrix, x) == 0.0


class TestCycleModel:
    def test_zero_skipping_scales_with_density(self):
        rng = np.random.default_rng(1)
        matrix = BlockPermutedDiagonalMatrix.random((64, 256), 4, rng=rng)
        engine = _small_engine()
        dense_x = rng.normal(size=256)
        sparse_x = dense_x * (rng.random(256) < 0.25)
        dense_res = engine.run_fc_layer(matrix, dense_x)
        sparse_res = engine.run_fc_layer(matrix, sparse_x)
        assert sparse_res.compute_cycles < 0.5 * dense_res.compute_cycles
        assert sparse_res.skipped_columns > 0

    def test_zero_skip_disabled_processes_every_column(self):
        rng = np.random.default_rng(2)
        matrix = BlockPermutedDiagonalMatrix.random((64, 128), 4, rng=rng)
        engine = _small_engine()
        x = np.zeros(128)
        x[:10] = 1.0
        with_skip = engine.run_fc_layer(matrix, x, zero_skip=True)
        without = engine.run_fc_layer(matrix, x, zero_skip=False)
        assert with_skip.nonzero_columns == 10
        assert without.nonzero_columns == 128
        assert without.cycles > with_skip.cycles
        np.testing.assert_allclose(with_skip.output, without.output)

    def test_alexfc6_cycle_count(self):
        """Analytic check: FC6 (4096x9216, p=10, 35.8% act density) on the
        default engine takes 2 cycles/column (ceil(128/80))."""
        engine = PermDNNEngine()
        workload = TABLE_VII_WORKLOADS[0]
        matrix, x = make_workload_instance(workload, rng=0)
        result = engine.run_fc_layer(matrix, x)
        nnz = int(np.count_nonzero(x))
        expected = 5 + 2 * nnz + int(np.ceil(4096 / 32))
        assert result.cycles == expected
        assert result.case == 1

    def test_macs_accounting(self):
        engine = PermDNNEngine()
        matrix, x = make_workload_instance(TABLE_VII_WORKLOADS[1], rng=0)
        result = engine.run_fc_layer(matrix, x)
        nnz = int(np.count_nonzero(x))
        # average column population (4096 is not divisible by p=10, so the
        # padded blocks make this slightly less than m/p)
        assert result.macs == round(nnz * matrix.nnz / 4096)

    def test_macs_exact_when_divisible(self):
        engine = PermDNNEngine()
        matrix, x = make_workload_instance(TABLE_VII_WORKLOADS[3], rng=0)
        result = engine.run_fc_layer(matrix, x)
        assert result.macs == 1024 * (2048 // 8)  # all columns non-zero

    def test_utilization_bounded(self):
        engine = PermDNNEngine()
        for workload in TABLE_VII_WORKLOADS:
            matrix, x = make_workload_instance(workload, rng=0)
            result = engine.run_fc_layer(matrix, x)
            assert 0.0 < result.utilization <= 1.0

    def test_nmt_layers_fully_utilized(self):
        """NMT layers divide evenly: utilization should be 1.0."""
        engine = PermDNNEngine()
        matrix, x = make_workload_instance(TABLE_VII_WORKLOADS[3], rng=0)
        result = engine.run_fc_layer(matrix, x)
        assert result.utilization == pytest.approx(1.0)

    def test_load_balance_across_pes(self):
        """Structural claim (Sec. V-D): every PE retires identical work, so
        compute cycles equal the per-PE bound with no straggler term."""
        engine = PermDNNEngine()
        matrix, x = make_workload_instance(TABLE_VII_WORKLOADS[4], rng=0)
        result = engine.run_fc_layer(matrix, x)
        nnz = int(np.count_nonzero(x))
        per_pe_cycles = result.compute_cycles  # same for every PE
        assert per_pe_cycles == nnz * int(
            np.ceil((2048 / 32) / 8 / 8)
        )

    def test_writeback_uses_group_writing(self):
        engine = PermDNNEngine()
        matrix, x = make_workload_instance(TABLE_VII_WORKLOADS[2], rng=0)
        result = engine.run_fc_layer(matrix, x)
        assert result.writeback_cycles == int(np.ceil(1000 / 32))

    def test_sram_capacity_guard(self):
        """A layer bigger than the weight SRAM must be rejected."""
        engine = PermDNNEngine(EngineConfig(n_pe=1))
        huge = BlockPermutedDiagonalMatrix.zeros((4096, 9216), 10)
        with pytest.raises(ValueError):
            engine.run_fc_layer(huge, np.zeros(9216))

    def test_paper_capacity_claim_8m_weights_fit(self):
        """Sec. V-B: with 4-bit sharing, 32 PEs store an 8M-param layer."""
        engine = PermDNNEngine()
        capacity_weights = (
            engine.weight_sram.capacity_words(4) * engine.config.n_pe
        )
        assert capacity_weights >= 8_000_000


class TestBitAccurateMode:
    def test_quantized_output_close_to_float(self):
        rng = np.random.default_rng(3)
        matrix = BlockPermutedDiagonalMatrix.random((64, 64), 8, rng=rng)
        x = rng.normal(size=64)
        engine = _small_engine()
        exact = engine.run_fc_layer(matrix, x).output
        quant = engine.run_fc_layer(matrix, x, bit_accurate=True).output
        scale = np.abs(exact).max()
        assert np.abs(exact - quant).max() < 0.15 * scale

    def test_saturation_counted_on_overflow(self):
        matrix = BlockPermutedDiagonalMatrix.random((16, 16), 2, rng=0)
        # 8 weights of ~40 times activations clipped at ~8 sums past the
        # 24-bit Q11.12 accumulator ceiling of ~2048
        matrix.data[...] = np.abs(matrix.data) + 40.0
        matrix.data *= matrix.support_mask()
        engine = _small_engine()
        x = np.full(16, 400.0)
        result = engine.run_fc_layer(matrix, x, bit_accurate=True)
        assert result.saturations > 0

    def test_cycles_identical_to_float_mode(self):
        """Quantization changes values, never the schedule."""
        rng = np.random.default_rng(4)
        matrix = BlockPermutedDiagonalMatrix.random((64, 64), 8, rng=rng)
        x = rng.normal(size=64)
        engine = _small_engine()
        assert (
            engine.run_fc_layer(matrix, x).cycles
            == engine.run_fc_layer(matrix, x, bit_accurate=True).cycles
        )


class TestPerformanceReports:
    def test_peak_gops_reachable(self):
        engine = PermDNNEngine()
        matrix, x = make_workload_instance(TABLE_VII_WORKLOADS[3], rng=0)
        result = engine.run_fc_layer(matrix, x)
        perf = engine.performance(result, (2048, 1024))
        # fully utilized layer approaches the 614.4 GOPS peak
        assert perf.gops > 0.9 * engine.config.peak_gops

    def test_equivalent_gops_exceeds_compressed(self):
        engine = PermDNNEngine()
        matrix, x = make_workload_instance(TABLE_VII_WORKLOADS[0], rng=0)
        result = engine.run_fc_layer(matrix, x)
        perf = engine.performance(result, (4096, 9216))
        assert perf.equivalent_gops > perf.gops

    def test_speedup_requires_same_workload(self):
        engine = PermDNNEngine()
        m1, x1 = make_workload_instance(TABLE_VII_WORKLOADS[0], rng=0)
        m2, x2 = make_workload_instance(TABLE_VII_WORKLOADS[1], rng=0)
        p1 = engine.performance(engine.run_fc_layer(m1, x1), (4096, 9216))
        p2 = engine.performance(engine.run_fc_layer(m2, x2), (4096, 4096))
        with pytest.raises(ValueError):
            p1.speedup_over(p2)

    def test_power_and_area_from_calibrated_model(self):
        engine = PermDNNEngine()
        assert engine.power_w == pytest.approx(0.7034, rel=0.001)
        assert engine.area_mm2 == pytest.approx(8.85, rel=0.002)
