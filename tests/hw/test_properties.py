"""Property-based invariants of the hardware simulators (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockPermutedDiagonalMatrix
from repro.hw import EngineConfig, PEConfig, PermDNNEngine
from repro.hw.baselines import EIEConfig, EIESimulator


def _engine(n_pe, n_mul, n_acc):
    return PermDNNEngine(
        EngineConfig(n_pe=n_pe, pe=PEConfig(n_mul=n_mul, n_acc=n_acc))
    )


class TestEngineInvariants:
    @given(
        st.integers(1, 4).map(lambda v: 8 * v),    # m
        st.integers(1, 4).map(lambda v: 8 * v),    # n
        st.sampled_from([1, 2, 4, 8]),             # p
        st.floats(0.0, 1.0),                       # input density
    )
    @settings(max_examples=40, deadline=None)
    def test_functional_equivalence_and_bounds(self, m, n, p, density):
        rng = np.random.default_rng(m * 31 + n * 7 + p)
        matrix = BlockPermutedDiagonalMatrix.random((m, n), p, rng=rng)
        x = rng.normal(size=n) * (rng.random(n) < density)
        engine = _engine(4, 2, 8)
        result = engine.run_fc_layer(matrix, x, enforce_capacity=False)
        # 1. exactness
        np.testing.assert_allclose(result.output, matrix.matvec(x), atol=1e-10)
        # 2. cycle accounting is self-consistent
        assert result.cycles == (
            engine.config.pipeline_stages
            + result.compute_cycles
            + result.writeback_cycles
        )
        # 3. zero-skip bookkeeping
        assert result.nonzero_columns + result.skipped_columns == n
        assert result.nonzero_columns == int(np.count_nonzero(x))
        # 4. utilization in (0, 1]
        assert 0.0 <= result.utilization <= 1.0
        # 5. MACs never exceed multiplier-cycles available
        assert result.macs <= result.compute_cycles * 4 * 2 + 1

    @given(st.sampled_from([1, 2, 4, 8]), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_cycles_monotone_in_input_density(self, p, seed):
        rng = np.random.default_rng(seed)
        matrix = BlockPermutedDiagonalMatrix.random((32, 64), p, rng=rng)
        engine = _engine(4, 2, 8)
        x = rng.normal(size=64)
        sparser = x * (rng.random(64) < 0.3)
        dense_cycles = engine.run_fc_layer(matrix, x).cycles
        sparse_cycles = engine.run_fc_layer(matrix, sparser).cycles
        assert sparse_cycles <= dense_cycles

    @given(st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_more_pes_never_slower(self, seed):
        rng = np.random.default_rng(seed)
        matrix = BlockPermutedDiagonalMatrix.random((64, 64), 4, rng=rng)
        x = rng.normal(size=64)
        cycles = [
            PermDNNEngine(EngineConfig(n_pe=n, pe=PEConfig(n_mul=2, n_acc=8)))
            .run_fc_layer(matrix, x, enforce_capacity=False)
            .cycles
            for n in (1, 2, 4, 8)
        ]
        assert all(b <= a for a, b in zip(cycles, cycles[1:]))


class TestEIEInvariants:
    @given(
        st.integers(1, 4).map(lambda v: 32 * v),
        st.floats(0.05, 0.4),
        st.integers(1, 64),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_cycles_bounded_by_sync_and_balance_limits(
        self, size, density, fifo_depth, seed
    ):
        """Event-sim cycles must lie between the infinite-FIFO load-balance
        bound and the fully synchronized (depth-1) bound."""
        rng = np.random.default_rng(seed)
        weight = EIESimulator.prune_reference((size, size), density, rng=rng)
        x = (rng.random(size) < 0.5).astype(float)
        mid = EIESimulator(
            EIEConfig.projected_28nm(fifo_depth=fifo_depth)
        ).run_fc_layer(weight, x)
        lower = EIESimulator(
            EIEConfig.projected_28nm(fifo_depth=10**6)
        ).run_fc_layer(weight, x)
        upper = EIESimulator(
            EIEConfig.projected_28nm(fifo_depth=1)
        ).run_fc_layer(weight, x)
        assert lower.cycles <= mid.cycles <= upper.cycles

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_functional_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        weight = EIESimulator.prune_reference((48, 48), 0.2, rng=rng)
        x = rng.normal(size=48) * (rng.random(48) < 0.6)
        result = EIESimulator(EIEConfig.projected_28nm()).run_fc_layer(weight, x)
        np.testing.assert_allclose(result.output, weight @ x, atol=1e-10)

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_macs_equal_touched_nonzeros(self, seed):
        rng = np.random.default_rng(seed)
        weight = EIESimulator.prune_reference((64, 64), 0.15, rng=rng)
        x = np.zeros(64)
        active = rng.choice(64, size=20, replace=False)
        x[active] = 1.0
        result = EIESimulator(EIEConfig.projected_28nm()).run_fc_layer(weight, x)
        expected = sum(
            weight.indptr[col + 1] - weight.indptr[col] for col in active
        )
        assert result.macs == expected


class TestPermDiagInverse:
    @given(st.integers(1, 16), st.integers(0, 16))
    @settings(max_examples=30)
    def test_inverse_is_exact(self, p, k):
        from repro.core import PermutedDiagonalMatrix

        rng = np.random.default_rng(p * 17 + k)
        values = rng.uniform(0.5, 2.0, size=p) * rng.choice([-1, 1], size=p)
        pd = PermutedDiagonalMatrix(values, k)
        identity = (pd @ pd.inverse()).to_dense()
        np.testing.assert_allclose(identity, np.eye(p), atol=1e-12)

    def test_singular_rejected(self):
        from repro.core import PermutedDiagonalMatrix

        with pytest.raises(ZeroDivisionError):
            PermutedDiagonalMatrix(np.array([1.0, 0.0, 2.0]), 1).inverse()

    @given(st.integers(1, 12), st.integers(0, 12))
    @settings(max_examples=20)
    def test_inverse_matches_numpy(self, p, k):
        from repro.core import PermutedDiagonalMatrix

        rng = np.random.default_rng(p * 5 + k)
        pd = PermutedDiagonalMatrix(rng.uniform(1.0, 3.0, size=p), k)
        np.testing.assert_allclose(
            pd.inverse().to_dense(), np.linalg.inv(pd.to_dense()), atol=1e-10
        )
