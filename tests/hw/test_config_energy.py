"""Tests for hardware configuration, technology scaling, area/power model."""

import numpy as np
import pytest

from repro.hw import AreaPowerModel, EngineConfig, PEConfig, project_design
from repro.hw.baselines.circnn import CIRCNN_DESIGN_45NM
from repro.hw.baselines.eie import EIE_DESIGN_45NM
from repro.hw.technology import DesignPoint


class TestPEConfig:
    def test_defaults_match_table8(self):
        pe = PEConfig()
        assert pe.n_mul == 8 and pe.mul_width == 16
        assert pe.n_acc == 128 and pe.acc_width == 24
        assert pe.weight_sram_banks == 16
        assert pe.weight_sram_width == 32 and pe.weight_sram_depth == 2048
        assert pe.perm_sram_width == 48 and pe.perm_sram_depth == 2048

    def test_weight_sram_is_128kb(self):
        # Table VIII: 16 x 32bit x 2048 = 128 KB
        assert PEConfig().weight_sram_bits == 128 * 1024 * 8

    def test_perm_sram_is_12kb(self):
        assert PEConfig().perm_sram_bits == 12 * 1024 * 8

    def test_accumulator_banks(self):
        assert PEConfig().accumulators_per_bank == 16  # 128 / 8

    def test_validation(self):
        with pytest.raises(ValueError):
            PEConfig(n_mul=0)
        with pytest.raises(ValueError):
            PEConfig(n_mul=8, n_acc=100)  # not a multiple


class TestEngineConfig:
    def test_defaults_match_table8(self):
        cfg = EngineConfig()
        assert cfg.n_pe == 32
        assert cfg.quant_bits == 16
        assert cfg.weight_sharing_bits == 4
        assert cfg.pipeline_stages == 5
        assert cfg.act_sram_banks == 8
        assert cfg.act_fifo_depth == 32

    def test_peak_gops_is_614(self):
        """32 PEs x 8 muls x 1.2 GHz x 2 ops = 614.4 GOPS (Sec. V-B)."""
        assert EngineConfig().peak_gops == pytest.approx(614.4)

    def test_group_write_rate(self):
        # 8 banks x 64 bit / 16 bit = 32 activations per cycle
        assert EngineConfig().activations_written_per_cycle == 32

    def test_with_pes(self):
        cfg = EngineConfig().with_pes(8)
        assert cfg.n_pe == 8 and cfg.pe.n_mul == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(n_pe=0)
        with pytest.raises(ValueError):
            EngineConfig(clock_ghz=0)


class TestTechnologyProjection:
    def test_eie_projection_matches_table10(self):
        """EIE 45nm (800 MHz, 40.8 mm2) -> 28nm (1285 MHz, 15.7 mm2)."""
        projected = project_design(EIE_DESIGN_45NM, 28)
        assert projected.clock_ghz == pytest.approx(1.285, abs=0.01)
        assert projected.area_mm2 == pytest.approx(15.7, rel=0.02)
        assert projected.power_w == pytest.approx(0.59)  # constant power

    def test_circnn_projection_matches_table11(self):
        """CirCNN 200 MHz @45nm -> ~320 MHz @28nm."""
        projected = project_design(CIRCNN_DESIGN_45NM, 28)
        assert projected.clock_ghz == pytest.approx(0.321, abs=0.002)
        assert projected.area_mm2 is None

    def test_same_node_is_identity(self):
        point = DesignPoint("x", 28, 1.0, 10.0, 1.0)
        projected = project_design(point, 28)
        assert projected.clock_ghz == 1.0 and projected.area_mm2 == 10.0

    def test_rejects_bad_nodes(self):
        with pytest.raises(ValueError):
            project_design(DesignPoint("x", 0, 1.0, 1.0, 1.0), 28)


class TestAreaPowerCalibration:
    def test_pe_power_matches_table9(self):
        breakdown = AreaPowerModel().pe_breakdown(PEConfig())
        assert breakdown.total_power_mw == pytest.approx(21.874, rel=1e-6)
        assert breakdown.power_mw["memory"] == pytest.approx(3.575)
        assert breakdown.power_mw["combinational"] == pytest.approx(10.48)

    def test_pe_area_matches_table9(self):
        breakdown = AreaPowerModel().pe_breakdown(PEConfig())
        assert breakdown.total_area_mm2 == pytest.approx(0.271, abs=0.001)
        assert breakdown.area_mm2["memory"] == pytest.approx(0.178)

    def test_engine_totals_match_table9(self):
        model = AreaPowerModel()
        engine = model.engine_breakdown(EngineConfig())
        assert engine.total_power_w == pytest.approx(0.7034, rel=0.001)
        assert engine.total_area_mm2 == pytest.approx(8.85, rel=0.002)

    def test_power_scales_linearly_with_frequency(self):
        model = AreaPowerModel()
        slow = model.engine_power_w(EngineConfig(clock_ghz=0.6))
        fast = model.engine_power_w(EngineConfig(clock_ghz=1.2))
        assert fast == pytest.approx(2 * slow)

    def test_area_grows_with_multipliers(self):
        model = AreaPowerModel()
        base = model.pe_breakdown(PEConfig()).total_area_mm2
        wide = model.pe_breakdown(PEConfig(n_mul=16, n_acc=128)).total_area_mm2
        assert wide > base

    def test_area_independent_of_frequency(self):
        model = AreaPowerModel()
        a = model.engine_area_mm2(EngineConfig(clock_ghz=0.6))
        b = model.engine_area_mm2(EngineConfig(clock_ghz=1.2))
        assert a == pytest.approx(b)

    def test_engine_power_scales_with_pes(self):
        model = AreaPowerModel()
        half = model.engine_power_w(EngineConfig(n_pe=16))
        full = model.engine_power_w(EngineConfig(n_pe=32))
        assert full == pytest.approx(2 * half, rel=0.01)
