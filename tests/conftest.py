"""Suite-wide wiring for the runtime aliasing sanitizer.

Exporting ``REPRO_SANITIZE=1`` runs every test inside
:func:`repro.debug.sanitize`: row shards are verified to alias their
parent storage and frozen against stray writes, and index-plan activity
is counted.  For the suites built on the "plans are computed once"
contract -- the serving runtime and the backend conformance matrix --
teardown additionally asserts that no plan was *rebuilt* during the
test.  Suites that exercise ``set_structure`` (whose documented job is
to invalidate the plan) are deliberately outside that strict set.

CI runs the whole tier-1 suite once in this mode (see
``docs/STATIC_ANALYSIS.md``); without the env var this conftest is a
no-op and the suite runs exactly as before.
"""

from __future__ import annotations

import pytest

from repro.debug import sanitize, sanitize_enabled

# Test files where a plan rebuild is a contract violation, not a detail.
_STRICT_NO_REBUILD = (
    "tests/serve/",
    "tests/core/test_backend_conformance.py",
)


@pytest.fixture(autouse=True)
def _repro_sanitizer(request):
    if not sanitize_enabled():
        yield None
        return
    with sanitize() as sanitizer:
        yield sanitizer
        nodeid = request.node.nodeid.replace("\\", "/")
        if any(nodeid.startswith(prefix) for prefix in _STRICT_NO_REBUILD):
            sanitizer.assert_no_plan_rebuild()
