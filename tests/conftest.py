"""Suite-wide wiring for the runtime aliasing sanitizer.

Exporting ``REPRO_SANITIZE=1`` runs every test inside
:func:`repro.debug.sanitize`: row shards are verified to alias their
parent storage and frozen against stray writes, and index-plan activity
is counted.  For the suites built on the "plans are computed once"
contract -- the serving runtime and the backend conformance matrix --
teardown additionally asserts that no plan was *rebuilt* during the
test.  Suites that exercise ``set_structure`` (whose documented job is
to invalidate the plan) are deliberately outside that strict set.

CI runs the whole tier-1 suite once in this mode (see
``docs/STATIC_ANALYSIS.md``); without the env var this conftest is a
no-op and the suite runs exactly as before.
"""

from __future__ import annotations

import pytest

from repro.core import set_default_value_dtype
from repro.debug import sanitize, sanitize_enabled

# Test files where a plan rebuild is a contract violation, not a detail.
_STRICT_NO_REBUILD = (
    "tests/serve/",
    "tests/core/test_backend_conformance.py",
)


@pytest.fixture(autouse=True)
def _pin_value_dtype(request):
    """Pin float64 value storage unless a test module opts out.

    CI runs the suite once with ``REPRO_VALUE_DTYPE=float32`` exported.
    Most tests assert float64 reference numerics (1e-10 tolerances,
    bit-exact comparisons), so by default this fixture pins the process
    value-dtype to float64 for the duration of each test -- the env leg
    proves nothing *leaks* through the default.  A module that declares
    ``REPRO_DTYPE_POLYMORPHIC = True`` at top level runs unpinned and
    genuinely follows the environment's value dtype (its assertions must
    be dtype-agnostic, e.g. internal-consistency checks).
    """
    module = getattr(request.node, "module", None)
    if module is not None and getattr(module, "REPRO_DTYPE_POLYMORPHIC", False):
        yield
        return
    set_default_value_dtype("float64")
    try:
        yield
    finally:
        set_default_value_dtype(None)


@pytest.fixture(autouse=True)
def _repro_sanitizer(request):
    if not sanitize_enabled():
        yield None
        return
    with sanitize() as sanitizer:
        yield sanitizer
        nodeid = request.node.nodeid.replace("\\", "/")
        if any(nodeid.startswith(prefix) for prefix in _STRICT_NO_REBUILD):
            sanitizer.assert_no_plan_rebuild()
