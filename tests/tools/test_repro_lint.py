"""Tests for ``tools/repro_lint``: every rule code, noqa, CLI, JSON, docs.

Fixtures lint synthetic snippets under *virtual* repo-relative paths
(rule scoping keys off the path), so each rule gets a bad/good pair
without touching the real tree.  The real tree is covered too: the
acceptance criterion "``python -m tools.repro_lint src benchmarks
tools`` exits 0" is asserted directly.
"""

import json
import textwrap
from pathlib import Path

import pytest

from tools.repro_lint import all_rules, check_docs, lint_source, main
from tools.repro_lint.framework import SYNTAX_ERROR_CODE

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def codes(findings):
    return [f.code for f in findings]


def lint(source, rel, **kwargs):
    return lint_source(textwrap.dedent(source), rel, **kwargs)


class TestRPR001PrivateStateMutation:
    BAD = """
        def evil(matrix, arr):
            matrix._plan = None
            matrix._data = arr
    """

    def test_flags_outside_core(self):
        findings = lint(self.BAD, "src/repro/nn/opt.py")
        assert codes(findings) == ["RPR001", "RPR001"]
        assert "._plan" in findings[0].message

    def test_core_is_exempt(self):
        assert lint(self.BAD, "src/repro/core/block_perm_diag.py") == []

    def test_subscript_and_del_targets(self):
        src = """
            def evil(m):
                m._csr_cache[True] = ()
                del m._plan
        """
        assert codes(lint(src, "src/repro/serve/server.py")) == [
            "RPR001", "RPR001",
        ]

    def test_own_private_attrs_are_fine(self):
        src = """
            class Thing:
                def __init__(self):
                    self._cache = {}
                    self._input_shape = None
        """
        assert lint(src, "src/repro/nn/layers/thing.py") == []


class TestRPR002BackendBypass:
    def test_scipy_import_flagged_in_serve(self):
        src = "from scipy import sparse\n"
        assert codes(lint(src, "src/repro/serve/server.py")) == ["RPR002"]
        src = "import scipy.sparse\n"
        assert codes(lint(src, "src/repro/hw/engine.py")) == ["RPR002"]

    def test_core_out_of_scope(self):
        assert lint("from scipy import sparse\n", "src/repro/core/x.py") == []

    def test_compress_in_scope_non_strict(self):
        # The factory is in RPR002 scope (no raw products in offline
        # pipelines either) but not in the serve-only strict form.
        src = "from scipy import sparse\n"
        assert codes(lint(src, "src/repro/compress/pipeline.py")) == ["RPR002"]
        src = """
            import numpy as np
            def f(a, b):
                return np.dot(a, b)
        """
        assert codes(lint(src, "src/repro/compress/zoo.py")) == ["RPR002"]
        src = """
            def f(a, b):
                return a @ b
        """
        assert lint(src, "src/repro/compress/pipeline.py") == []

    def test_baselines_exempt(self):
        src = "from scipy import sparse\n"
        assert lint(src, "src/repro/hw/baselines/eie.py") == []

    def test_np_dot_flagged(self):
        src = """
            import numpy as np
            def f(a, b):
                return np.dot(a, b)
        """
        assert codes(lint(src, "src/repro/nn/layers/x.py")) == ["RPR002"]

    def test_matmul_on_matrix_state_flagged(self):
        src = """
            def f(matrix, x):
                return matrix.to_dense() @ x
        """
        assert codes(lint(src, "src/repro/serve/server.py")) == ["RPR002"]

    def test_dense_weight_matmul_allowed(self):
        src = """
            def f(self, x):
                return x @ self.weight.value.T + self.bias.value
        """
        assert lint(src, "src/repro/nn/layers/dense.py") == []

    def test_serve_flags_every_matmul(self):
        # Strict form: in serve/, name heuristics are off -- `a @ b` on
        # innocuously-named operands is still a bypass.
        src = """
            def f(a, b):
                return a @ b
        """
        findings = lint(src, "src/repro/serve/server.py")
        assert codes(findings) == ["RPR002"]
        assert "serve/" in findings[0].message
        # ... while the same product outside serve/ needs a matrix hint.
        assert lint(src, "src/repro/nn/layers/dense.py") == []

    def test_serve_flags_matmul_shaped_reductions(self):
        src = """
            import numpy as np
            def f(w, x):
                a = np.einsum("ij,bj->bi", w, x)
                b = np.tensordot(w, x, axes=1)
                c = np.inner(w, x)
                return a, b, c
        """
        assert codes(lint(src, "src/repro/serve/stage.py")) == [
            "RPR002", "RPR002", "RPR002",
        ]
        # The reductions stay legal outside the strict prefix.
        assert lint(src, "src/repro/nn/functional.py") == []


class TestRPR003CsrIndexDtype:
    def test_untyped_construction_flagged(self):
        # select= keeps the fixture focused: a dtype-less np.zeros in
        # backends/ is (correctly) also an RPR009 finding.
        src = """
            import numpy as np
            def f(n):
                indptr = np.zeros(n + 1)
                return indptr
        """
        findings = lint(
            src, "src/repro/core/backends/csr.py", select={"RPR003"}
        )
        assert codes(findings) == ["RPR003"]

    def test_int64_literal_flagged(self):
        src = """
            import numpy as np
            def f(n):
                indices = np.empty(n, dtype=np.int64)
                indices[:] = 0
                return indices
        """
        assert codes(lint(src, "src/repro/core/backends/csr.py")) == ["RPR003"]

    def test_astype_int64_flagged(self):
        src = """
            import numpy as np
            def f(raw):
                col_indices = raw.astype(np.int64)
                return col_indices
        """
        assert codes(lint(src, "src/repro/core/backends/csr.py")) == ["RPR003"]

    def test_symbolic_dtype_allowed(self):
        src = """
            import numpy as np
            def f(n, idx_dtype):
                indptr = np.zeros(n + 1, dtype=idx_dtype)
                indices = np.arange(n, dtype=idx_dtype)
                return indptr, indices
        """
        assert lint(src, "src/repro/core/backends/csr.py") == []

    def test_unrelated_names_ignored(self):
        src = """
            import numpy as np
            def f(n):
                values = np.zeros(n)
                return values
        """
        assert (
            lint(src, "src/repro/core/backends/csr.py", select={"RPR003"})
            == []
        )


class TestRPR004SystemExit:
    def test_raise_systemexit_flagged(self):
        src = """
            def f():
                raise SystemExit(2)
        """
        assert codes(lint(src, "src/repro/hw/engine.py")) == ["RPR004"]

    def test_sys_exit_flagged(self):
        src = """
            import sys
            def f():
                sys.exit(1)
        """
        assert codes(lint(src, "src/repro/serve/server.py")) == ["RPR004"]

    def test_cli_exempt(self):
        src = """
            import sys
            def main():
                sys.exit(0)
        """
        assert lint(src, "src/repro/cli.py") == []

    def test_typed_raise_allowed(self):
        src = """
            def f():
                raise ValueError("bad")
        """
        assert lint(src, "src/repro/hw/engine.py") == []


class TestRPR005ExceptionSwallow:
    def test_bare_except_flagged(self):
        src = """
            def f():
                try:
                    g()
                except:
                    return None
        """
        assert codes(lint(src, "src/repro/metrics/x.py")) == ["RPR005"]

    def test_broad_pass_flagged(self):
        src = """
            def f():
                try:
                    g()
                except Exception:
                    pass
        """
        assert codes(lint(src, "tools/helper.py")) == ["RPR005"]

    def test_typed_pass_allowed(self):
        src = """
            def f():
                try:
                    g()
                except ImportError:
                    pass
        """
        assert lint(src, "src/repro/core/x.py") == []

    def test_broad_handler_that_acts_allowed(self):
        src = """
            def f(log):
                try:
                    g()
                except Exception as exc:
                    log.warning("g failed: %s", exc)
                    raise
        """
        assert lint(src, "src/repro/serve/server.py") == []


class TestRPR006EmptyPartialWrite:
    def test_guarded_fill_flagged(self):
        src = """
            import numpy as np
            def kernel(n, flag):
                out = np.empty(n)
                if flag:
                    out[:] = 1.0
                return out
        """
        findings = lint(
            src, "src/repro/core/backends/gather.py", select={"RPR006"}
        )
        assert codes(findings) == ["RPR006"]

    def test_loop_fill_allowed(self):
        src = """
            import numpy as np
            def kernel(n, chunks):
                out = np.empty(n)
                for start, stop in chunks:
                    out[start:stop] = 1.0
                return out
        """
        assert (
            lint(src, "src/repro/core/backends/gather.py", select={"RPR006"})
            == []
        )

    def test_alloc_and_fill_inside_else_allowed(self):
        # Regression: conditionality is judged relative to the
        # allocation's own block (the real gather-backend shape).
        src = """
            import numpy as np
            def kernel(matrix, chunked, chunks):
                if chunked:
                    out = g(matrix)
                else:
                    grad = np.empty_like(matrix)
                    for start, stop in chunks:
                        grad[start:stop] = h(matrix, start, stop)
                    out = grad
                return out
        """
        assert lint(src, "src/repro/core/backends/gather.py") == []

    def test_kernel_call_arg_counts_as_fill(self):
        src = """
            import numpy as np
            def kernel(values, x):
                out = np.empty_like(values)
                _jit_kernel(values, x, out)
                return out
        """
        assert lint(src, "src/repro/core/backends/numba_backend.py") == []

    def test_out_of_scope_path_ignored(self):
        src = """
            import numpy as np
            def helper(n, flag):
                out = np.empty(n)
                if flag:
                    out[:] = 1.0
                return out
        """
        assert lint(src, "src/repro/metrics/x.py") == []


class TestRPR007AliasBreakingCopy:
    def test_copy_of_shard_storage_flagged(self):
        src = """
            def pack(shard):
                return shard.data.copy()
        """
        assert codes(lint(src, "src/repro/serve/bundle.py")) == ["RPR007"]

    def test_reshape_minus_one_flagged(self):
        src = """
            def pack(param):
                return param.value.reshape(-1)
        """
        assert codes(lint(src, "src/repro/nn/serialization.py")) == ["RPR007"]

    def test_ascontiguousarray_flagged(self):
        src = """
            import numpy as np
            def pack(shard):
                return np.ascontiguousarray(shard.data)
        """
        assert codes(lint(src, "src/repro/serve/bundle.py")) == ["RPR007"]

    def test_non_storage_copy_allowed(self):
        src = """
            def dup(manifest):
                return manifest.copy()
        """
        assert lint(src, "src/repro/serve/bundle.py") == []

    def test_structured_reshape_allowed(self):
        src = """
            def unpack(shard, mb, nb, p):
                return shard.data.reshape(mb, nb, p)
        """
        assert lint(src, "src/repro/serve/bundle.py") == []

    def test_out_of_scope_path_ignored(self):
        src = """
            def pack(shard):
                return shard.data.copy()
        """
        assert lint(src, "src/repro/core/storage.py") == []


class TestRPR008SetflagsUnfreeze:
    def test_setflags_true_flagged(self):
        src = """
            def thaw(arr):
                arr.setflags(write=True)
        """
        assert codes(lint(src, "src/repro/serve/server.py")) == ["RPR008"]

    def test_flags_writeable_true_flagged(self):
        src = """
            def thaw(arr):
                arr.flags.writeable = True
        """
        assert codes(lint(src, "src/repro/nn/optim.py")) == ["RPR008"]

    def test_core_and_debug_exempt(self):
        src = """
            def thaw(arr):
                arr.setflags(write=True)
        """
        assert lint(src, "src/repro/core/block_perm_diag.py") == []
        assert lint(src, "src/repro/debug/sanitizer.py") == []

    def test_freezing_allowed_anywhere(self):
        src = """
            def freeze(arr):
                arr.setflags(write=False)
        """
        assert lint(src, "src/repro/serve/server.py") == []


class TestRPR009DtypelessAllocation:
    @pytest.mark.parametrize("ctor", ["zeros", "empty", "ones"])
    def test_dtypeless_allocation_flagged(self, ctor):
        src = f"""
            import numpy as np
            def kernel(n):
                out = np.{ctor}(n)
                out[:] = 1.0
                return out
        """
        findings = lint(src, "src/repro/core/backends/gather.py")
        assert codes(findings) == ["RPR009"]
        assert "dtype" in findings[0].message

    def test_dtypeless_full_flagged(self):
        src = """
            import numpy as np
            def kernel(n):
                out = np.full(n, 0.0)
                return out
        """
        assert codes(lint(src, "src/repro/core/backends/csr.py")) == [
            "RPR009",
        ]

    def test_keyword_dtype_allowed(self):
        src = """
            import numpy as np
            def kernel(n, matrix):
                out = np.zeros(n, dtype=matrix.compute_dtype)
                buf = np.empty(n, dtype=np.float32)
                buf[:] = 0.0
                return out, buf
        """
        assert lint(src, "src/repro/core/backends/gather.py") == []

    def test_positional_dtype_allowed(self):
        src = """
            import numpy as np
            def kernel(n):
                out = np.zeros(n, np.float32)
                fill = np.full(n, 0.0, np.float32)
                return out, fill
        """
        assert lint(src, "src/repro/core/backends/csr.py") == []

    def test_like_constructors_exempt(self):
        src = """
            import numpy as np
            def kernel(values):
                out = np.empty_like(values)
                out[:] = 0.0
                return out, np.zeros_like(values)
        """
        assert lint(src, "src/repro/core/backends/numba_backend.py") == []

    def test_out_of_scope_path_ignored(self):
        src = """
            import numpy as np
            def helper(n):
                return np.zeros(n)
        """
        assert lint(src, "src/repro/serve/server.py") == []


class TestSuppressionAndSelection:
    def test_noqa_with_code_suppresses(self):
        src = "def f(m):\n    m._plan = None  # noqa: RPR001\n"
        assert lint_source(src, "src/repro/nn/x.py") == []

    def test_bare_noqa_suppresses(self):
        src = "def f(m):\n    m._plan = None  # noqa\n"
        assert lint_source(src, "src/repro/nn/x.py") == []

    def test_wrong_code_does_not_suppress(self):
        src = "def f(m):\n    m._plan = None  # noqa: RPR005\n"
        assert codes(lint_source(src, "src/repro/nn/x.py")) == ["RPR001"]

    def test_select_and_ignore(self):
        src = "def f(m):\n    m._plan = None\n    raise SystemExit(1)\n"
        rel = "src/repro/nn/x.py"
        assert codes(lint_source(src, rel, select={"RPR004"})) == ["RPR004"]
        assert codes(lint_source(src, rel, ignore={"RPR004"})) == ["RPR001"]

    def test_syntax_error_reported_as_rpr000(self):
        findings = lint_source("def f(:\n", "src/repro/nn/x.py")
        assert codes(findings) == [SYNTAX_ERROR_CODE]


class TestRuleRegistry:
    def test_all_nine_codes_registered(self):
        assert [r.code for r in all_rules()] == [
            f"RPR00{i}" for i in range(1, 10)
        ]

    def test_rules_carry_docs(self):
        for rule in all_rules():
            assert rule.name and rule.invariant and rule.rationale


class TestCli:
    def _write_bad_tree(self, root):
        pkg = root / "src" / "repro" / "nn"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def f(m):\n    m._plan = None\n", encoding="utf-8"
        )
        return root

    def test_exit_one_on_findings_and_report_format(self, tmp_path, capsys):
        self._write_bad_tree(tmp_path)
        rc = main(["src", "--root", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "src/repro/nn/bad.py:2:5: RPR001" in captured.out
        assert "1 finding(s)" in captured.err

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "ok.py").write_text("x = 1\n", encoding="utf-8")
        rc = main(["src", "--root", str(tmp_path)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        rc = main(["nope", "--root", str(tmp_path)])
        assert rc == 2
        assert "no such path" in capsys.readouterr().err

    def test_json_schema(self, tmp_path, capsys):
        self._write_bad_tree(tmp_path)
        rc = main(["src", "--root", str(tmp_path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"RPR001": 1}
        (finding,) = payload["findings"]
        assert finding["code"] == "RPR001"
        assert finding["path"] == "src/repro/nn/bad.py"
        assert finding["line"] == 2
        assert set(finding) == {
            "code", "rule", "message", "path", "line", "col",
        }

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 10):
            assert f"RPR00{i}" in out

    def test_real_tree_is_clean(self):
        """Acceptance criterion: the shipped tree lints clean."""
        rc = main(["src", "benchmarks", "tools", "--root", str(REPO_ROOT)])
        assert rc == 0


class TestDocsCheck:
    def _docs_tree(self, root, link):
        (root / "docs").mkdir()
        (root / "README.md").write_text("# x\n", encoding="utf-8")
        (root / "CHANGES.md").write_text("- x\n", encoding="utf-8")
        (root / "docs" / "GUIDE.md").write_text(
            f"see [other]({link})\n", encoding="utf-8"
        )
        (root / "docs" / "OTHER.md").write_text("# other\n", encoding="utf-8")
        return root

    def test_broken_link_flagged(self, tmp_path):
        self._docs_tree(tmp_path, "MISSING.md")
        findings, checked = check_docs(tmp_path)
        assert checked >= 3
        assert codes(findings) == ["RPR900"]
        assert findings[0].path == "docs/GUIDE.md"
        assert "MISSING.md" in findings[0].message

    def test_good_link_passes(self, tmp_path):
        self._docs_tree(tmp_path, "OTHER.md")
        findings, _ = check_docs(tmp_path)
        assert findings == []

    def test_external_and_anchor_links_skipped(self, tmp_path):
        self._docs_tree(tmp_path, "https://example.com/x")
        (tmp_path / "docs" / "GUIDE.md").write_text(
            "[a](https://example.com) [b](#section) [c](mailto:x@y.z)\n",
            encoding="utf-8",
        )
        findings, _ = check_docs(tmp_path)
        assert findings == []

    def test_fenced_code_blocks_skipped(self, tmp_path):
        self._docs_tree(tmp_path, "OTHER.md")
        (tmp_path / "docs" / "GUIDE.md").write_text(
            "```\n[fake](NOT_A_FILE.md)\n```\nand `[x](ALSO_FAKE.md)` inline\n",
            encoding="utf-8",
        )
        findings, _ = check_docs(tmp_path)
        assert findings == []

    def test_cli_docs_mode(self, tmp_path, capsys):
        self._docs_tree(tmp_path, "MISSING.md")
        rc = main(["--docs", "--root", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "RPR900" in captured.out

    def test_real_docs_are_clean(self):
        findings, checked = check_docs(REPO_ROOT)
        assert findings == []
        assert checked > 0


class TestDocsLintCompatWrapper:
    def test_script_still_reports_clean(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "tools/docs_lint.py"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
