"""Tests for connectedness (Sec. III-E) and storage comparison (Fig. 4)."""

import numpy as np
import pytest

from repro.analysis import (
    connectivity_fraction,
    is_fully_connected,
    layer_connectivity_graph,
    storage_comparison_curve,
)
from repro.core import BlockPermutedDiagonalMatrix, PermutationSpec


def _pd(shape, p, scheme="natural", seed=0, ks=None):
    if ks is not None:
        return BlockPermutedDiagonalMatrix.zeros(shape, p, ks=np.asarray(ks))
    return BlockPermutedDiagonalMatrix.zeros(
        shape, p, spec=PermutationSpec(scheme, seed=seed)
    )


class TestConnectivityGraph:
    def test_single_layer_edges_match_mask(self):
        layer = _pd((8, 8), 4)
        graph = layer_connectivity_graph([layer])
        assert graph.number_of_edges() == int(layer.dense_mask().sum())

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            layer_connectivity_graph([_pd((8, 8), 4), _pd((8, 6), 2)])

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            connectivity_fraction([])


class TestConnectednessLemma:
    def test_identical_shifts_do_block_information(self):
        """With k_l identical everywhere, each neuron only ever reaches the
        same residue class -- the stack is NOT fully connected.  This is the
        contrapositive of the paper's lemma."""
        ks = np.zeros((2, 2), dtype=int)  # every block has k = 0
        layers = [_pd((8, 8), 4, ks=ks) for _ in range(3)]
        frac = connectivity_fraction(layers)
        assert frac < 1.0
        # with pure diagonals the reachable set is exactly 2 blocks wide
        assert frac == pytest.approx(0.25, abs=0.01)

    def test_natural_indexing_becomes_fully_connected_with_depth(self):
        """Paper's lemma: non-identical k_l -> no neuron is blocked away.
        Two natural-indexed PD layers of p=4 already mix all positions."""
        layers = [_pd((16, 16), 4, scheme="natural") for _ in range(2)]
        assert is_fully_connected(layers)

    def test_random_indexing_fully_connected(self):
        layers = [
            _pd((16, 16), 4, scheme="random", seed=s) for s in range(3)
        ]
        assert is_fully_connected(layers)

    def test_one_layer_alone_is_not_fully_connected(self):
        """A single PD layer with p>1 cannot connect everything -- depth
        (and varying k_l) is what restores connectivity."""
        assert connectivity_fraction([_pd((16, 16), 4)]) < 1.0

    def test_connectivity_grows_with_depth(self):
        stacks = [
            [_pd((16, 16), 8, scheme="natural") for _ in range(depth)]
            for depth in (1, 2, 3)
        ]
        fracs = [connectivity_fraction(stack) for stack in stacks]
        assert fracs[0] < fracs[1] <= fracs[2]


class TestStorageComparison:
    def test_pd_always_cheaper_at_same_nnz(self):
        for point in storage_comparison_curve():
            assert point.pd_advantage > 1.0

    def test_advantage_close_to_index_overhead_ratio(self):
        """With 4-bit weights + 4-bit indices, unstructured pays ~2x
        (EIE's '8 bits instead of 4' from Sec. II-B)."""
        point = storage_comparison_curve(compressions=(10,))[0]
        assert 1.8 < point.pd_advantage < 2.2

    def test_curve_covers_requested_compressions(self):
        curve = storage_comparison_curve(compressions=(2, 4, 8))
        assert [pt.compression for pt in curve] == [2, 4, 8]

    def test_bits_decrease_with_compression(self):
        curve = storage_comparison_curve(compressions=(2, 4, 8, 16))
        pd_bits = [pt.pd_bits for pt in curve]
        assert pd_bits == sorted(pd_bits, reverse=True)

    def test_as_row_format(self):
        row = storage_comparison_curve(compressions=(4,))[0].as_row()
        assert row[0] == 4 and len(row) == 4
