"""Tests for approximation power and memory-energy analyses."""

import numpy as np
import pytest

from repro.analysis import (
    AccessEnergyModel,
    approximation_error_curve,
    fit_function,
    weight_access_energy,
)


class TestApproximationPower:
    def test_fit_returns_reasonable_error(self):
        result = fit_function(width=16, p=4, steps=200, seed=0)
        assert result.width == 16
        assert result.parameters > 0
        assert 0.0 < result.l2_error < 2.0

    def test_pd_parameter_count_below_dense(self):
        dense = fit_function(width=32, p=None, steps=50, seed=0)
        compressed = fit_function(width=32, p=4, steps=50, seed=0)
        assert compressed.parameters < dense.parameters

    def test_error_decreases_with_width(self):
        """The O(1/n) claim, qualitatively: more parameters, less error."""
        curve = approximation_error_curve(widths=(8, 32), p=4, steps=400, seed=0)
        assert curve[-1].l2_error < curve[0].l2_error

    def test_curve_covers_requested_widths(self):
        curve = approximation_error_curve(widths=(8, 16), p=2, steps=50)
        assert [r.width for r in curve] == [8, 16]


class TestMemoryEnergy:
    def test_on_chip_when_fits(self):
        report = weight_access_energy(1000, 2000)
        assert report.fits_on_chip
        assert report.energy_uj == pytest.approx(1000 * 5.0 / 1e6)

    def test_off_chip_overflow_pays_dram(self):
        model = AccessEnergyModel(sram_pj=5.0, dram_pj=640.0)
        report = weight_access_energy(2000, 1000, model)
        assert not report.fits_on_chip
        expected = (1000 * 5.0 + 1000 * 640.0) / 1e6
        assert report.energy_uj == pytest.approx(expected)

    def test_dram_premium_over_100x(self):
        """The paper's premise: DRAM >100x SRAM energy."""
        model = AccessEnergyModel()
        assert model.dram_pj / model.sram_pj > 100

    def test_compression_that_fits_saves_big(self):
        """PD compression that brings a model on-chip: the motivation."""
        budget = 10_000
        dense = weight_access_energy(80_000, budget)
        compressed = weight_access_energy(8_000, budget)  # 10x compression
        assert compressed.fits_on_chip and not dense.fits_on_chip
        assert dense.energy_uj / compressed.energy_uj > 100

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            weight_access_energy(-1, 10)
