"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.hw import UnknownWorkloadError, find_workload


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "Alex-FC6"
        assert args.pes == 32

    def test_storage_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["storage", "--model", "vgg"])


class TestCommands:
    def test_simulate_runs(self, capsys):
        assert main(["simulate", "--workload", "NMT-1"]) == 0
        out = capsys.readouterr().out
        assert "NMT-1" in out and "cycles" in out

    def test_simulate_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "bogus"])

    def test_simulate_unknown_backend_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "NMT-1", "--backend", "bogus"])

    def test_simulate_with_pinned_backend(self, capsys):
        assert main(
            ["simulate", "--workload", "NMT-1", "--backend", "gather"]
        ) == 0
        assert "NMT-1" in capsys.readouterr().out

    def test_simulate_backend_does_not_leak_process_default(self):
        from repro.core import default_backend

        before = default_backend()
        assert main(
            ["simulate", "--workload", "NMT-1", "--backend", "gather"]
        ) == 0
        assert default_backend() == before

    def test_compare_runs(self, capsys):
        assert main(["compare", "--workload", "Alex-FC8"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_storage_alexnet(self, capsys):
        assert main(["storage", "--model", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "compression" in out and "9." in out

    def test_scale_runs(self, capsys):
        assert main(["scale", "--workload", "NMT-1"]) == 0
        out = capsys.readouterr().out
        assert "64 PEs" in out

    def test_memory_runs(self, capsys):
        assert main(["memory", "--sram-mb", "8"]) == 0
        out = capsys.readouterr().out
        assert "uJ/inference" in out


class TestWorkloadLookup:
    """The lookup is library code: typed errors, never SystemExit."""

    def test_find_workload_case_insensitive(self):
        assert find_workload("alex-fc6").name == "Alex-FC6"

    def test_find_workload_raises_typed_error(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            find_workload("bogus")
        assert not isinstance(excinfo.value, SystemExit)
        assert "Alex-FC6" in str(excinfo.value)  # message lists valid names

    def test_unknown_workload_is_lookup_error(self):
        assert issubclass(UnknownWorkloadError, LookupError)
