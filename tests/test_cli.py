"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "Alex-FC6"
        assert args.pes == 32

    def test_storage_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["storage", "--model", "vgg"])


class TestCommands:
    def test_simulate_runs(self, capsys):
        assert main(["simulate", "--workload", "NMT-1"]) == 0
        out = capsys.readouterr().out
        assert "NMT-1" in out and "cycles" in out

    def test_simulate_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "bogus"])

    def test_compare_runs(self, capsys):
        assert main(["compare", "--workload", "Alex-FC8"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_storage_alexnet(self, capsys):
        assert main(["storage", "--model", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "compression" in out and "9." in out

    def test_scale_runs(self, capsys):
        assert main(["scale", "--workload", "NMT-1"]) == 0
        out = capsys.readouterr().out
        assert "64 PEs" in out

    def test_memory_runs(self, capsys):
        assert main(["memory", "--sram-mb", "8"]) == 0
        out = capsys.readouterr().out
        assert "uJ/inference" in out
