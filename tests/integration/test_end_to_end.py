"""Integration tests: train -> compress -> quantize -> simulate flows.

These cross-module tests exercise the pipelines a user of the library
actually runs, mirroring the paper's end-to-end story: a PD model is
trained in software, its layers execute on the simulated engine, and the
engine's behaviour (zero-skipping, storage, quantized datapath) is
consistent with the software model.
"""

import numpy as np
import pytest

from repro.core import approximate_pd
from repro.datasets import GaussianMixtureDataset
from repro.hw import EngineConfig, PEConfig, PermDNNEngine
from repro.metrics import model_storage_report
from repro.nn import (
    Adam,
    CrossEntropyLoss,
    Linear,
    PermDiagLinear,
    ReLU,
    Sequential,
    Trainer,
    evaluate_classifier,
)


@pytest.fixture(scope="module")
def trained_pd_model():
    dataset = GaussianMixtureDataset(
        num_features=64, num_classes=8, separation=4.0, seed=0
    )
    x_train, y_train, x_test, y_test = dataset.train_test_split(1500, 400)
    model = Sequential(
        PermDiagLinear(64, 64, p=4, rng=0),
        ReLU(),
        PermDiagLinear(64, 8, p=2, rng=1),
    )
    trainer = Trainer(
        model, Adam(model.parameters(), lr=3e-3), CrossEntropyLoss(),
        batch_size=64, rng=0,
    )
    trainer.fit(x_train, y_train, epochs=8)
    accuracy = evaluate_classifier(model, x_test, y_test)
    return model, accuracy, (x_test, y_test)


class TestTrainedModelOnEngine:
    def test_engine_reproduces_software_network(self, trained_pd_model):
        """Run the trained network layer-by-layer on the simulated engine
        and bit-compare against the software forward pass."""
        model, _, (x_test, _) = trained_pd_model
        engine = PermDNNEngine(EngineConfig(n_pe=4, pe=PEConfig(n_mul=2, n_acc=16)))
        sample = x_test[0]
        layers = [
            (model[0].matrix, "relu"),
            (model[2].matrix, None),
        ]
        hw_out, results = engine.run_network(layers, sample)
        model.eval()
        sw_out = model.forward(sample[None, :])[0] - (
            0.0 if model[2].bias is None else 0.0
        )
        # engine has no bias adders in this path; compare without biases
        ref = np.maximum(model[0].matrix.matvec(sample) + 0, 0)
        ref = model[2].matrix.matvec(ref)
        np.testing.assert_allclose(hw_out, ref, atol=1e-12)
        assert len(results) == 2

    def test_relu_sparsity_skipped_in_second_layer(self, trained_pd_model):
        """The ReLU zeros produced by layer 1 must be skipped by layer 2 --
        the cross-layer zero-skipping story of Fig. 5/6."""
        model, _, (x_test, _) = trained_pd_model
        engine = PermDNNEngine(EngineConfig(n_pe=4, pe=PEConfig(n_mul=2, n_acc=16)))
        sample = x_test[1]
        _, results = engine.run_network(
            [(model[0].matrix, "relu"), (model[2].matrix, None)], sample
        )
        relu_zeros = int((results[0].output == 0).sum())
        assert relu_zeros > 0
        assert results[1].skipped_columns == relu_zeros

    def test_accuracy_good_enough_to_matter(self, trained_pd_model):
        _, accuracy, _ = trained_pd_model
        assert accuracy > 0.8


class TestCompressThenSimulate:
    def test_pretrained_dense_to_engine_flow(self):
        """Sec. III-F + Sec. IV together: compress a trained dense layer,
        then execute the PD result on the engine."""
        rng = np.random.default_rng(0)
        dense_layer = Linear(48, 32, rng=rng)
        matrix = approximate_pd(dense_layer.weight.value, p=4, scheme="best")
        engine = PermDNNEngine(EngineConfig(n_pe=4, pe=PEConfig(n_mul=2, n_acc=8)))
        x = rng.normal(size=48)
        result = engine.run_fc_layer(matrix, x)
        np.testing.assert_allclose(result.output, matrix.matvec(x), atol=1e-12)
        # compression carried through: engine stores 1/4 the weights
        assert matrix.nnz * 4 == 48 * 32

    def test_storage_report_matches_engine_capacity_accounting(self):
        model = Sequential(
            PermDiagLinear(256, 256, p=8, bias=False, rng=0),
        )
        report = model_storage_report(model)
        engine = PermDNNEngine()
        matrix = model[0].matrix
        # engine capacity check uses the same nnz the report counts
        weights_per_pe = int(np.ceil(matrix.nnz / engine.config.n_pe))
        assert report.stored_weights == matrix.nnz
        engine.weight_sram.check_fits(
            weights_per_pe, engine.config.weight_sharing_bits
        )

    def test_bit_accurate_engine_tracks_quantized_software(self):
        """Quantized engine output must stay close to the float model --
        the 'negligible accuracy loss' of the 16-bit rows in Tables II-V."""
        rng = np.random.default_rng(1)
        from repro.core import BlockPermutedDiagonalMatrix

        matrix = BlockPermutedDiagonalMatrix.random((128, 128), 8, rng=rng)
        x = rng.normal(size=128)
        engine = PermDNNEngine(EngineConfig(n_pe=8, pe=PEConfig(n_mul=4, n_acc=16)))
        exact = engine.run_fc_layer(matrix, x).output
        quant = engine.run_fc_layer(matrix, x, bit_accurate=True).output
        rel = np.linalg.norm(exact - quant) / np.linalg.norm(exact)
        # 4-bit shared weights on Gaussian data are the worst case;
        # ~13% output-norm perturbation leaves decisions intact
        assert rel < 0.2


class TestPruningVsPDStorageParity:
    def test_same_density_pd_stores_half_the_bits(self):
        """At EIE's 4+4-bit format vs PD's 4-bit + amortized k_l, identical
        non-zero counts cost ~2x more in EIE format (Fig. 4 end to end)."""
        from repro.core.storage import (
            pd_storage_bits,
            unstructured_sparse_storage_bits,
        )

        m = n = 512
        p = 8
        nnz = m * n // p
        pd_bits = pd_storage_bits(m, n, p, weight_bits=4)
        eie_bits = unstructured_sparse_storage_bits(
            nnz, weight_bits=4, index_bits=4, num_columns=n
        )
        assert eie_bits / pd_bits > 1.8
