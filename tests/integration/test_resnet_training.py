"""Integration test: ResNet with PD convolutions must generalize.

Regression guard for the dataset bug where train/test splits drew
*different class definitions* (class textures must depend only on
``class_seed``, never on the sampling ``seed``).
"""

import numpy as np
import pytest

from repro.datasets import make_cifar_like
from repro.models import RESNET20_POLICY, build_resnet
from repro.models.resnet import PDPolicy
from repro.nn import Adam, CrossEntropyLoss, Trainer


class TestCifarLikeSplitConsistency:
    def test_class_definitions_shared_across_seeds(self):
        """Noise-free samples of the same class from different sampling
        seeds must correlate strongly (same underlying texture)."""
        x0, y0 = make_cifar_like(80, noise=0.0, seed=0)
        x1, y1 = make_cifar_like(80, noise=0.0, seed=1)
        for cls in range(3):
            a = x0[y0 == cls]
            b = x1[y1 == cls]
            if len(a) == 0 or len(b) == 0:
                continue
            # compare phase-invariant spectra
            fa = np.abs(np.fft.fft2(a[0, 0]))
            fb = np.abs(np.fft.fft2(b[0, 0]))
            corr = np.corrcoef(fa.ravel(), fb.ravel())[0, 1]
            assert corr > 0.9, f"class {cls} differs across sampling seeds"

    def test_different_class_seed_changes_classes(self):
        x0, y0 = make_cifar_like(80, noise=0.0, seed=0, class_seed=1)
        x1, y1 = make_cifar_like(80, noise=0.0, seed=0, class_seed=2)
        fa = np.abs(np.fft.fft2(x0[y0 == 0][0, 0]))
        fb = np.abs(np.fft.fft2(x1[y1 == 0][0, 0]))
        corr = np.corrcoef(fa.ravel(), fb.ravel())[0, 1]
        assert corr < 0.9


class TestResNetGeneralizes:
    @pytest.mark.parametrize(
        "policy", [PDPolicy(1, 1), RESNET20_POLICY], ids=["dense", "pd"]
    )
    def test_test_accuracy_far_above_chance(self, policy):
        x_train, y_train = make_cifar_like(400, noise=0.25, seed=0)
        x_test, y_test = make_cifar_like(150, noise=0.25, seed=1)
        model = build_resnet(depth=8, policy=policy, base_width=8, rng=0)
        trainer = Trainer(
            model, Adam(model.parameters(), lr=3e-3), CrossEntropyLoss(),
            batch_size=50, rng=0,
        )
        history = trainer.fit(x_train, y_train, x_test, y_test, epochs=2)
        assert history.final_test_accuracy > 0.4  # chance is 0.1
