"""Tests for the runtime aliasing/plan-cache sanitizer."""

import numpy as np
import pytest

from repro.core.block_perm_diag import BlockPermutedDiagonalMatrix
from repro.debug import (
    AliasingViolationError,
    PlanRebuildError,
    current_sanitizer,
    sanitize,
    sanitize_enabled,
)


def _matrix(seed=0, blocks=(4, 3), p=4):
    rng = np.random.default_rng(seed)
    ks = rng.integers(0, p, size=blocks)
    data = rng.standard_normal((*blocks, p))
    return BlockPermutedDiagonalMatrix(data, ks)


class TestPlanCounting:
    def test_first_build_is_not_a_rebuild(self):
        m = _matrix()
        with sanitize() as s:
            m.matmat(np.zeros((2, m.shape[1])))
            assert s.stats.plan_builds == 1
            assert s.stats.plan_rebuilds == 0
            s.assert_no_plan_rebuild()

    def test_repeat_products_hit_the_cache(self):
        m = _matrix()
        x = np.zeros((2, m.shape[1]))
        with sanitize() as s:
            for _ in range(5):
                m.matmat(x)
            assert s.stats.plan_builds == 1

    def test_clobbered_plan_counts_as_rebuild(self):
        m = _matrix()
        with sanitize() as s:
            m.matmat(np.zeros((2, m.shape[1])))
            m._plan = None  # what RPR001 forbids outside core/
            m.matmat(np.zeros((2, m.shape[1])))
            assert s.stats.plan_rebuilds == 1
            with pytest.raises(PlanRebuildError, match="rebuild"):
                s.assert_no_plan_rebuild()

    def test_build_before_sanitizer_still_counts_as_rebuild(self):
        m = _matrix()
        m.matmat(np.zeros((2, m.shape[1])))  # plan built unwatched
        with sanitize() as s:
            m.matmat(np.zeros((2, m.shape[1])))  # marks "has built"
            m._plan = None
            m.matmat(np.zeros((2, m.shape[1])))
            assert s.stats.plan_rebuilds == 1

    def test_adopted_plan_counts_zero_builds(self):
        m = _matrix()
        blob = m.plan_bytes()
        clone = BlockPermutedDiagonalMatrix.from_plan(blob, m.data)
        with sanitize() as s:
            clone.matmat(np.zeros((2, clone.shape[1])))
            assert s.stats.plan_builds == 0
            assert s.stats.plan_rebuilds == 0

    def test_shared_plans_count_once_per_family(self):
        m = _matrix()
        with sanitize() as s:
            siblings = [m.like(m.data * i) for i in range(1, 4)]
            x = np.zeros((2, m.shape[1]))
            for sib in siblings:
                sib.matmat(x)
            assert s.stats.plan_builds == 1


class TestShardAliasing:
    def test_shards_verified_and_frozen(self):
        m = _matrix()
        with sanitize() as s:
            shards = m.row_shards(2)
            assert s.stats.shard_checks == 2
            assert s.stats.frozen_buffers == 2
            for shard in shards:
                assert np.shares_memory(shard.data, m.data)
                with pytest.raises(ValueError):
                    shard.data[0, 0, 0] = 1.0
            # writes through the parent stay visible in every shard
            m.data[0, 0, 0] = 42.0
            assert shards[0].data[0, 0, 0] == 42.0
        # This scope's freeze is undone on exit.  Under REPRO_SANITIZE=1
        # the autouse fixture holds an *outer* sanitizer whose own freeze
        # (applied when the inner wrapper chained to it) stays until
        # teardown -- so "restored" means writable only with no outer scope.
        expect_writable = current_sanitizer() is None
        for shard in shards:
            assert shard.data.flags.writeable == expect_writable

    def test_copying_row_shard_raises(self, monkeypatch):
        m = _matrix()
        orig = BlockPermutedDiagonalMatrix.row_shard

        def copying_row_shard(self, start, stop):
            out = orig(self, start, stop)
            out.data = np.array(out.data)  # decouple: breaks the contract
            return out

        monkeypatch.setattr(
            BlockPermutedDiagonalMatrix, "row_shard", copying_row_shard
        )
        with sanitize():
            with pytest.raises(AliasingViolationError, match="copy"):
                m.row_shard(0, 2)

    def test_assert_aliases_helper(self):
        a = np.zeros(4)
        with sanitize() as s:
            s.assert_aliases(a, a[1:], "slice of a")
            with pytest.raises(AliasingViolationError, match="widget"):
                s.assert_aliases(a, np.zeros(4), "widget")

    def test_products_unaffected_by_freezing(self):
        m = _matrix(seed=3)
        x = np.random.default_rng(4).standard_normal((5, m.shape[1]))
        expected = m.matmat(x)
        with sanitize():
            shards = m.row_shards(2)
            stacked = np.hstack([shard.matmat(x) for shard in shards])
        np.testing.assert_array_equal(stacked, expected)


class TestScopes:
    def test_patches_undone_on_exit(self):
        before_plan = BlockPermutedDiagonalMatrix._get_plan
        before_shard = BlockPermutedDiagonalMatrix.row_shard
        with sanitize():
            assert BlockPermutedDiagonalMatrix._get_plan is not before_plan
            assert BlockPermutedDiagonalMatrix.row_shard is not before_shard
        assert BlockPermutedDiagonalMatrix._get_plan is before_plan
        assert BlockPermutedDiagonalMatrix.row_shard is before_shard

    def test_patches_undone_on_exception(self):
        before = BlockPermutedDiagonalMatrix._get_plan
        with pytest.raises(RuntimeError, match="boom"):
            with sanitize():
                raise RuntimeError("boom")
        assert BlockPermutedDiagonalMatrix._get_plan is before

    def test_nested_scopes_both_count(self):
        m = _matrix()
        with sanitize() as outer:
            with sanitize() as inner:
                assert current_sanitizer() is inner
                m.row_shards(2)
                assert inner.stats.shard_checks == 2
            assert current_sanitizer() is outer
            assert outer.stats.shard_checks == 2

    def test_current_sanitizer_outside_any_scope(self):
        # The REPRO_SANITIZE=1 autouse fixture may hold an outer scope;
        # relative depth is what this asserts.
        baseline = current_sanitizer()
        with sanitize() as s:
            assert current_sanitizer() is s
        assert current_sanitizer() is baseline

    def test_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitize_enabled()


class TestSanctionedMutationUnderFreeze:
    def test_set_structure_remasks_frozen_buffer_in_place(self):
        m = _matrix(blocks=(2, 2), p=4)
        buf = m.data
        buf.setflags(write=False)
        try:
            m.set_structure(shape=(7, 7))
            assert m.data is buf  # aliasing survived the re-mask
            assert not buf.flags.writeable  # freeze restored
            support = m._get_plan().support
            assert not np.any(np.asarray(m.data)[~support])
        finally:
            buf.setflags(write=True)

    def test_set_structure_falls_back_to_copy_when_immutable(self):
        rng = np.random.default_rng(5)
        base = rng.standard_normal((2, 2, 4))
        base.setflags(write=False)
        view = base[:]  # view of a read-only base: truly immutable
        m = BlockPermutedDiagonalMatrix(view, rng.integers(0, 4, (2, 2)))
        m.set_structure(shape=(7, 7))
        assert not np.shares_memory(m.data, base)
        support = m._get_plan().support
        assert not np.any(m.data[~support])
        # the original buffer was never written
        assert np.any(base[~support])
