"""Factory manifest registry + batch runner (resume, index.json)."""

import json
import os

import numpy as np
import pytest

from repro.compress import (
    ZooEntry,
    ZooEntryError,
    format_zoo_results,
    register_zoo_entry,
    run_zoo,
    zoo_entry,
    zoo_names,
)
from repro.nn import Linear, ReLU, Sequential


def _tiny_builder(seed: int):
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(12, 16, bias=False, rng=rng),
        ReLU(),
        Linear(16, 8, bias=False, rng=rng),
    )


def _tiny_dataset(seed: int):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(64, 12))
    y = rng.integers(0, 8, size=64)
    return x[:48], y[:48], x[48:], y[48:]


@pytest.fixture
def tiny_entry():
    entry = ZooEntry(
        name="tiny-test-entry",
        description="test-only entry",
        builder=_tiny_builder,
        dataset=_tiny_dataset,
        fc_p=4,
        head_p=4,
        pretrain_epochs=1,
        finetune_epochs=1,
        batch_size=16,
        num_shards=2,
    )
    register_zoo_entry(entry)
    yield entry
    from repro.compress.zoo import _ZOO

    del _ZOO["tiny-test-entry"]


class TestRegistry:
    def test_builtin_entries_present(self):
        names = zoo_names()
        for expected in ("lenet", "lenet-smoke", "alexnet-fc", "resnet20",
                         "nmt"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(ZooEntryError):
            zoo_entry("no-such-entry")

    def test_overrides_do_not_touch_registry(self, tiny_entry):
        widened = zoo_entry("tiny-test-entry", num_shards=4, seed=3)
        assert widened.num_shards == 4
        assert widened.seed == 3
        assert zoo_entry("tiny-test-entry").num_shards == 2


class TestRunZoo:
    def test_run_then_resume(self, tmp_path, tiny_entry):
        out = str(tmp_path / "zoo")
        first = run_zoo(out, ("tiny-test-entry",))
        assert [r.status for r in first] == ["ok"]
        assert first[0].report.verified

        entry_dir = os.path.join(out, "tiny-test-entry")
        assert os.path.exists(os.path.join(entry_dir, "report.json"))
        assert os.path.exists(
            os.path.join(entry_dir, "bundle", "manifest.json")
        )

        second = run_zoo(out, ("tiny-test-entry",))
        assert [r.status for r in second] == ["cached"]
        assert second[0].report == first[0].report

        third = run_zoo(out, ("tiny-test-entry",), resume=False)
        assert [r.status for r in third] == ["ok"]

    def test_index_json_headlines(self, tmp_path, tiny_entry):
        out = str(tmp_path / "zoo")
        results = run_zoo(out, ("tiny-test-entry",))
        with open(os.path.join(out, "index.json")) as handle:
            index = json.load(handle)
        assert index["schema_version"] == 1
        record = index["entries"]["tiny-test-entry"]
        assert record["status"] == "ok"
        assert record["verified"] is True
        assert record["report"] == "tiny-test-entry/report.json"
        assert record["bundle"] == "tiny-test-entry/bundle"
        assert record["compression_ratio"] == pytest.approx(
            results[0].report.compression_ratio, abs=1e-4
        )

    def test_corrupt_report_triggers_rerun(self, tmp_path, tiny_entry):
        out = str(tmp_path / "zoo")
        run_zoo(out, ("tiny-test-entry",))
        report_path = os.path.join(out, "tiny-test-entry", "report.json")
        with open(report_path, "w") as handle:
            handle.write("{not json")
        results = run_zoo(out, ("tiny-test-entry",))
        assert [r.status for r in results] == ["ok"]

    def test_format_zoo_results(self, tmp_path, tiny_entry):
        results = run_zoo(str(tmp_path / "zoo"), ("tiny-test-entry",))
        text = format_zoo_results(results)
        assert "tiny-test-entry" in text
        assert "top1_accuracy" in text
