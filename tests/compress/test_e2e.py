"""End-to-end factory contract: dense LeNet -> staged bundle -> serving.

The acceptance path of the compression factory, seeded end to end: a
dense LeNet-style network is searched, converted, fine-tuned, and
exported as a v3 staged bundle; ``ModelServer.from_bundle`` must then
cold-start with **zero** index-plan builds (asserted in-test under
``sanitize()``) and serve bit-identically to serving the compressed
model live -- which itself must match the model's own ``forward``.
"""

import numpy as np
import pytest

from repro.compress import compress_model
from repro.datasets import make_digits
from repro.debug import sanitize
from repro.nn import Flatten, Linear, MaxPool2D, ReLU, Sequential
from repro.nn.layers.conv2d import Conv2D
from repro.serve import ModelServer


def _dense_lenet(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2D(1, 6, 5, padding=2, bias=False, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Linear(6 * 14 * 14, 32, bias=False, rng=rng),
        ReLU(),
        Linear(32, 10, bias=False, rng=rng),
    )


@pytest.fixture(scope="module")
def factory_run(tmp_path_factory):
    x_train, y_train = make_digits(200, noise=0.12, seed=0)
    x_test, y_test = make_digits(80, noise=0.12, seed=1)
    bundle_dir = str(tmp_path_factory.mktemp("e2e") / "bundle")
    result = compress_model(
        _dense_lenet(),
        (x_train, y_train, x_test, y_test),
        name="lenet-e2e",
        fc_p=8,
        conv_p=2,
        head_p=2,
        finetune_epochs=1,
        seed=0,
        num_shards=2,
        input_hw=(28, 28),
        bundle_dir=bundle_dir,
        verify=True,
        # Pinned explicitly: this module-scoped fixture runs before the
        # function-scoped dtype pin, so under the REPRO_VALUE_DTYPE=float32
        # CI leg a None here would export a float32 bundle while the
        # in-test reference server runs at the pinned float64.
        value_dtype="float64",
    )
    probe = np.asarray(x_test[:6], dtype=np.float64)
    return result, probe


class TestEndToEnd:
    def test_report_is_complete_and_verified(self, factory_run):
        report = factory_run[0].report
        assert report.verified
        assert report.compression_ratio >= 2.0
        assert report.metric_name == "top1_accuracy"
        assert len(report.layers) == 3  # conv + 2 FC
        assert report.timings.total_s > 0.0

    def test_bundle_serves_bit_identically_with_zero_plan_builds(
        self, factory_run
    ):
        result, probe = factory_run
        flat = probe.reshape(probe.shape[0], -1)

        live = ModelServer.from_model(
            result.model, input_hw=(28, 28), num_shards=2, num_threads=1
        )
        live.submit_many(flat)
        expected = np.stack(live.drain().outputs)

        with sanitize() as guard:
            server = ModelServer.from_bundle(result.bundle_dir, num_threads=1)
            server.submit_many(flat)
            served = np.stack(server.drain().outputs)
            assert guard.stats.plan_builds == 0
            assert guard.stats.plan_rebuilds == 0

        np.testing.assert_array_equal(served, expected)

    def test_bundle_matches_model_forward(self, factory_run):
        result, probe = factory_run
        flat = probe.reshape(probe.shape[0], -1)
        server = ModelServer.from_bundle(result.bundle_dir, num_threads=1)
        server.submit_many(flat)
        served = np.stack(server.drain().outputs)
        np.testing.assert_allclose(
            served, result.model.forward(probe), atol=1e-10
        )
