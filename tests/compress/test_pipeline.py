"""Conversion units: convert_model / convert_cell / compress_arrays."""

import numpy as np
import pytest

from repro.compress import (
    CompressionError,
    compress_arrays,
    convert_cell,
    convert_model,
)
from repro.nn import (
    Dropout,
    Flatten,
    Linear,
    MaxPool2D,
    PermDiagConv2D,
    PermDiagLinear,
    ReLU,
    Sequential,
)
from repro.nn.layers.conv2d import Conv2D
from repro.nn.layers.recurrent import LSTMCell


def _mlp(seed=0, bias=False):
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(16, 24, bias=bias, rng=rng),
        ReLU(),
        Linear(24, 24, bias=bias, rng=rng),
        ReLU(),
        Linear(24, 5, bias=bias, rng=rng),
    )


class TestConvertModel:
    def test_all_layers_become_pd(self):
        compressed, reports = convert_model(_mlp(), fc_p=8, head_p=1)
        kinds = [type(layer) for layer in compressed.layers]
        assert kinds == [PermDiagLinear, ReLU, PermDiagLinear, ReLU,
                         PermDiagLinear]
        assert [r.p for r in reports] == [8, 8, 1]
        assert all(layer.bias is None
                   for layer in compressed.layers
                   if isinstance(layer, PermDiagLinear))

    def test_source_model_not_mutated(self):
        model = _mlp(seed=1)
        snapshot = [layer.weight.value.copy()
                    for layer in model.layers if isinstance(layer, Linear)]
        convert_model(model, fc_p=8, strategy="anneal")
        for layer, before in zip(
            [l for l in model.layers if isinstance(l, Linear)], snapshot
        ):
            np.testing.assert_array_equal(layer.weight.value, before)

    def test_p1_is_lossless(self):
        model = _mlp(seed=2)
        compressed, reports = convert_model(model, fc_p=1, head_p=1)
        x = np.random.default_rng(0).normal(size=(4, 16))
        np.testing.assert_allclose(
            compressed.forward(x), model.forward(x), atol=1e-12
        )
        assert all(r.retained_mass == pytest.approx(1.0) for r in reports)

    def test_narrow_layers_clamp_to_p1(self):
        rng = np.random.default_rng(3)
        model = Sequential(
            Conv2D(1, 6, 3, bias=False, rng=rng),  # in_channels=1 < conv_p
            ReLU(),
            Flatten(),
            Linear(6 * 4 * 4, 5, bias=False, rng=rng),
        )
        _, reports = convert_model(model, conv_p=4, head_p=1)
        assert reports[0].p == 1
        assert "p clamped to 1" in reports[0].note

    def test_nonzero_bias_is_dropped_and_noted(self):
        model = _mlp(seed=4, bias=True)
        for layer in model.layers:
            if isinstance(layer, Linear):
                layer.bias.value[...] = 1.0
        compressed, reports = convert_model(model, fc_p=8)
        assert all(layer.bias is None
                   for layer in compressed.layers
                   if isinstance(layer, PermDiagLinear))
        assert all("bias dropped" in r.note for r in reports)

    def test_already_pd_layers_pass_through(self):
        rng = np.random.default_rng(5)
        dense = Sequential(
            Linear(16, 24, bias=False, rng=rng),
            ReLU(),
            Linear(24, 5, bias=False, rng=rng),
        )
        once, _ = convert_model(dense, fc_p=8, head_p=1)
        twice, reports = convert_model(once, fc_p=8, head_p=1)
        x = rng.normal(size=(3, 16))
        np.testing.assert_array_equal(twice.forward(x), once.forward(x))
        assert all("already PD" in r.note for r in reports)

    def test_conv_and_pool_pipeline(self):
        rng = np.random.default_rng(6)
        model = Sequential(
            Conv2D(4, 8, 3, padding=1, bias=False, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Dropout(0.25),
            Flatten(),
            Linear(8 * 4 * 4, 5, bias=False, rng=rng),
        )
        compressed, reports = convert_model(model, conv_p=4, head_p=1)
        assert isinstance(compressed.layers[0], PermDiagConv2D)
        assert reports[0].kind == "conv"
        assert reports[0].p == 4
        x = rng.normal(size=(2, 4, 8, 8))
        assert compressed.forward(x).shape == (2, 5)

    def test_unconvertible_layer_raises_typed_error(self):
        class Exotic:
            pass

        with pytest.raises(CompressionError, match="no PD conversion rule"):
            convert_model(Sequential(Linear(8, 8, bias=False), Exotic()))

    def test_conv_plane_dtype_pinned_under_float32_default(self):
        # Regression: conv lowering quantizes per-offset matrices through
        # the channel plane's value dtype.  Under a float32 process
        # default (the REPRO_VALUE_DTYPE=float32 CI leg) an unpinned
        # plane would silently round the float64 training kernels on
        # every lowering -- exports labelled float64 then carry
        # float32-rounded values.
        from repro.core import set_default_value_dtype
        from repro.hw.conv_lowering import offset_matrices

        rng = np.random.default_rng(7)
        model = Sequential(
            Conv2D(4, 8, 3, padding=1, bias=False, rng=rng),
            Flatten(),
            Linear(8 * 8 * 8, 5, bias=False, rng=rng),
        )
        set_default_value_dtype("float32")
        try:
            compressed, _ = convert_model(model, conv_p=4, head_p=1)
        finally:
            set_default_value_dtype("float64")
        tensor = compressed.layers[0]._tensor
        assert tensor.plane.value_dtype == "float64"
        lowered = offset_matrices(tensor, value_dtype="float64")
        np.testing.assert_array_equal(
            lowered[4].data,
            np.ascontiguousarray(tensor.kernels[:, :, :, 1, 1]),
        )


class TestConvertCell:
    def test_projects_all_eight_gates(self):
        dense = LSTMCell(16, 32, p=None, rng=0)
        pd, reports = convert_cell(dense, p=8)
        assert pd.p == 8
        assert len(reports) == 8
        assert {r.kind for r in reports} == {"lstm-gate"}
        names = {r.name for r in reports}
        assert "LSTM.W[i]" in names and "LSTM.U[o]" in names
        for gate in ("i", "f", "g", "o"):
            np.testing.assert_array_equal(
                pd.biases[gate].value, dense.biases[gate].value
            )

    def test_rejects_already_pd_cell(self):
        with pytest.raises(CompressionError, match="already uses PD"):
            convert_cell(LSTMCell(16, 32, p=8, rng=0))

    def test_p_clamps_to_smallest_dimension(self):
        dense = LSTMCell(4, 32, p=None, rng=0)
        pd, reports = convert_cell(dense, p=8)
        assert pd.p == 1
        assert all("p clamped to 1" in r.note for r in reports)


class TestCompressArrays:
    def test_named_checkpoint(self):
        rng = np.random.default_rng(0)
        arrays = {
            "fc6": rng.normal(size=(32, 16)),
            "fc7": rng.normal(size=(16, 16)),
        }
        matrices, reports = compress_arrays(arrays, 4)
        assert set(matrices) == {"fc6", "fc7"}
        assert matrices["fc6"].nnz == 32 * 16 // 4
        assert [r.name for r in reports] == ["fc6", "fc7"]
        kept = matrices["fc7"].to_dense()
        mask = kept != 0
        np.testing.assert_array_equal(kept[mask], arrays["fc7"][mask])

    def test_value_dtype_forwarded(self):
        arrays = {"w": np.random.default_rng(1).normal(size=(8, 8))}
        matrices, _ = compress_arrays(arrays, 4, value_dtype="int16")
        assert matrices["w"].value_dtype == "int16"

    def test_non_2d_raises_typed_error(self):
        with pytest.raises(CompressionError, match="2-D weight matrices"):
            compress_arrays({"k": np.zeros((4, 4, 3, 3))}, 4)
