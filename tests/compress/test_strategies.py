"""Search strategies: registry, greedy optimality, annealed refinement."""

import numpy as np
import pytest

from repro.compress import (
    AnnealStrategy,
    CompressionStrategy,
    FCInterface,
    GreedyStrategy,
    get_strategy,
    register_strategy,
    retained_mass,
    strategy_names,
)
from repro.core import (
    BlockPermutedDiagonalMatrix,
    best_permutation_parameters,
    diagonal_energies,
)


def _relu(x):
    return np.maximum(x, 0.0)


class TestRegistry:
    def test_builtins_registered(self):
        assert "greedy" in strategy_names()
        assert "anneal" in strategy_names()

    def test_get_by_name_and_instance(self):
        greedy = get_strategy("greedy")
        assert isinstance(greedy, GreedyStrategy)
        assert get_strategy(greedy) is greedy
        assert isinstance(get_strategy("anneal"), AnnealStrategy)

    def test_register_custom_strategy(self):
        @register_strategy
        class _Probe(CompressionStrategy):
            name = "probe-strategy"

        try:
            assert isinstance(get_strategy("probe-strategy"), _Probe)
        finally:
            from repro.compress.strategies import _REGISTRY

            del _REGISTRY["probe-strategy"]

    def test_anneal_knobs_are_dataclass_fields(self):
        # `name` must stay a plain class attribute while the schedule
        # knobs stay configurable.
        strat = AnnealStrategy(steps=7, start_frac=0.1)
        assert strat.steps == 7
        assert strat.name == "anneal"
        assert AnnealStrategy.name == "anneal"


class TestRetainedMass:
    def test_matches_projection_energy(self):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(8, 8))
        projected = BlockPermutedDiagonalMatrix.from_dense(
            dense, 4, ks=best_permutation_parameters(dense, 4),
            value_dtype="float64",
        ).to_dense()
        assert retained_mass(dense, 4) == pytest.approx((projected**2).sum())

    def test_select_ks_is_argmax(self):
        rng = np.random.default_rng(1)
        dense = rng.normal(size=(16, 8))
        ks = get_strategy("greedy").select_ks(dense, 4, rng)
        np.testing.assert_array_equal(
            ks, diagonal_energies(dense, 4).argmax(axis=-1)
        )


class TestFCInterface:
    def test_apply_preserves_network_function(self):
        rng = np.random.default_rng(2)
        upper = rng.normal(size=(12, 6))
        lower = rng.normal(size=(5, 12))
        bias = rng.normal(size=12)
        x = rng.normal(size=(7, 6))
        before = _relu(x @ upper.T + bias) @ lower.T

        iface = FCInterface(
            upper=upper, lower=lower, p_upper=4, p_lower=1, upper_bias=bias
        )
        iface.apply(rng.permutation(12))
        after = _relu(x @ upper.T + bias) @ lower.T
        np.testing.assert_allclose(after, before, atol=1e-12)

    def test_mass_under_permutation(self):
        rng = np.random.default_rng(3)
        upper = rng.normal(size=(8, 8))
        lower = rng.normal(size=(8, 8))
        iface = FCInterface(upper=upper, lower=lower, p_upper=4, p_lower=4)
        perm = rng.permutation(8)
        expected = retained_mass(upper[perm], 4) + retained_mass(
            lower[:, perm], 4
        )
        assert iface.mass(perm) == pytest.approx(expected)


class TestAnneal:
    def test_never_worse_than_greedy(self):
        rng = np.random.default_rng(4)
        for seed in range(3):
            gen = np.random.default_rng(seed)
            upper = gen.normal(size=(16, 8))
            lower = gen.normal(size=(8, 16))
            baseline = retained_mass(upper, 4) + retained_mass(lower, 4)
            iface = FCInterface(
                upper=upper.copy(), lower=lower.copy(), p_upper=4, p_lower=4
            )
            AnnealStrategy(steps=200).refine([iface], rng)
            refined = retained_mass(iface.upper, 4) + retained_mass(
                iface.lower, 4
            )
            assert refined >= baseline - 1e-12

    def test_finds_planted_permutation_gain(self):
        # Scramble the hidden units of a PD-friendly pair; annealing must
        # recover a strictly better layout than the scrambled baseline.
        gen = np.random.default_rng(5)
        hidden = 16
        upper = np.zeros((hidden, 8))
        lower = np.zeros((8, hidden))
        base_u = BlockPermutedDiagonalMatrix.random(
            (hidden, 8), 4, rng=0, value_dtype="float64"
        ).to_dense()
        base_l = BlockPermutedDiagonalMatrix.random(
            (8, hidden), 4, rng=1, value_dtype="float64"
        ).to_dense()
        scramble = gen.permutation(hidden)
        upper[...] = base_u[scramble]
        lower[...] = base_l[:, scramble]
        baseline = retained_mass(upper, 4) + retained_mass(lower, 4)
        ideal = retained_mass(base_u, 4) + retained_mass(base_l, 4)
        assert baseline < ideal  # scrambling actually hurt

        iface = FCInterface(
            upper=upper, lower=lower, p_upper=4, p_lower=4
        )
        AnnealStrategy(steps=3000).refine([iface], np.random.default_rng(6))
        refined = retained_mass(iface.upper, 4) + retained_mass(
            iface.lower, 4
        )
        assert refined > baseline

    def test_noop_on_zero_energy_interface(self):
        iface = FCInterface(
            upper=np.zeros((8, 8)), lower=np.zeros((8, 8)),
            p_upper=4, p_lower=4,
        )
        AnnealStrategy(steps=50).refine([iface], np.random.default_rng(0))
        assert not np.any(iface.upper)
        assert not np.any(iface.lower)
