"""Typed error hierarchy of the compression factory (message-pinned)."""

import pytest

from repro.compress import (
    CompressionError,
    UnknownStrategyError,
    ZooEntryError,
    get_strategy,
    zoo_entry,
)


class TestHierarchy:
    def test_subclassing(self):
        assert issubclass(UnknownStrategyError, CompressionError)
        assert issubclass(UnknownStrategyError, LookupError)
        assert issubclass(ZooEntryError, CompressionError)
        assert issubclass(ZooEntryError, LookupError)
        assert issubclass(CompressionError, Exception)

    def test_attributes(self):
        err = UnknownStrategyError("nope", ("anneal", "greedy"))
        assert err.name == "nope"
        assert err.known == ("anneal", "greedy")
        err = ZooEntryError("nope", ("lenet",))
        assert err.name == "nope"
        assert err.known == ("lenet",)


class TestMessages:
    def test_unknown_strategy_message(self):
        with pytest.raises(
            UnknownStrategyError,
            match=r"unknown compression strategy 'nope' "
                  r"\(expected one of \('anneal', 'greedy'\)\)",
        ):
            get_strategy("nope")

    def test_unknown_zoo_entry_message(self):
        with pytest.raises(
            ZooEntryError,
            match=r"unknown zoo entry 'nope' \(expected one of \(",
        ):
            zoo_entry("nope")

    def test_both_catchable_as_compression_error(self):
        with pytest.raises(CompressionError):
            get_strategy("nope")
        with pytest.raises(CompressionError):
            zoo_entry("nope")
