"""CompressionReport schema: JSON round-trip, deltas, rendering."""

import json

import pytest

from repro.compress import CompressionReport, LayerReport, PhaseTimings


def _report() -> CompressionReport:
    return CompressionReport(
        model="probe",
        strategy="greedy",
        value_dtype="float32",
        metric_name="top1_accuracy",
        dense_metric=0.91,
        projected_metric=0.40,
        finetuned_metric=0.88,
        dense_weights=10_000,
        stored_weights=2_500,
        compression_ratio=4.0,
        finetune_epochs=3,
        num_shards=2,
        seed=7,
        verified=True,
        layers=[
            LayerReport(
                name="Linear(100 -> 100)",
                kind="fc",
                dense_shape=[100, 100],
                p=4,
                dense_weights=10_000,
                stored_weights=2_500,
                retained_mass=0.41,
                note="bias dropped (engine serves W*x only)",
            )
        ],
        timings=PhaseTimings(search_s=0.5, finetune_s=2.0, export_s=0.25),
    )


class TestReport:
    def test_metric_delta(self):
        assert _report().metric_delta == pytest.approx(-0.03)

    def test_layer_compression_ratio(self):
        layer = _report().layers[0]
        assert layer.compression_ratio == pytest.approx(4.0)

    def test_timings_total(self):
        assert _report().timings.total_s == pytest.approx(2.75)

    def test_json_roundtrip_via_file(self, tmp_path):
        report = _report()
        path = str(tmp_path / "nested" / "report.json")
        report.save(path)  # creates the parent directory
        loaded = CompressionReport.load(path)
        assert loaded == report
        # The serialized form carries the derived delta for consumers.
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["metric_delta"] == pytest.approx(-0.03)
        assert payload["schema_version"] == 1

    def test_summary_mentions_key_numbers(self):
        text = _report().summary()
        assert "probe" in text
        assert "4.00x" in text
        assert "verified=True" in text
        assert "bias dropped" in text
        assert "top1_accuracy" in text
