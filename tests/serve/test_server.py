"""Sharded serving: bit-exact outputs, ordering, determinism, stats."""

import numpy as np
import pytest

from repro.core import BlockPermutedDiagonalMatrix, PermutationSpec
from repro.hw import EngineConfig, PermDNNEngine
from repro.serve import ModelServer, ShardedLayer


def _stack(seed=0):
    """A 3-layer FC stack with padded shapes in the middle."""
    rng = np.random.default_rng(seed)
    spec = PermutationSpec(scheme="random", seed=seed)
    l1 = BlockPermutedDiagonalMatrix.random((64, 48), 4, spec=spec, rng=rng)
    l2 = BlockPermutedDiagonalMatrix.random((30, 64), 8, spec=spec, rng=rng)
    l3 = BlockPermutedDiagonalMatrix.random((16, 30), 2, spec=spec, rng=rng)
    return [(l1, "relu"), (l2, "tanh"), (l3, None)]


def _requests(num, n, seed=1, density=0.5):
    rng = np.random.default_rng(seed)
    xs = rng.normal(size=(num, n))
    xs[rng.random(size=xs.shape) > density] = 0.0
    return xs


def _unsharded_reference(layers, xs):
    engine = PermDNNEngine()
    current = xs
    for matrix, activation in layers:
        current, _ = engine.run_fc_batch(matrix, current, activation=activation)
    return current


class TestShardedCorrectness:
    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_sharded_equals_run_fc_batch_bit_for_bit(self, num_shards):
        layers = _stack()
        xs = _requests(7, 48)
        reference = _unsharded_reference(layers, xs)
        server = ModelServer(layers, num_shards=num_shards, max_batch_size=4)
        server.submit_many(xs)
        report = server.drain()
        np.testing.assert_array_equal(np.stack(report.outputs), reference)

    def test_single_layer_matches_engine_batch(self):
        matrix, activation = _stack()[0]
        xs = _requests(5, 48)
        outputs, _ = PermDNNEngine().run_fc_batch(
            matrix, xs, activation=activation
        )
        server = ModelServer([(matrix, activation)], num_shards=2)
        server.submit_many(xs)
        report = server.drain()
        np.testing.assert_array_equal(np.stack(report.outputs), outputs)

    def test_outputs_in_submission_order_despite_batching(self):
        layers = _stack()
        xs = _requests(9, 48)
        server = ModelServer(layers, num_shards=2, max_batch_size=2)
        rids = [server.submit(x, arrival_us=5.0 * i) for i, x in enumerate(xs)]
        assert rids == list(range(9))
        report = server.drain()
        assert len(report.batch_sizes) > 1  # really crossed batch boundaries
        np.testing.assert_array_equal(
            np.stack(report.outputs), _unsharded_reference(layers, xs)
        )

    def test_live_weight_updates_reach_shards(self):
        layers = _stack()
        server = ModelServer(layers, num_shards=2)
        xs = _requests(3, 48)
        layers[0][0].data[...] = 0.0  # zero the first layer in place
        server.submit_many(xs)
        report = server.drain()
        np.testing.assert_array_equal(
            np.stack(report.outputs), _unsharded_reference(layers, xs)
        )


class TestDeterminism:
    def test_identical_submissions_produce_identical_reports(self):
        layers = _stack()
        rng = np.random.default_rng(3)
        xs = _requests(8, 48, seed=4)
        arrivals = np.sort(rng.uniform(0, 40, size=8))
        reports = []
        for _ in range(2):
            server = ModelServer(
                layers, num_shards=2, max_batch_size=3, flush_deadline_us=10.0
            )
            server.submit_many(xs, arrivals_us=arrivals)
            reports.append(server.drain())
        first, second = reports
        assert first.batch_sizes == second.batch_sizes
        np.testing.assert_array_equal(first.latencies_us, second.latencies_us)
        np.testing.assert_array_equal(
            np.stack(first.outputs), np.stack(second.outputs)
        )
        assert first.makespan_us == second.makespan_us
        assert first.throughput_rps == second.throughput_rps


class TestTimingAndStats:
    def test_stats_cover_every_layer_and_shard(self):
        layers = _stack()
        server = ModelServer(layers, num_shards=2, max_batch_size=4)
        server.submit_many(_requests(6, 48))
        report = server.drain()
        assert len(report.layer_stats) == 3
        for per_shard in report.layer_stats:
            assert len(per_shard) == 2
            for stats in per_shard:
                assert stats.cycles > 0
                assert stats.batches == len(report.batch_sizes)
                assert stats.samples == 6
        assert all(c > 0 for c in report.layer_cycles)
        assert report.num_requests == 6
        assert report.throughput_rps > 0
        assert report.latency_percentile(99) >= report.latency_percentile(50)

    def test_sharding_improves_throughput(self):
        layers = _stack()
        xs = _requests(6, 48)
        results = {}
        for num_shards in (1, 2):
            server = ModelServer(layers, num_shards=num_shards, max_batch_size=6)
            server.submit_many(xs)
            results[num_shards] = server.drain().throughput_rps
        assert results[2] > results[1]

    def test_latency_includes_queueing_until_deadline_flush(self):
        layers = _stack()
        server = ModelServer(
            layers, num_shards=2, max_batch_size=16, flush_deadline_us=25.0
        )
        server.submit(_requests(1, 48)[0], arrival_us=0.0)
        report = server.drain()
        # one request never fills the batch: it waits out the deadline
        assert report.latencies_us[0] >= 25.0

    def test_drain_clears_the_queue(self):
        layers = _stack()
        server = ModelServer(layers, num_shards=2)
        server.submit_many(_requests(3, 48))
        assert server.drain().num_requests == 3
        empty = server.drain()
        assert empty.num_requests == 0
        assert empty.throughput_rps == 0.0


class TestValidation:
    def test_layer_chain_mismatch_rejected(self):
        l1 = BlockPermutedDiagonalMatrix.random((64, 48), 4, rng=0)
        l2 = BlockPermutedDiagonalMatrix.random((30, 60), 2, rng=0)
        with pytest.raises(ValueError, match="chain mismatch"):
            ModelServer([(l1, "relu"), (l2, None)], num_shards=2)

    def test_wrong_input_width_rejected(self):
        server = ModelServer(_stack(), num_shards=2)
        with pytest.raises(ValueError, match="expected input"):
            server.submit(np.zeros(47))

    def test_arrivals_clamped_non_decreasing(self):
        server = ModelServer(_stack(), num_shards=2)
        xs = _requests(2, 48)
        server.submit(xs[0], arrival_us=10.0)
        server.submit(xs[1], arrival_us=5.0)  # clamped up to 10.0
        report = server.drain()
        assert report.num_requests == 2

    def test_from_model_wraps_live_weights(self):
        from repro.models import build_alexnet_fc

        model = build_alexnet_fc(scale=64, dropout=0.0, rng=0)
        server = ModelServer.from_model(model, num_shards=2)
        xs = _requests(3, server.in_features)
        server.submit_many(xs)
        report = server.drain()
        model.eval()
        expected = model.forward(xs)
        np.testing.assert_allclose(
            np.stack(report.outputs), expected, atol=1e-10
        )

    def test_from_model_unsupported_layer_typed_error(self):
        from repro.nn import Linear, PermDiagLinear, ReLU, Sequential
        from repro.serve import UnsupportedLayerError

        model = Sequential(
            PermDiagLinear(16, 32, p=4, bias=False, rng=0),
            ReLU(),
            Linear(32, 4, rng=1),
        )
        with pytest.raises(
            UnsupportedLayerError, match=r"module 3 \(Linear\) is not servable"
        ) as excinfo:
            ModelServer.from_model(model, num_shards=2)
        assert excinfo.value.index == 3
        assert excinfo.value.layer_type == "Linear"

    def test_sharded_layer_from_mismatched_shards_rejected(self):
        a = BlockPermutedDiagonalMatrix.random((8, 8), 2, rng=0)
        b = BlockPermutedDiagonalMatrix.random((8, 6), 2, rng=0)
        with pytest.raises(ValueError, match="input widths"):
            ShardedLayer.from_shards([a, b], None)
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedLayer.from_shards([], None)


class TestAliasingContract:
    """The zero-copy chain: Parameter -> layer matrix -> every shard."""

    def test_parameter_to_shard_memory_chain(self):
        from repro.debug import sanitize
        from repro.models import build_alexnet_fc
        from repro.nn import PermDiagLinear

        model = build_alexnet_fc(scale=64, dropout=0.0, rng=0)
        with sanitize() as s:
            server = ModelServer.from_model(model, num_shards=2)
            pd_layers = [
                m for m in model.modules() if isinstance(m, PermDiagLinear)
            ]
            assert len(pd_layers) == len(server.layers)
            for module, sharded in zip(pd_layers, server.layers):
                for shard in sharded.shards:
                    assert np.shares_memory(shard.data, module.weight.value)
            expected_checks = sum(l.num_shards for l in server.layers)
            assert s.stats.shard_checks == expected_checks

    def test_in_place_weight_update_visible_to_serving(self):
        from repro.models import build_alexnet_fc
        from repro.nn import PermDiagLinear

        model = build_alexnet_fc(scale=64, dropout=0.0, rng=0)
        server = ModelServer.from_model(model, num_shards=2)
        xs = _requests(3, server.in_features)
        # mutate weights in place *after* the server was built
        for module in model.modules():
            if isinstance(module, PermDiagLinear):
                module.weight.value *= 0.5
        server.submit_many(xs)
        report = server.drain()
        model.eval()
        np.testing.assert_allclose(
            np.stack(report.outputs), model.forward(xs), atol=1e-10
        )
