"""Sharded image bundles: round trips, plan reuse, manifest validation."""

import json

import numpy as np
import pytest

import repro.core.block_perm_diag as mod
from repro.core import BlockPermutedDiagonalMatrix, PermutationSpec
from repro.serve import (
    ModelServer,
    export_model_bundle,
    export_sharded_bundle,
    load_sharded_bundle,
)


def _stack(seed=0):
    rng = np.random.default_rng(seed)
    spec = PermutationSpec(scheme="random", seed=seed)
    l1 = BlockPermutedDiagonalMatrix.random((64, 48), 4, spec=spec, rng=rng)
    l2 = BlockPermutedDiagonalMatrix.random((30, 64), 8, spec=spec, rng=rng)
    return [(l1, "relu"), (l2, None)]


class TestBundleRoundTrip:
    def test_loaded_bundle_serves_identically(self, tmp_path):
        layers = _stack()
        xs = np.random.default_rng(1).normal(size=(5, 48))
        ref = ModelServer(layers, num_shards=2, max_batch_size=4)
        ref.submit_many(xs)
        reference = ref.drain()

        export_sharded_bundle(tmp_path, layers, num_shards=2)
        server = ModelServer.from_bundle(tmp_path, max_batch_size=4)
        assert server.num_shards == 2
        server.submit_many(xs)
        report = server.drain()
        np.testing.assert_array_equal(
            np.stack(report.outputs), np.stack(reference.outputs)
        )
        assert report.batch_sizes == reference.batch_sizes

    def test_bundle_load_never_rebuilds_plans(self, tmp_path, monkeypatch):
        """The cold-start property: booting a sharded server from a bundle
        performs no index arithmetic at all."""
        layers = _stack()
        export_sharded_bundle(tmp_path, layers, num_shards=2)

        def boom(*args, **kwargs):
            raise AssertionError("bundle load rebuilt an index plan")

        monkeypatch.setattr(mod._IndexPlan, "__init__", boom)
        server = ModelServer.from_bundle(tmp_path)
        server.submit_many(np.random.default_rng(2).normal(size=(3, 48)))
        assert server.drain().num_requests == 3

    def test_manifest_describes_the_model(self, tmp_path):
        export_sharded_bundle(tmp_path, _stack(), num_shards=2)
        layers, manifest = load_sharded_bundle(tmp_path)
        assert manifest["num_shards"] == 2 and manifest["num_layers"] == 2
        assert [spec["shape"] for spec in manifest["layers"]] == [
            [64, 48], [30, 64],
        ]
        (shards1, act1), (shards2, act2) = layers
        assert act1 == "relu" and act2 is None
        assert sum(s.shape[0] for s in shards1) == 64
        assert sum(s.shape[0] for s in shards2) == 30

    def test_export_model_bundle(self, tmp_path):
        from repro.models import build_alexnet_fc

        model = build_alexnet_fc(scale=64, dropout=0.0, rng=0)
        export_model_bundle(tmp_path, model, num_shards=2)
        server = ModelServer.from_bundle(tmp_path)
        xs = np.random.default_rng(3).normal(size=(3, server.in_features))
        server.submit_many(xs)
        model.eval()
        np.testing.assert_allclose(
            np.stack(server.drain().outputs), model.forward(xs), atol=1e-10
        )


class TestBundleValidation:
    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            load_sharded_bundle(tmp_path)

    def test_version_mismatch_rejected(self, tmp_path):
        export_sharded_bundle(tmp_path, _stack(), num_shards=2)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["bundle_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            load_sharded_bundle(tmp_path)

    def test_shape_tampering_rejected(self, tmp_path):
        export_sharded_bundle(tmp_path, _stack(), num_shards=2)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["layers"][0]["shape"] = [63, 48]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="does not match"):
            load_sharded_bundle(tmp_path)

    def test_empty_stack_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            export_sharded_bundle(tmp_path, [], num_shards=2)

    def test_unservable_model_rejected(self, tmp_path):
        from repro.models import build_alexnet_fc

        dense = build_alexnet_fc(None, scale=64, dropout=0.0, rng=0)
        with pytest.raises(ValueError, match="not servable"):
            export_model_bundle(tmp_path, dense, num_shards=2)


class TestBundleSanitizer:
    def test_bundle_boot_and_serve_zero_plan_builds(self, tmp_path):
        """Sanitizer-counted cold-start property: loading a sharded bundle
        and serving from it performs no index arithmetic at all -- every
        plan arrives deserialized."""
        from repro.debug import sanitize

        layers = _stack()
        export_sharded_bundle(tmp_path, layers, num_shards=2)
        xs = np.random.default_rng(2).normal(size=(4, 48))
        with sanitize() as s:
            server = ModelServer.from_bundle(tmp_path, max_batch_size=4)
            server.submit_many(xs)
            server.drain()
            assert s.stats.plan_builds == 0
            assert s.stats.plan_rebuilds == 0
            s.assert_no_plan_rebuild()
