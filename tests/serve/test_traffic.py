"""Statistical sanity of the seeded open-loop arrival generators.

Every check here runs on a *fixed* seed, so the suite is deterministic:
the tolerances assert distributional shape (moments, KS distance, duty
cycles, rate modulation), not luck.
"""

import math

import numpy as np
import pytest

from repro.serve import (
    BurstyArrivals,
    DeterministicArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    UnknownArrivalProcessError,
    arrival_process_names,
    make_arrival_process,
)
from repro.serve.traffic import US_PER_S


def _ks_distance_vs_exponential(gaps, mean):
    """Kolmogorov-Smirnov distance of ``gaps`` vs Exp(mean)."""
    gaps = np.sort(np.asarray(gaps))
    n = gaps.size
    cdf = 1.0 - np.exp(-gaps / mean)
    empirical_hi = np.arange(1, n + 1) / n
    empirical_lo = np.arange(n) / n
    return max(
        np.max(np.abs(empirical_hi - cdf)),
        np.max(np.abs(empirical_lo - cdf)),
    )


class TestDeterministicArrivals:
    def test_even_spacing_at_rate(self):
        arrivals = DeterministicArrivals(1000.0).generate(5)
        np.testing.assert_allclose(arrivals, [0.0, 1000.0, 2000.0, 3000.0, 4000.0])

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="rate_rps"):
            DeterministicArrivals(0.0)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="num_requests"):
            DeterministicArrivals(1.0).generate(0)


class TestPoissonArrivals:
    def test_mean_gap_matches_offered_rate(self):
        rate = 2000.0
        arrivals = PoissonArrivals(rate, seed=7).generate(4000)
        gaps = np.diff(arrivals, prepend=0.0)
        assert np.mean(gaps) == pytest.approx(US_PER_S / rate, rel=0.05)

    def test_gap_variance_is_exponential(self):
        # Exponential gaps: std == mean (coefficient of variation 1).
        gaps = np.diff(PoissonArrivals(500.0, seed=3).generate(4000), prepend=0.0)
        assert np.std(gaps) / np.mean(gaps) == pytest.approx(1.0, abs=0.08)

    def test_ks_distance_vs_exponential_cdf(self):
        rate = 1000.0
        gaps = np.diff(PoissonArrivals(rate, seed=11).generate(2000), prepend=0.0)
        # 1.36 / sqrt(n) is the 5% KS critical value; the fixed seed makes
        # this a regression bound, not a flaky hypothesis test.
        assert _ks_distance_vs_exponential(gaps, US_PER_S / rate) < 1.36 / math.sqrt(2000)

    def test_strictly_increasing(self):
        arrivals = PoissonArrivals(100.0, seed=0).generate(512)
        assert np.all(np.diff(arrivals) > 0)


class TestBurstyArrivals:
    def test_duty_cycle_converges_to_configured(self):
        process = BurstyArrivals(1000.0, seed=5, duty_cycle=0.25, burst_len=8.0)
        trace = process.simulate(4000)
        assert trace.measured_duty_cycle == pytest.approx(0.25, abs=0.05)

    def test_mean_rate_stays_at_offered_load(self):
        rate = 1000.0
        arrivals = BurstyArrivals(rate, seed=2).generate(4000)
        measured = 4000 / (arrivals[-1] / US_PER_S)
        assert measured == pytest.approx(rate, rel=0.1)

    def test_on_rate_derivation_preserves_mean(self):
        # duty * on_rate + (1 - duty) * off_rate == offered rate, exactly.
        for off_frac in (0.0, 0.2, 1.0):
            p = BurstyArrivals(800.0, duty_cycle=0.4, off_rate_fraction=off_frac)
            mean = 0.4 * p.on_rate_rps + 0.6 * p.off_rate_rps
            assert mean == pytest.approx(800.0)

    def test_bursts_are_denser_than_poisson(self):
        # ON-state rate is 1/duty x the mean rate, so the lower quartile
        # of gaps is much tighter than the exponential's.
        rate = 1000.0
        bursty = np.diff(BurstyArrivals(rate, seed=9, duty_cycle=0.25).generate(2000))
        poisson = np.diff(PoissonArrivals(rate, seed=9).generate(2000))
        assert np.percentile(bursty, 25) < 0.5 * np.percentile(poisson, 25)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="duty_cycle"):
            BurstyArrivals(1.0, duty_cycle=0.0)
        with pytest.raises(ValueError, match="duty_cycle"):
            BurstyArrivals(1.0, duty_cycle=1.5)
        with pytest.raises(ValueError, match="burst_len"):
            BurstyArrivals(1.0, burst_len=0.0)
        with pytest.raises(ValueError, match="off_rate_fraction"):
            BurstyArrivals(1.0, off_rate_fraction=-0.1)


class TestDiurnalArrivals:
    def test_peak_half_carries_the_sine_excess(self):
        # Over [0, P/2] the rate integrates to (1/2 + amplitude/pi) of the
        # total, so that fraction of arrivals lands in the peak half.
        rate, amplitude, period = 1000.0, 0.8, 200_000.0
        arrivals = DiurnalArrivals(
            rate, seed=4, amplitude=amplitude, period_us=period
        ).generate(4000)
        in_peak_half = np.mean((arrivals % period) < period / 2)
        assert in_peak_half == pytest.approx(0.5 + amplitude / math.pi, abs=0.04)

    def test_zero_amplitude_reduces_to_poisson_rate(self):
        rate = 1000.0
        arrivals = DiurnalArrivals(rate, seed=6, amplitude=0.0).generate(3000)
        measured = 3000 / (arrivals[-1] / US_PER_S)
        assert measured == pytest.approx(rate, rel=0.1)

    def test_default_period_covers_two_cycles(self):
        process = DiurnalArrivals(1000.0)
        expected_span = 1000 * US_PER_S / 1000.0
        assert process._period_for(1000) == pytest.approx(expected_span / 2)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(1.0, amplitude=1.5)
        with pytest.raises(ValueError, match="period_us"):
            DiurnalArrivals(1.0, period_us=0.0)


class TestSeedDeterminism:
    @pytest.mark.parametrize("name", ["deterministic", "poisson", "bursty", "diurnal"])
    def test_same_seed_bit_identical_stream(self, name):
        first = make_arrival_process(name, 1000.0, seed=42).generate(256)
        second = make_arrival_process(name, 1000.0, seed=42).generate(256)
        np.testing.assert_array_equal(first, second)

    @pytest.mark.parametrize("name", ["poisson", "bursty", "diurnal"])
    def test_different_seeds_differ(self, name):
        first = make_arrival_process(name, 1000.0, seed=0).generate(64)
        second = make_arrival_process(name, 1000.0, seed=1).generate(64)
        assert not np.array_equal(first, second)

    @pytest.mark.parametrize("name", ["deterministic", "poisson", "bursty", "diurnal"])
    def test_streams_are_non_decreasing(self, name):
        arrivals = make_arrival_process(name, 500.0, seed=3).generate(200)
        assert arrivals.shape == (200,)
        assert np.all(np.diff(arrivals) >= 0)


class TestRegistry:
    def test_names_are_sorted_and_complete(self):
        assert arrival_process_names() == (
            "bursty", "deterministic", "diurnal", "poisson",
        )

    def test_unknown_name_raises_typed_lookup_error(self):
        with pytest.raises(UnknownArrivalProcessError, match="nope"):
            make_arrival_process("nope", 1.0)
        assert issubclass(UnknownArrivalProcessError, LookupError)

    def test_kwargs_reach_the_process(self):
        process = make_arrival_process("bursty", 100.0, seed=1, duty_cycle=0.5)
        assert isinstance(process, BurstyArrivals)
        assert process.duty_cycle == 0.5
