"""Property tests for ServeReport's latency statistics (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import EmptyServeReportError, ServeReport


def _report(latencies, queue=None):
    """A ServeReport carrying only latency series (stats don't need more)."""
    latencies = np.asarray(latencies, dtype=np.float64)
    queue = (
        np.zeros_like(latencies)
        if queue is None
        else np.asarray(queue, dtype=np.float64)
    )
    return ServeReport(
        outputs=[np.zeros(1) for _ in latencies],
        latencies_us=latencies,
        batch_sizes=[latencies.size] if latencies.size else [],
        makespan_us=float(latencies.max()) if latencies.size else 0.0,
        throughput_rps=0.0,
        layer_stats=[],
        layer_cycles=[],
        queue_us=queue,
        compute_us=latencies - queue,
    )


_latencies = st.lists(
    st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
)


class TestPercentileProperties:
    @given(_latencies, st.floats(0.0, 100.0))
    @settings(max_examples=80, deadline=None)
    def test_matches_numpy_percentile(self, latencies, q):
        report = _report(latencies)
        assert report.latency_percentile(q) == pytest.approx(
            float(np.percentile(latencies, q)), rel=1e-12, abs=1e-12
        )

    @given(_latencies, st.lists(st.floats(0.0, 100.0), min_size=2, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_curve_monotone_in_q(self, latencies, qs):
        qs = sorted(qs)
        curve = _report(latencies).percentile_curve(tuple(qs))
        assert np.all(np.diff(curve) >= -1e-9)

    @given(_latencies)
    @settings(max_examples=50, deadline=None)
    def test_curve_agrees_with_scalar_percentile(self, latencies):
        report = _report(latencies)
        curve = report.percentile_curve((50.0, 90.0, 99.0))
        for q, value in zip((50.0, 90.0, 99.0), curve):
            assert value == pytest.approx(report.latency_percentile(q))

    @given(_latencies)
    @settings(max_examples=50, deadline=None)
    def test_percentiles_bounded_by_extremes(self, latencies):
        report = _report(latencies)
        assert report.latency_percentile(0.0) == pytest.approx(min(latencies))
        assert report.latency_percentile(100.0) == pytest.approx(max(latencies))

    @given(_latencies)
    @settings(max_examples=50, deadline=None)
    def test_series_split_is_consistent(self, latencies):
        # total == queue + compute, and each series is selectable.
        queue = [0.5 * v for v in latencies]
        report = _report(latencies, queue=queue)
        total = report.percentile_curve((50.0,), which="total")[0]
        q50 = report.percentile_curve((50.0,), which="queue")[0]
        c50 = report.percentile_curve((50.0,), which="compute")[0]
        assert total == pytest.approx(q50 + c50)


class TestEmptyAndInvalid:
    def test_empty_report_raises_typed_error_not_indexerror(self):
        report = _report([])
        with pytest.raises(EmptyServeReportError, match="empty report"):
            report.latency_percentile(50.0)
        with pytest.raises(EmptyServeReportError, match="empty report"):
            report.percentile_curve()
        # The typed error is a ValueError so generic handlers still work.
        assert issubclass(EmptyServeReportError, ValueError)

    def test_empty_error_reports_shed_count(self):
        report = _report([])
        report.shed_rids.extend([0, 1, 2])
        with pytest.raises(EmptyServeReportError, match="3 shed"):
            report.latency_percentile(99.0)

    def test_unknown_series_rejected(self):
        report = _report([1.0, 2.0])
        with pytest.raises(ValueError, match="unknown latency series"):
            report.latency_percentile(50.0, which="wall")
        with pytest.raises(ValueError, match="unknown latency series"):
            report.percentile_curve(which="wall")

    def test_submission_accounting(self):
        report = _report([1.0, 2.0, 3.0])
        report.shed_rids.extend([7, 8])
        assert report.num_requests == 3
        assert report.num_shed == 2
        assert report.num_submitted == 5
