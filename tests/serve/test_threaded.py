"""Thread-parallel shard execution: determinism and lifecycle.

Dtype-polymorphic on purpose: every assertion here is internal
consistency (threaded vs sequential on the *same* server inputs), so the
``REPRO_VALUE_DTYPE=float32`` CI leg drives this module end to end at
float32 storage.
"""

import threading

import numpy as np
import pytest

from repro.core import BlockPermutedDiagonalMatrix
from repro.serve.server import ModelServer, ShardedLayer

REPRO_DTYPE_POLYMORPHIC = True


def _layers(seed=0):
    return [
        (BlockPermutedDiagonalMatrix.random((128, 96), 8, rng=seed), "relu"),
        (BlockPermutedDiagonalMatrix.random((64, 128), 8, rng=seed + 1), None),
    ]


def _workload(rng, n=96, count=23):
    x = rng.normal(size=(count, n))
    x[rng.random(size=x.shape) < 0.4] = 0.0
    arrivals = np.sort(rng.uniform(0.0, 400.0, size=count))
    return x, arrivals


def _drain(num_threads, **kwargs):
    server = ModelServer(
        _layers(),
        num_shards=4,
        enforce_capacity=False,
        num_threads=num_threads,
        **kwargs,
    )
    x, arrivals = _workload(np.random.default_rng(7))
    server.submit_many(x, arrivals)
    return server.drain()


@pytest.mark.parametrize("num_threads", [2, 4, 8])
def test_threaded_drain_bit_identical_to_sequential(num_threads):
    sequential = _drain(1)
    threaded = _drain(num_threads)
    np.testing.assert_array_equal(
        np.stack(sequential.outputs), np.stack(threaded.outputs)
    )
    np.testing.assert_array_equal(
        sequential.latencies_us, threaded.latencies_us
    )
    assert sequential.layer_cycles == threaded.layer_cycles
    assert sequential.batch_sizes == threaded.batch_sizes

    def flat(report):
        return [
            (s.cycles, s.macs, s.batches, s.samples)
            for row in report.layer_stats
            for s in row
        ]

    assert flat(sequential) == flat(threaded)


def test_threaded_drain_with_shedding_is_deterministic():
    a = _drain(4, queue_capacity=8, max_batch_size=4)
    b = _drain(1, queue_capacity=8, max_batch_size=4)
    assert a.shed_rids == b.shed_rids
    np.testing.assert_array_equal(np.stack(a.outputs), np.stack(b.outputs))


def test_no_threads_outlive_the_drain():
    before = {t.ident for t in threading.enumerate()}
    _drain(4)
    leaked = [
        t
        for t in threading.enumerate()
        if t.ident not in before and t.name.startswith("repro-shard")
    ]
    assert not leaked, leaked


def test_num_threads_default_and_validation():
    server = ModelServer(_layers(), num_shards=4, enforce_capacity=False)
    assert 1 <= server.num_threads <= 4  # min(shards, host CPUs)
    assert f"threads={server.num_threads}" in repr(server)
    with pytest.raises(ValueError, match="num_threads"):
        ModelServer(
            _layers(), num_shards=4, enforce_capacity=False, num_threads=0
        )


def test_sharded_layer_executor_path_matches_direct_call():
    from concurrent.futures import ThreadPoolExecutor

    matrix = BlockPermutedDiagonalMatrix.random((128, 96), 8, rng=2)
    layer = ShardedLayer(matrix, "relu", 4)
    server = ModelServer([layer], enforce_capacity=False, num_threads=1)
    engines = server.engines[0]
    x = _workload(np.random.default_rng(3))[0]
    seq_out, seq_cycles, seq_macs = layer.run_batch(engines, x)
    with ThreadPoolExecutor(max_workers=4) as pool:
        thr_out, thr_cycles, thr_macs = layer.run_batch(
            engines, x, executor=pool
        )
    np.testing.assert_array_equal(seq_out, thr_out)
    assert seq_cycles == thr_cycles
    # engine counters doubled identically: both paths ran the same work
    assert seq_macs == thr_macs
