"""Micro-batcher: order preservation, fill/deadline closes, determinism."""

import numpy as np
import pytest

from repro.serve import MicroBatcher, Request


def _requests(arrivals):
    return [
        Request(rid, np.asarray([float(rid)]), arrival)
        for rid, arrival in enumerate(arrivals)
    ]


class TestMicroBatcher:
    def test_full_batches_close_at_last_arrival(self):
        batcher = MicroBatcher(max_batch_size=3, flush_deadline_us=100.0)
        batches = batcher.plan(_requests([0.0, 1.0, 2.0, 3.0, 4.0, 5.0]))
        assert [b.size for b in batches] == [3, 3]
        assert [b.ready_us for b in batches] == [2.0, 5.0]

    def test_deadline_flush_closes_partial_batch(self):
        batcher = MicroBatcher(max_batch_size=8, flush_deadline_us=10.0)
        batches = batcher.plan(_requests([0.0, 5.0, 50.0, 52.0]))
        assert [b.size for b in batches] == [2, 2]
        # partial batches are stamped ready at open + deadline
        assert [b.ready_us for b in batches] == [10.0, 60.0]

    def test_submission_order_preserved_across_batches(self):
        batcher = MicroBatcher(max_batch_size=4, flush_deadline_us=5.0)
        arrivals = [0.0, 1.0, 2.0, 20.0, 21.0, 40.0]
        batches = batcher.plan(_requests(arrivals))
        flattened = [r.rid for b in batches for r in b.requests]
        assert flattened == list(range(len(arrivals)))

    def test_plan_is_deterministic(self):
        batcher = MicroBatcher(max_batch_size=3, flush_deadline_us=7.0)
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0, 100, size=20))
        first = batcher.plan(_requests(arrivals))
        second = batcher.plan(_requests(arrivals))
        assert [b.size for b in first] == [b.size for b in second]
        assert [b.ready_us for b in first] == [b.ready_us for b in second]

    def test_ready_never_precedes_members(self):
        batcher = MicroBatcher(max_batch_size=4, flush_deadline_us=3.0)
        rng = np.random.default_rng(1)
        arrivals = np.sort(rng.uniform(0, 50, size=17))
        for batch in batcher.plan(_requests(arrivals)):
            assert batch.ready_us >= max(r.arrival_us for r in batch.requests)

    def test_out_of_order_arrivals_rejected(self):
        batcher = MicroBatcher()
        with pytest.raises(ValueError, match="non-decreasing"):
            batcher.plan(_requests([5.0, 1.0]))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ValueError, match="flush_deadline_us"):
            MicroBatcher(flush_deadline_us=-1.0)

    def test_stacked_inputs_follow_request_order(self):
        batcher = MicroBatcher(max_batch_size=4, flush_deadline_us=10.0)
        (batch,) = batcher.plan(_requests([0.0, 0.0, 0.0]))
        np.testing.assert_array_equal(
            batch.stacked_inputs(), [[0.0], [1.0], [2.0]]
        )
