"""Micro-batcher: order preservation, fill/deadline closes, determinism."""

import numpy as np
import pytest

from repro.serve import BatchAssembler, MicroBatcher, Request


def _requests(arrivals):
    return [
        Request(rid, np.asarray([float(rid)]), arrival)
        for rid, arrival in enumerate(arrivals)
    ]


class TestMicroBatcher:
    def test_full_batches_close_at_last_arrival(self):
        batcher = MicroBatcher(max_batch_size=3, flush_deadline_us=100.0)
        batches = batcher.plan(_requests([0.0, 1.0, 2.0, 3.0, 4.0, 5.0]))
        assert [b.size for b in batches] == [3, 3]
        assert [b.ready_us for b in batches] == [2.0, 5.0]

    def test_deadline_flush_closes_partial_batch(self):
        batcher = MicroBatcher(max_batch_size=8, flush_deadline_us=10.0)
        batches = batcher.plan(_requests([0.0, 5.0, 50.0, 52.0]))
        assert [b.size for b in batches] == [2, 2]
        # partial batches are stamped ready at open + deadline
        assert [b.ready_us for b in batches] == [10.0, 60.0]

    def test_submission_order_preserved_across_batches(self):
        batcher = MicroBatcher(max_batch_size=4, flush_deadline_us=5.0)
        arrivals = [0.0, 1.0, 2.0, 20.0, 21.0, 40.0]
        batches = batcher.plan(_requests(arrivals))
        flattened = [r.rid for b in batches for r in b.requests]
        assert flattened == list(range(len(arrivals)))

    def test_plan_is_deterministic(self):
        batcher = MicroBatcher(max_batch_size=3, flush_deadline_us=7.0)
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0, 100, size=20))
        first = batcher.plan(_requests(arrivals))
        second = batcher.plan(_requests(arrivals))
        assert [b.size for b in first] == [b.size for b in second]
        assert [b.ready_us for b in first] == [b.ready_us for b in second]

    def test_ready_never_precedes_members(self):
        batcher = MicroBatcher(max_batch_size=4, flush_deadline_us=3.0)
        rng = np.random.default_rng(1)
        arrivals = np.sort(rng.uniform(0, 50, size=17))
        for batch in batcher.plan(_requests(arrivals)):
            assert batch.ready_us >= max(r.arrival_us for r in batch.requests)

    def test_out_of_order_arrivals_rejected(self):
        batcher = MicroBatcher()
        with pytest.raises(ValueError, match="non-decreasing"):
            batcher.plan(_requests([5.0, 1.0]))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ValueError, match="flush_deadline_us"):
            MicroBatcher(flush_deadline_us=-1.0)

    def test_stacked_inputs_follow_request_order(self):
        batcher = MicroBatcher(max_batch_size=4, flush_deadline_us=10.0)
        (batch,) = batcher.plan(_requests([0.0, 0.0, 0.0]))
        np.testing.assert_array_equal(
            batch.stacked_inputs(), [[0.0], [1.0], [2.0]]
        )


class TestBatchAssembler:
    """The streaming former plan() is built on (so the two cannot drift)."""

    def _drive(self, assembler, requests, poll=False):
        batches = []
        for request in requests:
            if poll:
                flushed = assembler.poll(request.arrival_us)
                if flushed is not None:
                    batches.append(flushed)
            batches.extend(assembler.offer(request))
        tail = assembler.finish()
        if tail is not None:
            batches.append(tail)
        return batches

    @pytest.mark.parametrize("poll", [False, True])
    def test_streaming_equals_offline_plan(self, poll):
        batcher = MicroBatcher(max_batch_size=3, flush_deadline_us=7.0)
        rng = np.random.default_rng(2)
        requests = _requests(np.sort(rng.uniform(0, 120, size=25)))
        planned = batcher.plan(requests)
        # An extra poll() before each offer() must not change the cut:
        # offer() applies the same deadline flush internally.
        streamed = self._drive(batcher.assembler(), requests, poll=poll)
        assert [b.size for b in planned] == [b.size for b in streamed]
        assert [b.ready_us for b in planned] == [b.ready_us for b in streamed]
        assert [r.rid for b in planned for r in b.requests] == [
            r.rid for b in streamed for r in b.requests
        ]

    def test_poll_flushes_once_past_deadline(self):
        assembler = MicroBatcher(max_batch_size=8, flush_deadline_us=10.0).assembler()
        assert assembler.offer(_requests([0.0])[0]) == []
        assert assembler.poll(5.0) is None  # deadline not reached
        flushed = assembler.poll(11.0)
        assert flushed is not None
        assert flushed.size == 1
        assert flushed.ready_us == 10.0  # open + deadline, not poll time
        # Idempotent: nothing left to flush at the same instant.
        assert assembler.poll(11.0) is None
        assert assembler.finish() is None

    def test_pending_count_tracks_the_forming_batch(self):
        assembler = MicroBatcher(max_batch_size=3, flush_deadline_us=50.0).assembler()
        requests = _requests([0.0, 1.0, 2.0])
        assert assembler.pending_count == 0
        assembler.offer(requests[0])
        assembler.offer(requests[1])
        assert assembler.pending_count == 2
        (full,) = assembler.offer(requests[2])
        assert full.size == 3
        assert assembler.pending_count == 0

    def test_offer_rejects_out_of_order_arrivals(self):
        assembler = MicroBatcher(max_batch_size=4, flush_deadline_us=50.0).assembler()
        assembler.offer(_requests([5.0])[0])
        with pytest.raises(ValueError, match="non-decreasing"):
            assembler.offer(Request(1, np.asarray([1.0]), 1.0))

    def test_finish_flushes_the_tail_as_a_deadline_batch(self):
        assembler = MicroBatcher(max_batch_size=4, flush_deadline_us=9.0).assembler()
        for request in _requests([2.0, 3.0]):
            assembler.offer(request)
        tail = assembler.finish()
        assert tail.size == 2
        assert tail.ready_us == 2.0 + 9.0

    def test_assembler_factory_binds_the_policy(self):
        batcher = MicroBatcher(max_batch_size=2, flush_deadline_us=1.0)
        assembler = batcher.assembler()
        assert isinstance(assembler, BatchAssembler)
        a, b = _requests([0.0, 0.5])
        assembler.offer(a)
        (full,) = assembler.offer(b)
        assert full.ready_us == 0.5  # fill close at last arrival
