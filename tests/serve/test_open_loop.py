"""Open-loop measurement plumbing: knee finding, trace determinism."""

import numpy as np
import pytest

from repro.core import BlockPermutedDiagonalMatrix, PermutationSpec
from repro.hw import PermDNNEngine
from repro.serve import ModelServer, max_sustainable_qps, run_open_loop_point


def _stack(seed=0):
    rng = np.random.default_rng(seed)
    spec = PermutationSpec(scheme="random", seed=seed)
    l1 = BlockPermutedDiagonalMatrix.random((64, 48), 4, spec=spec, rng=rng)
    l2 = BlockPermutedDiagonalMatrix.random((16, 64), 2, spec=spec, rng=rng)
    return [(l1, "relu"), (l2, None)]


def _requests(num, n, seed=1, density=0.5):
    rng = np.random.default_rng(seed)
    xs = rng.normal(size=(num, n))
    xs[rng.random(size=xs.shape) > density] = 0.0
    return xs


def _baseline(layers, xs):
    engine = PermDNNEngine()
    current = xs
    for matrix, activation in layers:
        current, _ = engine.run_fc_batch(matrix, current, activation=activation)
    return current


class TestMaxSustainableQps:
    def test_bisection_converges_on_linear_latency(self):
        # latency(q) = q: the knee is exactly at the SLO.
        knee = max_sustainable_qps(lambda q: q, 60.0, 10.0, 100.0, iters=20)
        assert knee == pytest.approx(60.0, abs=1e-3)
        assert knee <= 60.0  # the returned load is always feasible

    def test_step_latency_localizes_the_cliff(self):
        knee = max_sustainable_qps(
            lambda q: 0.0 if q <= 42.0 else 1e9, 10.0, 1.0, 100.0, iters=25
        )
        assert knee == pytest.approx(42.0, abs=1e-3)

    def test_infeasible_low_bracket_returns_zero(self):
        assert max_sustainable_qps(lambda q: 1e9, 10.0, 1.0, 100.0) == 0.0

    def test_fully_feasible_range_returns_ceiling(self):
        assert max_sustainable_qps(lambda q: 0.0, 10.0, 1.0, 100.0) == 100.0

    def test_probes_stay_inside_the_bracket(self):
        seen = []

        def measure(q):
            seen.append(q)
            return q

        max_sustainable_qps(measure, 50.0, 10.0, 100.0, iters=8)
        assert all(10.0 <= q <= 100.0 for q in seen)

    def test_validation(self):
        with pytest.raises(ValueError, match="slo_us"):
            max_sustainable_qps(lambda q: q, 0.0, 1.0, 2.0)
        with pytest.raises(ValueError, match="lo_qps"):
            max_sustainable_qps(lambda q: q, 10.0, 0.0, 2.0)
        with pytest.raises(ValueError, match="lo_qps"):
            max_sustainable_qps(lambda q: q, 10.0, 5.0, 2.0)


class TestTraceDeterminism:
    @pytest.mark.parametrize("process", ["poisson", "bursty", "diurnal"])
    def test_identical_seeds_identical_latency_trace(self, process):
        layers = _stack()
        xs = _requests(20, 48)
        baseline = _baseline(layers, xs)
        runs = [
            run_open_loop_point(
                layers, xs, baseline, process, 50_000.0,
                num_shards=2, seed=13, max_batch_size=4,
                flush_deadline_us=20.0,
            )
            for _ in range(2)
        ]
        (p1, r1), (p2, r2) = runs
        np.testing.assert_array_equal(r1.latencies_us, r2.latencies_us)
        np.testing.assert_array_equal(r1.queue_us, r2.queue_us)
        np.testing.assert_array_equal(r1.compute_us, r2.compute_us)
        np.testing.assert_array_equal(
            np.stack(r1.outputs), np.stack(r2.outputs)
        )
        assert p1 == p2

    def test_point_asserts_bit_exactness_against_baseline(self):
        layers = _stack()
        xs = _requests(12, 48)
        baseline = _baseline(layers, xs)
        point, report = run_open_loop_point(
            layers, xs, baseline, "poisson", 20_000.0,
            num_shards=2, seed=0, max_batch_size=4, flush_deadline_us=20.0,
        )
        assert point.outputs_match
        assert point.num_admitted == 12
        assert point.num_shed == 0
        # Latency split: queue + compute == total, per request.
        np.testing.assert_allclose(
            report.queue_us + report.compute_us, report.latencies_us
        )


class TestTimestampRegressions:
    def test_out_of_order_submission_is_clamped_deterministically(self):
        # submit() clamps arrivals to non-decreasing; an out-of-order
        # stream must serve exactly like its clamped counterpart, with
        # submission order preserved in the outputs.
        layers = _stack()
        xs = _requests(6, 48)
        raw = [0.0, 30.0, 10.0, 40.0, 35.0, 50.0]
        clamped = [0.0, 30.0, 30.0, 40.0, 40.0, 50.0]
        reports = []
        for arrivals in (raw, clamped):
            server = ModelServer(
                layers, num_shards=2, max_batch_size=2, flush_deadline_us=15.0
            )
            for x, t in zip(xs, arrivals):
                server.submit(x, arrival_us=t)
            reports.append(server.drain())
        first, second = reports
        assert first.batch_sizes == second.batch_sizes
        np.testing.assert_array_equal(first.latencies_us, second.latencies_us)
        np.testing.assert_array_equal(
            np.stack(first.outputs), np.stack(second.outputs)
        )
        np.testing.assert_array_equal(
            np.stack(first.outputs), _baseline(layers, xs)
        )

    def test_closed_loop_t0_burst_batches_unchanged(self):
        # The streaming assembler must preserve the offline plan()
        # semantics for the classic all-at-t=0 closed-loop drain: full
        # batches plus one tail flush, in submission order.
        layers = _stack()
        xs = _requests(10, 48)
        server = ModelServer(layers, num_shards=2, max_batch_size=4)
        server.submit_many(xs)
        report = server.drain()
        assert report.batch_sizes == [4, 4, 2]
        np.testing.assert_array_equal(
            np.stack(report.outputs), _baseline(layers, xs)
        )

    def test_batch_never_flushes_before_its_last_member_arrives(self):
        # A full batch's pipeline entry is its last member's arrival, so
        # no request can have negative queue latency.
        layers = _stack()
        xs = _requests(16, 48)
        rng = np.random.default_rng(5)
        arrivals = np.sort(rng.uniform(0, 200, size=16))
        server = ModelServer(
            layers, num_shards=2, max_batch_size=4, flush_deadline_us=30.0
        )
        server.submit_many(xs, arrivals_us=arrivals)
        report = server.drain()
        assert np.all(report.queue_us >= 0)
        assert np.all(report.compute_us > 0)
