"""Generalized served stages: conv and recurrent pipelines.

The serving contract extends beyond FC: every stage kind must satisfy
sharded === unsharded and threaded === sequential **bit for bit**, at
every value-storage mode, and cold-start from a v3 bundle with zero plan
builds.  (This directory runs under the strict no-*re*build teardown;
conv stage construction may *build* fresh plans -- ``to_tensor()``
repacks the trainable kernel -- but nothing may ever rebuild one.)
"""

import json

import numpy as np
import pytest

import repro.core.block_perm_diag as mod
from repro.nn import (
    Flatten,
    MaxPool2D,
    PermDiagConv2D,
    PermDiagLinear,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.layers.recurrent import LSTM, LSTMCell
from repro.nn.serialization import (
    ConvStageSpec,
    FCStageSpec,
    RecurrentStageSpec,
    UnsupportedLayerError,
    model_stage_specs,
)
from repro.serve import (
    LoweredConvStage,
    ModelServer,
    RecurrentStage,
    ServedStage,
    ShardedLayer,
    export_model_bundle,
    load_sharded_bundle,
    load_staged_bundle,
)


def _conv_model(seed=0):
    """A LeNet-shaped fully-PD pipeline: conv + pool + FC tail."""
    rng = np.random.default_rng(seed)
    model = Sequential(
        PermDiagConv2D(4, 8, 3, p=2, bias=False, padding=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        PermDiagLinear(8 * 4 * 4, 12, p=2, bias=False, rng=rng),
        Tanh(),
    )
    model.eval()
    return model, (8, 8)


def _requests(num, n, seed=1):
    return np.random.default_rng(seed).normal(size=(num, n))


def _drain(server, xs):
    server.submit_many(xs)
    return np.stack(server.drain().outputs)


def _served(model, input_hw=None, **kwargs):
    kwargs.setdefault("max_batch_size", 4)
    return ModelServer.from_model(model, input_hw=input_hw, **kwargs)


class TestServedConvPipeline:
    def test_matches_model_forward(self):
        model, (h, w) = _conv_model()
        xs = _requests(5, 4 * h * w)
        served = _drain(_served(model, (h, w), num_shards=2), xs)
        expected = model.forward(xs.reshape(5, 4, h, w))
        np.testing.assert_allclose(served, expected, atol=1e-10)

    @pytest.mark.parametrize("num_shards", [2, 4])
    @pytest.mark.parametrize("num_threads", [1, 2])
    def test_sharded_threaded_bit_identical(self, num_shards, num_threads):
        model, (h, w) = _conv_model()
        xs = _requests(6, 4 * h * w)
        reference = _drain(
            _served(model, (h, w), num_shards=1, num_threads=1), xs
        )
        contender = _drain(
            _served(
                model, (h, w),
                num_shards=num_shards, num_threads=num_threads,
            ),
            xs,
        )
        np.testing.assert_array_equal(contender, reference)

    @pytest.mark.parametrize("value_dtype", ["float32", "int16"])
    def test_value_dtypes_bit_identical(self, value_dtype):
        model, (h, w) = _conv_model()
        xs = _requests(4, 4 * h * w)
        reference = _drain(
            _served(
                model, (h, w),
                num_shards=1, num_threads=1, value_dtype=value_dtype,
            ),
            xs,
        )
        sharded = _drain(
            _served(
                model, (h, w),
                num_shards=2, num_threads=2, value_dtype=value_dtype,
            ),
            xs,
        )
        np.testing.assert_array_equal(sharded, reference)

    def test_strided_backbone_bit_identical(self):
        """Stride-2 downsampling chains geometry across conv stages."""
        from repro.serve import build_workload

        spec = build_workload("resnet20", rng=0)
        xs = _requests(4, spec.in_features)
        reference = _drain(
            spec.make_server(num_shards=1, max_batch_size=4), xs
        )
        sharded = _drain(
            spec.make_server(num_shards=4, num_threads=2, max_batch_size=4),
            xs,
        )
        np.testing.assert_array_equal(sharded, reference)

    def test_conv_model_requires_input_hw(self):
        model, _ = _conv_model()
        with pytest.raises(ValueError, match="input_hw"):
            ModelServer.from_model(model, num_shards=2)

    def test_pool_must_tile_the_output(self):
        model, _ = _conv_model()
        tensor = model.layers[0].to_tensor()
        with pytest.raises(ValueError, match="pool"):
            LoweredConvStage(
                tensor, "relu", 2, input_hw=(8, 8), padding=1, pool=3
            )


class TestServedRecurrentStage:
    def test_single_step_matches_cell_bitwise(self):
        cell = LSTMCell(6, 16, p=2, rng=0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 6))
        h_prev = rng.normal(size=(5, 16))
        c_prev = rng.normal(size=(5, 16))
        h, c, _ = cell.step(x, h_prev, c_prev)
        server = _served(cell, num_shards=2, max_batch_size=8)
        out = _drain(server, np.concatenate([x, h_prev, c_prev], axis=1))
        np.testing.assert_array_equal(out[:, :16], h)
        np.testing.assert_array_equal(out[:, 16:], c)

    @pytest.mark.parametrize("num_shards", [2, 4])
    @pytest.mark.parametrize("num_threads", [1, 2])
    def test_sharded_threaded_bit_identical(self, num_shards, num_threads):
        cell = LSTMCell(8, 16, p=4, rng=2)
        xs = _requests(6, 8 + 32, seed=3)
        reference = _drain(
            _served(cell, num_shards=1, num_threads=1, max_batch_size=8), xs
        )
        contender = _drain(
            _served(
                cell,
                num_shards=num_shards,
                num_threads=num_threads,
                max_batch_size=8,
            ),
            xs,
        )
        np.testing.assert_array_equal(contender, reference)

    @pytest.mark.parametrize("value_dtype", ["float32", "int16"])
    def test_value_dtypes_bit_identical(self, value_dtype):
        cell = LSTMCell(8, 16, p=4, rng=2)
        xs = _requests(4, 8 + 32, seed=3)
        reference = _drain(
            _served(
                cell, num_shards=1, num_threads=1,
                value_dtype=value_dtype, max_batch_size=8,
            ),
            xs,
        )
        sharded = _drain(
            _served(
                cell, num_shards=2, num_threads=2,
                value_dtype=value_dtype, max_batch_size=8,
            ),
            xs,
        )
        np.testing.assert_array_equal(sharded, reference)

    def test_sequence_matches_lstm_forward_bitwise(self):
        """Feeding each step's ``[h | c]`` back reproduces the full
        sequence the training-side LSTM computes, bit for bit."""
        lstm = LSTM(6, 12, p=2, rng=4)
        batch, steps = 3, 5
        seq = np.random.default_rng(5).normal(size=(batch, steps, 6))
        expected = lstm.forward(seq)
        server = _served(lstm, num_shards=2, num_threads=2, max_batch_size=4)
        state = np.zeros((batch, 24))
        for t in range(steps):
            out = _drain(
                server, np.concatenate([seq[:, t], state], axis=1)
            )
            np.testing.assert_array_equal(out[:, :12], expected[:, t])
            state = out
        np.testing.assert_array_equal(state[:, :12], lstm.final_state[0])
        np.testing.assert_array_equal(state[:, 12:], lstm.final_state[1])

    def test_encoder_decoder_step_bit_identical(self):
        """The NMT shape: the encoder's final state seeds the decoder."""
        encoder = LSTMCell(6, 16, p=2, rng=6)
        decoder = LSTMCell(4, 16, p=2, rng=7)
        rng = np.random.default_rng(8)
        src = rng.normal(size=(3, 2, 6))
        tgt = rng.normal(size=(3, 4))

        h = c = np.zeros((3, 16))
        for t in range(src.shape[1]):
            h, c, _ = encoder.step(src[:, t], h, c)
        dec_h, dec_c, _ = decoder.step(tgt, h, c)

        enc_server = _served(
            encoder, num_shards=2, num_threads=2, max_batch_size=4
        )
        dec_server = _served(
            decoder, num_shards=2, num_threads=2, max_batch_size=4
        )
        state = np.zeros((3, 32))
        for t in range(src.shape[1]):
            state = _drain(
                enc_server, np.concatenate([src[:, t], state], axis=1)
            )
        out = _drain(dec_server, np.concatenate([tgt, state], axis=1))
        np.testing.assert_array_equal(out[:, :16], dec_h)
        np.testing.assert_array_equal(out[:, 16:], dec_c)

    def test_dense_cell_rejected(self):
        with pytest.raises(UnsupportedLayerError, match="dense weight ops"):
            model_stage_specs(LSTMCell(6, 16, rng=0))

    def test_weight_aliasing_survives_serving(self):
        """Gate matrices alias the cell's parameters: in-place training
        updates reach the shard engines with no re-export."""
        cell = LSTMCell(6, 16, p=2, rng=9)
        server = _served(cell, num_shards=2, max_batch_size=8)
        xs = _requests(2, 6 + 32, seed=10)
        before = _drain(server, xs)
        for op in cell.weight_matrices:
            op.weight.value *= 1.5
        after = _drain(server, xs)
        assert not np.array_equal(before, after)


class TestModelStageSpecs:
    def test_conv_pipeline_spec_kinds(self):
        model, _ = _conv_model()
        specs = model_stage_specs(model)
        assert [type(s) for s in specs] == [ConvStageSpec, FCStageSpec]
        assert specs[0].activation == "relu" and specs[0].pool == 2
        assert specs[1].activation == "tanh"

    def test_lstm_consumed_as_one_stage(self):
        specs = model_stage_specs(LSTM(6, 12, p=2, rng=0))
        assert [type(s) for s in specs] == [RecurrentStageSpec]

    def test_orphan_pool_rejected(self):
        model = Sequential(
            PermDiagLinear(16, 8, p=2, bias=False, rng=0), MaxPool2D(2)
        )
        with pytest.raises(UnsupportedLayerError, match="conv stage"):
            model_stage_specs(model)

    def test_overlapping_pool_rejected(self):
        model = Sequential(
            PermDiagConv2D(4, 8, 3, p=2, bias=False, padding=1, rng=0),
            MaxPool2D(4, stride=2),
        )
        with pytest.raises(UnsupportedLayerError, match="non-overlapping"):
            model_stage_specs(model)

    def test_conv_bias_rejected(self):
        model = Sequential(
            PermDiagConv2D(4, 8, 3, p=2, bias=True, rng=0)
        )
        model.layers[0].bias.value[:] = 1.0
        with pytest.raises(UnsupportedLayerError, match="bias"):
            model_stage_specs(model)


class TestStagedBundles:
    def test_conv_bundle_cold_start_zero_plan_builds(self, tmp_path):
        from repro.debug import sanitize

        model, (h, w) = _conv_model()
        xs = _requests(4, 4 * h * w)
        reference = _drain(_served(model, (h, w), num_shards=2), xs)
        export_model_bundle(tmp_path, model, num_shards=2, input_hw=(h, w))
        with sanitize() as s:
            server = ModelServer.from_bundle(tmp_path, max_batch_size=4)
            out = _drain(server, xs)
            assert s.stats.plan_builds == 0
            assert s.stats.plan_rebuilds == 0
        np.testing.assert_array_equal(out, reference)

    def test_recurrent_bundle_cold_start_zero_plan_builds(self, tmp_path):
        from repro.debug import sanitize

        cell = LSTMCell(6, 16, p=2, rng=0)
        xs = _requests(4, 6 + 32)
        reference = _drain(_served(cell, num_shards=2, max_batch_size=8), xs)
        export_model_bundle(tmp_path, cell, num_shards=2)
        with sanitize() as s:
            server = ModelServer.from_bundle(tmp_path, max_batch_size=8)
            out = _drain(server, xs)
            assert s.stats.plan_builds == 0
            assert s.stats.plan_rebuilds == 0
        np.testing.assert_array_equal(out, reference)

    def test_v2_manifest_still_loads_as_fc(self, tmp_path):
        """Pre-v3 bundles carry no stage tags; they must keep loading as
        single-slot FC stages with the cold-start property intact."""
        model = Sequential(
            PermDiagLinear(24, 16, p=2, bias=False, rng=0), ReLU(),
            PermDiagLinear(16, 8, p=2, bias=False, rng=1),
        )
        model.eval()
        export_model_bundle(tmp_path, model, num_shards=2)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["bundle_version"] = 2
        for entry in manifest["layers"]:
            del entry["stage_kind"]
            del entry["slots"]
        manifest_path.write_text(json.dumps(manifest))

        def boom(*args, **kwargs):
            raise AssertionError("v2 bundle load rebuilt an index plan")

        orig = mod._IndexPlan.__init__
        mod._IndexPlan.__init__ = boom
        try:
            stages, loaded = load_staged_bundle(tmp_path)
            layers, _ = load_sharded_bundle(tmp_path)
        finally:
            mod._IndexPlan.__init__ = orig
        assert all(isinstance(stage, ShardedLayer) for stage in stages)
        assert int(loaded["bundle_version"]) == 2
        assert [act for _, act in layers] == ["relu", None]
        xs = _requests(3, 24)
        served = _drain(ModelServer(stages, max_batch_size=4), xs)
        np.testing.assert_allclose(served, model.forward(xs), atol=1e-10)

    def test_fc_only_loader_rejects_staged_bundles(self, tmp_path):
        model, (h, w) = _conv_model()
        export_model_bundle(tmp_path, model, num_shards=2, input_hw=(h, w))
        with pytest.raises(ValueError, match="load_staged_bundle"):
            load_sharded_bundle(tmp_path)

    def test_unknown_stage_kind_rejected(self, tmp_path):
        model, (h, w) = _conv_model()
        export_model_bundle(tmp_path, model, num_shards=2, input_hw=(h, w))
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["layers"][0]["stage_kind"] = "attention"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="stage_kind"):
            load_staged_bundle(tmp_path)

    def test_reduced_precision_bundle_round_trip(self, tmp_path):
        model, (h, w) = _conv_model()
        xs = _requests(3, 4 * h * w)
        reference = _drain(
            _served(model, (h, w), num_shards=2, value_dtype="float32"), xs
        )
        export_model_bundle(
            tmp_path, model, num_shards=2, input_hw=(h, w),
            value_dtype="float32",
        )
        server = ModelServer.from_bundle(tmp_path, max_batch_size=4)
        np.testing.assert_array_equal(_drain(server, xs), reference)


class TestStageProtocol:
    def test_every_stage_kind_is_a_served_stage(self):
        model, (h, w) = _conv_model()
        server = _served(model, (h, w), num_shards=2)
        assert all(isinstance(layer, ServedStage) for layer in server.layers)
        assert [layer.stage_kind for layer in server.layers] == [
            "conv", "fc",
        ]
        cell_server = _served(LSTMCell(6, 16, p=2, rng=0), num_shards=2)
        assert cell_server.layers[0].stage_kind == "recurrent"

    def test_unsupported_model_raises_typed_error(self):
        from repro.nn import Linear

        with pytest.raises(UnsupportedLayerError, match="not servable"):
            ModelServer.from_model(Sequential(Linear(8, 4, rng=0)))
