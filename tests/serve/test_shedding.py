"""Admission control: bounded queues, reject-newest shedding, SLO holds."""

import numpy as np
import pytest

from repro.core import BlockPermutedDiagonalMatrix, PermutationSpec
from repro.hw import PermDNNEngine
from repro.serve import ModelServer, PoissonArrivals, run_open_loop_sweep


def _stack(seed=0):
    rng = np.random.default_rng(seed)
    spec = PermutationSpec(scheme="random", seed=seed)
    l1 = BlockPermutedDiagonalMatrix.random((64, 48), 4, spec=spec, rng=rng)
    l2 = BlockPermutedDiagonalMatrix.random((30, 64), 8, spec=spec, rng=rng)
    l3 = BlockPermutedDiagonalMatrix.random((16, 30), 2, spec=spec, rng=rng)
    return [(l1, "relu"), (l2, "tanh"), (l3, None)]


def _requests(num, n, seed=1, density=0.5):
    rng = np.random.default_rng(seed)
    xs = rng.normal(size=(num, n))
    xs[rng.random(size=xs.shape) > density] = 0.0
    return xs


def _unsharded_reference(layers, xs):
    engine = PermDNNEngine()
    current = xs
    for matrix, activation in layers:
        current, _ = engine.run_fc_batch(matrix, current, activation=activation)
    return current


def _overloaded_server(layers, xs, capacity, seed=2):
    """A bounded-queue server under a Poisson stream far past capacity.

    The toy stack serves a micro-batch in a few hundredths of a simulated
    microsecond, so overload means a *very* fast stream: 1e9 rps packs
    the whole set into less time than one batch's service.
    """
    arrivals = PoissonArrivals(1e9, seed=seed).generate(xs.shape[0])
    server = ModelServer(
        layers,
        num_shards=2,
        max_batch_size=4,
        flush_deadline_us=10.0,
        queue_capacity=capacity,
    )
    rids = server.submit_many(xs, arrivals_us=arrivals)
    return server, rids


class TestRejectNewest:
    def test_burst_at_t0_sheds_everything_past_capacity(self):
        layers = _stack()
        xs = _requests(10, 48)
        server = ModelServer(
            layers, num_shards=2, max_batch_size=8, queue_capacity=3
        )
        server.submit_many(xs)  # all at t=0
        report = server.drain()
        # Reject-newest: the first `capacity` requests are admitted, every
        # later one finds the queue full at the same instant.
        assert report.shed_rids == list(range(3, 10))
        assert report.num_requests == 3
        assert sorted(r.tolist() for r in report.outputs)  # smoke: outputs exist

    def test_shed_counts_reconcile_with_submissions(self):
        layers = _stack()
        xs = _requests(24, 48)
        server, _ = _overloaded_server(layers, xs, capacity=5)
        report = server.drain()
        assert report.num_shed > 0
        assert report.num_requests + report.num_shed == 24
        assert report.num_submitted == 24
        assert len(report.outputs) == report.num_requests
        assert report.latencies_us.shape == (report.num_requests,)

    def test_shed_accounted_on_entry_layer_shards_only(self):
        layers = _stack()
        xs = _requests(24, 48)
        server, _ = _overloaded_server(layers, xs, capacity=5)
        report = server.drain()
        for stats in report.layer_stats[0]:
            assert stats.shed == report.num_shed
        for per_shard in report.layer_stats[1:]:
            assert all(stats.shed == 0 for stats in per_shard)

    def test_admitted_outputs_bit_identical_to_baseline_subset(self):
        layers = _stack()
        xs = _requests(24, 48)
        reference = _unsharded_reference(layers, xs)
        server, rids = _overloaded_server(layers, xs, capacity=5)
        report = server.drain()
        shed = set(report.shed_rids)
        admitted_rows = [row for row, rid in enumerate(rids) if rid not in shed]
        assert 0 < len(admitted_rows) < 24
        np.testing.assert_array_equal(
            np.stack(report.outputs), reference[admitted_rows]
        )

    def test_unbounded_queue_never_sheds(self):
        layers = _stack()
        xs = _requests(24, 48)
        arrivals = PoissonArrivals(1e9, seed=2).generate(24)
        server = ModelServer(
            layers, num_shards=2, max_batch_size=4, flush_deadline_us=10.0
        )
        server.submit_many(xs, arrivals_us=arrivals)
        report = server.drain()
        assert report.shed_rids == []
        assert report.num_requests == 24

    def test_bounded_run_is_a_pure_function_of_the_stream(self):
        layers = _stack()
        xs = _requests(24, 48)
        traces = []
        for _ in range(2):
            server, _ = _overloaded_server(layers, xs, capacity=5)
            traces.append(server.drain())
        first, second = traces
        assert first.shed_rids == second.shed_rids
        np.testing.assert_array_equal(first.latencies_us, second.latencies_us)
        np.testing.assert_array_equal(first.queue_us, second.queue_us)

    def test_wide_spacing_admits_everything_under_a_tight_bound(self):
        layers = _stack()
        xs = _requests(8, 48)
        server = ModelServer(
            layers,
            num_shards=2,
            max_batch_size=4,
            flush_deadline_us=5.0,
            queue_capacity=1,
        )
        # Arrivals far apart: each request completes before the next lands.
        arrivals = np.arange(8) * 1e5
        server.submit_many(xs, arrivals_us=arrivals)
        report = server.drain()
        assert report.shed_rids == []
        assert report.num_requests == 8

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            ModelServer(_stack(), num_shards=2, queue_capacity=0)

    def test_repr_mentions_capacity(self):
        server = ModelServer(_stack(), num_shards=2, queue_capacity=7)
        assert "queue_capacity=7" in repr(server)


class TestSheddingUnderSanitizer:
    def test_shedding_drain_rebuilds_no_plans(self):
        from repro.debug import sanitize

        layers = _stack()
        xs = _requests(24, 48)
        with sanitize() as sanitizer:
            server, _ = _overloaded_server(layers, xs, capacity=5)
            report = server.drain()
            assert report.num_shed > 0
            sanitizer.assert_no_plan_rebuild()


class TestOverloadMeetsSlo:
    def test_two_x_knee_overload_keeps_admitted_p99_within_slo(self):
        # The full study at toy scale: knee by bisection, then 2x-knee
        # overload with the Little's-law queue bound.  failures() covers
        # the SLO and bit-exactness contracts; assert the key ones
        # directly too so a report-format change can't mask them.
        report = run_open_loop_sweep(
            arrivals=("poisson",),
            load_fractions=(0.5, 1.0),
            num_requests=16,
            num_shards=2,
            scale=64,
            knee_iters=3,
        )
        assert report.failures() == []
        assert report.knees["poisson"] > 0
        for point in report.shed_points:
            assert point.outputs_match
            if point.num_admitted:
                assert point.p99_us <= report.slo_us
