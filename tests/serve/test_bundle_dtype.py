"""Sharded bundles (manifest v2) carry and cross-check value dtypes."""

import json

import numpy as np
import pytest

from repro.core import BlockPermutedDiagonalMatrix
from repro.nn.quantization import FixedPointFormat
from repro.serve.bundle import export_sharded_bundle, load_sharded_bundle
from repro.serve.server import ModelServer


def _layers():
    return [
        (
            BlockPermutedDiagonalMatrix.random(
                (64, 48), 8, rng=1, value_dtype="float32"
            ),
            "relu",
        ),
        (
            BlockPermutedDiagonalMatrix.random(
                (32, 64),
                8,
                rng=2,
                value_dtype="int16",
                fixed_point=FixedPointFormat(16, 13),
            ),
            None,
        ),
    ]


def test_bundle_round_trip_preserves_value_dtypes(tmp_path):
    export_sharded_bundle(tmp_path, _layers(), num_shards=4)
    layers, manifest = load_sharded_bundle(tmp_path)
    assert manifest["layers"][0]["value_dtype"] == "float32"
    assert manifest["layers"][0]["fixed_point"] is None
    assert manifest["layers"][1]["value_dtype"] == "int16"
    assert manifest["layers"][1]["fixed_point"] == [16, 13]
    for (shards, _), (orig, _) in zip(layers, _layers()):
        for shard in shards:
            assert shard.value_dtype == orig.value_dtype
            assert shard.fixed_point == orig.fixed_point
            assert shard.data.dtype == orig.data.dtype


def test_bundle_server_matches_direct_chain(tmp_path):
    layers = _layers()
    export_sharded_bundle(tmp_path, layers, num_shards=4)
    server = ModelServer.from_bundle(tmp_path, enforce_capacity=False)
    x = np.random.default_rng(0).normal(size=(5, 48))
    server.submit_many(x)
    report = server.drain()
    hidden = np.maximum(layers[0][0].matmat(x), 0.0)
    expected = layers[1][0].matmat(hidden)
    np.testing.assert_array_equal(np.stack(report.outputs), expected)


def test_manifest_dtype_mismatch_fails_loudly(tmp_path):
    export_sharded_bundle(tmp_path, _layers(), num_shards=2)
    manifest_path = tmp_path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["layers"][0]["value_dtype"] = "int16"
    manifest["layers"][0]["fixed_point"] = [16, 12]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="does not match"):
        load_sharded_bundle(tmp_path)


def test_v1_manifest_loads_float64_layers(tmp_path):
    float_layers = [
        (BlockPermutedDiagonalMatrix.random((32, 32), 8, rng=5), "relu")
    ]
    export_sharded_bundle(tmp_path, float_layers, num_shards=2)
    manifest_path = tmp_path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["bundle_version"] = 1
    for spec in manifest["layers"]:
        del spec["value_dtype"]
        del spec["fixed_point"]
    manifest_path.write_text(json.dumps(manifest))
    layers, loaded_manifest = load_sharded_bundle(tmp_path)
    assert int(loaded_manifest["bundle_version"]) == 1
    assert all(shard.value_dtype == "float64" for shard in layers[0][0])
