"""Property-based cross-backend conformance suite.

A seeded random sweep over ~50 ``(m, n, p, batch)`` configurations --
including non-multiple-of-``p`` shapes -- asserting that every available
kernel backend (``gather``, ``csr``, and ``numba`` when installed) agrees
with a dense numpy reference to 1e-10 on all three hot-path products, and
that plan ``to_bytes()/from_bytes()`` round trips preserve results
exactly.  Run with ``REPRO_BACKEND=numba`` in the numba CI leg; the sweep
itself always pins each backend explicitly so every available
implementation is exercised regardless of the process default.

A couple of hypothesis properties drive the same invariants (plus the
row-shard decomposition the serving runtime relies on) over a wider,
shrinkable input space.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BlockPermutedDiagonalMatrix,
    PermutationSpec,
    available_backends,
)
from repro.core.block_perm_diag import _IndexPlan

ATOL = 1e-10
SWEEP_SIZE = 50
SWEEP_SEED = 20260729


def _sweep_configs(num: int, seed: int) -> list[tuple[int, int, int, int, int]]:
    """``num`` seeded random ``(m, n, p, batch, case_seed)`` configurations.

    Roughly half the shapes are non-multiples of ``p`` on one or both
    axes, so the padded-support paths stay inside the sweep.
    """
    rng = np.random.default_rng(seed)
    configs = []
    for idx in range(num):
        p = int(rng.integers(1, 9))
        mb = int(rng.integers(1, 7))
        nb = int(rng.integers(1, 7))
        m_pad = int(rng.integers(0, p)) if rng.random() < 0.5 else 0
        n_pad = int(rng.integers(0, p)) if rng.random() < 0.5 else 0
        m = mb * p - m_pad
        n = nb * p - n_pad
        batch = int(rng.integers(1, 9))
        configs.append((m, n, p, batch, seed + idx))
    return configs


CONFIGS = _sweep_configs(SWEEP_SIZE, SWEEP_SEED)


def _build(m, n, p, case_seed):
    matrix = BlockPermutedDiagonalMatrix.random(
        (m, n),
        p,
        spec=PermutationSpec(scheme="random", seed=case_seed),
        rng=case_seed,
    )
    rng = np.random.default_rng(case_seed + 1)
    return matrix, rng


def _dense_grad_reference(matrix, x, dy):
    """Eqn. (2) off the dense product, projected onto the PD support."""
    dense_grad = dy.T @ x  # (m, n)
    flat, rows, cols = matrix._get_plan().support_coords()
    expected = np.zeros(matrix.data.shape)
    expected.reshape(-1)[flat] = dense_grad[rows, cols]
    return expected


@pytest.mark.parametrize(
    "m,n,p,batch,case_seed",
    CONFIGS,
    ids=[f"m{m}n{n}p{p}b{b}" for m, n, p, b, _ in CONFIGS],
)
class TestBackendConformance:
    def test_products_agree_with_dense_reference(
        self, m, n, p, batch, case_seed
    ):
        matrix, rng = _build(m, n, p, case_seed)
        dense = matrix.to_dense()
        x = rng.normal(size=(batch, n))
        dy = rng.normal(size=(batch, m))
        ref_forward = x @ dense.T
        ref_backward = dy @ dense
        ref_grad = _dense_grad_reference(matrix, x, dy)
        for backend in available_backends():
            matrix.set_backend(backend)
            np.testing.assert_allclose(
                matrix.matmat(x), ref_forward, atol=ATOL,
                err_msg=f"matmat diverges on backend {backend!r}",
            )
            np.testing.assert_allclose(
                matrix.rmatmat(dy), ref_backward, atol=ATOL,
                err_msg=f"rmatmat diverges on backend {backend!r}",
            )
            np.testing.assert_allclose(
                matrix.grad_data(x, dy), ref_grad, atol=ATOL,
                err_msg=f"grad_data diverges on backend {backend!r}",
            )
            np.testing.assert_allclose(
                matrix.matvec(x[0]), ref_forward[0], atol=ATOL,
                err_msg=f"matvec diverges on backend {backend!r}",
            )
            np.testing.assert_allclose(
                matrix.rmatvec(dy[0]), ref_backward[0], atol=ATOL,
                err_msg=f"rmatvec diverges on backend {backend!r}",
            )

    def test_plan_bytes_round_trip_preserves_results(
        self, m, n, p, batch, case_seed
    ):
        matrix, rng = _build(m, n, p, case_seed)
        x = rng.normal(size=(batch, n))
        dy = rng.normal(size=(batch, m))
        blob = matrix.plan_bytes()
        restored_plan = _IndexPlan.from_bytes(blob)
        for backend in available_backends():
            matrix.set_backend(backend)
            restored = BlockPermutedDiagonalMatrix.from_plan(
                restored_plan, matrix.data, backend=backend
            )
            np.testing.assert_array_equal(restored.matmat(x), matrix.matmat(x))
            np.testing.assert_array_equal(
                restored.rmatmat(dy), matrix.rmatmat(dy)
            )
            np.testing.assert_array_equal(
                restored.grad_data(x, dy), matrix.grad_data(x, dy)
            )


# ---------------------------------------------------------------------------
# Value-dtype sweep: the same seeded configurations at reduced precision.
# ---------------------------------------------------------------------------

# float32 runs the whole product in float32; against the float64 dense
# reference the error is rounding noise, orders below this tolerance on
# these unit-scale configurations.
FLOAT32_ATOL = 1e-5


@pytest.mark.parametrize(
    "m,n,p,batch,case_seed",
    CONFIGS,
    ids=[f"m{m}n{n}p{p}b{b}" for m, n, p, b, _ in CONFIGS],
)
class TestValueDtypeConformance:
    def test_float32_tracks_float64_reference(self, m, n, p, batch, case_seed):
        matrix, rng = _build(m, n, p, case_seed)
        f32 = matrix.with_value_dtype("float32")
        dense = matrix.to_dense()
        x = rng.normal(size=(batch, n))
        dy = rng.normal(size=(batch, m))
        for backend in available_backends():
            f32.set_backend(backend)
            forward = f32.matmat(x)
            backward = f32.rmatmat(dy)
            grad = f32.grad_data(x, dy)
            assert forward.dtype == np.float32, backend
            assert backward.dtype == np.float32, backend
            assert grad.dtype == np.float32, backend
            np.testing.assert_allclose(
                forward, x @ dense.T, atol=FLOAT32_ATOL,
                err_msg=f"float32 matmat diverges on backend {backend!r}",
            )
            np.testing.assert_allclose(
                backward, dy @ dense, atol=FLOAT32_ATOL,
                err_msg=f"float32 rmatmat diverges on backend {backend!r}",
            )
            np.testing.assert_allclose(
                grad, _dense_grad_reference(matrix, x, dy), atol=FLOAT32_ATOL,
                err_msg=f"float32 grad_data diverges on backend {backend!r}",
            )

    def test_int16_exact_vs_dequantized_bounded_vs_original(
        self, m, n, p, batch, case_seed
    ):
        matrix, rng = _build(m, n, p, case_seed)
        i16 = matrix.with_value_dtype("int16")
        # (a) Accumulation policy: dequantize-to-float64 makes an int16
        # matrix bit-compatible with a float64 matrix of the dequantized
        # weights -- the dense reference holds at the float64 tolerance.
        dense_deq = i16.with_value_dtype("float64").to_dense()
        x = rng.normal(size=(batch, n))
        for backend in available_backends():
            i16.set_backend(backend)
            out = i16.matmat(x)
            assert out.dtype == np.float64, backend
            np.testing.assert_allclose(
                out, x @ dense_deq.T, atol=ATOL,
                err_msg=f"int16 matmat diverges on backend {backend!r}",
            )
            # (b) Per-format bound vs the *original* float64 weights:
            # every stored weight moved by at most resolution/2, so each
            # output is off by at most sum|x| * resolution/2.
            bound = (
                0.5 * i16.fixed_point.resolution
                * float(np.abs(x).sum(axis=1).max())
                + 1e-12
            )
            err = np.max(np.abs(out - x @ matrix.to_dense().T))
            assert err <= bound, (backend, err, bound)


# ---------------------------------------------------------------------------
# Hypothesis properties: same invariants over a shrinkable space.
# ---------------------------------------------------------------------------

_structure = st.tuples(
    st.integers(min_value=1, max_value=6),   # p
    st.integers(min_value=1, max_value=5),   # mb
    st.integers(min_value=1, max_value=5),   # nb
    st.integers(min_value=0, max_value=5),   # m padding (clamped below p)
    st.integers(min_value=0, max_value=5),   # n padding (clamped below p)
    st.integers(min_value=1, max_value=4),   # batch
    st.integers(min_value=0, max_value=2**16),  # seed
)


@settings(max_examples=25, deadline=None)
@given(_structure)
def test_backends_agree_hypothesis(structure):
    p, mb, nb, m_pad, n_pad, batch, seed = structure
    m = mb * p - min(m_pad, p - 1)
    n = nb * p - min(n_pad, p - 1)
    matrix, rng = _build(m, n, p, seed)
    dense = matrix.to_dense()
    x = rng.normal(size=(batch, n))
    dy = rng.normal(size=(batch, m))
    for backend in available_backends():
        matrix.set_backend(backend)
        np.testing.assert_allclose(matrix.matmat(x), x @ dense.T, atol=ATOL)
        np.testing.assert_allclose(matrix.rmatmat(dy), dy @ dense, atol=ATOL)
        np.testing.assert_allclose(
            matrix.grad_data(x, dy),
            _dense_grad_reference(matrix, x, dy),
            atol=ATOL,
        )


@settings(max_examples=25, deadline=None)
@given(_structure, st.integers(min_value=1, max_value=5))
def test_row_shards_reassemble_forward_hypothesis(structure, num_shards):
    """Stacked row-shard outputs reproduce the full product bit for bit --
    the decomposition the sharded serving runtime is built on."""
    p, mb, nb, m_pad, n_pad, batch, seed = structure
    m = mb * p - min(m_pad, p - 1)
    n = nb * p - min(n_pad, p - 1)
    matrix, rng = _build(m, n, p, seed)
    num_shards = min(num_shards, matrix.mb)
    x = rng.normal(size=(batch, n))
    full = matrix.matmat(x)
    shards = matrix.row_shards(num_shards)
    stacked = np.concatenate([shard.matmat(x) for shard in shards], axis=1)
    np.testing.assert_array_equal(stacked, full)
