"""Row sharding: plan slicing, aliasing, and the bit-exact decomposition."""

import numpy as np
import pytest

import repro.core.block_perm_diag as mod
from repro.core import (
    BlockPermutedDiagonalMatrix,
    PermutationSpec,
    row_shard_bounds,
)

# Aligned, row-padded, and doubly padded structures.
SHAPES = [((24, 16), 4), ((22, 16), 4), ((13, 10), 4)]


def _random_bpd(shape, p, seed=0):
    return BlockPermutedDiagonalMatrix.random(
        shape, p, spec=PermutationSpec(scheme="random", seed=seed), rng=seed
    )


class TestShardBounds:
    def test_balanced_contiguous_partition(self):
        assert row_shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert row_shard_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]
        assert row_shard_bounds(5, 5) == [(i, i + 1) for i in range(5)]

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            row_shard_bounds(4, 0)
        with pytest.raises(ValueError, match="at least one block row"):
            row_shard_bounds(2, 3)


@pytest.mark.parametrize("shape,p", SHAPES)
class TestRowShard:
    def test_shards_partition_structure(self, shape, p):
        matrix = _random_bpd(shape, p)
        shards = matrix.row_shards(3)
        assert sum(s.shape[0] for s in shards) == shape[0]
        assert all(s.shape[1] == shape[1] for s in shards)
        assert all(s.p == p for s in shards)
        assert sum(s.nnz for s in shards) == matrix.nnz
        for (start, stop), shard in zip(row_shard_bounds(matrix.mb, 3), shards):
            np.testing.assert_array_equal(shard.ks, matrix.ks[start:stop])
            np.testing.assert_array_equal(
                shard.to_dense(),
                matrix.to_dense()[start * p : start * p + shard.shape[0]],
            )

    def test_forward_products_reassemble_bit_for_bit(self, shape, p):
        matrix = _random_bpd(shape, p)
        x = np.random.default_rng(1).normal(size=(5, shape[1]))
        full_mat = matrix.matmat(x)
        full_vec = matrix.matvec(x[0])
        for num_shards in (1, 2, 3):
            shards = matrix.row_shards(num_shards)
            np.testing.assert_array_equal(
                np.concatenate([s.matmat(x) for s in shards], axis=1), full_mat
            )
            np.testing.assert_array_equal(
                np.concatenate([s.matvec(x[0]) for s in shards]), full_vec
            )

    def test_rmatmat_row_slices_sum_to_full(self, shape, p):
        matrix = _random_bpd(shape, p)
        y = np.random.default_rng(2).normal(size=(4, shape[0]))
        full = matrix.rmatmat(y)
        shards = matrix.row_shards(2)
        acc = np.zeros_like(full)
        for (start, _), shard in zip(row_shard_bounds(matrix.mb, 2), shards):
            acc += shard.rmatmat(
                y[:, start * p : start * p + shard.shape[0]]
            )
        np.testing.assert_allclose(acc, full, atol=1e-12)

    def test_shard_data_aliases_parent_storage(self, shape, p):
        matrix = _random_bpd(shape, p)
        shards = matrix.row_shards(2)
        assert shards[0].data.base is matrix.data
        matrix.data[0, 0, 0] = 42.0
        assert shards[0].data[0, 0, 0] == 42.0

    def test_shard_backend_inherited(self, shape, p):
        matrix = _random_bpd(shape, p).set_backend("gather")
        assert all(s.backend == "gather" for s in matrix.row_shards(2))


class TestPlanSlicing:
    def test_sharding_never_recomputes_index_arithmetic(self, monkeypatch):
        """A warmed parent plan shards by pure slicing: forward, backward
        and the structured products all run without any `_IndexPlan`
        construction."""
        matrix = _random_bpd((24, 16), 4)
        matrix._get_plan().warm()

        def boom(*args, **kwargs):
            raise AssertionError("row sharding rebuilt an index plan")

        monkeypatch.setattr(mod._IndexPlan, "__init__", boom)
        shards = matrix.row_shards(3)
        x = np.random.default_rng(0).normal(size=(3, 16))
        for shard in shards:
            shard.matmat(x)
            shard.rmatmat(
                np.random.default_rng(1).normal(size=(3, shard.shape[0]))
            )
            shard.grad_data(
                x, np.random.default_rng(2).normal(size=(3, shard.shape[0]))
            )

    def test_sliced_plan_arrays_are_views_where_possible(self):
        matrix = _random_bpd((24, 16), 4)
        parent = matrix._get_plan()
        shard_plan = parent.row_block_slice(1, 3)
        assert shard_plan.cols.base is not None  # shared view, no copy
        assert shard_plan.support.base is not None
        assert shard_plan.mb == 2 and shard_plan.shape == (8, 16)

    def test_last_shard_keeps_row_padding(self):
        matrix = _random_bpd((22, 16), 4)  # mb=6, padded last block row
        shards = matrix.row_shards(3)
        assert [s.shape[0] for s in shards] == [8, 8, 6]
        assert shards[-1].nnz < shards[0].nnz

    def test_invalid_slice_rejected(self):
        plan = _random_bpd((24, 16), 4)._get_plan()
        for start, stop in [(-1, 2), (2, 2), (0, 99)]:
            with pytest.raises(ValueError, match="block-row slice"):
                plan.row_block_slice(start, stop)

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError, match="at least one block row"):
            _random_bpd((24, 16), 4).row_shards(7)
