"""Literal transcriptions of the paper's equations, checked against the library.

These tests implement Eqn. (1) (weight layout), the forward-propagation
index formula of Sec. III-B, and the backward index relation of Eqn. (3)
exactly as printed, then verify the vectorized implementations agree.
This pins the code to the paper, not merely to itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockPermutedDiagonalMatrix


def _eqn1_wij(i, j, p, n, ks_flat, q):
    """Eqn. (1): w_ij = q[l*p + c] if (c + k_l) mod p == d else 0.

    (The paper prints the q index as ``k_l x p + c``; with block-major
    packing the block offset is ``l*p`` -- the mapping used by ``to_q``.)
    """
    c = i % p
    d = j % p
    l = (i // p) * (n // p) + (j // p)
    if (c + ks_flat[l]) % p == d:
        return q[l * p + c]
    return 0.0


class TestEqn1Layout:
    @given(
        st.integers(1, 3).map(lambda v: 4 * v),
        st.integers(1, 3).map(lambda v: 4 * v),
        st.sampled_from([1, 2, 4]),
        st.sampled_from(["natural", "random"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_every_entry_matches_eqn1(self, m, n, p, scheme):
        from repro.core import PermutationSpec

        rng = np.random.default_rng(m + n + p)
        matrix = BlockPermutedDiagonalMatrix.random(
            (m, n), p, spec=PermutationSpec(scheme, seed=7), rng=rng
        )
        dense = matrix.to_dense()
        q = matrix.to_q()
        ks_flat = matrix.ks.reshape(-1)
        for i in range(m):
            for j in range(n):
                assert dense[i, j] == pytest.approx(
                    _eqn1_wij(i, j, p, n, ks_flat, q)
                )


class TestForwardFormula:
    @given(
        st.integers(1, 3).map(lambda v: 4 * v),
        st.integers(1, 3).map(lambda v: 4 * v),
        st.sampled_from([2, 4]),
    )
    @settings(max_examples=15, deadline=None)
    def test_ai_summation(self, m, n, p):
        """Sec. III-B: a_i = sum_{g=0}^{n/p-1} w_ij x_j with
        j = (i + k_l) mod p + g*p and l = g + (i/p)*(n/p)."""
        rng = np.random.default_rng(m * 3 + n + p)
        matrix = BlockPermutedDiagonalMatrix.random((m, n), p, rng=rng)
        x = rng.normal(size=n)
        q = matrix.to_q()
        ks_flat = matrix.ks.reshape(-1)
        a = np.zeros(m)
        for i in range(m):
            c = i % p
            for g in range(n // p):
                l = (i // p) * (n // p) + g
                j = (i + ks_flat[l]) % p + g * p
                a[i] += q[l * p + c] * x[j]
        np.testing.assert_allclose(a, matrix.matvec(x), atol=1e-12)


class TestBackwardIndexRelation:
    @given(st.sampled_from([2, 4, 8]), st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_eqn3_row_index(self, p, seed):
        """Eqn. (3) uses i = (j + p - k_l) mod p + g*p: the row whose
        non-zero sits in column j.  Check it inverts the forward map."""
        rng = np.random.default_rng(seed)
        k = int(rng.integers(0, p))
        for j_in_block in range(p):
            i_in_block = (j_in_block + p - k) % p
            # forward map from that row must land back on column j
            assert (i_in_block + k) % p == j_in_block

    @given(
        st.integers(1, 3).map(lambda v: 4 * v),
        st.integers(1, 3).map(lambda v: 4 * v),
    )
    @settings(max_examples=15, deadline=None)
    def test_dJ_dx_summation(self, m, n):
        """Eqn. (3): dJ/dx_j = sum_g w_ij dJ/da_i over the m/p blocks in
        column j -- must equal W.T @ da."""
        p = 4
        rng = np.random.default_rng(m + n)
        matrix = BlockPermutedDiagonalMatrix.random((m, n), p, rng=rng)
        da = rng.normal(size=m)
        dense = matrix.to_dense()
        dx = np.zeros(n)
        for j in range(n):
            for g in range(m // p):
                # scan rows of block-row g intersecting column j
                for i in range(g * p, (g + 1) * p):
                    dx[j] += dense[i, j] * da[i]
        np.testing.assert_allclose(dx, matrix.rmatvec(da), atol=1e-12)


class TestEqn2StructurePreservation:
    def test_update_rule_touches_only_nonzeros(self):
        """Eqn. (2): w_ij <- w_ij - eps * x_j dJ/da_i, 'for any w_ij != 0'.
        Applying the literal rule must keep the matrix block-PD."""
        rng = np.random.default_rng(0)
        p, m, n = 2, 8, 8
        matrix = BlockPermutedDiagonalMatrix.random((m, n), p, rng=rng)
        dense = matrix.to_dense()
        mask = matrix.dense_mask()
        x = rng.normal(size=n)
        da = rng.normal(size=m)
        eps = 0.1
        updated = dense - eps * np.outer(da, x) * mask  # literal Eqn. (2)
        # library equivalent: grad_data + data update
        grad = matrix.grad_data(x[None, :], da[None, :])
        matrix.data -= eps * grad
        np.testing.assert_allclose(matrix.to_dense(), updated, atol=1e-12)
        assert np.all(matrix.to_dense()[~mask] == 0)
