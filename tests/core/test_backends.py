"""Backend dispatch: registry, selection precedence, cross-backend
equivalence, cache-blocked paths, int32 CSR skeletons, and plan
serialization round trips."""

import numpy as np
import pytest

import repro.core.backends as backends
import repro.core.backends.gather as gather_mod
import repro.core.block_perm_diag as mod
from repro.core import (
    BackendUnavailableError,
    BlockPermutedDiagonalMatrix,
    PermutationSpec,
    UnknownBackendError,
    available_backends,
    default_backend,
    get_backend,
    set_default_backend,
)

# Shapes covering aligned, row-padded and fully padded structures.
SHAPES = [((16, 16), 4), ((13, 10), 4), ((7, 9), 3)]


def _random_bpd(shape, p, seed=0, scheme="random", backend=None):
    return BlockPermutedDiagonalMatrix.random(
        shape,
        p,
        spec=PermutationSpec(scheme=scheme, seed=seed),
        rng=seed,
        backend=backend,
    )


@pytest.fixture(autouse=True)
def _restore_default_backend():
    yield
    set_default_backend(None)


class TestRegistry:
    def test_gather_and_csr_always_registered(self):
        assert {"gather", "csr"} <= set(backends.backend_names())
        assert "gather" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(UnknownBackendError):
            get_backend("bogus")
        with pytest.raises(UnknownBackendError):
            BlockPermutedDiagonalMatrix.random((8, 8), 4, backend="bogus")

    def test_get_backend_is_singleton(self):
        assert get_backend("gather") is get_backend("gather")

    def test_unavailable_backend_raises(self, monkeypatch):
        monkeypatch.setattr(mod, "_scipy_sparse", None)
        assert "csr" not in available_backends()
        with pytest.raises(BackendUnavailableError):
            get_backend("csr")

    def test_numba_backend_gated_on_import(self):
        from repro.core.backends.numba_backend import NumbaBackend, _numba

        assert NumbaBackend.is_available() == (_numba is not None)
        if _numba is None:
            with pytest.raises(BackendUnavailableError):
                get_backend("numba")


class TestSelection:
    def test_auto_prefers_csr_then_gather(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        bpd = _random_bpd((8, 8), 4)
        assert bpd.backend is None
        assert bpd.resolved_backend() == "csr"
        monkeypatch.setattr(mod, "_scipy_sparse", None)
        assert bpd.resolved_backend() == "gather"

    def test_pinned_backend_wins_over_default(self):
        set_default_backend("gather")
        bpd = _random_bpd((8, 8), 4, backend="csr")
        assert bpd.resolved_backend() == "csr"

    def test_set_default_backend_applies_and_validates(self):
        set_default_backend("gather")
        assert default_backend() == "gather"
        assert _random_bpd((8, 8), 4).resolved_backend() == "gather"
        with pytest.raises(UnknownBackendError):
            set_default_backend("bogus")

    def test_env_var_consulted_until_default_pinned(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gather")
        assert default_backend() == "gather"
        assert _random_bpd((8, 8), 4).resolved_backend() == "gather"
        set_default_backend("csr")
        assert default_backend() == "csr"

    def test_bad_env_var_fails_with_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(UnknownBackendError, match="REPRO_BACKEND|bogus"):
            _random_bpd((8, 8), 4).matvec(np.zeros(8))

    def test_set_backend_switch_and_unpin(self):
        bpd = _random_bpd((8, 8), 4, backend="gather")
        assert bpd.backend == "gather"
        bpd.set_backend("csr")
        assert bpd.backend == "csr"
        bpd.set_backend("auto")
        assert bpd.backend is None
        with pytest.raises(UnknownBackendError):
            bpd.set_backend("bogus")

    def test_like_inherits_pinned_backend(self):
        base = _random_bpd((8, 8), 4, backend="gather")
        sibling = base.like(np.zeros(base.data.shape))
        assert sibling.backend == "gather"

    def test_pinned_unavailable_backend_fails_at_use(self, monkeypatch):
        bpd = _random_bpd((8, 8), 4, backend="csr")
        monkeypatch.setattr(mod, "_scipy_sparse", None)
        with pytest.raises(BackendUnavailableError):
            bpd.matvec(np.zeros(8))


class TestCrossBackendEquivalence:
    """Same matrix, every available backend: products agree to 1e-10."""

    @pytest.mark.parametrize("shape,p", SHAPES)
    def test_products_match_dense_on_every_backend(self, shape, p):
        bpd = _random_bpd(shape, p, seed=3)
        dense = bpd.to_dense()
        rng = np.random.default_rng(4)
        x = rng.normal(size=(5, shape[1]))
        y = rng.normal(size=(5, shape[0]))
        for name in available_backends():
            bpd.set_backend(name)
            np.testing.assert_allclose(
                bpd.matmat(x), x @ dense.T, atol=1e-10, err_msg=name
            )
            np.testing.assert_allclose(
                bpd.rmatmat(y), y @ dense, atol=1e-10, err_msg=name
            )
            np.testing.assert_allclose(
                bpd.matvec(x[0]), dense @ x[0], atol=1e-10, err_msg=name
            )
            np.testing.assert_allclose(
                bpd.rmatvec(y[0]), dense.T @ y[0], atol=1e-10, err_msg=name
            )

    @pytest.mark.parametrize("shape,p", SHAPES)
    def test_grad_data_agrees_across_backends(self, shape, p):
        bpd = _random_bpd(shape, p, seed=5)
        rng = np.random.default_rng(6)
        x = rng.normal(size=(4, shape[1]))
        dy = rng.normal(size=(4, shape[0]))
        reference = BlockPermutedDiagonalMatrix.from_dense(
            (dy.T @ x) * bpd.dense_mask(), p, ks=bpd.ks
        ).data
        for name in available_backends():
            bpd.set_backend(name)
            np.testing.assert_allclose(
                bpd.grad_data(x, dy), reference, atol=1e-10, err_msg=name
            )

    @pytest.mark.parametrize("shape,p", SHAPES)
    def test_chunked_transposed_paths_match_dense(
        self, shape, p, monkeypatch
    ):
        """Force the cache-blocked path (one block row per slab) for every
        product and re-check against the dense reference."""
        monkeypatch.setattr(gather_mod, "_ONESHOT_LIMIT_ELEMENTS", 0)
        monkeypatch.setattr(gather_mod, "_CHUNK_TARGET_ELEMENTS", 1)
        bpd = _random_bpd(shape, p, seed=7, backend="gather")
        dense = bpd.to_dense()
        rng = np.random.default_rng(8)
        x = rng.normal(size=(3, shape[1]))
        dy = rng.normal(size=(3, shape[0]))
        np.testing.assert_allclose(bpd.matmat(x), x @ dense.T, atol=1e-10)
        np.testing.assert_allclose(bpd.rmatmat(dy), dy @ dense, atol=1e-10)
        reference = BlockPermutedDiagonalMatrix.from_dense(
            (dy.T @ x) * bpd.dense_mask(), p, ks=bpd.ks
        ).data
        np.testing.assert_allclose(bpd.grad_data(x, dy), reference, atol=1e-10)

    def test_backend_switch_keeps_plan_and_values(self):
        bpd = _random_bpd((12, 8), 4, seed=9)
        plan = bpd._get_plan()
        x = np.random.default_rng(10).normal(size=(2, 8))
        before = bpd.set_backend("csr").matmat(x)
        after = bpd.set_backend("gather").matmat(x)
        np.testing.assert_allclose(after, before, atol=1e-12)
        assert bpd._get_plan() is plan


class TestInt32Skeletons:
    def test_csr_skeleton_is_int32_for_small_matrices(self):
        bpd = _random_bpd((10, 14), 4)
        for transposed in (False, True):
            indptr, indices, perm = bpd._get_plan().csr_struct(transposed)
            assert indptr.dtype == np.int32
            assert indices.dtype == np.int32
            assert perm.dtype == np.int64  # numpy gather wants intp

    def test_csr_skeleton_arrays_read_only(self):
        bpd = _random_bpd((10, 14), 4)
        for arr in bpd._get_plan().csr_struct(False):
            with pytest.raises(ValueError):
                arr[...] = 0

    def test_int32_spmm_matches_dense(self):
        bpd = _random_bpd((66, 34), 8, seed=11)
        dense = bpd.to_dense()
        rng = np.random.default_rng(12)
        x = rng.normal(size=(3, 34))
        np.testing.assert_allclose(bpd.matmat(x), x @ dense.T, atol=1e-10)


class TestPlanSerialization:
    def test_round_trip_restores_every_array(self):
        bpd = _random_bpd((13, 10), 4, seed=13)
        plan = bpd._get_plan().warm()
        clone = mod._IndexPlan.from_bytes(plan.to_bytes())
        assert clone.shape == plan.shape
        assert clone.p == plan.p and clone.nnz == plan.nnz
        assert (clone.mb, clone.nb) == (plan.mb, plan.nb)
        assert clone.full_support == plan.full_support
        np.testing.assert_array_equal(clone.ks, plan.ks)
        np.testing.assert_array_equal(clone.rows, plan.rows)
        np.testing.assert_array_equal(clone.cols, plan.cols)
        np.testing.assert_array_equal(clone.support, plan.support)
        for a, b in zip(clone.transpose_arrays(), plan.transpose_arrays()):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(clone.support_coords(), plan.support_coords()):
            np.testing.assert_array_equal(a, b)
        for transposed in (False, True):
            for a, b in zip(
                clone.csr_struct(transposed), plan.csr_struct(transposed)
            ):
                np.testing.assert_array_equal(a, b)
                assert a.dtype == b.dtype

    def test_restored_arrays_are_read_only(self):
        bpd = _random_bpd((13, 10), 4, seed=14)
        clone = mod._IndexPlan.from_bytes(bpd.plan_bytes())
        for arr in (clone.rows, clone.cols, clone.support, clone.ks):
            with pytest.raises(ValueError):
                arr[...] = 0

    def test_cold_plan_serializes_without_lazy_members(self):
        bpd = _random_bpd((13, 10), 4, seed=15)
        blob = bpd.plan_bytes(warm=False)
        clone = mod._IndexPlan.from_bytes(blob)
        assert clone._t_arrays is None
        assert clone._csr_structs == {}
        assert len(blob) < len(bpd.plan_bytes(warm=True))

    def test_from_plan_runs_products_without_rebuild(self, monkeypatch):
        bpd = _random_bpd((13, 10), 4, seed=16)
        dense = bpd.to_dense()
        blob = bpd.plan_bytes()
        values = bpd.data.copy()

        def boom(*args, **kwargs):
            raise AssertionError("index plan was rebuilt")

        monkeypatch.setattr(mod._IndexPlan, "__init__", boom)
        clone = BlockPermutedDiagonalMatrix.from_plan(blob, values)
        rng = np.random.default_rng(17)
        x = rng.normal(size=(3, 10))
        y = rng.normal(size=(3, 13))
        np.testing.assert_allclose(clone.matmat(x), x @ dense.T, atol=1e-10)
        np.testing.assert_allclose(clone.rmatmat(y), y @ dense, atol=1e-10)
        np.testing.assert_allclose(
            clone.grad_data(x, y),
            bpd.grad_data(x, y),
            atol=1e-10,
        )

    def test_adopt_plan_accepts_matching_structure(self):
        bpd = _random_bpd((13, 10), 4, seed=18)
        blob = bpd.plan_bytes()
        other = BlockPermutedDiagonalMatrix(bpd.data, bpd.ks, shape=bpd.shape)
        old_plan = other._get_plan()
        other.adopt_plan(blob)
        assert other._get_plan() is not old_plan
        x = np.random.default_rng(19).normal(size=(2, 10))
        np.testing.assert_allclose(
            other.matmat(x), x @ bpd.to_dense().T, atol=1e-10
        )

    def test_adopt_plan_rejects_structure_mismatch(self):
        bpd = _random_bpd((13, 10), 4, seed=20)
        blob = bpd.plan_bytes()
        other = _random_bpd((13, 10), 4, seed=21)  # different random ks
        if np.array_equal(other.ks, bpd.ks):  # pragma: no cover - seed guard
            pytest.skip("seeds produced identical structure")
        with pytest.raises(ValueError):
            other.adopt_plan(blob)
        wrong_p = _random_bpd((13, 10), 2, seed=20)
        with pytest.raises(ValueError):
            wrong_p.adopt_plan(blob)

    def test_from_bytes_rejects_unknown_version(self):
        bpd = _random_bpd((8, 8), 4, seed=22)
        blob = bpd.plan_bytes()
        import io

        with np.load(io.BytesIO(blob)) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["version"] = np.int64(999)
        buffer = io.BytesIO()
        np.savez(buffer, **payload)
        with pytest.raises(ValueError, match="version"):
            mod._IndexPlan.from_bytes(buffer.getvalue())

    def test_storage_save_bpd_round_trips_plan(self, tmp_path):
        from repro.core import load_bpd, save_bpd

        bpd = _random_bpd((13, 10), 4, seed=23)
        path = str(tmp_path / "matrix.npz")
        save_bpd(path, bpd, include_plan=True)
        loaded = load_bpd(path)
        np.testing.assert_allclose(loaded.to_dense(), bpd.to_dense())
        assert loaded._plan is not None  # plan attached, not recomputed lazily
