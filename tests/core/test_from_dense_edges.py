"""Edge cases of the dense -> PD projection path the factory leans on.

Regression pins for :meth:`BlockPermutedDiagonalMatrix.from_dense`,
:meth:`BlockPermDiagTensor4D.from_dense`, and
:meth:`PermDiagLinear.from_matrix`: non-multiple-of-``p`` shapes,
all-zero matrices (including int16 fixed-point, whose format chooser
must not divide by a zero peak), zero rows/columns, and value-dtype
round-trips.
"""

import numpy as np
import pytest

from repro.core import (
    BlockPermDiagTensor4D,
    BlockPermutedDiagonalMatrix,
    best_permutation_parameters,
    diagonal_energies,
)
from repro.nn import PermDiagLinear


class TestNonMultipleShapes:
    def test_shape_and_roundtrip_preserved(self):
        dense = np.arange(35.0).reshape(7, 5)
        matrix = BlockPermutedDiagonalMatrix.from_dense(
            dense, 4, value_dtype="float64"
        )
        assert matrix.shape == (7, 5)
        back = matrix.to_dense()
        assert back.shape == (7, 5)
        # Projection semantics: every kept entry is the dense entry.
        kept = back != 0
        np.testing.assert_array_equal(back[kept], dense[kept])

    def test_matvec_matches_projected_dense(self):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(7, 5))
        matrix = BlockPermutedDiagonalMatrix.from_dense(
            dense, 4, value_dtype="float64"
        )
        x = rng.normal(size=5)
        np.testing.assert_allclose(
            matrix.matvec(x), matrix.to_dense() @ x, atol=1e-12
        )

    def test_from_matrix_serves_ragged_shapes(self):
        dense = np.random.default_rng(1).normal(size=(7, 5))
        matrix = BlockPermutedDiagonalMatrix.from_dense(
            dense, 4, value_dtype="float64"
        )
        layer = PermDiagLinear.from_matrix(matrix)
        out = layer.forward(np.ones((3, 5)))
        assert out.shape == (3, 7)
        np.testing.assert_allclose(
            out, np.ones((3, 5)) @ matrix.to_dense().T, atol=1e-12
        )

    def test_conv_tensor_non_multiple_channels(self):
        kernel = np.random.default_rng(2).normal(size=(6, 5, 3, 3))
        tensor = BlockPermDiagTensor4D.from_dense(kernel, 4)
        back = tensor.to_dense()
        assert back.shape == kernel.shape
        kept = back != 0
        np.testing.assert_array_equal(back[kept], kernel[kept])


class TestAllZeroInputs:
    def test_zero_matrix_float64(self):
        matrix = BlockPermutedDiagonalMatrix.from_dense(
            np.zeros((8, 8)), 4, value_dtype="float64"
        )
        assert matrix.nnz == 16
        assert not np.any(matrix.to_dense())

    def test_zero_matrix_int16_fixed_point(self):
        # The fixed-point format chooser sees a zero peak; it must pick a
        # valid format instead of dividing by zero.
        matrix = BlockPermutedDiagonalMatrix.from_dense(
            np.zeros((8, 8)), 4, value_dtype="int16"
        )
        assert matrix.value_dtype == "int16"
        assert not np.any(matrix.to_dense())

    def test_zero_rows_and_columns_stay_zero(self):
        dense = np.random.default_rng(0).normal(size=(8, 8))
        dense[3, :] = 0.0
        dense[:, 5] = 0.0
        back = BlockPermutedDiagonalMatrix.from_dense(
            dense, 4, value_dtype="float64"
        ).to_dense()
        assert not np.any(back[3, :])
        assert not np.any(back[:, 5])

    def test_shift_selection_on_zero_blocks_is_valid(self):
        ks = best_permutation_parameters(np.zeros((8, 8)), 4)
        assert ks.shape == (2, 2)
        assert np.all((ks >= 0) & (ks < 4))
        energies = diagonal_energies(np.zeros((8, 8)), 4)
        assert energies.shape == (2, 2, 4)
        assert not np.any(energies)


class TestValueDtypeRoundTrips:
    def test_float32_roundtrip_exact_for_representable_values(self):
        rng = np.random.default_rng(1)
        dense = rng.normal(size=(8, 8)).astype(np.float32).astype(np.float64)
        m32 = BlockPermutedDiagonalMatrix.from_dense(
            dense, 2, value_dtype="float32"
        )
        np.testing.assert_array_equal(
            m32.to_dense(), m32.with_value_dtype("float64").to_dense()
        )

    def test_int16_quantization_error_bounded(self):
        rng = np.random.default_rng(2)
        dense = rng.normal(size=(8, 8))
        m64 = BlockPermutedDiagonalMatrix.from_dense(
            dense, 2, value_dtype="float64"
        )
        m16 = m64.with_value_dtype("int16")
        peak = np.abs(m64.to_dense()).max()
        # One quantization step at the chosen Q-format, conservatively
        # bounded by peak / 2^14 (the format keeps the peak representable).
        assert np.abs(m16.to_dense() - m64.to_dense()).max() <= peak / 2**14

    def test_projection_is_kept_entry_subset(self):
        rng = np.random.default_rng(3)
        dense = rng.normal(size=(12, 8))
        matrix = BlockPermutedDiagonalMatrix.from_dense(
            dense, 4, ks=best_permutation_parameters(dense, 4),
            value_dtype="float64",
        )
        back = matrix.to_dense()
        kept = back != 0
        np.testing.assert_array_equal(back[kept], dense[kept])
        # Kept mass equals what the energy search promised.
        promised = diagonal_energies(dense, 4).max(axis=-1).sum()
        assert (back**2).sum() == pytest.approx(promised)
