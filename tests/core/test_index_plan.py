"""Index-plan cache: laziness, sharing, invalidation, aliasing, and the
transpose-free backward path."""

import numpy as np
import pytest

import repro.core.block_perm_diag as mod
from repro.core import BlockPermutedDiagonalMatrix, PermutationSpec


def _random_bpd(shape, p, seed=0, scheme="natural"):
    return BlockPermutedDiagonalMatrix.random(
        shape, p, spec=PermutationSpec(scheme=scheme, seed=seed), rng=seed
    )


class TestPlanCache:
    def test_plan_computed_once_and_reused(self):
        bpd = _random_bpd((10, 14), 4)
        assert bpd._get_plan() is bpd._get_plan()
        assert bpd.support_mask() is bpd.support_mask()
        rows1, cols1 = bpd._global_indices()
        rows2, cols2 = bpd._global_indices()
        assert rows1 is rows2 and cols1 is cols2

    def test_plan_built_lazily_for_aligned_shapes(self):
        bpd = BlockPermutedDiagonalMatrix(np.ones((2, 3, 4)), np.zeros((2, 3)))
        assert bpd._plan is None  # aligned construction needs no indices
        bpd.matvec(np.zeros(12))
        assert bpd._plan is not None

    def test_plan_arrays_are_read_only(self):
        bpd = _random_bpd((10, 14), 4)
        rows, cols = bpd._global_indices()
        for arr in (rows, cols, bpd.support_mask()):
            with pytest.raises(ValueError):
                arr[...] = 0

    def test_like_shares_plan_and_matches_products(self):
        base = _random_bpd((10, 14), 4, seed=3)
        rng = np.random.default_rng(0)
        sibling = base.like(rng.normal(size=base.data.shape) * base.support_mask())
        assert sibling._get_plan() is base._get_plan()
        x = rng.normal(size=(3, 14))
        np.testing.assert_allclose(
            sibling.matmat(x), x @ sibling.to_dense().T, atol=1e-12
        )

    def test_like_rejects_wrong_shape(self):
        base = _random_bpd((8, 8), 4)
        with pytest.raises(ValueError):
            base.like(np.zeros((2, 2, 3)))

    @pytest.mark.parametrize("shape", [(8, 12), (7, 10)])  # aligned + padded
    def test_support_coordinates_are_read_only(self, shape):
        bpd = _random_bpd(shape, 4)
        for arr in bpd.support_coordinates():
            with pytest.raises(ValueError):
                arr[...] = 0
        with pytest.raises(ValueError):
            bpd._get_plan().flat_cols[...] = 0

    def test_support_coordinates_match_dense_mask(self):
        bpd = _random_bpd((11, 7), 3, seed=5, scheme="random")
        rows, cols = bpd.support_coordinates()
        mask = np.zeros(bpd.shape, dtype=bool)
        mask[rows, cols] = True
        np.testing.assert_array_equal(mask, bpd.dense_mask())


class TestStructureMutation:
    def test_ks_is_read_only(self):
        bpd = _random_bpd((8, 8), 4)
        with pytest.raises(ValueError):
            bpd.ks[...] = 0

    def test_shape_not_assignable(self):
        bpd = _random_bpd((8, 8), 4)
        with pytest.raises(AttributeError):
            bpd.shape = (7, 8)

    def test_set_structure_invalidates_plan(self):
        bpd = _random_bpd((8, 12), 4, seed=1)
        old_plan = bpd._get_plan()
        new_ks = (bpd.ks + 1) % bpd.p
        bpd.set_structure(ks=new_ks)
        assert bpd._get_plan() is not old_plan
        np.testing.assert_array_equal(bpd.ks, new_ks)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 12))
        y = rng.normal(size=(3, 8))
        np.testing.assert_allclose(bpd.matmat(x), x @ bpd.to_dense().T, atol=1e-12)
        np.testing.assert_allclose(bpd.rmatmat(y), y @ bpd.to_dense(), atol=1e-12)

    def test_set_structure_shrinking_shape_remasks_data(self):
        bpd = BlockPermutedDiagonalMatrix(np.ones((2, 2, 4)), np.zeros((2, 2)))
        bpd.set_structure(shape=(7, 6))
        assert np.all(bpd.data[~bpd.support_mask()] == 0)
        assert bpd.nnz == int(bpd.dense_mask().sum())

    def test_set_structure_validates_ks_shape(self):
        bpd = _random_bpd((8, 8), 4)
        with pytest.raises(ValueError):
            bpd.set_structure(ks=np.zeros((3, 3), dtype=int))

    def test_set_structure_validates_logical_shape(self):
        bpd = _random_bpd((8, 8), 4)
        with pytest.raises(ValueError):
            bpd.set_structure(shape=(3, 8))

    def test_set_structure_preserves_buffer_aliasing(self):
        """A shrinking shape re-masks in place: consumers aliasing the data
        buffer (e.g. a Parameter) must keep seeing the matrix's values."""
        bpd = BlockPermutedDiagonalMatrix(np.ones((2, 2, 4)), np.zeros((2, 2)))
        buffer = bpd.data
        bpd.set_structure(shape=(7, 6))
        assert bpd.data is buffer
        assert np.all(buffer[~bpd.support_mask()] == 0)

    def test_set_structure_noop_keeps_working(self):
        bpd = _random_bpd((9, 6), 3, seed=4)
        dense = bpd.to_dense()
        bpd.set_structure()
        np.testing.assert_allclose(bpd.to_dense(), dense)


class TestAliasingContract:
    def test_aligned_data_is_aliased_not_copied(self):
        arr = np.random.default_rng(0).normal(size=(2, 3, 4))
        bpd = BlockPermutedDiagonalMatrix(arr, np.zeros((2, 3)))
        assert bpd.data is arr

    def test_padded_but_already_masked_data_is_aliased(self):
        probe = BlockPermutedDiagonalMatrix.zeros((7, 10), 4)
        arr = np.random.default_rng(1).normal(size=probe.data.shape)
        arr *= probe.support_mask()
        bpd = BlockPermutedDiagonalMatrix(arr, probe.ks, shape=(7, 10))
        assert bpd.data is arr

    def test_padding_violation_triggers_masked_copy(self):
        arr = np.ones((2, 3, 4))
        bpd = BlockPermutedDiagonalMatrix(arr, np.zeros((2, 3)), shape=(7, 10))
        assert bpd.data is not arr
        assert np.all(arr == 1.0)  # caller's array untouched
        assert np.all(bpd.data[~bpd.support_mask()] == 0)

    def test_inplace_updates_visible_through_products(self):
        bpd = _random_bpd((8, 8), 4, seed=2)
        buffer = bpd.data
        x = np.random.default_rng(3).normal(size=(2, 8))
        before = bpd.matmat(x)
        buffer *= 2.0
        np.testing.assert_allclose(bpd.matmat(x), 2.0 * before, atol=1e-12)
        np.testing.assert_allclose(
            bpd.rmatmat(before), before @ bpd.to_dense(), atol=1e-12
        )


class TestTransposeFreeBackward:
    def test_rmatmat_does_not_construct_a_matrix(self, monkeypatch):
        bpd = _random_bpd((10, 14), 4, seed=6)
        bpd._get_plan().transpose_arrays()  # pre-warm so laziness is no excuse

        def boom(*args, **kwargs):
            raise AssertionError("backward must not build matrix objects")

        monkeypatch.setattr(BlockPermutedDiagonalMatrix, "__init__", boom)
        monkeypatch.setattr(BlockPermutedDiagonalMatrix, "transpose", boom)
        rng = np.random.default_rng(7)
        y = rng.normal(size=(3, 10))
        np.testing.assert_allclose(bpd.rmatmat(y), y @ bpd.to_dense(), atol=1e-12)
        np.testing.assert_allclose(
            bpd.rmatvec(y[0]), bpd.to_dense().T @ y[0], atol=1e-12
        )

    def test_rmatmat_consistent_over_forward_backward_cycles(self):
        """Plan-cache correctness under training-style reuse: repeated
        forward/backward with in-place weight updates, random spec and a
        non-multiple-of-p shape."""
        bpd = _random_bpd((13, 10), 4, seed=8, scheme="random")
        rng = np.random.default_rng(9)
        for _ in range(4):
            x = rng.normal(size=(5, 10))
            dy = rng.normal(size=(5, 13))
            dense = bpd.to_dense()
            np.testing.assert_allclose(bpd.matmat(x), x @ dense.T, atol=1e-12)
            np.testing.assert_allclose(bpd.rmatmat(dy), dy @ dense, atol=1e-12)
            grad = bpd.grad_data(x, dy)
            ref = BlockPermutedDiagonalMatrix.from_dense(
                (dy.T @ x) * bpd.dense_mask(), bpd.p, ks=bpd.ks
            )
            np.testing.assert_allclose(grad, ref.data, atol=1e-10)
            bpd.data -= 0.1 * grad  # in-place update, like an optimizer

    def test_grad_data_validates_x_width(self):
        bpd = _random_bpd((8, 8), 4)
        with pytest.raises(ValueError):
            bpd.grad_data(np.zeros((2, 7)), np.zeros((2, 8)))


class TestScipyFallback:
    @pytest.fixture()
    def no_scipy(self, monkeypatch):
        monkeypatch.setattr(mod, "_scipy_sparse", None)

    def test_products_match_dense_without_scipy(self, no_scipy):
        bpd = _random_bpd((11, 14), 4, seed=10, scheme="random")
        dense = bpd.to_dense()
        rng = np.random.default_rng(11)
        x = rng.normal(size=(3, 14))
        y = rng.normal(size=(3, 11))
        np.testing.assert_allclose(bpd.matmat(x), x @ dense.T, atol=1e-12)
        np.testing.assert_allclose(bpd.rmatmat(y), y @ dense, atol=1e-12)
        np.testing.assert_allclose(bpd.matvec(x[0]), dense @ x[0], atol=1e-12)
        np.testing.assert_allclose(bpd.rmatvec(y[0]), dense.T @ y[0], atol=1e-12)

    def test_block_loop_paths_match_dense(self, no_scipy, monkeypatch):
        monkeypatch.setattr(mod, "_GATHER_ELEMENT_LIMIT", 0)
        bpd = _random_bpd((11, 14), 4, seed=12)
        dense = bpd.to_dense()
        rng = np.random.default_rng(13)
        x = rng.normal(size=(3, 14))
        y = rng.normal(size=(3, 11))
        np.testing.assert_allclose(bpd.matmat(x), x @ dense.T, atol=1e-12)
        np.testing.assert_allclose(bpd.rmatmat(y), y @ dense, atol=1e-12)
        grad = bpd.grad_data(x, y)
        ref = BlockPermutedDiagonalMatrix.from_dense(
            (y.T @ x) * bpd.dense_mask(), 4, ks=bpd.ks
        )
        np.testing.assert_allclose(grad, ref.data, atol=1e-10)

    def test_scipy_and_fallback_agree(self, monkeypatch):
        bpd = _random_bpd((9, 12), 4, seed=14)
        rng = np.random.default_rng(15)
        x = rng.normal(size=(2, 12))
        y = rng.normal(size=(2, 9))
        with_scipy = (bpd.matmat(x), bpd.rmatmat(y))
        monkeypatch.setattr(mod, "_scipy_sparse", None)
        np.testing.assert_allclose(bpd.matmat(x), with_scipy[0], atol=1e-12)
        np.testing.assert_allclose(bpd.rmatmat(y), with_scipy[1], atol=1e-12)
