"""Numba backend dtype regressions (the silent float32->float64 upcast).

``_padded`` is plain python and testable everywhere; the JIT product
tests run only where numba is installed (the CI numba leg).
"""

import numpy as np
import pytest

from repro.core import BlockPermutedDiagonalMatrix
from repro.core.backends.numba_backend import NumbaBackend, _padded


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_padded_preserves_dtype(dtype):
    # Regression: the pad used to be a dtype-less np.zeros, silently
    # materializing a float64 temporary for every float32 operand.
    arr = np.ones((3, 5), dtype=dtype)
    pad = _padded(arr, 8)
    assert pad.dtype == dtype
    assert pad.shape == (3, 8)
    np.testing.assert_array_equal(pad[:, :5], arr)
    np.testing.assert_array_equal(pad[:, 5:], 0)


def test_padded_aligned_is_no_copy():
    arr = np.ones((2, 4), dtype=np.float32)
    assert _padded(arr, 4) is arr  # contiguous + aligned: same object


@pytest.mark.skipif(not NumbaBackend.is_available(), reason="numba not installed")
class TestNumbaProductsPreserveFloat32:
    def _case(self, shape=(23, 17), p=4):
        mat = BlockPermutedDiagonalMatrix.random(
            shape, p, rng=0, backend="numba", value_dtype="float32"
        )
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, shape[1])).astype(np.float32)
        dy = rng.normal(size=(5, shape[0])).astype(np.float32)
        return mat, x, dy

    def test_no_float64_materializes_for_float32_inputs(self, monkeypatch):
        mat, x, dy = self._case()
        # Warm the index plan (int64 arrays) and JIT compilation outside
        # the observation window: only steady-state allocations count.
        mat.matmat(x), mat.rmatmat(dy), mat.grad_data(x, dy)
        allocated: list[np.dtype] = []
        real_zeros, real_empty = np.zeros, np.empty

        def spy(real):
            def wrapper(*args, **kwargs):
                out = real(*args, **kwargs)
                allocated.append(out.dtype)
                return out

            return wrapper

        monkeypatch.setattr(np, "zeros", spy(real_zeros))
        monkeypatch.setattr(np, "empty", spy(real_empty))
        mat.matmat(x)
        mat.rmatmat(dy)
        mat.grad_data(x, dy)
        assert allocated, "expected the wrappers to observe allocations"
        assert all(dt == np.float32 for dt in allocated), allocated

    def test_results_match_csr_reference(self):
        mat, x, dy = self._case()
        ref = mat.with_value_dtype("float32").set_backend("csr")
        np.testing.assert_allclose(
            mat.matmat(x), ref.matmat(x), rtol=1e-5, atol=1e-5
        )
        np.testing.assert_allclose(
            mat.rmatmat(dy), ref.rmatmat(dy), rtol=1e-5, atol=1e-5
        )
        assert mat.matmat(x).dtype == np.float32
        assert mat.rmatmat(dy).dtype == np.float32
        assert mat.grad_data(x, dy).dtype == np.float32
