"""Tests for permutation-parameter selection and Eqn. (1) index arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.permutation import (
    PermutationSpec,
    block_index,
    natural_permutation,
    nonzero_column,
    nonzero_row,
    random_permutation,
)


class TestNaturalPermutation:
    def test_matches_paper_example(self):
        # "for a 4-by-16 block-permuted diagonal weight matrix with p = 4,
        #  k0 ~ k3 is set as 0 ~ 3"
        ks = natural_permutation(4, 4)
        assert ks.tolist() == [0, 1, 2, 3]

    def test_wraps_modulo_p(self):
        ks = natural_permutation(10, 4)
        assert ks.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_zero_blocks(self):
        assert natural_permutation(0, 4).size == 0

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            natural_permutation(4, 0)

    def test_rejects_negative_blocks(self):
        with pytest.raises(ValueError):
            natural_permutation(-1, 4)


class TestRandomPermutation:
    def test_values_in_range(self):
        ks = random_permutation(1000, 7, rng=0)
        assert ks.min() >= 0 and ks.max() < 7

    def test_seed_reproducible(self):
        a = random_permutation(50, 5, rng=123)
        b = random_permutation(50, 5, rng=123)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = random_permutation(50, 5, rng=1)
        b = random_permutation(50, 5, rng=2)
        assert not np.array_equal(a, b)

    def test_accepts_generator(self):
        gen = np.random.default_rng(7)
        ks = random_permutation(10, 3, rng=gen)
        assert ks.shape == (10,)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            random_permutation(4, -1)


class TestBlockIndex:
    def test_matches_eqn1_formula(self):
        # l = (i // p) * (n // p) + (j // p)
        assert block_index(0, 0, p=4, n=16) == 0
        assert block_index(0, 15, p=4, n=16) == 3
        assert block_index(5, 9, p=4, n=16) == 1 * 4 + 2

    def test_requires_divisible_n(self):
        with pytest.raises(ValueError):
            block_index(0, 0, p=4, n=10)

    def test_row_major_enumeration(self):
        p, m, n = 2, 6, 4
        seen = [
            block_index(i, j, p, n)
            for i in range(0, m, p)
            for j in range(0, n, p)
        ]
        assert seen == list(range((m // p) * (n // p)))


class TestNonzeroIndexing:
    @given(st.integers(1, 64), st.integers(0, 1000))
    def test_row_column_are_inverse(self, p, k):
        c = np.arange(p)
        d = nonzero_column(c, k, p)
        np.testing.assert_array_equal(nonzero_row(d, k, p), c)

    @given(st.integers(1, 32), st.integers(0, 100))
    def test_column_map_is_permutation(self, p, k):
        cols = nonzero_column(np.arange(p), k, p)
        assert sorted(cols.tolist()) == list(range(p))

    def test_zero_shift_is_plain_diagonal(self):
        c = np.arange(5)
        np.testing.assert_array_equal(nonzero_column(c, 0, 5), c)

    def test_negative_k_handled_by_row_lookup(self):
        # nonzero_row normalizes k modulo p internally.
        d = np.arange(6)
        np.testing.assert_array_equal(
            nonzero_row(d, -2, 6), nonzero_row(d, 4, 6)
        )


class TestPermutationSpec:
    def test_natural_default(self):
        spec = PermutationSpec()
        np.testing.assert_array_equal(spec.generate(6, 3), [0, 1, 2, 0, 1, 2])

    def test_random_seeded(self):
        spec = PermutationSpec(scheme="random", seed=42)
        np.testing.assert_array_equal(spec.generate(8, 4), spec.generate(8, 4))

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            PermutationSpec(scheme="fancy")
