"""Value-storage dtypes: float64 / float32 / int16 fixed-point.

Covers the :mod:`repro.core.value_types` registry, dtype-aware
construction and conversion on :class:`BlockPermutedDiagonalMatrix`
(aliasing, plan sharing, shard propagation), product dtype propagation
across every available backend, and the dtype tags plan blobs carry.
"""

import numpy as np
import pytest

from repro.core import (
    BlockPermutedDiagonalMatrix,
    UnknownValueDtypeError,
    available_backends,
    default_value_dtype,
    set_default_value_dtype,
    validate_value_dtype,
)
from repro.core.block_perm_diag import _IndexPlan
from repro.core.value_types import storage_dtype
from repro.debug import sanitize
from repro.nn.quantization import FixedPointFormat


def _matrix(vd="float64", shape=(24, 16), p=4, seed=0, **kwargs):
    return BlockPermutedDiagonalMatrix.random(
        shape, p, rng=seed, value_dtype=vd, **kwargs
    )


class TestRegistry:
    def test_canonical_names_and_aliases(self):
        assert validate_value_dtype("float32") == "float32"
        assert validate_value_dtype(np.float32) == "float32"
        assert validate_value_dtype("f4") == "float32"
        assert validate_value_dtype(np.dtype(np.int16)) == "int16"
        assert validate_value_dtype("float64") == "float64"

    def test_unknown_names_raise_typed_error(self):
        for bad in ("float16", "int8", "not-a-dtype", object()):
            with pytest.raises(UnknownValueDtypeError):
                validate_value_dtype(bad)

    def test_default_resolution_order(self, monkeypatch):
        set_default_value_dtype(None)
        monkeypatch.delenv("REPRO_VALUE_DTYPE", raising=False)
        assert default_value_dtype() == "float64"
        monkeypatch.setenv("REPRO_VALUE_DTYPE", "float32")
        assert default_value_dtype() == "float32"
        set_default_value_dtype("float64")  # explicit beats env
        assert default_value_dtype() == "float64"
        set_default_value_dtype(None)

    def test_int16_cannot_be_process_default(self, monkeypatch):
        with pytest.raises(UnknownValueDtypeError):
            set_default_value_dtype("int16")
        set_default_value_dtype(None)
        monkeypatch.setenv("REPRO_VALUE_DTYPE", "int16")
        with pytest.raises(UnknownValueDtypeError):
            default_value_dtype()
        # restore pinning for the remainder of the test (autouse fixture
        # pinned before the monkeypatch; teardown order is safe either way)
        set_default_value_dtype("float64")

    def test_default_drives_construction(self):
        set_default_value_dtype("float32")
        try:
            mat = BlockPermutedDiagonalMatrix.random((8, 8), 4, rng=0)
            assert mat.value_dtype == "float32"
            assert mat.data.dtype == np.float32
        finally:
            set_default_value_dtype("float64")


class TestStorageModes:
    def test_float64_default_unchanged(self):
        mat = _matrix()
        assert mat.value_dtype == "float64"
        assert mat.fixed_point is None
        assert mat.data.dtype == np.float64
        assert mat.compute_dtype == np.float64
        assert mat._kernel_data() is mat.data

    def test_float32_storage_and_compute(self):
        mat = _matrix("float32")
        assert mat.data.dtype == np.float32
        assert mat.compute_dtype == np.float32
        assert mat._kernel_data() is mat.data
        assert "value_dtype=float32" in repr(mat)

    def test_int16_requires_format_in_constructor(self):
        base = _matrix()
        with pytest.raises(ValueError, match="with_value_dtype"):
            BlockPermutedDiagonalMatrix(
                np.zeros(base.data.shape, dtype=np.int16),
                base.ks,
                value_dtype="int16",
            )

    def test_int16_storage_dequantizes_for_kernels(self):
        fmt = FixedPointFormat(16, 13)
        mat = _matrix("int16", fixed_point=fmt)
        assert mat.data.dtype == np.int16
        assert mat.fixed_point == fmt
        assert mat.compute_dtype == np.float64
        kernel = mat._kernel_data()
        assert kernel.dtype == np.float64
        np.testing.assert_array_equal(
            kernel, mat.data.astype(np.float64) / fmt.scale
        )

    def test_fixed_point_rejected_for_float_modes(self):
        with pytest.raises(ValueError, match="fixed_point"):
            _matrix("float32", fixed_point=FixedPointFormat(16, 12))

    def test_int16_setter_rejects_floats_and_range_checks(self):
        mat = _matrix("int16")
        with pytest.raises(TypeError, match="with_value_dtype"):
            mat.data = np.zeros(mat.data.shape)
        codes = np.zeros(mat.data.shape, dtype=np.int64)
        mat.data = codes  # in-range wider ints narrow fine
        assert mat.data.dtype == np.int16
        codes[0, 0, 0] = 2**15  # one past int16 max
        with pytest.raises(ValueError, match="int16 range"):
            mat.data = codes

    def test_same_seed_same_weights_across_precisions(self):
        f64 = _matrix("float64", seed=7)
        f32 = _matrix("float32", seed=7)
        np.testing.assert_array_equal(
            f32.data, f64.data.astype(np.float32)
        )

    def test_zeros_and_from_dense_honor_value_dtype(self):
        z = BlockPermutedDiagonalMatrix.zeros((8, 8), 4, value_dtype="float32")
        assert z.data.dtype == np.float32
        dense = _matrix(seed=3).to_dense()
        proj = BlockPermutedDiagonalMatrix.from_dense(
            dense, 4, value_dtype="int16"
        )
        assert proj.value_dtype == "int16"
        assert proj.fixed_point is not None


class TestConversion:
    def test_with_value_dtype_shares_plan_and_bounds_error(self):
        f64 = _matrix(seed=1)
        f32 = f64.with_value_dtype("float32")
        assert f32._get_plan() is f64._get_plan()
        err = np.max(np.abs(f32.to_dense() - f64.to_dense()))
        assert 0 < err < 1e-6  # float32 rounding, nothing worse

        i16 = f64.with_value_dtype("int16")
        assert i16._get_plan() is f64._get_plan()
        res = i16.fixed_point.resolution
        err = np.max(np.abs(i16.to_dense() - f64.to_dense()))
        assert err <= res / 2 + 1e-15

    def test_same_dtype_conversion_aliases(self):
        f64 = _matrix(seed=2)
        again = f64.with_value_dtype("float64")
        assert np.shares_memory(again.data, f64.data)

    def test_round_trip_int16_is_exact(self):
        i16 = _matrix("int16", seed=4, fixed_point=FixedPointFormat(16, 14))
        back = i16.with_value_dtype("float64").with_value_dtype(
            "int16", fixed_point=i16.fixed_point
        )
        np.testing.assert_array_equal(back.data, i16.data)

    def test_shards_and_like_propagate_dtype_and_alias(self):
        for vd in ("float32", "int16"):
            parent = _matrix(vd, shape=(32, 16), seed=5)
            with sanitize():  # verifies shard aliasing at reduced precision
                shards = parent.row_shards(4)
            for shard in shards:
                assert shard.value_dtype == vd
                assert shard.fixed_point == parent.fixed_point
                assert np.shares_memory(shard.data, parent.data)
            sib = parent.like(parent.data)
            assert sib.value_dtype == vd
            assert sib.fixed_point == parent.fixed_point

    def test_transpose_preserves_dtype(self):
        mat = _matrix("float32", seed=6)
        assert mat.transpose().value_dtype == "float32"
        i16 = _matrix("int16", seed=6)
        t = i16.transpose()
        assert t.value_dtype == "int16"
        assert t.fixed_point == i16.fixed_point


class TestProductDtypes:
    def test_products_run_in_compute_dtype_on_every_backend(self):
        rng = np.random.default_rng(0)
        for vd, expected in (
            ("float64", np.float64),
            ("float32", np.float32),
            ("int16", np.float64),
        ):
            mat = _matrix(vd, shape=(23, 17), p=4, seed=8)
            x = rng.normal(size=(5, 17))
            dy = rng.normal(size=(5, 23))
            for backend in available_backends():
                mat.set_backend(backend)
                assert mat.matmat(x).dtype == expected, (vd, backend)
                assert mat.rmatmat(dy).dtype == expected, (vd, backend)
                assert mat.grad_data(x, dy).dtype == expected, (vd, backend)
                assert mat.matvec(x[0]).dtype == expected, (vd, backend)
                assert mat.rmatvec(dy[0]).dtype == expected, (vd, backend)

    def test_int16_products_match_dequantized_float64_bitwise(self):
        i16 = _matrix("int16", shape=(24, 16), seed=9)
        ref = i16.with_value_dtype("float64")
        x = np.random.default_rng(1).normal(size=(6, 16))
        for backend in available_backends():
            i16.set_backend(backend)
            ref.set_backend(backend)
            np.testing.assert_array_equal(i16.matmat(x), ref.matmat(x))


class TestPlanSerialization:
    def test_plan_blob_carries_dtype_tag(self):
        i16 = _matrix("int16", seed=10, fixed_point=FixedPointFormat(16, 13))
        plan = _IndexPlan.from_bytes(i16.plan_bytes())
        assert plan.value_dtype_hint == "int16"
        assert plan.fixed_point_hint == (16, 13)
        restored = BlockPermutedDiagonalMatrix.from_plan(
            i16.plan_bytes(), i16.data
        )
        assert restored.value_dtype == "int16"
        assert restored.fixed_point == i16.fixed_point
        np.testing.assert_array_equal(restored.data, i16.data)

    def test_from_plan_infers_float_dtypes_from_data(self):
        f32 = _matrix("float32", seed=11)
        plain_plan = f32._get_plan().to_bytes()  # untagged blob
        restored = BlockPermutedDiagonalMatrix.from_plan(plain_plan, f32.data)
        assert restored.value_dtype == "float32"
        assert np.shares_memory(restored.data, f32.data)

    def test_from_plan_rejects_untagged_int16_data(self):
        i16 = _matrix("int16", seed=12)
        plain_plan = i16._get_plan().to_bytes()
        with pytest.raises(ValueError, match="FixedPointFormat"):
            BlockPermutedDiagonalMatrix.from_plan(plain_plan, i16.data)

    def test_explicit_args_override_blob_hint(self):
        i16 = _matrix("int16", seed=13)
        restored = BlockPermutedDiagonalMatrix.from_plan(
            i16.plan_bytes(),
            np.asarray(i16._kernel_data(), dtype=np.float64),
            value_dtype="float64",
        )
        assert restored.value_dtype == "float64"
        assert restored.fixed_point is None


def test_storage_dtype_mapping():
    assert storage_dtype("float64") == np.float64
    assert storage_dtype("float32") == np.float32
    assert storage_dtype("int16") == np.int16
