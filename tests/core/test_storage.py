"""Tests for storage accounting (Fig. 4 model) and paper Table II numbers."""

import pytest

from repro.core import (
    StorageReport,
    dense_storage_bits,
    pd_storage_bits,
    unstructured_sparse_storage_bits,
)


class TestStorageModels:
    def test_dense_bits(self):
        assert dense_storage_bits(10, 10, 32) == 3200

    def test_pd_bits_value_term(self):
        # 8x8, p=4: 16 values * 32 bits + 4 blocks * 2 bits
        assert pd_storage_bits(8, 8, 4, 32) == 16 * 32 + 4 * 2

    def test_pd_bits_without_permutation_overhead(self):
        assert pd_storage_bits(8, 8, 4, 32, include_permutation=False) == 512

    def test_p1_has_no_permutation_overhead(self):
        assert pd_storage_bits(4, 4, 1, 32) == dense_storage_bits(4, 4, 32)

    def test_eie_style_unstructured(self):
        # EIE: 4-bit weight + 4-bit index -> 8 bits per nnz
        assert unstructured_sparse_storage_bits(100) == 800

    def test_unstructured_with_pointers(self):
        assert (
            unstructured_sparse_storage_bits(100, num_columns=10)
            == 800 + 320
        )

    def test_pd_wins_at_same_sparsity(self):
        # At 10% density (p=10 vs 10% unstructured nnz), PD stores no index.
        m = n = 1000
        pd = pd_storage_bits(m, n, 10, weight_bits=4)
        unstructured = unstructured_sparse_storage_bits(
            m * n // 10, weight_bits=4, index_bits=4
        )
        assert pd < unstructured


class TestStorageReport:
    def test_alexnet_fc_table2_float32(self):
        """Table II row 2: PD p=10/10/4 gives ~25.9 MB, 9.0x overall."""
        layers = [(4096, 9216, 10), (4096, 4096, 10), (1000, 4096, 4)]
        dense_mb = sum(
            StorageReport.for_pd_layer(m, n, p).dense_megabytes
            for m, n, p in layers
        )
        compressed_mb = sum(
            StorageReport.for_pd_layer(m, n, p).compressed_megabytes
            for m, n, p in layers
        )
        # Paper: 234.5 MB dense, 25.9 MB compressed (9.0x)
        assert dense_mb == pytest.approx(234.5, rel=0.02)
        assert compressed_mb == pytest.approx(25.9, rel=0.03)
        assert dense_mb / compressed_mb == pytest.approx(9.0, rel=0.03)

    def test_alexnet_fc_table2_fixed16(self):
        """Table II row 3: 16-bit fixed PD gives ~12.9 MB, 18.1x."""
        layers = [(4096, 9216, 10), (4096, 4096, 10), (1000, 4096, 4)]
        compressed_mb = sum(
            StorageReport.for_pd_layer(m, n, p, weight_bits=16).compressed_megabytes
            for m, n, p in layers
        )
        dense_mb = 234.5
        assert compressed_mb == pytest.approx(12.9, rel=0.04)
        assert dense_mb / compressed_mb == pytest.approx(18.1, rel=0.04)

    def test_nmt_table3(self):
        """Table III: 32 LSTM FC matrices, p=8 -> 419.4 MB dense, 52.4 MB PD."""
        # Stanford NMT: 4-layer stacked LSTM, hidden 1024: the dominant
        # weight shapes per paper Table VII are 2048x1024, 2048x1536,
        # 2048x2048 variants; total dense size is reported as 419.4MB.
        # We verify the *ratio* exactly: p=8 with 32-bit floats -> 8x.
        # The k_l parameters add ~1% overhead that the paper's "8x" ignores.
        report = StorageReport.for_pd_layer(2048, 1024, 8)
        assert report.compression_ratio == pytest.approx(8.0, rel=0.02)
        report16 = StorageReport.for_pd_layer(2048, 1024, 8, weight_bits=16)
        assert report16.compression_ratio == pytest.approx(16.0, rel=0.03)

    def test_compression_ratio_tracks_p(self):
        for p in (2, 4, 8, 16):
            report = StorageReport.for_pd_layer(256, 256, p)
            assert report.compression_ratio == pytest.approx(p, rel=0.02)
