"""Tests for the single-block PermutedDiagonalMatrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PermutedDiagonalMatrix


def _random_pd(p, k, seed=0):
    rng = np.random.default_rng(seed)
    return PermutedDiagonalMatrix(rng.normal(size=p), k)


class TestConstruction:
    def test_rejects_2d_values(self):
        with pytest.raises(ValueError):
            PermutedDiagonalMatrix(np.zeros((2, 2)), 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PermutedDiagonalMatrix(np.array([]), 0)

    def test_k_reduced_modulo_p(self):
        pd = PermutedDiagonalMatrix(np.ones(4), 9)
        assert pd.k == 1

    def test_shape_and_nnz(self):
        pd = _random_pd(6, 2)
        assert pd.shape == (6, 6)
        assert pd.nnz == 6

    def test_identity_like(self):
        eye = PermutedDiagonalMatrix.identity_like(4, 0)
        np.testing.assert_array_equal(eye.to_dense(), np.eye(4))

    def test_identity_like_shifted_is_permutation_matrix(self):
        perm = PermutedDiagonalMatrix.identity_like(4, 1).to_dense()
        assert perm.sum() == 4
        np.testing.assert_array_equal(perm.sum(axis=0), np.ones(4))
        np.testing.assert_array_equal(perm.sum(axis=1), np.ones(4))


class TestDenseRoundTrip:
    @given(st.integers(1, 16), st.integers(0, 40))
    @settings(max_examples=30)
    def test_from_dense_recovers_pd(self, p, k):
        pd = _random_pd(p, k, seed=p * 41 + k)
        again = PermutedDiagonalMatrix.from_dense(pd.to_dense(), pd.k)
        np.testing.assert_allclose(again.to_dense(), pd.to_dense())

    def test_from_dense_drops_off_diagonal(self):
        dense = np.full((3, 3), 7.0)
        pd = PermutedDiagonalMatrix.from_dense(dense, k=1)
        assert pd.to_dense().sum() == pytest.approx(21.0)
        assert (pd.to_dense() != 0).sum() == 3

    def test_from_dense_rejects_rectangular(self):
        with pytest.raises(ValueError):
            PermutedDiagonalMatrix.from_dense(np.zeros((2, 3)), 0)

    def test_nonzero_positions_match_eqn1(self):
        pd = _random_pd(5, 3)
        dense = pd.to_dense()
        for c in range(5):
            nz = np.flatnonzero(dense[c])
            assert nz.tolist() == [(c + 3) % 5]


class TestProducts:
    @given(st.integers(1, 24), st.integers(0, 24))
    @settings(max_examples=30)
    def test_matvec_matches_dense(self, p, k):
        rng = np.random.default_rng(p + 100 * k)
        pd = PermutedDiagonalMatrix(rng.normal(size=p), k)
        x = rng.normal(size=p)
        np.testing.assert_allclose(pd.matvec(x), pd.to_dense() @ x)

    @given(st.integers(1, 24), st.integers(0, 24))
    @settings(max_examples=30)
    def test_rmatvec_matches_dense_transpose(self, p, k):
        rng = np.random.default_rng(p + 100 * k + 7)
        pd = PermutedDiagonalMatrix(rng.normal(size=p), k)
        y = rng.normal(size=p)
        np.testing.assert_allclose(pd.rmatvec(y), pd.to_dense().T @ y)

    def test_matvec_shape_check(self):
        with pytest.raises(ValueError):
            _random_pd(4, 1).matvec(np.zeros(5))

    def test_rmatvec_shape_check(self):
        with pytest.raises(ValueError):
            _random_pd(4, 1).rmatvec(np.zeros(3))

    def test_matmul_operator_vector(self):
        pd = _random_pd(5, 2)
        x = np.arange(5.0)
        np.testing.assert_allclose(pd @ x, pd.matvec(x))


class TestAlgebra:
    @given(st.integers(1, 12), st.integers(0, 12), st.integers(0, 12))
    @settings(max_examples=30)
    def test_composition_matches_dense(self, p, k1, k2):
        rng = np.random.default_rng(p * 7 + k1 * 13 + k2)
        a = PermutedDiagonalMatrix(rng.normal(size=p), k1)
        b = PermutedDiagonalMatrix(rng.normal(size=p), k2)
        np.testing.assert_allclose(
            (a @ b).to_dense(), a.to_dense() @ b.to_dense(), atol=1e-12
        )

    def test_composition_adds_shifts(self):
        a = PermutedDiagonalMatrix.identity_like(5, 2)
        b = PermutedDiagonalMatrix.identity_like(5, 4)
        assert (a @ b).k == (2 + 4) % 5

    def test_composition_size_mismatch(self):
        with pytest.raises(ValueError):
            _random_pd(4, 0) @ _random_pd(5, 0)

    @given(st.integers(1, 16), st.integers(0, 16))
    @settings(max_examples=30)
    def test_transpose_matches_dense(self, p, k):
        pd = _random_pd(p, k, seed=p * 3 + k)
        np.testing.assert_allclose(pd.transpose().to_dense(), pd.to_dense().T)

    def test_transpose_parameter(self):
        pd = _random_pd(7, 3)
        assert pd.transpose().k == 4

    def test_double_transpose_identity(self):
        pd = _random_pd(6, 5)
        np.testing.assert_allclose(
            pd.transpose().transpose().to_dense(), pd.to_dense()
        )

    def test_repr_mentions_p_and_k(self):
        assert "p=4" in repr(_random_pd(4, 2))
