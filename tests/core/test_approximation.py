"""Tests for optimal PD approximation (Sec. III-F)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import approximate_pd, approximate_pd_tensor
from repro.core.approximation import best_permutation_parameters, diagonal_energies


class TestDiagonalEnergies:
    def test_shape(self):
        energies = diagonal_energies(np.ones((8, 12)), p=4)
        assert energies.shape == (2, 3, 4)

    def test_uniform_matrix_has_equal_energies(self):
        energies = diagonal_energies(np.ones((4, 4)), p=4)
        np.testing.assert_allclose(energies, 4.0)

    def test_identity_block_prefers_zero_shift(self):
        energies = diagonal_energies(np.eye(4), p=4)
        assert energies[0, 0, 0] == pytest.approx(4.0)
        np.testing.assert_allclose(energies[0, 0, 1:], 0.0)

    def test_energy_is_sum_of_squares_on_shifted_diagonal(self):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(3, 3))
        energies = diagonal_energies(dense, p=3)
        for s in range(3):
            expected = sum(dense[c, (c + s) % 3] ** 2 for c in range(3))
            assert energies[0, 0, s] == pytest.approx(expected)


class TestBestPermutation:
    def test_picks_max_energy_shift(self):
        dense = np.zeros((4, 4))
        for c in range(4):
            dense[c, (c + 2) % 4] = 5.0  # all energy on shift 2
        assert best_permutation_parameters(dense, 4)[0, 0] == 2

    @given(st.integers(1, 6), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=25)
    def test_best_beats_all_fixed_shifts(self, p, mb, nb):
        rng = np.random.default_rng(p + 10 * mb + 100 * nb)
        dense = rng.normal(size=(mb * p, nb * p))
        best = approximate_pd(dense, p, scheme="best")
        best_err = best.frobenius_error(dense)
        # exhaustive: any uniform shift assignment cannot beat per-block best
        for shift in range(p):
            from repro.core import BlockPermutedDiagonalMatrix

            ks = np.full((mb, nb), shift)
            cand = BlockPermutedDiagonalMatrix.from_dense(dense, p, ks=ks)
            assert best_err <= cand.frobenius_error(dense) + 1e-9


class TestApproximatePD:
    def test_projection_keeps_support_entries_exactly(self):
        rng = np.random.default_rng(1)
        dense = rng.normal(size=(6, 9))
        approx = approximate_pd(dense, p=3)
        mask = approx.dense_mask()
        np.testing.assert_allclose(approx.to_dense()[mask], dense[mask])

    def test_p1_is_lossless(self):
        rng = np.random.default_rng(2)
        dense = rng.normal(size=(5, 7))
        approx = approximate_pd(dense, p=1)
        np.testing.assert_allclose(approx.to_dense(), dense)

    def test_error_decreases_with_smaller_p(self):
        rng = np.random.default_rng(3)
        dense = rng.normal(size=(24, 24))
        errs = [
            approximate_pd(dense, p, scheme="best").frobenius_error(dense)
            for p in (1, 2, 4, 8)
        ]
        assert errs == sorted(errs)

    def test_random_scheme_seeded(self):
        rng = np.random.default_rng(4)
        dense = rng.normal(size=(8, 8))
        a = approximate_pd(dense, 4, scheme="random", seed=9)
        b = approximate_pd(dense, 4, scheme="random", seed=9)
        np.testing.assert_allclose(a.to_dense(), b.to_dense())

    def test_l2_optimality_vs_exhaustive_small_case(self):
        # For a single 3x3 block, enumerate every possible "keep one entry
        # per row, cyclic-shift pattern" and confirm "best" wins.
        rng = np.random.default_rng(5)
        dense = rng.normal(size=(3, 3))
        best = approximate_pd(dense, 3, scheme="best").frobenius_error(dense)
        for k in range(3):
            kept = np.zeros((3, 3))
            for c in range(3):
                kept[c, (c + k) % 3] = dense[c, (c + k) % 3]
            assert best <= np.linalg.norm(dense - kept) + 1e-12


class TestApproximateTensor:
    def test_projection_matches_channel_mask(self):
        rng = np.random.default_rng(6)
        dense = rng.normal(size=(8, 8, 3, 3))
        approx = approximate_pd_tensor(dense, p=4)
        mask = approx.dense_mask()
        np.testing.assert_allclose(approx.to_dense()[mask], dense[mask])
        assert np.all(approx.to_dense()[~mask] == 0)

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            approximate_pd_tensor(np.zeros((2, 2)), 2)

    def test_best_scheme_beats_natural(self):
        rng = np.random.default_rng(7)
        dense = rng.normal(size=(8, 8, 3, 3))
        best = approximate_pd_tensor(dense, 4, scheme="best")
        nat = approximate_pd_tensor(dense, 4, scheme="natural")
        err_best = np.linalg.norm(dense - best.to_dense())
        err_nat = np.linalg.norm(dense - nat.to_dense())
        assert err_best <= err_nat + 1e-9

    def test_compression_ratio_is_p(self):
        approx = approximate_pd_tensor(np.ones((8, 8, 3, 3)), p=4)
        assert approx.compression_ratio == pytest.approx(4.0)
