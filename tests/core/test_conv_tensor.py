"""Tests for the 4-D block-PD convolution weight tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockPermDiagTensor4D


class TestConstruction:
    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            BlockPermDiagTensor4D(np.zeros((2, 2, 3)), np.zeros((2, 2)))

    def test_random_shapes(self):
        t = BlockPermDiagTensor4D.random(16, 8, (3, 3), p=4, rng=0)
        assert t.shape == (16, 8, 3, 3)
        assert t.p == 4

    def test_channel_padding(self):
        t = BlockPermDiagTensor4D.random(10, 6, (3, 3), p=4, rng=0)
        assert t.channels == (10, 6)
        assert t.to_dense().shape == (10, 6, 3, 3)


class TestStructure:
    @given(
        st.integers(1, 4).map(lambda b: 4 * b),
        st.integers(1, 4).map(lambda b: 4 * b),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=20)
    def test_nnz_kernels_is_cout_cin_over_p(self, c_out, c_in, p):
        t = BlockPermDiagTensor4D.random(c_out, c_in, (3, 3), p=p, rng=1)
        assert t.nnz_kernels == c_out * c_in // p

    def test_compression_ratio_equals_p(self):
        t = BlockPermDiagTensor4D.random(8, 8, (3, 3), p=2, rng=2)
        assert t.compression_ratio == pytest.approx(2.0)

    def test_channel_mask_one_per_block_row(self):
        t = BlockPermDiagTensor4D.random(8, 8, (1, 1), p=4, rng=3)
        mask = t.channel_mask()
        # each output channel connects to exactly c_in/p input channels
        np.testing.assert_array_equal(mask.sum(axis=1), np.full(8, 2))

    def test_p1_is_fully_dense_channel_plane(self):
        t = BlockPermDiagTensor4D.random(4, 4, (3, 3), p=1, rng=4)
        assert t.channel_mask().all()


class TestDenseRoundTrip:
    def test_from_dense_keeps_supported_kernels(self):
        rng = np.random.default_rng(5)
        dense = rng.normal(size=(8, 8, 3, 3))
        t = BlockPermDiagTensor4D.from_dense(dense, p=4)
        mask = t.dense_mask()
        np.testing.assert_allclose(t.to_dense()[mask], dense[mask])
        assert np.all(t.to_dense()[~mask] == 0)

    def test_from_dense_rejects_2d(self):
        with pytest.raises(ValueError):
            BlockPermDiagTensor4D.from_dense(np.zeros((4, 4)), 2)

    def test_round_trip_through_dense(self):
        t = BlockPermDiagTensor4D.random(8, 12, (5, 5), p=4, rng=6)
        again = BlockPermDiagTensor4D.from_dense(t.to_dense(), p=4, ks=t.ks)
        np.testing.assert_allclose(again.to_dense(), t.to_dense())


class TestGradProjection:
    def test_projects_off_support_to_zero(self):
        t = BlockPermDiagTensor4D.random(8, 8, (3, 3), p=4, rng=7)
        grad = np.ones(t.shape)
        projected = t.project_dense_grad(grad)
        assert np.all(projected[~t.dense_mask()] == 0)
        np.testing.assert_allclose(projected[t.dense_mask()], 1.0)

    def test_shape_check(self):
        t = BlockPermDiagTensor4D.random(8, 8, (3, 3), p=4, rng=8)
        with pytest.raises(ValueError):
            t.project_dense_grad(np.ones((8, 8, 5, 5)))

    def test_masked_update_preserves_structure(self):
        # simulate a few "training steps" of dense grad + projection
        rng = np.random.default_rng(9)
        t = BlockPermDiagTensor4D.random(8, 8, (3, 3), p=2, rng=9)
        dense = t.to_dense()
        for _ in range(5):
            dense -= 0.1 * t.project_dense_grad(rng.normal(size=t.shape))
        again = BlockPermDiagTensor4D.from_dense(dense, p=2, ks=t.ks)
        np.testing.assert_allclose(again.to_dense(), dense)
