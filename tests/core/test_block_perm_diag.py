"""Tests for BlockPermutedDiagonalMatrix, including the padding rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockPermutedDiagonalMatrix, PermutationSpec

shapes = st.tuples(st.integers(1, 30), st.integers(1, 30))
block_sizes = st.integers(1, 9)


def _random_bpd(shape, p, seed=0, scheme="natural"):
    return BlockPermutedDiagonalMatrix.random(
        shape, p, spec=PermutationSpec(scheme=scheme, seed=seed), rng=seed
    )


class TestConstruction:
    def test_rejects_wrong_data_rank(self):
        with pytest.raises(ValueError):
            BlockPermutedDiagonalMatrix(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_rejects_ks_shape_mismatch(self):
        with pytest.raises(ValueError):
            BlockPermutedDiagonalMatrix(np.zeros((2, 3, 4)), np.zeros((3, 2)))

    def test_rejects_inconsistent_logical_shape(self):
        with pytest.raises(ValueError):
            BlockPermutedDiagonalMatrix(
                np.zeros((2, 2, 4)), np.zeros((2, 2)), shape=(3, 8)
            )

    def test_default_shape_is_padded(self):
        bpd = BlockPermutedDiagonalMatrix(np.ones((2, 3, 4)), np.zeros((2, 3)))
        assert bpd.shape == (8, 12)

    def test_ks_reduced_modulo_p(self):
        bpd = BlockPermutedDiagonalMatrix(
            np.ones((1, 1, 4)), np.array([[7]])
        )
        assert bpd.ks[0, 0] == 3

    def test_zeros_constructor(self):
        bpd = BlockPermutedDiagonalMatrix.zeros((6, 9), p=3)
        assert bpd.to_dense().shape == (6, 9)
        assert np.all(bpd.to_dense() == 0)


class TestStructure:
    @given(shapes, block_sizes)
    @settings(max_examples=40)
    def test_nnz_counts_only_logical_entries(self, shape, p):
        bpd = _random_bpd(shape, p, seed=1)
        assert bpd.nnz == (bpd.to_dense() != 0).sum() or bpd.nnz >= (
            bpd.to_dense() != 0
        ).sum()
        # Every stored slot inside the logical region must be represented.
        assert bpd.nnz == int(bpd.dense_mask().sum())

    def test_nnz_exact_when_divisible(self):
        bpd = _random_bpd((12, 20), 4)
        assert bpd.nnz == 12 * 20 // 4

    def test_compression_ratio_equals_p_when_divisible(self):
        bpd = _random_bpd((12, 20), 4)
        assert bpd.compression_ratio == pytest.approx(4.0)

    @given(shapes, block_sizes)
    @settings(max_examples=40)
    def test_padding_region_forced_zero(self, shape, p):
        mb, nb = -(-shape[0] // p), -(-shape[1] // p)
        rng = np.random.default_rng(0)
        bpd = BlockPermutedDiagonalMatrix(
            rng.normal(size=(mb, nb, p)),
            np.zeros((mb, nb), dtype=int),
            shape=shape,
        )
        # data outside the support mask must have been zeroed
        assert np.all(bpd.data[~bpd.support_mask()] == 0)

    def test_one_nonzero_per_row_per_block(self):
        bpd = _random_bpd((8, 8), 4)
        dense = bpd.to_dense()
        # each row intersects n/p = 2 blocks -> at most 2 non-zeros
        assert np.all((dense != 0).sum(axis=1) <= 2)

    def test_dense_mask_matches_to_dense_support(self):
        bpd = _random_bpd((10, 14), 4, seed=3)
        # random normal values are never exactly zero on the support
        np.testing.assert_array_equal(bpd.dense_mask(), bpd.to_dense() != 0)

    def test_natural_indexing_matches_paper_example(self):
        # 4x16 with p=4: k0..k3 = 0..3 -> block (0, j) has shift j
        bpd = BlockPermutedDiagonalMatrix.zeros((4, 16), 4)
        np.testing.assert_array_equal(bpd.ks, [[0, 1, 2, 3]])


class TestDenseRoundTrip:
    @given(shapes, block_sizes)
    @settings(max_examples=40)
    def test_from_dense_to_dense_identity_on_support(self, shape, p):
        rng = np.random.default_rng(11)
        dense = rng.normal(size=shape)
        bpd = BlockPermutedDiagonalMatrix.from_dense(dense, p)
        mask = bpd.dense_mask()
        np.testing.assert_allclose(bpd.to_dense()[mask], dense[mask])
        assert np.all(bpd.to_dense()[~mask] == 0)

    def test_from_dense_rejects_3d(self):
        with pytest.raises(ValueError):
            BlockPermutedDiagonalMatrix.from_dense(np.zeros((2, 2, 2)), 2)

    def test_q_round_trip(self):
        bpd = _random_bpd((9, 7), 3, seed=5)
        again = BlockPermutedDiagonalMatrix.from_q(
            bpd.to_q(), bpd.shape, bpd.p, bpd.ks
        )
        np.testing.assert_allclose(again.to_dense(), bpd.to_dense())

    def test_from_q_wrong_length(self):
        with pytest.raises(ValueError):
            BlockPermutedDiagonalMatrix.from_q(
                np.zeros(5), (4, 4), 2, np.zeros((2, 2))
            )

    def test_q_length_is_mn_over_p(self):
        bpd = _random_bpd((8, 12), 4)
        assert bpd.to_q().size == 8 * 12 // 4


class TestProducts:
    @given(shapes, block_sizes, st.sampled_from(["natural", "random"]))
    @settings(max_examples=40)
    def test_matvec_matches_dense(self, shape, p, scheme):
        bpd = _random_bpd(shape, p, seed=2, scheme=scheme)
        rng = np.random.default_rng(3)
        x = rng.normal(size=shape[1])
        np.testing.assert_allclose(bpd.matvec(x), bpd.to_dense() @ x, atol=1e-12)

    @given(shapes, block_sizes, st.integers(1, 5))
    @settings(max_examples=40)
    def test_matmat_matches_dense(self, shape, p, batch):
        bpd = _random_bpd(shape, p, seed=4)
        rng = np.random.default_rng(5)
        x = rng.normal(size=(batch, shape[1]))
        np.testing.assert_allclose(
            bpd.matmat(x), x @ bpd.to_dense().T, atol=1e-12
        )

    @given(shapes, block_sizes)
    @settings(max_examples=30)
    def test_rmatvec_matches_dense(self, shape, p):
        bpd = _random_bpd(shape, p, seed=6)
        rng = np.random.default_rng(7)
        y = rng.normal(size=shape[0])
        np.testing.assert_allclose(
            bpd.rmatvec(y), bpd.to_dense().T @ y, atol=1e-12
        )

    def test_rmatmat_matches_dense(self):
        bpd = _random_bpd((10, 6), 4, seed=8)
        rng = np.random.default_rng(9)
        y = rng.normal(size=(3, 10))
        np.testing.assert_allclose(
            bpd.rmatmat(y), y @ bpd.to_dense(), atol=1e-12
        )

    def test_matmul_operator(self):
        bpd = _random_bpd((6, 8), 2, seed=10)
        x = np.arange(8.0)
        np.testing.assert_allclose(bpd @ x, bpd.to_dense() @ x)
        X = np.arange(16.0).reshape(8, 2)
        np.testing.assert_allclose(bpd @ X, bpd.to_dense() @ X)

    def test_matvec_shape_check(self):
        with pytest.raises(ValueError):
            _random_bpd((4, 4), 2).matvec(np.zeros(5))

    def test_matmat_shape_check(self):
        with pytest.raises(ValueError):
            _random_bpd((4, 4), 2).matmat(np.zeros((2, 5)))

    def test_block_row_loop_path_matches_gather_path(self, monkeypatch):
        import repro.core.block_perm_diag as mod

        bpd = _random_bpd((16, 24), 4, seed=11)
        rng = np.random.default_rng(12)
        x = rng.normal(size=(3, 24))
        expected = bpd.matmat(x)
        monkeypatch.setattr(mod, "_GATHER_ELEMENT_LIMIT", 0)
        np.testing.assert_allclose(bpd.matmat(x), expected)


class TestTransposeAndGrad:
    @given(shapes, block_sizes)
    @settings(max_examples=40)
    def test_transpose_matches_dense(self, shape, p):
        bpd = _random_bpd(shape, p, seed=13)
        np.testing.assert_allclose(
            bpd.transpose().to_dense(), bpd.to_dense().T, atol=1e-12
        )

    def test_transpose_is_block_pd(self):
        bpd = _random_bpd((8, 12), 4, seed=14)
        t = bpd.transpose()
        assert t.p == 4 and t.shape == (12, 8)
        np.testing.assert_array_equal(t.ks, (-bpd.ks.T) % 4)

    @given(st.tuples(st.integers(2, 12), st.integers(2, 12)), st.integers(1, 4))
    @settings(max_examples=25)
    def test_grad_data_matches_dense_masked_grad(self, shape, p):
        bpd = _random_bpd(shape, p, seed=15)
        rng = np.random.default_rng(16)
        x = rng.normal(size=(4, shape[1]))
        dy = rng.normal(size=(4, shape[0]))
        grad = bpd.grad_data(x, dy)
        # Dense reference: dW = dy.T @ x, masked to the PD support.
        dW = dy.T @ x
        ref = BlockPermutedDiagonalMatrix.from_dense(
            dW * bpd.dense_mask(), p, ks=bpd.ks
        )
        np.testing.assert_allclose(grad, ref.data, atol=1e-10)

    def test_grad_data_shape_check(self):
        bpd = _random_bpd((4, 4), 2)
        with pytest.raises(ValueError):
            bpd.grad_data(np.zeros((2, 4)), np.zeros((3, 4)))

    def test_frobenius_error_zero_when_support_captures_matrix(self):
        dense = np.eye(4)
        ks = np.zeros((2, 2), dtype=int)  # all-zero shifts hold the diagonal
        bpd = BlockPermutedDiagonalMatrix.from_dense(dense, 2, ks=ks)
        assert bpd.frobenius_error(dense) == pytest.approx(0.0)

    def test_frobenius_error_counts_missed_entries(self):
        # Natural indexing on eye(4)/p=2 gives block (1,1) shift 1, which
        # misses its two diagonal ones entirely.
        dense = np.eye(4)
        bpd = BlockPermutedDiagonalMatrix.from_dense(dense, 2)
        assert bpd.frobenius_error(dense) == pytest.approx(np.sqrt(2.0))


class TestRoundTripsNonDivisible:
    """Regression coverage for structure round-trips when ``p`` does not
    divide the shape and ``ks`` comes from a random PermutationSpec."""

    # Shapes chosen so p=4 never divides either dimension.
    odd_shapes = st.tuples(
        st.integers(1, 30).filter(lambda v: v % 4),
        st.integers(1, 30).filter(lambda v: v % 4),
    )

    @given(odd_shapes, st.integers(0, 5))
    @settings(max_examples=25)
    def test_q_round_trip_random_spec(self, shape, seed):
        bpd = _random_bpd(shape, 4, seed=seed, scheme="random")
        again = BlockPermutedDiagonalMatrix.from_q(
            bpd.to_q(), bpd.shape, bpd.p, bpd.ks
        )
        np.testing.assert_allclose(again.to_dense(), bpd.to_dense())
        assert again.shape == bpd.shape and again.nnz == bpd.nnz

    @given(odd_shapes, st.integers(0, 5))
    @settings(max_examples=25)
    def test_double_transpose_round_trip(self, shape, seed):
        bpd = _random_bpd(shape, 4, seed=seed, scheme="random")
        twice = bpd.transpose().transpose()
        assert twice.shape == bpd.shape
        np.testing.assert_array_equal(twice.ks, bpd.ks)
        np.testing.assert_allclose(twice.to_dense(), bpd.to_dense(), atol=1e-12)

    @given(odd_shapes, st.integers(0, 5))
    @settings(max_examples=25)
    def test_transpose_products_match_dense(self, shape, seed):
        bpd = _random_bpd(shape, 4, seed=seed, scheme="random")
        rng = np.random.default_rng(seed)
        y = rng.normal(size=(3, shape[0]))
        np.testing.assert_allclose(
            bpd.rmatmat(y), y @ bpd.to_dense(), atol=1e-12
        )
        np.testing.assert_allclose(
            bpd.transpose().matmat(y), y @ bpd.to_dense(), atol=1e-12
        )

    @given(odd_shapes)
    @settings(max_examples=25)
    def test_from_dense_round_trip_random_spec(self, shape):
        rng = np.random.default_rng(21)
        dense = rng.normal(size=shape)
        bpd = BlockPermutedDiagonalMatrix.from_dense(
            dense, 4, spec=PermutationSpec(scheme="random", seed=7)
        )
        again = BlockPermutedDiagonalMatrix.from_dense(bpd.to_dense(), 4, ks=bpd.ks)
        np.testing.assert_allclose(again.to_dense(), bpd.to_dense())


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        from repro.core import load_bpd, save_bpd

        bpd = _random_bpd((10, 15), 5, seed=17)
        path = str(tmp_path / "w.npz")
        save_bpd(path, bpd)
        again = load_bpd(path)
        np.testing.assert_allclose(again.to_dense(), bpd.to_dense())
        assert again.shape == bpd.shape and again.p == bpd.p


class TestEnsureWritable:
    """The flag-restoring context behind set_structure's in-place re-mask."""

    def test_lifts_and_restores_read_only_flag(self):
        from repro.core.block_perm_diag import _ensure_writable

        arr = np.zeros(4)
        arr.setflags(write=False)
        with _ensure_writable(arr):
            arr[0] = 1.0
        assert not arr.flags.writeable
        assert arr[0] == 1.0

    def test_restores_flag_when_body_raises(self):
        from repro.core.block_perm_diag import _ensure_writable

        arr = np.zeros(4)
        arr.setflags(write=False)
        with pytest.raises(RuntimeError, match="boom"):
            with _ensure_writable(arr):
                arr[0] = 1.0
                raise RuntimeError("boom")
        assert not arr.flags.writeable  # freeze survives the exception
        assert arr[0] == 1.0  # the write before the raise landed

    def test_writable_array_left_writable(self):
        from repro.core.block_perm_diag import _ensure_writable

        arr = np.zeros(4)
        with _ensure_writable(arr):
            arr[0] = 1.0
        assert arr.flags.writeable

    def test_truly_immutable_view_raises_valueerror(self):
        from repro.core.block_perm_diag import _ensure_writable

        base = np.zeros(4)
        base.setflags(write=False)
        view = base[:]
        with pytest.raises(ValueError):
            with _ensure_writable(view):
                raise AssertionError("body must not run")  # pragma: no cover
        assert not view.flags.writeable

    def test_set_structure_remask_keeps_alias_on_frozen_buffer(self):
        bpd = _random_bpd((8, 8), 4, seed=11)
        buf = bpd.data
        buf.setflags(write=False)
        try:
            bpd.set_structure(shape=(7, 7))
            assert bpd.data is buf  # in-place re-mask, alias preserved
            assert not buf.flags.writeable  # original flag state restored
            support = bpd._get_plan().support
            assert not np.any(np.asarray(bpd.data)[~support])
        finally:
            buf.setflags(write=True)
