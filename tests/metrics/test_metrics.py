"""Tests for accuracy, BLEU, compression and sparsity metrics."""

import numpy as np
import pytest

from repro.metrics import (
    activation_sparsity,
    corpus_bleu,
    model_storage_report,
    sentence_bleu,
    top_k_accuracy,
    weight_sparsity,
)
from repro.nn import Linear, MaskedLinear, PermDiagLinear, ReLU, Sequential


class TestTopKAccuracy:
    def test_top1(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert top_k_accuracy(logits, np.array([1, 0])) == 1.0
        assert top_k_accuracy(logits, np.array([0, 0])) == 0.5

    def test_top5_always_hits_with_five_classes(self):
        logits = np.random.default_rng(0).normal(size=(20, 5))
        labels = np.random.default_rng(1).integers(0, 5, size=20)
        assert top_k_accuracy(logits, labels, k=5) == 1.0

    def test_topk_monotone_in_k(self):
        logits = np.random.default_rng(2).normal(size=(50, 10))
        labels = np.random.default_rng(3).integers(0, 10, size=50)
        accs = [top_k_accuracy(logits, labels, k) for k in (1, 3, 5)]
        assert accs == sorted(accs)

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=4)


class TestBleu:
    def test_perfect_match_scores_100(self):
        refs = [[1, 2, 3, 4, 5], [6, 7, 8, 9]]
        assert corpus_bleu(refs, refs, smooth=False) == pytest.approx(100.0)

    def test_disjoint_scores_0(self):
        refs = [[1, 2, 3, 4, 5]]
        hyps = [[6, 7, 8, 9, 10]]
        assert corpus_bleu(refs, hyps, smooth=False) == 0.0

    def test_partial_overlap_between_0_and_100(self):
        refs = [[1, 2, 3, 4, 5, 6]]
        hyps = [[1, 2, 3, 9, 10, 11]]
        score = corpus_bleu(refs, hyps)
        assert 0.0 < score < 100.0

    def test_brevity_penalty(self):
        refs = [[1, 2, 3, 4, 5, 6, 7, 8]]
        full = corpus_bleu(refs, [[1, 2, 3, 4, 5, 6, 7, 8]], smooth=False)
        short = corpus_bleu(refs, [[1, 2, 3, 4]], smooth=False)
        assert short < full

    def test_word_order_matters(self):
        refs = [[1, 2, 3, 4, 5]]
        ordered = corpus_bleu(refs, [[1, 2, 3, 4, 5]])
        shuffled = corpus_bleu(refs, [[5, 3, 1, 4, 2]])
        assert shuffled < ordered

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [])

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            corpus_bleu([], [])

    def test_sentence_bleu_wrapper(self):
        assert sentence_bleu([1, 2, 3, 4], [1, 2, 3, 4]) > 90.0

    def test_empty_hypothesis(self):
        assert corpus_bleu([[1, 2, 3]], [[]]) == 0.0

    def test_string_tokens_supported(self):
        refs = [["the", "cat", "sat", "on", "the", "mat"]]
        hyps = [["the", "cat", "sat", "on", "the", "mat"]]
        assert corpus_bleu(refs, hyps, smooth=False) == pytest.approx(100.0)

    def test_sentence_shorter_than_max_order_needs_smoothing(self):
        # A 3-token sentence has no 4-grams: unsmoothed BLEU is 0 by
        # definition, smoothed BLEU is positive.
        refs = hyps = [["the", "cat", "sat"]]
        assert corpus_bleu(refs, hyps, smooth=False) == 0.0
        assert corpus_bleu(refs, hyps, smooth=True) > 50.0


class TestCompressionReport:
    def test_dense_model_ratio_is_one(self):
        model = Sequential(Linear(16, 16, rng=0), ReLU(), Linear(16, 4, rng=1))
        report = model_storage_report(model)
        assert report.compression_ratio == pytest.approx(1.0)

    def test_pd_model_ratio_tracks_p(self):
        model = Sequential(
            PermDiagLinear(64, 64, p=8, rng=0),
            ReLU(),
            PermDiagLinear(64, 64, p=8, rng=1),
        )
        report = model_storage_report(model)
        assert report.compression_ratio == pytest.approx(8.0)

    def test_mixed_model(self):
        model = Sequential(PermDiagLinear(64, 64, p=8, rng=0), Linear(64, 8, rng=1))
        report = model_storage_report(model)
        dense = 64 * 64 + 64 * 8
        stored = 64 * 64 // 8 + 64 * 8
        assert report.compression_ratio == pytest.approx(dense / stored)

    def test_pruned_layer_charged_index_bits(self):
        mask = np.zeros((32, 32), dtype=bool)
        mask[:, :8] = True
        model = Sequential(MaskedLinear(32, 32, mask, rng=0))
        report = model_storage_report(model, eie_index_bits=4.0)
        # 256 stored weights at (32+4) bits vs PD storing at 32 bits flat
        assert report.megabytes(32) == pytest.approx(256 * 36 / 8 / 1e6)

    def test_sixteen_bit_doubles_size_ratio(self):
        model = Sequential(PermDiagLinear(64, 64, p=8, rng=0))
        report = model_storage_report(model)
        assert report.size_ratio(32, 16) == pytest.approx(
            2 * report.size_ratio(32, 32)
        )

    def test_lstm_counted(self):
        from repro.nn import LSTM

        class Wrapper(Sequential):
            pass

        model = Wrapper()
        model.lstm = LSTM(16, 16, p=4, rng=0)
        report = model_storage_report(model)
        assert len(report.layers) == 8  # 8 component matrices
        assert report.compression_ratio == pytest.approx(4.0)


class TestSparsity:
    def test_weight_sparsity_of_pd_matrix(self):
        from repro.core import BlockPermutedDiagonalMatrix

        pd = BlockPermutedDiagonalMatrix.random((40, 40), 10, rng=0)
        assert weight_sparsity(pd.to_dense()) == pytest.approx(0.1)

    def test_activation_sparsity_after_relu(self):
        model = Sequential(Linear(32, 64, rng=0), ReLU(), Linear(64, 8, rng=1))
        x = np.random.default_rng(2).normal(size=(128, 32))
        sparsity = activation_sparsity(model, x, layer_index=2)
        assert 0.3 < sparsity < 0.7  # ~half the ReLU outputs are zero

    def test_layer_zero_measures_raw_input(self):
        model = Sequential(Linear(8, 4, rng=0))
        x = np.zeros((4, 8))
        x[:, 0] = 1.0
        assert activation_sparsity(model, x, 0) == pytest.approx(1 / 8)

    def test_rejects_non_sequential(self):
        with pytest.raises(TypeError):
            activation_sparsity(Linear(4, 4), np.zeros((1, 4)), 0)

    def test_layer_index_bounds(self):
        model = Sequential(Linear(4, 4))
        with pytest.raises(ValueError):
            activation_sparsity(model, np.zeros((1, 4)), 5)

    def test_restores_training_mode(self):
        model = Sequential(Linear(4, 4, rng=0))
        model.train()
        activation_sparsity(model, np.ones((2, 4)), 0)
        assert model.training
