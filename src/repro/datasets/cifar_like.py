"""Procedural 3x32x32 image classes (CIFAR-10 substitute).

Each class is defined by a characteristic spatial frequency / orientation
texture plus a class-specific color balance, with per-sample phase, noise
and brightness jitter.  Convolutional networks (ResNet-20 / WideResNet
topologies) must learn localized filters to separate the classes, so the
dataset exercises the same machinery CIFAR-10 does, at tunable difficulty.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_cifar_like"]


def make_cifar_like(
    count: int,
    num_classes: int = 10,
    image_size: int = 32,
    noise: float = 0.25,
    seed: int = 0,
    class_seed: int = 1234,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate class-textured RGB images.

    Args:
        count: number of images.
        num_classes: number of texture classes (max 16 distinct patterns).
        image_size: square spatial size (32 matches CIFAR-10).
        noise: additive Gaussian noise level.
        seed: RNG seed for *sampling* (per-image phase/brightness/noise).
        class_seed: RNG seed for the *class definitions*.  Keep it fixed
            across train/test splits so both draws share the same classes;
            only ``seed`` should differ between splits.

    Returns:
        ``(x, y)``: images ``(count, 3, image_size, image_size)`` roughly in
        ``[-1, 1]`` and labels ``(count,)``.
    """
    if num_classes > 16:
        raise ValueError("at most 16 distinct texture classes supported")
    rng = np.random.default_rng(seed)
    coords = np.arange(image_size)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    class_rng = np.random.default_rng(class_seed)
    # class-specific orientation, frequency and color mixing
    angles = class_rng.uniform(0, np.pi, size=num_classes)
    freqs = class_rng.uniform(0.2, 0.9, size=num_classes)
    colors = class_rng.uniform(0.3, 1.0, size=(num_classes, 3))

    labels = rng.integers(0, num_classes, size=count)
    phases = rng.uniform(0, 2 * np.pi, size=count)
    brightness = rng.uniform(0.7, 1.3, size=count)
    images = np.empty((count, 3, image_size, image_size))
    for idx in range(count):
        cls = labels[idx]
        wave = np.sin(
            freqs[cls]
            * (np.cos(angles[cls]) * xx + np.sin(angles[cls]) * yy)
            + phases[idx]
        )
        # second harmonic gives the texture some structure beyond one tone
        wave = wave + 0.5 * np.sin(
            2.3 * freqs[cls]
            * (np.cos(angles[cls] + 0.7) * xx + np.sin(angles[cls] + 0.7) * yy)
        )
        for ch in range(3):
            images[idx, ch] = wave * colors[cls, ch] * brightness[idx]
    images += rng.normal(0.0, noise, size=images.shape)
    return images, labels
