"""Synthetic dataset substitutes for the paper's benchmarks.

No network access and no licensed corpora are available offline, so each of
the paper's datasets is replaced by a procedurally generated stand-in of the
same tensor shape and task type (see DESIGN.md for the substitution table):

- ImageNet feature task  -> :class:`GaussianMixtureDataset`
- MNIST                  -> :func:`make_digits` (procedural digit glyphs)
- CIFAR-10               -> :func:`make_cifar_like` (procedural 3x32x32)
- IWSLT'15 En-Vi         -> :class:`TranslationCorpus` (synthetic rule-based
  translation language pair)
"""

from repro.datasets.gaussian import GaussianMixtureDataset
from repro.datasets.digits import make_digits
from repro.datasets.cifar_like import make_cifar_like
from repro.datasets.translation import TranslationCorpus, Vocabulary

__all__ = [
    "GaussianMixtureDataset",
    "TranslationCorpus",
    "Vocabulary",
    "make_cifar_like",
    "make_digits",
]
