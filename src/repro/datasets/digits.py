"""Procedurally rendered digit images (MNIST substitute, Sec. III-F).

Each digit 0-9 is drawn from a 7-segment-style glyph on a coarse grid,
upsampled to ``28 x 28``, then perturbed with random shifts, per-pixel noise
and stroke-intensity jitter.  This produces an image-classification problem
of MNIST's exact shape whose difficulty is tunable -- enough signal to test
the paper's dense -> PD-approximation -> fine-tune pipeline end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_digits", "SEGMENTS"]

# 7-segment encoding: (top, top-left, top-right, middle, bottom-left,
# bottom-right, bottom) -- the classic LED digit layout.
SEGMENTS = {
    0: (1, 1, 1, 0, 1, 1, 1),
    1: (0, 0, 1, 0, 0, 1, 0),
    2: (1, 0, 1, 1, 1, 0, 1),
    3: (1, 0, 1, 1, 0, 1, 1),
    4: (0, 1, 1, 1, 0, 1, 0),
    5: (1, 1, 0, 1, 0, 1, 1),
    6: (1, 1, 0, 1, 1, 1, 1),
    7: (1, 0, 1, 0, 0, 1, 0),
    8: (1, 1, 1, 1, 1, 1, 1),
    9: (1, 1, 1, 1, 0, 1, 1),
}


def _glyph(digit: int, size: int = 16) -> np.ndarray:
    """Render one digit's segments onto a ``size x size`` canvas."""
    canvas = np.zeros((size, size))
    top, tl, tr, mid, bl, br, bot = SEGMENTS[digit]
    t = max(size // 8, 1)  # stroke thickness
    left, right = size // 4, 3 * size // 4
    rows = {"top": t, "mid": size // 2, "bot": size - 2 * t}
    if top:
        canvas[rows["top"] : rows["top"] + t, left:right] = 1.0
    if mid:
        canvas[rows["mid"] : rows["mid"] + t, left:right] = 1.0
    if bot:
        canvas[rows["bot"] : rows["bot"] + t, left:right] = 1.0
    if tl:
        canvas[rows["top"] : rows["mid"] + t, left : left + t] = 1.0
    if tr:
        canvas[rows["top"] : rows["mid"] + t, right - t : right] = 1.0
    if bl:
        canvas[rows["mid"] : rows["bot"] + t, left : left + t] = 1.0
    if br:
        canvas[rows["mid"] : rows["bot"] + t, right - t : right] = 1.0
    return canvas


def make_digits(
    count: int,
    image_size: int = 28,
    noise: float = 0.15,
    max_shift: int = 3,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a labelled digit-image dataset.

    Args:
        count: number of images.
        image_size: square output size (28 matches MNIST/LeNet-5).
        noise: per-pixel Gaussian noise standard deviation.
        max_shift: maximum random translation in pixels.
        seed: RNG seed.

    Returns:
        ``(x, y)``: images of shape ``(count, 1, image_size, image_size)``
        scaled to ``[0, ~1]``, and integer labels ``(count,)``.
    """
    rng = np.random.default_rng(seed)
    glyph_size = image_size - 2 * max_shift - 2
    glyphs = np.stack([_glyph(d, glyph_size) for d in range(10)])
    labels = rng.integers(0, 10, size=count)
    images = np.zeros((count, 1, image_size, image_size))
    shifts = rng.integers(-max_shift, max_shift + 1, size=(count, 2))
    intensities = rng.uniform(0.7, 1.3, size=count)
    base = (image_size - glyph_size) // 2
    for idx in range(count):
        row = base + shifts[idx, 0]
        col = base + shifts[idx, 1]
        images[idx, 0, row : row + glyph_size, col : col + glyph_size] = (
            glyphs[labels[idx]] * intensities[idx]
        )
    images += rng.normal(0.0, noise, size=images.shape)
    return np.clip(images, 0.0, None), labels
