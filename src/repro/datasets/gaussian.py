"""Gaussian-mixture classification data (ImageNet-feature substitute).

AlexNet's FC layers consume a 9216-dim feature vector and emit 1000 classes.
We replace that with class-conditional Gaussian clusters over a configurable
feature dimension: the *shape* of the computation (wide FC stacks, softmax
over many classes) is identical, and relative accuracy between dense and
PD-compressed models is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GaussianMixtureDataset"]


@dataclass
class GaussianMixtureDataset:
    """Class-conditional Gaussian blobs with controllable difficulty.

    Attributes:
        num_features: input dimensionality.
        num_classes: number of classes.
        separation: distance scale between class means; smaller is harder.
        noise: within-class standard deviation.
        seed: RNG seed for reproducibility.
    """

    num_features: int = 64
    num_classes: int = 10
    separation: float = 3.0
    noise: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_features <= 0 or self.num_classes <= 1:
            raise ValueError("need num_features >= 1 and num_classes >= 2")
        rng = np.random.default_rng(self.seed)
        self._means = rng.normal(
            0.0, self.separation / np.sqrt(self.num_features),
            size=(self.num_classes, self.num_features),
        )

    def sample(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` labelled samples.

        Returns:
            ``(x, y)`` with ``x`` of shape ``(count, num_features)`` and
            integer labels ``y`` of shape ``(count,)``.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        labels = rng.integers(0, self.num_classes, size=count)
        x = self._means[labels] + rng.normal(
            0.0, self.noise, size=(count, self.num_features)
        )
        return x, labels

    def train_test_split(
        self, train: int, test: int, seed: int = 1
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Convenience: disjoint train/test draws."""
        rng = np.random.default_rng(seed)
        x_train, y_train = self.sample(train, rng)
        x_test, y_test = self.sample(test, rng)
        return x_train, y_train, x_test, y_test
