"""Synthetic translation corpus (IWSLT'15 En-Vi substitute, Table III).

A rule-based "language pair": source sentences are random token sequences
over a source vocabulary with Zipf-like frequencies; the target sentence is
a deterministic transformation (token-wise dictionary mapping + local
reordering of token pairs).  The mapping is learnable by a seq2seq model but
non-trivial (requires position handling), so BLEU scores behave like a real
translation task: an untrained model scores ~0, a well-trained model
approaches 100, and dense-vs-compressed comparisons are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TranslationCorpus", "Vocabulary"]


@dataclass(frozen=True)
class Vocabulary:
    """Token id layout shared by source and target languages.

    Reserved ids: 0 = PAD, 1 = BOS, 2 = EOS; content tokens follow.
    """

    size: int

    PAD: int = field(default=0, init=False)
    BOS: int = field(default=1, init=False)
    EOS: int = field(default=2, init=False)

    def __post_init__(self) -> None:
        if self.size < 8:
            raise ValueError("vocabulary needs at least 8 entries")

    @property
    def first_content(self) -> int:
        return 3

    @property
    def num_content(self) -> int:
        return self.size - 3


class TranslationCorpus:
    """Deterministic synthetic language pair with train/test sampling.

    The "translation rule":

    1. each source content token ``s`` maps to target token ``perm(s)``
       (a fixed random bijection -- the bilingual dictionary), and
    2. adjacent token pairs are swapped (simplified word-order divergence,
       like the adjective-noun inversion between English and Vietnamese).

    Args:
        vocab_size: shared vocabulary size (ids 0-2 reserved).
        min_len / max_len: source sentence length range (content tokens).
        seed: seed fixing the dictionary permutation.
    """

    def __init__(
        self,
        vocab_size: int = 32,
        min_len: int = 3,
        max_len: int = 8,
        seed: int = 0,
    ) -> None:
        if min_len < 2 or max_len < min_len:
            raise ValueError("need 2 <= min_len <= max_len")
        self.vocab = Vocabulary(vocab_size)
        self.min_len = min_len
        self.max_len = max_len
        rng = np.random.default_rng(seed)
        content = np.arange(self.vocab.first_content, vocab_size)
        self._dictionary = dict(zip(content, rng.permutation(content)))
        # Zipf-ish sampling weights over content tokens
        ranks = np.arange(1, content.size + 1)
        self._weights = (1.0 / ranks) / (1.0 / ranks).sum()
        self._content = content

    def translate(self, source: list[int]) -> list[int]:
        """Apply the ground-truth translation rule to one sentence."""
        mapped = [self._dictionary[token] for token in source]
        swapped = mapped.copy()
        for idx in range(0, len(swapped) - 1, 2):
            swapped[idx], swapped[idx + 1] = swapped[idx + 1], swapped[idx]
        return swapped

    def sample_pairs(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> list[tuple[list[int], list[int]]]:
        """Draw ``count`` (source, target) sentence pairs (no special tokens)."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        pairs = []
        for _ in range(count):
            length = int(rng.integers(self.min_len, self.max_len + 1))
            source = rng.choice(self._content, size=length, p=self._weights)
            source = [int(tok) for tok in source]
            pairs.append((source, self.translate(source)))
        return pairs

    def to_batch(
        self, pairs: list[tuple[list[int], list[int]]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pad pairs into model-ready arrays.

        Returns:
            ``(src, tgt_in, tgt_out)``:

            - ``src``: ``(B, S)`` source tokens, PAD-padded.
            - ``tgt_in``: ``(B, T)`` decoder input, ``BOS + target``.
            - ``tgt_out``: ``(B, T)`` decoder labels, ``target + EOS``
              (PAD marks positions to ignore in the loss).
        """
        vocab = self.vocab
        src_len = max(len(s) for s, _ in pairs)
        tgt_len = max(len(t) for _, t in pairs) + 1  # +1 for BOS/EOS
        src = np.full((len(pairs), src_len), vocab.PAD, dtype=np.int64)
        tgt_in = np.full((len(pairs), tgt_len), vocab.PAD, dtype=np.int64)
        tgt_out = np.full((len(pairs), tgt_len), vocab.PAD, dtype=np.int64)
        for row, (source, target) in enumerate(pairs):
            src[row, : len(source)] = source
            tgt_in[row, 0] = vocab.BOS
            tgt_in[row, 1 : len(target) + 1] = target
            tgt_out[row, : len(target)] = target
            tgt_out[row, len(target)] = vocab.EOS
        return src, tgt_in, tgt_out
