"""Command-line interface to the main experiments.

Usage (module form):

    python -m repro.cli simulate    --workload Alex-FC6 [--pes 32] [--backend csr]
    python -m repro.cli compare     --workload Alex-FC7
    python -m repro.cli storage     --model alexnet|resnet20|wrn48
    python -m repro.cli scale       --workload NMT-1
    python -m repro.cli memory      --sram-mb 16
    python -m repro.cli serve-bench --shards 4 [--requests 32] [--scale 1]
    python -m repro.cli serve-bench --arrivals poisson [--slo-us 150] [--load 0.8]
    python -m repro.cli serve-bench --workload lenet|resnet20|nmt|all
    python -m repro.cli serve-bench --mixed [--arrivals bursty] [--load 0.8]
    python -m repro.cli compress     --entry lenet --out runs/compress
    python -m repro.cli compress-zoo --out runs/compress_zoo [--entry nmt]

The kernel backend used for the numerical products can also be selected
process-wide with the ``REPRO_BACKEND`` environment variable
(``gather``/``csr``/``numba``; see :mod:`repro.core.backends`).

Command implementations are plain library code: they raise typed errors
(e.g. :class:`repro.hw.UnknownWorkloadError`) and only :func:`main`
converts those into ``SystemExit`` for terminal users.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["build_parser", "main"]


def _cmd_simulate(args) -> int:
    from repro.hw import EngineConfig, PermDNNEngine, find_workload, make_workload_instance
    from repro.hw.verify import verify_engine

    workload = find_workload(args.workload)
    engine = PermDNNEngine(EngineConfig(n_pe=args.pes))
    matrix, x = make_workload_instance(workload, rng=args.seed)
    if args.backend:
        # Pin the workload matrix only -- never the process-wide default,
        # which would leak into later library calls.
        matrix.set_backend(args.backend)
    verify_engine(engine, matrix, x)
    result = engine.run_fc_layer(matrix, x, enforce_capacity=not args.no_capacity)
    perf = engine.performance(result, (workload.m, workload.n))
    print(f"workload      : {workload.name} ({workload.m} x {workload.n}, p={workload.p})")
    print(f"engine        : {args.pes} PEs @ {engine.config.clock_ghz} GHz")
    print(f"cycles        : {result.cycles} (case {result.case}, "
          f"{result.nonzero_columns} non-zero columns, "
          f"{result.skipped_columns} skipped)")
    print(f"latency       : {perf.latency_us:.2f} us")
    print(f"utilization   : {result.utilization:.2%}")
    print(f"throughput    : {perf.gops:.1f} GOPS compressed / "
          f"{perf.equivalent_gops:.1f} GOPS dense-equivalent")
    print(f"power / area  : {engine.power_w:.3f} W / {engine.area_mm2:.2f} mm2")
    return 0


def _cmd_compare(args) -> int:
    from repro.hw import PermDNNEngine, find_workload, make_workload_instance
    from repro.hw.baselines import EIEConfig, EIESimulator

    workload = find_workload(args.workload)
    engine = PermDNNEngine()
    eie = EIESimulator(EIEConfig.projected_28nm())
    matrix, x = make_workload_instance(workload, rng=args.seed)
    perm = engine.performance(
        engine.run_fc_layer(matrix, x), (workload.m, workload.n)
    )
    pruned = EIESimulator.prune_reference(
        (workload.m, workload.n), workload.weight_density, rng=args.seed + 1
    )
    ref = eie.performance(eie.run_fc_layer(pruned, x), (workload.m, workload.n))
    print(f"{workload.name}: PermDNN vs EIE (28 nm projected)")
    print(f"speedup           : {perm.speedup_over(ref):.2f}x")
    print(f"area efficiency   : {perm.area_efficiency_ratio(ref):.2f}x")
    print(f"energy efficiency : {perm.energy_efficiency_ratio(ref):.2f}x")
    return 0


def _cmd_storage(args) -> int:
    from repro.metrics import model_storage_report

    if args.model == "alexnet":
        from repro.models import build_alexnet_fc

        model = build_alexnet_fc(scale=1, dropout=0.0, rng=0)
    elif args.model == "resnet20":
        from repro.models import RESNET20_POLICY, build_resnet

        model = build_resnet(depth=20, policy=RESNET20_POLICY, base_width=16, rng=0)
    elif args.model == "wrn48":
        from repro.models import WRN48_POLICY, build_resnet

        model = build_resnet(
            depth=50, policy=WRN48_POLICY, base_width=16, widen_factor=8, rng=0
        )
    else:  # unreachable through argparse choices; typed for library callers
        raise ValueError(f"unknown model {args.model!r}")
    report = model_storage_report(model)
    print(f"model              : {args.model}")
    print(f"dense weights      : {report.dense_weights:,}")
    print(f"stored weights     : {report.stored_weights:,}")
    print(f"compression        : {report.compression_ratio:.2f}x")
    print(f"size 32-bit        : {report.megabytes(32):.2f} MB "
          f"(dense {report.dense_megabytes(32):.2f} MB)")
    print(f"size 16-bit fixed  : {report.megabytes(16):.2f} MB")
    return 0


def _cmd_scale(args) -> int:
    from repro.hw import EngineConfig, PermDNNEngine, find_workload, make_workload_instance

    workload = find_workload(args.workload)
    matrix, x = make_workload_instance(workload, rng=args.seed)
    base = None
    print(f"{workload.name}: speedup vs 1 PE")
    for n_pe in (1, 2, 4, 8, 16, 32, 64):
        engine = PermDNNEngine(EngineConfig(n_pe=n_pe))
        cycles = engine.run_fc_layer(matrix, x, enforce_capacity=False).cycles
        base = base or cycles
        print(f"  {n_pe:3d} PEs: {base / cycles:6.2f}x  ({cycles} cycles)")
    return 0


def _cmd_memory(args) -> int:
    from repro.analysis import weight_access_energy
    from repro.metrics import model_storage_report
    from repro.models import build_alexnet_fc

    budget = int(args.sram_mb * 1e6 / 4)  # 32-bit words
    dense = model_storage_report(build_alexnet_fc(None, scale=1, dropout=0.0))
    compressed = model_storage_report(build_alexnet_fc(scale=1, dropout=0.0))
    for label, report in (("dense", dense), ("PD", compressed)):
        access = weight_access_energy(report.stored_weights, budget)
        print(
            f"{label:6s}: {report.stored_weights:>11,} weights  "
            f"fits on-chip: {access.fits_on_chip!s:5s}  "
            f"weight-fetch energy {access.energy_uj:10.1f} uJ/inference"
        )
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.serve import format_report, run_serving_benchmark

    if args.mixed:
        return _cmd_serve_bench_mixed(args)
    if args.workload != "alexnet-fc":
        return _cmd_serve_bench_workloads(args)
    if args.arrivals:
        return _cmd_serve_bench_open_loop(args)
    report = run_serving_benchmark(
        num_shards=args.shards,
        num_requests=args.requests,
        max_batch_size=args.max_batch,
        flush_deadline_us=args.deadline_us,
        scale=args.scale,
        seed=args.seed,
        num_threads=args.threads,
        value_dtype=args.dtype,
    )
    print(format_report(report))
    # A sharded/unsharded mismatch is a correctness failure, not a perf
    # number -- make it visible to scripts.
    return 0 if report.outputs_match else 1


def _cmd_serve_bench_workloads(args) -> int:
    from repro.serve import (
        format_workload_matrix,
        run_workload_matrix,
        workload_names,
    )

    workloads = (
        workload_names() if args.workload == "all" else (args.workload,)
    )
    rows = run_workload_matrix(
        workloads=workloads,
        num_shards=args.shards,
        num_requests=args.requests,
        max_batch_size=args.max_batch,
        flush_deadline_us=args.deadline_us,
        scale=args.scale,
        seed=args.seed,
        num_threads=args.threads,
        value_dtype=args.dtype,
    )
    print(format_workload_matrix(rows))
    return 0 if all(row.outputs_match for row in rows) else 1


def _cmd_serve_bench_mixed(args) -> int:
    from repro.serve import format_mixed_report, run_mixed_traffic

    report = run_mixed_traffic(
        process=(args.arrivals or ["poisson"])[0],
        load=(args.load or [0.8])[0],
        num_requests=args.requests,
        num_shards=args.shards,
        num_threads=args.threads,
        seed=args.seed,
        max_batch_size=args.max_batch,
        flush_deadline_us=args.deadline_us,
    )
    print(format_mixed_report(report))
    failures = report.failures()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve_bench_open_loop(args) -> int:
    from repro.serve import format_open_loop_report, run_open_loop_sweep

    report = run_open_loop_sweep(
        arrivals=tuple(args.arrivals),
        load_fractions=tuple(args.load or (0.5, 0.8, 1.0, 1.3)),
        num_requests=args.requests,
        num_shards=args.shards,
        scale=args.scale,
        seed=args.seed,
        slo_us=args.slo_us,
        max_batch_size=args.max_batch,
        flush_deadline_us=args.deadline_us,
    )
    print(format_open_loop_report(report))
    failures = report.failures()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _compress_overrides(args) -> dict:
    """Recipe overrides shared by ``compress`` and ``compress-zoo``.

    Only explicitly given flags are forwarded so every other knob keeps
    the entry's own recipe value.
    """
    overrides = {}
    if args.strategy is not None:
        overrides["strategy"] = args.strategy
    if args.dtype is not None:
        overrides["value_dtype"] = args.dtype
    if args.shards is not None:
        overrides["num_shards"] = args.shards
    if args.seed is not None:
        overrides["seed"] = args.seed
    return overrides


def _cmd_compress(args) -> int:
    import os

    from repro.compress import run_zoo_entry, zoo_entry

    overrides = _compress_overrides(args)
    if args.epochs is not None:
        overrides["finetune_epochs"] = args.epochs
    entry = zoo_entry(args.entry, **overrides)
    entry_dir = (
        os.path.join(args.out, entry.name) if args.out is not None else None
    )
    result = run_zoo_entry(entry, entry_dir)
    print(result.report.summary())
    if entry_dir is not None:
        print(f"report             : {os.path.join(entry_dir, 'report.json')}")
        print(f"bundle             : {os.path.join(entry_dir, 'bundle')}")
    return 0


def _cmd_compress_zoo(args) -> int:
    from repro.compress import format_zoo_results, run_zoo

    results = run_zoo(
        args.out,
        entries=tuple(args.entry) if args.entry else None,
        resume=not args.no_resume,
        progress=print,
        **_compress_overrides(args),
    )
    print()
    print(format_zoo_results(results))
    return 0 if all(r.report.verified for r in results) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PermDNN reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run the engine on a Table VII layer")
    sim.add_argument("--workload", default="Alex-FC6")
    sim.add_argument("--pes", type=int, default=32)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--no-capacity", action="store_true",
                     help="waive the per-PE SRAM capacity check")
    sim.add_argument("--backend", default=None,
                     help="kernel backend for the numerics "
                          "(gather/csr/numba; default: auto)")
    sim.set_defaults(func=_cmd_simulate)

    cmp_ = sub.add_parser("compare", help="PermDNN vs EIE on one layer")
    cmp_.add_argument("--workload", default="Alex-FC6")
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.set_defaults(func=_cmd_compare)

    sto = sub.add_parser("storage", help="storage accounting of a paper model")
    sto.add_argument("--model", default="alexnet",
                     choices=("alexnet", "resnet20", "wrn48"))
    sto.set_defaults(func=_cmd_storage)

    sca = sub.add_parser("scale", help="PE-count scalability sweep (Fig. 13)")
    sca.add_argument("--workload", default="Alex-FC6")
    sca.add_argument("--seed", type=int, default=0)
    sca.set_defaults(func=_cmd_scale)

    mem = sub.add_parser("memory", help="DRAM-vs-SRAM weight-fetch energy")
    mem.add_argument("--sram-mb", type=float, default=16.0)
    mem.set_defaults(func=_cmd_memory)

    srv = sub.add_parser(
        "serve-bench",
        help="sharded multi-engine serving throughput vs one engine",
    )
    srv.add_argument("--shards", type=int, default=4)
    srv.add_argument("--workload", default="alexnet-fc",
                     choices=("alexnet-fc", "lenet", "resnet20", "nmt",
                              "all"),
                     help="serving workload: the AlexNet FC stack "
                          "(default, full closed/open-loop machinery), a "
                          "conv pipeline (lenet/resnet20), the NMT LSTM "
                          "cell, or the whole matrix ('all')")
    srv.add_argument("--mixed", action="store_true",
                     help="mixed-traffic mode: split one open-loop "
                          "arrival stream between a vision (lenet) and a "
                          "translation (nmt) server")
    srv.add_argument("--requests", type=int, default=32)
    srv.add_argument("--max-batch", type=int, default=16)
    srv.add_argument("--deadline-us", type=float, default=50.0)
    srv.add_argument("--scale", type=int, default=1,
                     help="divide the AlexNet-FC widths by this factor")
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--threads", type=int, default=None,
                     help="host threads per drain's shard executor "
                          "(default: min(shards, host CPUs); simulated "
                          "metrics are thread-count independent)")
    srv.add_argument("--dtype", default=None,
                     choices=("float64", "float32", "int16"),
                     help="value-storage mode to serve at "
                          "(quantize-at-export; default float64)")
    srv.add_argument("--arrivals", action="append", default=None,
                     choices=["deterministic", "poisson", "bursty", "diurnal"],
                     help="open-loop mode: measure latency percentiles vs "
                          "offered load under this arrival process "
                          "(repeatable; omit for the closed-loop benchmark)")
    srv.add_argument("--load", type=float, action="append", default=None,
                     help="offered-load fraction of closed-loop capacity "
                          "(repeatable; open-loop mode only)")
    srv.add_argument("--slo-us", type=float, default=None,
                     help="p99 SLO for knee finding in microseconds "
                          "(default: 2x the unloaded p99)")
    srv.set_defaults(func=_cmd_serve_bench)

    def _add_compress_flags(p):
        p.add_argument("--strategy", default=None,
                       help="permutation-search strategy override "
                            "(greedy/anneal; default: the entry's recipe)")
        p.add_argument("--dtype", default=None,
                       choices=("float64", "float32", "int16"),
                       help="bundle value-storage override "
                            "(default: the entry's recipe)")
        p.add_argument("--shards", type=int, default=None,
                       help="bundle shard-count override")
        p.add_argument("--seed", type=int, default=None,
                       help="recipe seed override")

    cps = sub.add_parser(
        "compress",
        help="compress one zoo entry into a staged serving bundle",
    )
    cps.add_argument("--entry", default="lenet-smoke",
                     help="zoo entry name (see compress-zoo; default "
                          "lenet-smoke)")
    cps.add_argument("--out", default=None,
                     help="output root; writes <out>/<entry>/bundle/ and "
                          "<out>/<entry>/report.json (default: in-memory "
                          "run, no export)")
    cps.add_argument("--epochs", type=int, default=None,
                     help="fine-tune epoch override")
    _add_compress_flags(cps)
    cps.set_defaults(func=_cmd_compress)

    czo = sub.add_parser(
        "compress-zoo",
        help="batch-compress the model zoo (resume + index.json)",
    )
    czo.add_argument("--out", required=True,
                     help="output root for bundles, reports, and index.json")
    czo.add_argument("--entry", action="append", default=None,
                     help="entry to run (repeatable; default: every "
                          "registered entry except the CI smoke entry)")
    czo.add_argument("--no-resume", action="store_true",
                     help="re-run entries even when their report and "
                          "bundle already exist")
    _add_compress_flags(czo)
    czo.set_defaults(func=_cmd_compress_zoo)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the selected command.

    This is the only place user-facing errors become ``SystemExit``; the
    command implementations raise typed exceptions so they stay usable as
    library functions.
    """
    from repro.compress import UnknownStrategyError, ZooEntryError
    from repro.core import BackendUnavailableError, UnknownBackendError
    from repro.hw import UnknownWorkloadError
    from repro.serve import UnknownArrivalProcessError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (
        UnknownWorkloadError,
        UnknownBackendError,
        BackendUnavailableError,
        UnknownArrivalProcessError,
        UnknownStrategyError,
        ZooEntryError,
    ) as exc:
        # Only user-input errors become clean exits; genuine library bugs
        # (arbitrary ValueError and friends) keep their tracebacks.
        raise SystemExit(f"error: {exc}") from exc


if __name__ == "__main__":
    sys.exit(main())
