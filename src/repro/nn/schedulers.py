"""Learning-rate schedules for SGD/Adam."""

from __future__ import annotations

import math

__all__ = ["CosineLR", "StepLR"]


class StepLR:
    """Multiply the optimizer's learning rate by ``gamma`` every ``step_size`` epochs.

    Args:
        optimizer: an optimizer exposing an ``lr`` attribute.
        step_size: epochs between decays.
        gamma: decay factor.
    """

    def __init__(self, optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (
            self.epoch // self.step_size
        )
        return self.optimizer.lr


class CosineLR:
    """Cosine annealing from the base rate to ``min_lr`` over ``total_epochs``.

    Args:
        optimizer: an optimizer exposing an ``lr`` attribute.
        total_epochs: annealing horizon.
        min_lr: final learning rate.
    """

    def __init__(self, optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch = min(self.epoch + 1, self.total_epochs)
        progress = self.epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )
        return self.optimizer.lr
