"""Optimizers operating on :class:`~repro.nn.Parameter` lists.

Structure preservation note: PD layers expose only their stored diagonal
values as parameters, so *any* optimizer here keeps the trained network
block-permuted diagonal -- the guarantee of Sec. III-B holds by
construction, not by optimizer-specific care.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Standard for LSTM training stability.
    """
    total = float(np.sqrt(sum((p.grad**2).sum() for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    Args:
        params: parameters to update.
        lr: learning rate (the paper's epsilon in Eqn. (2)).
        momentum: classical momentum coefficient.
        weight_decay: L2 penalty coefficient.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.value -= self.lr * grad

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            param.value -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()
