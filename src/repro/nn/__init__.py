"""A small numpy DNN training framework (the paper's PyTorch substitute).

Design: explicit layer objects with hand-derived ``forward``/``backward``
methods (no autograd tape).  Every backward pass is verified against central
differences in the test suite.  The PD layers implement the paper's
structure-preserving training rules: only stored (non-zero) weights receive
gradient, so a network that starts block-permuted diagonal stays so after any
number of optimizer steps (Sec. III-B/III-C).
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Module
from repro.nn.sequential import Sequential
from repro.nn.layers.linear import Linear
from repro.nn.layers.perm_diag_linear import PermDiagLinear
from repro.nn.layers.masked_linear import MaskedLinear
from repro.nn.layers.circulant_linear import BlockCirculantLinear
from repro.nn.layers.conv2d import Conv2D
from repro.nn.layers.perm_diag_conv2d import PermDiagConv2D
from repro.nn.layers.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.normalization import BatchNorm1D, BatchNorm2D
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.recurrent import LSTM, LSTMCell
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam
from repro.nn.schedulers import CosineLR, StepLR
from repro.nn.serialization import (
    UnsupportedLayerError,
    load_model,
    model_engine_layers,
    save_model,
)
from repro.nn.trainer import Trainer, evaluate_classifier

__all__ = [
    "Adam",
    "AvgPool2D",
    "BatchNorm1D",
    "BatchNorm2D",
    "BlockCirculantLinear",
    "Conv2D",
    "CosineLR",
    "CrossEntropyLoss",
    "Dropout",
    "Embedding",
    "Flatten",
    "GlobalAvgPool2D",
    "LSTM",
    "LSTMCell",
    "LeakyReLU",
    "Linear",
    "MSELoss",
    "MaskedLinear",
    "MaxPool2D",
    "Module",
    "Parameter",
    "PermDiagConv2D",
    "PermDiagLinear",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "StepLR",
    "Tanh",
    "Trainer",
    "UnsupportedLayerError",
    "evaluate_classifier",
    "load_model",
    "model_engine_layers",
    "save_model",
]
