"""Base class for all layers and models."""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module"]


class Module:
    """Base layer: explicit ``forward`` / ``backward``, recursive parameters.

    Subclasses implement:

    - ``forward(x)`` -- compute the output, caching whatever backward needs
      (caches live on ``self`` and are overwritten each call);
    - ``backward(dy)`` -- given the loss gradient w.r.t. the output, *add*
      parameter gradients into each ``Parameter.grad`` and return the loss
      gradient w.r.t. the input.

    ``training`` toggles train/eval behaviour (dropout, batch norm) and is
    propagated to children by :meth:`train` / :meth:`eval`.
    """

    def __init__(self) -> None:
        self.training = True

    # -- parameter / submodule discovery --------------------------------

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        found: list[Parameter] = []
        seen: set[int] = set()
        self._collect(found, seen)
        return found

    def _collect(self, found: list[Parameter], seen: set[int]) -> None:
        for value in vars(self).values():
            self._collect_value(value, found, seen)

    def _collect_value(self, value, found: list[Parameter], seen: set[int]) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            value._collect(found, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect_value(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect_value(item, found, seen)

    def modules(self) -> list["Module"]:
        """This module and all nested submodules (depth first)."""
        found: list[Module] = [self]
        for value in vars(self).values():
            found.extend(self._collect_modules(value))
        return found

    def _collect_modules(self, value) -> list["Module"]:
        if isinstance(value, Module):
            return value.modules()
        if isinstance(value, (list, tuple)):
            out: list[Module] = []
            for item in value:
                out.extend(self._collect_modules(item))
            return out
        return []

    # -- training state --------------------------------------------------

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total stored scalar weights (PD layers count only non-zeros)."""
        return sum(p.size for p in self.parameters())

    # -- interface --------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- state dict -------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter values, keyed by discovery order."""
        return {
            f"param_{idx}": param.value.copy()
            for idx, param in enumerate(self.parameters())
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} entries, model has {len(params)}"
            )
        for idx, param in enumerate(params):
            value = np.asarray(state[f"param_{idx}"])
            if value.shape != param.value.shape:
                raise ValueError(
                    f"param_{idx}: shape {value.shape} != {param.value.shape}"
                )
            param.value[...] = value
