"""Quantization: 16-bit fixed point and 4-bit weight sharing.

The paper's Tables II-V report "16-bit fixed with PD" rows, and the hardware
uses EIE's *weight sharing* strategy ("4-bit weight sharing does not cause
accuracy drop", footnote 11): weights are clustered into ``2^bits``
centroids; SRAM stores the 4-bit cluster index and a small LUT decodes it
to a 16-bit value inside each PE (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FixedPointFormat",
    "InvalidFixedPointScaleError",
    "WeightSharingCodebook",
    "choose_fixed_point_format",
    "decode_fixed_point",
    "encode_fixed_point",
    "quantize_fixed_point",
]


class InvalidFixedPointScaleError(ValueError):
    """Raised when a fixed-point format's scale is zero/negative/non-finite.

    :class:`FixedPointFormat` itself cannot produce such a scale, but the
    quantization entry points accept any duck-typed format object; a bad
    ``scale`` would otherwise turn every weight into NaN/inf *silently*
    (``x / 0`` under numpy warns at most).
    """


def _validate_scale(fmt) -> float:
    scale = float(fmt.scale)
    if not np.isfinite(scale) or scale <= 0.0:
        raise InvalidFixedPointScaleError(
            f"fixed-point scale must be positive and finite, got {scale!r} "
            f"from {fmt!r}"
        )
    return scale


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format Q(total_bits - frac_bits - 1).frac_bits.

    Attributes:
        total_bits: word length including the sign bit.
        frac_bits: bits to the right of the binary point.
    """

    total_bits: int = 16
    frac_bits: int = 12

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("total_bits must be >= 2")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError("frac_bits must be in [0, total_bits)")

    @property
    def scale(self) -> float:
        return float(2**self.frac_bits)

    @property
    def max_value(self) -> float:
        return (2 ** (self.total_bits - 1) - 1) / self.scale

    @property
    def min_value(self) -> float:
        return -(2 ** (self.total_bits - 1)) / self.scale

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale


def choose_fixed_point_format(
    values: np.ndarray, total_bits: int = 16
) -> FixedPointFormat:
    """Pick the fraction width that covers ``max |values|`` without clipping."""
    peak = float(np.max(np.abs(values), initial=0.0))
    int_bits = 0
    while (2**int_bits - 2 ** (int_bits - total_bits + 1)) < peak and int_bits < (
        total_bits - 1
    ):
        int_bits += 1
    return FixedPointFormat(total_bits, total_bits - 1 - int_bits)


def quantize_fixed_point(
    values: np.ndarray, fmt: FixedPointFormat | None = None, total_bits: int = 16
) -> np.ndarray:
    """Round to fixed point (saturating), returning float-valued results.

    Args:
        values: array to quantize.
        fmt: explicit format; derived from the data range if omitted.
        total_bits: word length used when deriving the format.
    """
    values = np.asarray(values, dtype=np.float64)
    if fmt is None:
        fmt = choose_fixed_point_format(values, total_bits)
    scale = _validate_scale(fmt)
    quantized = np.round(values * scale) / scale
    return np.clip(quantized, fmt.min_value, fmt.max_value)


def encode_fixed_point(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Saturating int16 codes: ``round(values * scale)`` clipped to range.

    The code range is the format's own ``[min_value, max_value] * scale``
    (narrower than int16 when ``total_bits < 16``), so
    :func:`decode_fixed_point` of the result equals
    :func:`quantize_fixed_point` exactly.  Formats wider than 16 bits do
    not fit the storage word and are rejected.
    """
    if fmt.total_bits > 16:
        raise ValueError(
            f"int16 storage holds at most 16-bit codes, got "
            f"total_bits={fmt.total_bits}"
        )
    scale = _validate_scale(fmt)
    values = np.asarray(values, dtype=np.float64)
    lo = -(2 ** (fmt.total_bits - 1))
    hi = 2 ** (fmt.total_bits - 1) - 1
    return np.clip(np.round(values * scale), lo, hi).astype(np.int16)


def decode_fixed_point(codes: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Float64 values for int16 codes (inverse of :func:`encode_fixed_point`).

    A single fused multiply: ``codes * (1 / scale)``.  The scale is a
    power of two, so the division is exact and decode-then-accumulate in
    float64 is bitwise identical to accumulating codes and scaling once.
    """
    scale = _validate_scale(fmt)
    return np.asarray(codes) * np.float64(1.0 / scale)


class WeightSharingCodebook:
    """K-means weight sharing (EIE-style ``bits``-bit virtual weights).

    Non-zero weights are clustered into ``2^bits`` centroids with Lloyd's
    algorithm; :meth:`apply` snaps an array to its nearest centroid.  Zero
    entries stay exactly zero (they are structural in PD matrices).

    Args:
        bits: index width (4 in the paper's design, so 16 clusters).
        iterations: Lloyd iterations.
        rng: generator or seed for centroid initialization.
    """

    def __init__(
        self,
        bits: int = 4,
        iterations: int = 25,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if bits < 1 or bits > 16:
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        self.bits = bits
        self.iterations = iterations
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._rng = rng
        self.centroids: np.ndarray | None = None

    @property
    def num_clusters(self) -> int:
        return 2**self.bits

    def fit(self, values: np.ndarray) -> "WeightSharingCodebook":
        """Cluster the non-zero entries of ``values``."""
        flat = np.asarray(values, dtype=np.float64).ravel()
        nonzero = flat[flat != 0]
        if nonzero.size == 0:
            self.centroids = np.zeros(self.num_clusters)
            return self
        k = min(self.num_clusters, nonzero.size)
        # linear initialization over the value range (Han et al. recommend it)
        centroids = np.linspace(nonzero.min(), nonzero.max(), k)
        for _ in range(self.iterations):
            assignment = np.abs(nonzero[:, None] - centroids[None, :]).argmin(axis=1)
            for idx in range(k):
                members = nonzero[assignment == idx]
                if members.size:
                    centroids[idx] = members.mean()
        self.centroids = centroids
        return self

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Snap each non-zero entry to its nearest centroid."""
        if self.centroids is None:
            raise RuntimeError("fit() must be called before apply()")
        values = np.asarray(values, dtype=np.float64)
        flat = values.ravel()
        out = flat.copy()
        nz = flat != 0
        if nz.any():
            assignment = np.abs(
                flat[nz][:, None] - self.centroids[None, :]
            ).argmin(axis=1)
            out[nz] = self.centroids[assignment]
        return out.reshape(values.shape)

    def quantization_error(self, values: np.ndarray) -> float:
        """RMS error introduced by :meth:`apply`."""
        values = np.asarray(values, dtype=np.float64)
        return float(np.sqrt(((values - self.apply(values)) ** 2).mean()))
