"""Stateless numeric helpers shared by layers and losses."""

from __future__ import annotations

import numpy as np

__all__ = [
    "col2im",
    "im2col",
    "log_softmax",
    "one_hot",
    "softmax",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(B,)`` -> one-hot ``(B, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ValueError("labels out of range")
    out = np.zeros((labels.shape[0], num_classes))
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def _output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output size for input={size}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, pad: int = 0
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold image patches into a matrix for conv-as-matmul.

    Args:
        x: input of shape ``(B, C, H, W)``.
        kh, kw: kernel height/width.
        stride: spatial stride (same in both dims).
        pad: symmetric zero padding.

    Returns:
        ``(cols, (oh, ow))`` where ``cols`` has shape
        ``(B, oh*ow, C*kh*kw)``.
    """
    batch, channels, height, width = x.shape
    oh = _output_size(height, kh, stride, pad)
    ow = _output_size(width, kw, stride, pad)
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, oh, ow, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, oh * ow, channels * kh * kw
    )
    return np.ascontiguousarray(cols), (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold patch-gradients back into an image (adjoint of :func:`im2col`)."""
    batch, channels, height, width = x_shape
    oh = _output_size(height, kh, stride, pad)
    ow = _output_size(width, kw, stride, pad)
    padded = np.zeros((batch, channels, height + 2 * pad, width + 2 * pad))
    patches = cols.reshape(batch, oh, ow, channels, kh, kw)
    for dy in range(kh):
        for dx in range(kw):
            padded[
                :, :, dy : dy + oh * stride : stride, dx : dx + ow * stride : stride
            ] += patches[:, :, :, :, dy, dx].transpose(0, 3, 1, 2)
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
