"""Block-circulant FC layer: the CirCNN baseline (Sec. II-C).

CirCNN represents weights with ``k x k`` circulant blocks; each block stores
one length-``k`` vector and computes
``W_ij x_j = IFFT(FFT(w_ij) * FFT(x_j))`` -- *complex* arithmetic, and the
input must move to the frequency domain, which destroys its time-domain
sparsity.  Both properties are what the PermDNN hardware model charges
CirCNN for (Table VI / Table XI); this layer provides the functional
counterpart so accuracy comparisons use the real algorithm.

Convention: each block is circulant in its first *column* ``w``:
``C[r, c] = w[(r - c) mod k]``, so ``C @ x`` is the circular convolution
``w * x`` and FFTs diagonalize it exactly.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["BlockCirculantLinear"]


class BlockCirculantLinear(Module):
    """``y = W x + b`` with ``W`` made of ``k x k`` circulant blocks.

    Trainable parameter: ``weight[bi, bj, :]`` -- the defining first column
    of each block.  Compression ratio is ``k`` (same count as PD with
    ``p = k``), which is what makes the PermDNN-vs-CirCNN comparison
    apples-to-apples.

    Args:
        in_features: input width (padded up to a multiple of ``k``).
        out_features: output width (padded likewise).
        k: circulant block size.
        bias: include an additive bias.
        rng: generator or seed for initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        k: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if k <= 0:
            raise ValueError(f"block size k must be positive, got {k}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.k = k
        self.mb = -(-out_features // k)
        self.nb = -(-in_features // k)
        scale = np.sqrt(1.0 / max(in_features, 1))
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(self.mb, self.nb, k)), "circ_weight"
        )
        self.bias = Parameter(np.zeros(out_features), "bias") if bias else None
        self._x_blocks_f: np.ndarray | None = None

    @property
    def compression_ratio(self) -> float:
        return (self.out_features * self.in_features) / self.weight.size

    def to_dense_weight(self) -> np.ndarray:
        """Materialize the dense ``(out, in)`` block-circulant matrix."""
        k = self.k
        dense = np.zeros((self.mb * k, self.nb * k))
        r = np.arange(k)
        rows = r[:, None]
        cols = r[None, :]
        idx = (rows - cols) % k
        for bi in range(self.mb):
            for bj in range(self.nb):
                dense[bi * k : (bi + 1) * k, bj * k : (bj + 1) * k] = (
                    self.weight.value[bi, bj][idx]
                )
        return dense[: self.out_features, : self.in_features]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (B, {self.in_features}), got {x.shape}"
            )
        batch = x.shape[0]
        k = self.k
        x_pad = np.zeros((batch, self.nb * k))
        x_pad[:, : self.in_features] = x
        x_blocks = x_pad.reshape(batch, self.nb, k)
        # frequency-domain pipeline, exactly CirCNN's dataflow:
        xf = np.fft.rfft(x_blocks, axis=2)            # (B, nb, kf)
        wf = np.fft.rfft(self.weight.value, axis=2)    # (mb, nb, kf)
        self._x_blocks_f = xf
        yf = np.einsum("ijf,bjf->bif", wf, xf)         # sum over input blocks
        y = np.fft.irfft(yf, n=k, axis=2).reshape(batch, self.mb * k)
        y = y[:, : self.out_features]
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x_blocks_f is None:
            raise RuntimeError("backward called before forward")
        dy = np.asarray(dy, dtype=np.float64)
        batch = dy.shape[0]
        k = self.k
        dy_pad = np.zeros((batch, self.mb * k))
        dy_pad[:, : self.out_features] = dy
        dyf = np.fft.rfft(dy_pad.reshape(batch, self.mb, k), axis=2)
        # dL/dw = cross-correlation of dy with x  (per block, summed over B)
        dwf = np.einsum("bif,bjf->ijf", dyf, np.conj(self._x_blocks_f))
        self.weight.grad += np.fft.irfft(dwf, n=k, axis=2)
        if self.bias is not None:
            self.bias.grad += dy.sum(axis=0)
        # dL/dx = W.T dy = cross-correlation with w  (per block, sum over mb)
        wf = np.fft.rfft(self.weight.value, axis=2)
        dxf = np.einsum("ijf,bif->bjf", np.conj(wf), dyf)
        dx = np.fft.irfft(dxf, n=k, axis=2).reshape(batch, self.nb * k)
        return dx[:, : self.in_features]

    def __repr__(self) -> str:
        return (
            f"BlockCirculantLinear({self.in_features} -> "
            f"{self.out_features}, k={self.k})"
        )
