"""Token embedding lookup (for the NMT model)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Embedding"]


class Embedding(Module):
    """Lookup table mapping integer tokens to dense vectors.

    Args:
        vocab_size: number of rows.
        dim: embedding width.
        rng: generator or seed for initialization.
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Parameter(
            rng.normal(0.0, 0.1, size=(vocab_size, dim)), "embedding"
        )
        self._tokens: np.ndarray | None = None

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """``tokens`` of any integer shape -> embeddings with a trailing dim."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.min(initial=0) < 0 or tokens.max(initial=0) >= self.vocab_size:
            raise ValueError("token id out of range")
        self._tokens = tokens
        return self.weight.value[tokens]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._tokens is None:
            raise RuntimeError("backward called before forward")
        self.accumulate_grad(self._tokens, dy)
        return np.zeros_like(self._tokens, dtype=np.float64)

    def accumulate_grad(self, tokens: np.ndarray, dy: np.ndarray) -> None:
        """Stateless gradient accumulation for callers that look up the
        table several times per step (e.g. seq2seq encoder + decoder)."""
        np.add.at(
            self.weight.grad,
            np.asarray(tokens, dtype=np.int64).reshape(-1),
            np.asarray(dy, dtype=np.float64).reshape(-1, self.dim),
        )
