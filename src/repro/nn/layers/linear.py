"""Dense fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_normal
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Linear"]


class Linear(Module):
    """``y = x @ W.T + b`` with dense ``W`` of shape ``(out, in)``.

    The uncompressed baseline against which PD layers are compared.

    Args:
        in_features: input width ``n``.
        out_features: output width ``m``.
        bias: include an additive bias (the paper folds bias into ``W``;
            we keep it explicit).
        rng: generator or seed for initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            he_normal((out_features, in_features), in_features, rng), "weight"
        )
        self.bias = Parameter(np.zeros(out_features), "bias") if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (B, {self.in_features}), got {x.shape}"
            )
        self._x = x
        y = x @ self.weight.value.T
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        dy = np.asarray(dy, dtype=np.float64)
        self.weight.grad += dy.T @ self._x
        if self.bias is not None:
            self.bias.grad += dy.sum(axis=0)
        return dy @ self.weight.value

    def __repr__(self) -> str:
        return f"Linear({self.in_features} -> {self.out_features})"
