"""Convolution with block-permuted diagonal channel structure (Sec. III-C).

The PD pattern lives on the (output-channel, input-channel) plane of the
weight tensor (Fig. 2): a kernel ``F(i, j, :, :)`` exists only when channel
slot ``(i, j)`` is on a permuted diagonal.  Forward is Eqn. (4); the
training rule (Eqns. (5)-(6)) updates only existing kernels, implemented
here by projecting the dense weight gradient onto the support mask --
mathematically identical to the paper's index-wise update, and verified
against numerical gradients in the tests.

Storage accounting (``num_parameters``/``nnz``) counts only stored kernels,
i.e. ``c_out*c_in/p`` of them, even though compute uses a masked dense
tensor for vectorization.
"""

from __future__ import annotations

import numpy as np

from repro.core import BlockPermDiagTensor4D, PermutationSpec
from repro.nn.layers.conv2d import Conv2D
from repro.nn.parameter import Parameter

__all__ = ["PermDiagConv2D"]


class PermDiagConv2D(Conv2D):
    """:class:`Conv2D` whose channel plane is block-permuted diagonal.

    Args:
        in_channels, out_channels, kernel_size, stride, padding, bias:
            as in :class:`Conv2D`.
        p: channel-plane block size (= compression ratio of this layer).
        spec: permutation-parameter selection (natural indexing by default).
        rng: generator or seed for initialization.
        backend: kernel backend pinned to the PD channel plane; the layer's
            own compute is a masked dense convolution, but anything lowered
            from :meth:`to_tensor` (e.g. :mod:`repro.hw.conv_lowering`)
            inherits the choice.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        p: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        spec: PermutationSpec | None = None,
        rng: np.random.Generator | int | None = None,
        backend: str | None = None,
    ) -> None:
        super().__init__(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            bias=bias,
            rng=rng,
        )
        self.p = p
        tensor = BlockPermDiagTensor4D.random(
            out_channels,
            in_channels,
            self.kernel_size,
            p,
            spec=spec,
            rng=rng,
            backend=backend,
        )
        self._adopt_tensor(tensor)
        self._x_shape = None
        self._cols = None

    def _adopt_tensor(self, tensor: BlockPermDiagTensor4D) -> None:
        """Point the layer at ``tensor``: mask, nnz, and dense weight are
        derived once here (the tensor's plane caches the index plan)."""
        self._tensor = tensor
        self._mask = tensor.dense_mask()
        self._nnz = int(self._mask.sum())
        # Re-point the weight parameter at the PD-structured dense tensor.
        self.weight = Parameter(tensor.to_dense(), "pd_conv_weight")

    # ------------------------------------------------------------------

    @property
    def ks(self) -> np.ndarray:
        return self._tensor.ks

    @property
    def channel_mask(self) -> np.ndarray:
        return self._tensor.channel_mask()

    @property
    def nnz(self) -> int:
        """Stored scalar weights: ``~ c_out*c_in*kh*kw / p``."""
        return self._nnz

    @property
    def compression_ratio(self) -> float:
        return self._mask.size / max(self.nnz, 1)

    @classmethod
    def from_tensor(
        cls,
        tensor: BlockPermDiagTensor4D,
        stride: int = 1,
        padding: int = 0,
        bias: np.ndarray | None = None,
    ) -> "PermDiagConv2D":
        """Wrap an existing PD tensor (e.g. from approximation, Sec. III-F)."""
        c_out, c_in, kh, kw = tensor.shape
        layer = cls(
            c_in,
            c_out,
            (kh, kw),
            tensor.p,
            stride=stride,
            padding=padding,
            bias=bias is not None,
        )
        layer._adopt_tensor(tensor)
        if bias is not None:
            layer.bias.value[...] = bias
        return layer

    @property
    def backend(self) -> str | None:
        """Kernel backend pinned to the PD channel plane (``None`` = default)."""
        return self._tensor.backend

    def to_tensor(self) -> BlockPermDiagTensor4D:
        """Current weights as a compact PD tensor.

        Keeps the pinned backend *and* the channel plane's value dtype:
        lowerings quantize per-offset matrices through the plane, so a
        repacked tensor must not silently fall back to the process
        default dtype.
        """
        return BlockPermDiagTensor4D.from_dense(
            self.weight.value,
            self.p,
            ks=self._tensor.ks,
            backend=self._tensor.backend,
            value_dtype=self._tensor.plane.value_dtype,
        )

    # ------------------------------------------------------------------

    def _effective_weight(self) -> np.ndarray:
        return self.weight.value * self._mask

    def _accumulate_weight_grad(self, dw: np.ndarray) -> None:
        # Eqn. (5): "for any F(i,j,w,h) != 0" -- mask the dense gradient.
        self.weight.grad += dw * self._mask

    def __repr__(self) -> str:
        return (
            f"PermDiagConv2D({self.in_channels} -> {self.out_channels}, "
            f"k={self.kernel_size}, p={self.p}, s={self.stride}, "
            f"pad={self.padding})"
        )
