"""Dense 2-D convolution (im2col formulation)."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.init import he_normal
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Conv2D"]


class Conv2D(Module):
    """2-D convolution with weight ``(c_out, c_in, kh, kw)``.

    Uses cross-correlation (the deep-learning convention).  The uncompressed
    baseline for :class:`~repro.nn.PermDiagConv2D`.

    Args:
        in_channels: ``c_in``.
        out_channels: ``c_out``.
        kernel_size: ``(kh, kw)`` or a single int.
        stride: spatial stride.
        padding: symmetric zero padding.
        bias: include a per-channel bias.
        rng: generator or seed for initialization.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        kh, kw = kernel_size
        fan_in = in_channels * kh * kw
        self.weight = Parameter(
            he_normal((out_channels, in_channels, kh, kw), fan_in, rng), "weight"
        )
        self.bias = Parameter(np.zeros(out_channels), "bias") if bias else None
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def _effective_weight(self) -> np.ndarray:
        """Weight used for compute; PD subclass masks it here."""
        return self.weight.value

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (B, {self.in_channels}, H, W), got {x.shape}"
            )
        kh, kw = self.kernel_size
        cols, (oh, ow) = im2col(x, kh, kw, self.stride, self.padding)
        self._cols = cols
        self._x_shape = x.shape
        w2d = self._effective_weight().reshape(self.out_channels, -1)
        out = cols @ w2d.T  # (B, oh*ow, c_out)
        if self.bias is not None:
            out = out + self.bias.value
        return out.transpose(0, 2, 1).reshape(x.shape[0], self.out_channels, oh, ow)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        dy = np.asarray(dy, dtype=np.float64)
        batch, c_out, oh, ow = dy.shape
        dy2d = dy.reshape(batch, c_out, oh * ow).transpose(0, 2, 1)  # (B, P, c_out)
        dw = np.einsum("bpc,bpk->ck", dy2d, self._cols).reshape(
            self.weight.value.shape
        )
        self._accumulate_weight_grad(dw)
        if self.bias is not None:
            self.bias.grad += dy.sum(axis=(0, 2, 3))
        w2d = self._effective_weight().reshape(c_out, -1)
        dcols = dy2d @ w2d  # (B, P, c_in*kh*kw)
        kh, kw = self.kernel_size
        return col2im(dcols, self._x_shape, kh, kw, self.stride, self.padding)

    def _accumulate_weight_grad(self, dw: np.ndarray) -> None:
        """Hook for subclasses to project the gradient (PD masking)."""
        self.weight.grad += dw

    def output_shape(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for a given input size."""
        kh, kw = self.kernel_size
        oh = (height + 2 * self.padding - kh) // self.stride + 1
        ow = (width + 2 * self.padding - kw) // self.stride + 1
        return oh, ow

    def __repr__(self) -> str:
        return (
            f"Conv2D({self.in_channels} -> {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )
