"""Element-wise activation layers.

The PermDNN PE's activation unit "can be reconfigured to act as either
Rectified Linear Unit (ReLU) or hypertangent function (tanh)" (Sec. IV-C);
both are provided, plus sigmoid (needed inside LSTM gates) and leaky ReLU.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["LeakyReLU", "ReLU", "Sigmoid", "Tanh"]


class ReLU(Module):
    """``max(x, 0)``.  Its output zeros are the *dynamic input sparsity*
    the PermDNN engine skips (Fig. 5)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return dy * self._mask


class LeakyReLU(Module):
    """``x if x > 0 else alpha * x``."""

    def __init__(self, alpha: float = 0.01) -> None:
        super().__init__()
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, dy, self.alpha * dy)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return dy * (1.0 - self._y**2)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return dy * self._y * (1.0 - self._y)
