"""Batch normalization (1-D and 2-D)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["BatchNorm1D", "BatchNorm2D"]


class _BatchNorm(Module):
    """Shared batch-norm machinery; subclasses define the reduce axes."""

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), "gamma")
        self.beta = Parameter(np.zeros(num_features), "beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache = None

    _axes: tuple[int, ...] = (0,)

    def _reshape(self, stat: np.ndarray, x: np.ndarray) -> np.ndarray:
        shape = [1] * x.ndim
        shape[1] = self.num_features
        return stat.reshape(shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features on axis 1, got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=self._axes)
            var = x.var(axis=self._axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._reshape(mean, x)) * self._reshape(inv_std, x)
        self._cache = (x_hat, inv_std)
        return self._reshape(self.gamma.value, x) * x_hat + self._reshape(
            self.beta.value, x
        )

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        dy = np.asarray(dy, dtype=np.float64)
        self.gamma.grad += (dy * x_hat).sum(axis=self._axes)
        self.beta.grad += dy.sum(axis=self._axes)
        if not self.training:
            return dy * self._reshape(self.gamma.value * inv_std, dy)
        count = dy.size // self.num_features
        dxhat = dy * self._reshape(self.gamma.value, dy)
        term1 = dxhat
        term2 = self._reshape(dxhat.sum(axis=self._axes) / count, dy)
        term3 = x_hat * self._reshape(
            (dxhat * x_hat).sum(axis=self._axes) / count, dy
        )
        return (term1 - term2 - term3) * self._reshape(inv_std, dy)


class BatchNorm1D(_BatchNorm):
    """Batch norm over ``(B, C)`` inputs."""

    _axes = (0,)


class BatchNorm2D(_BatchNorm):
    """Batch norm over ``(B, C, H, W)`` inputs (per-channel statistics)."""

    _axes = (0, 2, 3)
