"""Shape adapters."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["Flatten"]


class Flatten(Module):
    """``(B, ...) -> (B, prod(...))`` -- bridges CONV and FC stacks."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return dy.reshape(self._input_shape)
