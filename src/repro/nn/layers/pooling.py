"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.module import Module

__all__ = ["AvgPool2D", "GlobalAvgPool2D", "MaxPool2D"]


class MaxPool2D(Module):
    """Non-overlapping-or-strided max pooling.

    Args:
        kernel_size: pooling window (int or pair).
        stride: defaults to ``kernel_size``.
    """

    def __init__(
        self, kernel_size: int | tuple[int, int], stride: int | None = None
    ) -> None:
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size[0]
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        batch, channels, _, _ = x.shape
        kh, kw = self.kernel_size
        # pool channel-by-channel via im2col on a channel-merged view
        merged = x.reshape(batch * channels, 1, *x.shape[2:])
        cols, (oh, ow) = im2col(merged, kh, kw, self.stride, 0)
        cols = cols.reshape(batch * channels, oh * ow, kh * kw)
        self._argmax = cols.argmax(axis=2)
        self._x_shape = x.shape
        self._out_hw = (oh, ow)
        out = cols.max(axis=2).reshape(batch, channels, oh, ow)
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._x_shape
        oh, ow = self._out_hw
        kh, kw = self.kernel_size
        dcols = np.zeros((batch * channels, oh * ow, kh * kw))
        flat_dy = dy.reshape(batch * channels, oh * ow)
        rows = np.arange(batch * channels)[:, None]
        cols_idx = np.arange(oh * ow)[None, :]
        dcols[rows, cols_idx, self._argmax] = flat_dy
        dmerged = col2im(
            dcols, (batch * channels, 1, height, width), kh, kw, self.stride, 0
        )
        return dmerged.reshape(batch, channels, height, width)


class AvgPool2D(Module):
    """Average pooling."""

    def __init__(
        self, kernel_size: int | tuple[int, int], stride: int | None = None
    ) -> None:
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size[0]
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        batch, channels, _, _ = x.shape
        kh, kw = self.kernel_size
        merged = x.reshape(batch * channels, 1, *x.shape[2:])
        cols, (oh, ow) = im2col(merged, kh, kw, self.stride, 0)
        self._x_shape = x.shape
        self._out_hw = (oh, ow)
        return cols.mean(axis=2).reshape(batch, channels, oh, ow)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._x_shape
        oh, ow = self._out_hw
        kh, kw = self.kernel_size
        share = dy.reshape(batch * channels, oh * ow, 1) / (kh * kw)
        dcols = np.broadcast_to(share, (batch * channels, oh * ow, kh * kw))
        dmerged = col2im(
            np.ascontiguousarray(dcols),
            (batch * channels, 1, height, width),
            kh,
            kw,
            self.stride,
            0,
        )
        return dmerged.reshape(batch, channels, height, width)


class GlobalAvgPool2D(Module):
    """Mean over all spatial positions: ``(B, C, H, W) -> (B, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._x_shape
        scale = 1.0 / (height * width)
        return (
            np.broadcast_to(
                dy[:, :, None, None], (batch, channels, height, width)
            )
            * scale
        )
