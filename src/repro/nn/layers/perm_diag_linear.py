"""Fully-connected layer with block-permuted diagonal weights (Sec. III-B).

This is the paper's FC layer: the ``(out, in)`` weight matrix is a
:class:`~repro.core.BlockPermutedDiagonalMatrix`, so only ``out*in/p``
weights exist, and the backward pass (Eqns. (2)-(3)) touches exactly those --
which "theoretically guarantees the trained sparse network always exhibits
block-permuted diagonal structure".
"""

from __future__ import annotations

import numpy as np

from repro.core import BlockPermutedDiagonalMatrix, PermutationSpec
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["PermDiagLinear"]


class PermDiagLinear(Module):
    """``y = W x + b`` with ``W`` block-permuted diagonal of block size ``p``.

    The trainable parameter is the packed ``(mb, nb, p)`` value array
    (the paper's ``q`` vector); permutation parameters ``k_l`` are fixed
    structure chosen at construction and never trained.

    Args:
        in_features: input width ``n``.
        out_features: output width ``m``.
        p: block size (= compression ratio of this layer).
        bias: include an additive bias.
        spec: how to pick ``k_l`` (natural indexing by default, as in all the
            paper's reported tables).
        rng: generator or seed for initialization.
        backend: pin the weight matrix to a named kernel backend
            (``"gather"``/``"csr"``/``"numba"``); ``None`` follows the
            process default (see :mod:`repro.core.backends`).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        p: int,
        bias: bool = True,
        spec: PermutationSpec | None = None,
        rng: np.random.Generator | int | None = None,
        backend: str | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.p = p
        # Training stays float64 regardless of the process value-dtype
        # default: Parameter buffers are float64, and a reduced-precision
        # matrix could not alias one (the assignment below would silently
        # copy, decoupling optimizer updates from the served weights).
        # Reduced precision is a serving-time export (with_value_dtype).
        matrix = BlockPermutedDiagonalMatrix.random(
            (out_features, in_features),
            p,
            spec=spec,
            rng=rng,
            backend=backend,
            value_dtype="float64",
        )
        self._matrix = matrix
        # Aliasing contract: Parameter and matrix share one buffer, so
        # in-place optimizer updates reach the structured matrix directly.
        self.weight = Parameter(matrix.data, "pd_weight")
        matrix.data = self.weight.value
        self.bias = Parameter(np.zeros(out_features), "bias") if bias else None
        self._x: np.ndarray | None = None

    # ------------------------------------------------------------------

    @property
    def matrix(self) -> BlockPermutedDiagonalMatrix:
        """Live view of the weight as a structured matrix."""
        return self._matrix

    @property
    def ks(self) -> np.ndarray:
        return self._matrix.ks

    @property
    def compression_ratio(self) -> float:
        return self._matrix.compression_ratio

    @classmethod
    def from_matrix(
        cls,
        matrix: BlockPermutedDiagonalMatrix,
        bias: np.ndarray | None = None,
    ) -> "PermDiagLinear":
        """Rebuild a layer around an existing structured matrix (e.g. a PD
        approximation of a pre-trained dense layer, Sec. III-F).

        The layer adopts ``matrix`` as-is -- its ``ks``, logical shape
        (including shapes not divisible by ``p``), cached index plan and
        any pinned kernel backend are taken over directly, and the
        trainable parameter aliases the matrix's storage.  No structure
        fields are mutated behind the matrix's validation.
        """
        if matrix.value_dtype != "float64":
            raise TypeError(
                f"PermDiagLinear trains through a float64 Parameter that "
                f"aliases the matrix storage; {matrix.value_dtype!r} value "
                f"storage cannot alias it (the adoption would silently copy "
                f"and optimizer updates would never reach the matrix). "
                f"Convert with matrix.with_value_dtype('float64') first -- "
                f"reduced precision is a serving-time export."
            )
        m, n = matrix.shape
        layer = cls.__new__(cls)
        Module.__init__(layer)
        layer.in_features = n
        layer.out_features = m
        layer.p = matrix.p
        layer._matrix = matrix
        layer.weight = Parameter(matrix.data, "pd_weight")
        matrix.data = layer.weight.value  # aliasing contract: same buffer
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (m,):
                raise ValueError(f"bias must have shape ({m},), got {bias.shape}")
            layer.bias = Parameter(bias.copy(), "bias")
        else:
            layer.bias = None
        layer._x = None
        return layer

    def to_dense_weight(self) -> np.ndarray:
        """Materialized dense ``(out, in)`` weight (for analysis only)."""
        return self._matrix.to_dense()

    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (B, {self.in_features}), got {x.shape}"
            )
        self._x = x
        y = self._matrix.matmat(x)
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Structure-preserving backward (Eqns. (2)-(3)).

        Only the stored diagonal values receive gradient; the input gradient
        is ``W.T @ dy`` computed through the structured transpose.
        """
        if self._x is None:
            raise RuntimeError("backward called before forward")
        dy = np.asarray(dy, dtype=np.float64)
        self.weight.grad += self._matrix.grad_data(self._x, dy)
        if self.bias is not None:
            self.bias.grad += dy.sum(axis=0)
        return self._matrix.rmatmat(dy)

    def __repr__(self) -> str:
        return (
            f"PermDiagLinear({self.in_features} -> {self.out_features}, "
            f"p={self.p})"
        )
