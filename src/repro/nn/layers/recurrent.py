"""LSTM with pluggable dense or permuted-diagonal weight matrices.

The paper's NMT benchmark (Table III) is a stacked LSTM where "one FC in
LSTM means one component weight matrix": each LSTM owns 8 weight matrices
(four gates x {input projection W, recurrent projection U}), and PermDNN
imposes the PD structure on all of them with ``p = 8``.

Weights are abstracted as *ops* so the same cell runs dense (baseline) or
block-permuted diagonal (compressed): an op exposes a stateless
``matmat(x)`` and a ``grad(x, dy) -> dx`` that accumulates its weight
gradient, which is what backpropagation-through-time needs (per-timestep
inputs are supplied by the caller).
"""

from __future__ import annotations

import numpy as np

from repro.core import BlockPermutedDiagonalMatrix, PermutationSpec
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["LSTM", "LSTMCell", "sigmoid"]

_GATES = ("i", "f", "g", "o")


class _DenseOp(Module):
    """Dense ``(out, in)`` matrix op."""

    def __init__(self, in_features: int, out_features: int, rng) -> None:
        super().__init__()
        scale = 1.0 / np.sqrt(max(in_features, 1))
        self.weight = Parameter(
            rng.uniform(-scale, scale, size=(out_features, in_features))
        )

    @property
    def stored_weights(self) -> int:
        return self.weight.size

    def matmat(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight.value.T

    def grad(self, x: np.ndarray, dy: np.ndarray) -> np.ndarray:
        self.weight.grad += dy.T @ x
        return dy @ self.weight.value


class _PDOp(Module):
    """Block-permuted diagonal matrix op (the paper's compressed FC)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        p: int,
        spec: PermutationSpec | None,
        rng,
    ) -> None:
        super().__init__()
        # Training stays float64 regardless of the process value-dtype
        # default -- a reduced-precision matrix cannot alias the float64
        # Parameter buffer below (see PermDiagLinear).
        matrix = BlockPermutedDiagonalMatrix.random(
            (out_features, in_features), p, spec=spec, rng=rng,
            value_dtype="float64",
        )
        self.matrix = matrix
        # Aliasing contract: Parameter and matrix share one buffer, so
        # in-place optimizer updates reach the structured matrix directly.
        self.weight = Parameter(matrix.data)
        matrix.data = self.weight.value

    @property
    def stored_weights(self) -> int:
        return self.matrix.nnz

    def matmat(self, x: np.ndarray) -> np.ndarray:
        return self.matrix.matmat(x)

    def grad(self, x: np.ndarray, dy: np.ndarray) -> np.ndarray:
        self.weight.grad += self.matrix.grad_data(x, dy)
        return self.matrix.rmatmat(dy)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """The cell's gate nonlinearity (clipped for exp overflow).

    Public because the serving runtime's recurrent stage must apply the
    *same* function the cell applies -- bit-identical served steps depend
    on sharing this exact expression, not a lookalike.
    """
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


_sigmoid = sigmoid


class LSTMCell(Module):
    """One LSTM step; owns the 8 weight matrices and 4 gate biases.

    Args:
        input_size: width of ``x_t``.
        hidden_size: width of ``h_t`` / ``c_t``.
        p: PD block size for all 8 matrices, or ``None`` for dense weights.
        spec: permutation selection for PD weights.
        rng: generator or seed.
        forget_bias: initial forget-gate bias (1.0 helps gradient flow).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        p: int | None = None,
        spec: PermutationSpec | None = None,
        rng: np.random.Generator | int | None = None,
        forget_bias: float = 1.0,
    ) -> None:
        super().__init__()
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.p = p

        def make_op(n_in: int) -> Module:
            if p is None:
                return _DenseOp(n_in, hidden_size, rng)
            return _PDOp(n_in, hidden_size, p, spec, rng)

        self.w_ops = {gate: make_op(input_size) for gate in _GATES}
        self.u_ops = {gate: make_op(hidden_size) for gate in _GATES}
        self.biases = {
            gate: Parameter(
                np.full(hidden_size, forget_bias if gate == "f" else 0.0)
            )
            for gate in _GATES
        }

    @property
    def weight_matrices(self) -> list[Module]:
        """The 8 component FC matrices (paper's Table III terminology)."""
        return [self.w_ops[g] for g in _GATES] + [self.u_ops[g] for g in _GATES]

    @property
    def stored_weights(self) -> int:
        """Scalar weights stored across the 8 matrices (PD counts non-zeros)."""
        return sum(op.stored_weights for op in self.weight_matrices)

    def step(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """One forward step; returns ``(h, c, cache)`` for BPTT."""
        pre = {
            gate: self.w_ops[gate].matmat(x)
            + self.u_ops[gate].matmat(h_prev)
            + self.biases[gate].value
            for gate in _GATES
        }
        i = _sigmoid(pre["i"])
        f = _sigmoid(pre["f"])
        g = np.tanh(pre["g"])
        o = _sigmoid(pre["o"])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = {
            "x": x,
            "h_prev": h_prev,
            "c_prev": c_prev,
            "i": i,
            "f": f,
            "g": g,
            "o": o,
            "tanh_c": tanh_c,
        }
        return h, c, cache

    def step_backward(
        self, dh: np.ndarray, dc: np.ndarray, cache: dict
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through one step.

        Args:
            dh: gradient w.r.t. this step's ``h``.
            dc: gradient w.r.t. this step's ``c`` flowing from the future.
            cache: the dict produced by :meth:`step`.

        Returns:
            ``(dx, dh_prev, dc_prev)``; weight/bias grads are accumulated.
        """
        i, f, g, o = cache["i"], cache["f"], cache["g"], cache["o"]
        tanh_c = cache["tanh_c"]
        dc_total = dc + dh * o * (1.0 - tanh_c**2)
        dgate = {
            "i": dc_total * g * i * (1.0 - i),
            "f": dc_total * cache["c_prev"] * f * (1.0 - f),
            "g": dc_total * i * (1.0 - g**2),
            "o": dh * tanh_c * o * (1.0 - o),
        }
        dx = np.zeros_like(cache["x"])
        dh_prev = np.zeros_like(cache["h_prev"])
        for gate in _GATES:
            dz = dgate[gate]
            dx += self.w_ops[gate].grad(cache["x"], dz)
            dh_prev += self.u_ops[gate].grad(cache["h_prev"], dz)
            self.biases[gate].grad += dz.sum(axis=0)
        dc_prev = dc_total * f
        return dx, dh_prev, dc_prev


class LSTM(Module):
    """Full-sequence LSTM: ``(B, T, input) -> (B, T, hidden)``.

    Args:
        input_size, hidden_size, p, spec, rng: see :class:`LSTMCell`.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        p: int | None = None,
        spec: PermutationSpec | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, p=p, spec=spec, rng=rng)
        self.hidden_size = hidden_size
        self._caches: list[dict] | None = None
        self._h0_external = False

    def forward(
        self,
        x: np.ndarray,
        h0: np.ndarray | None = None,
        c0: np.ndarray | None = None,
    ) -> np.ndarray:
        """Run the whole sequence; caches every step for BPTT."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, input), got shape {x.shape}")
        batch, steps, _ = x.shape
        h = np.zeros((batch, self.hidden_size)) if h0 is None else h0
        c = np.zeros((batch, self.hidden_size)) if c0 is None else c0
        self._h0_external = h0 is not None
        outputs = np.empty((batch, steps, self.hidden_size))
        self._caches = []
        for t in range(steps):
            h, c, cache = self.cell.step(x[:, t], h, c)
            outputs[:, t] = h
            self._caches.append(cache)
        self.final_state = (h, c)
        return outputs

    def backward(
        self,
        dy: np.ndarray,
        dh_final: np.ndarray | None = None,
        dc_final: np.ndarray | None = None,
    ) -> np.ndarray:
        """BPTT over the cached sequence.

        Args:
            dy: gradient w.r.t. the full output sequence ``(B, T, hidden)``.
            dh_final / dc_final: extra gradient injected at the final state
                (used when a decoder consumes the encoder's last state).

        Returns:
            Gradient w.r.t. the input sequence ``(B, T, input)``.  The
            gradients w.r.t. ``(h0, c0)`` are stored in ``self.state_grad``.
        """
        if self._caches is None:
            raise RuntimeError("backward called before forward")
        dy = np.asarray(dy, dtype=np.float64)
        batch, steps, _ = dy.shape
        dh = np.zeros((batch, self.hidden_size))
        dc = np.zeros((batch, self.hidden_size))
        if dh_final is not None:
            dh += dh_final
        if dc_final is not None:
            dc += dc_final
        dx_seq = np.empty((batch, steps, self.cell.input_size))
        for t in reversed(range(steps)):
            dh = dh + dy[:, t]
            dx, dh, dc = self.cell.step_backward(dh, dc, self._caches[t])
            dx_seq[:, t] = dx
        self.state_grad = (dh, dc)
        return dx_seq
