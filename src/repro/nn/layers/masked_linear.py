"""Dense layer with a fixed binary support mask.

Two uses:

- the *unstructured sparsification* baseline the paper argues against
  (magnitude pruning keeps an irregular support; retraining only updates
  surviving weights), and
- a cross-check for :class:`~repro.nn.PermDiagLinear`: with the PD support
  as the mask, both layers must produce identical losses and updates.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_normal
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["MaskedLinear"]


class MaskedLinear(Module):
    """``y = x @ (W * M).T + b`` with a constant boolean mask ``M``.

    Gradients are masked as well, so pruned weights stay exactly zero --
    the standard "train with fixed sparsity pattern" scheme.

    Args:
        in_features: input width.
        out_features: output width.
        mask: boolean array of shape ``(out, in)``; ``True`` keeps a weight.
        bias: include an additive bias.
        rng: generator or seed for initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        mask: np.ndarray,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (out_features, in_features):
            raise ValueError(
                f"mask shape {mask.shape} != ({out_features}, {in_features})"
            )
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.mask = mask
        fan_in = max(mask.sum(axis=1).mean(), 1.0)
        self.weight = Parameter(
            he_normal((out_features, in_features), fan_in, rng) * mask, "weight"
        )
        self.bias = Parameter(np.zeros(out_features), "bias") if bias else None
        self._x: np.ndarray | None = None

    @property
    def nnz(self) -> int:
        return int(self.mask.sum())

    @property
    def density(self) -> float:
        return self.nnz / self.mask.size

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (B, {self.in_features}), got {x.shape}"
            )
        self._x = x
        y = x @ (self.weight.value * self.mask).T
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        dy = np.asarray(dy, dtype=np.float64)
        self.weight.grad += (dy.T @ self._x) * self.mask
        if self.bias is not None:
            self.bias.grad += dy.sum(axis=0)
        return dy @ (self.weight.value * self.mask)

    def __repr__(self) -> str:
        return (
            f"MaskedLinear({self.in_features} -> {self.out_features}, "
            f"density={self.density:.3f})"
        )
