"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Zero a fraction ``rate`` of activations during training.

    Uses inverted scaling so evaluation is a no-op.  Dropout also *raises*
    dynamic activation sparsity, which is exactly what the PermDNN engine's
    zero-skipping exploits.

    Args:
        rate: drop probability in ``[0, 1)``.
        rng: generator or seed for mask sampling.
    """

    def __init__(
        self, rate: float = 0.5, rng: np.random.Generator | int | None = None
    ) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        return dy * self._mask
