"""Layer implementations."""
