"""Training loop helpers for classifier models."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module

__all__ = ["Trainer", "TrainHistory", "evaluate_classifier", "iterate_minibatches"]


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
):
    """Yield shuffled ``(x_batch, y_batch)`` pairs covering the dataset."""
    count = x.shape[0]
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, count, batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]


def evaluate_classifier(model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` on ``(x, y)``."""
    model.eval()
    correct = 0
    for start in range(0, x.shape[0], batch_size):
        logits = model.forward(x[start : start + batch_size])
        correct += int((logits.argmax(axis=1) == y[start : start + batch_size]).sum())
    model.train()
    return correct / x.shape[0]


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    losses: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else float("nan")


class Trainer:
    """Minimal epoch-driven trainer for classification models.

    Args:
        model: the network (forward/backward Module).
        optimizer: an optimizer bound to ``model.parameters()``.
        loss: a loss object with ``forward(logits, labels)`` / ``backward()``.
        batch_size: minibatch size.
        rng: shuffling generator or seed.
    """

    def __init__(
        self,
        model: Module,
        optimizer,
        loss,
        batch_size: int = 64,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss = loss
        self.batch_size = batch_size
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.rng = rng

    def train_epoch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One pass over the data; returns the mean minibatch loss."""
        self.model.train()
        losses = []
        for xb, yb in iterate_minibatches(x, y, self.batch_size, self.rng):
            logits = self.model.forward(xb)
            losses.append(self.loss.forward(logits, yb))
            self.optimizer.zero_grad()
            self.model.backward(self.loss.backward())
            self.optimizer.step()
        return float(np.mean(losses))

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: np.ndarray | None = None,
        y_test: np.ndarray | None = None,
        epochs: int = 10,
        verbose: bool = False,
    ) -> TrainHistory:
        """Train for ``epochs`` passes, tracking accuracies."""
        history = TrainHistory()
        for epoch in range(epochs):
            loss = self.train_epoch(x_train, y_train)
            history.losses.append(loss)
            history.train_accuracy.append(
                evaluate_classifier(self.model, x_train, y_train)
            )
            if x_test is not None:
                history.test_accuracy.append(
                    evaluate_classifier(self.model, x_test, y_test)
                )
            if verbose:
                test_acc = history.test_accuracy[-1] if x_test is not None else None
                print(
                    f"epoch {epoch + 1}/{epochs}: loss={loss:.4f} "
                    f"train_acc={history.train_accuracy[-1]:.4f}"
                    + (f" test_acc={test_acc:.4f}" if test_acc is not None else "")
                )
        return history
