"""Numerical gradient checking for layers (central differences).

Used throughout the test suite to verify every hand-derived backward pass,
including the paper's PD training rules (Eqns. (2)-(6)).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["check_input_gradient", "check_parameter_gradients", "max_relative_error"]


def max_relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """``max |a - b| / (|a| + |b| + floor)`` -- scale-free gradient distance.

    The ``1e-4`` floor keeps finite-difference noise (~1e-10) on exactly-zero
    gradients from registering as relative error.
    """
    denom = np.abs(a) + np.abs(b) + 1e-4
    return float((np.abs(a - b) / denom).max())


def _loss(module: Module, x: np.ndarray, seed_dy: np.ndarray) -> float:
    """Scalar probe loss ``sum(forward(x) * seed_dy)``."""
    return float((module.forward(x) * seed_dy).sum())


def check_input_gradient(
    module: Module,
    x: np.ndarray,
    eps: float = 1e-6,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """Compare analytic ``dL/dx`` against central differences.

    Returns the max relative error (should be ``< ~1e-5`` for smooth layers).
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    x = np.asarray(x, dtype=np.float64)
    y = module.forward(x)
    seed_dy = rng.normal(size=y.shape)
    module.zero_grad()
    analytic = module.backward(seed_dy)
    numeric = np.zeros_like(x)
    # Index through .flat: it writes through regardless of memory layout,
    # whereas reshape(-1) silently copies non-contiguous arrays (e.g. a
    # weight that is a sliced view of a padded buffer) and the probe
    # perturbations would never reach the module.
    for idx in range(x.size):
        orig = x.flat[idx]
        x.flat[idx] = orig + eps
        plus = _loss(module, x, seed_dy)
        x.flat[idx] = orig - eps
        minus = _loss(module, x, seed_dy)
        x.flat[idx] = orig
        numeric.flat[idx] = (plus - minus) / (2 * eps)
    # restore the cache for the original input
    module.forward(x)
    return max_relative_error(analytic, numeric)


def check_parameter_gradients(
    module: Module,
    x: np.ndarray,
    eps: float = 1e-6,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """Compare analytic parameter grads against central differences.

    Returns the worst max relative error across all parameters.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    x = np.asarray(x, dtype=np.float64)
    y = module.forward(x)
    seed_dy = rng.normal(size=y.shape)
    module.zero_grad()
    module.backward(seed_dy)
    worst = 0.0
    for param in module.parameters():
        analytic = param.grad.copy()
        numeric = np.zeros_like(param.value)
        value = param.value
        # .flat (not reshape(-1)): parameter values may be non-contiguous
        # views (a PD conv weight is a slice of a padded plane) and a
        # reshaped copy would swallow the probe perturbations.
        for idx in range(value.size):
            orig = value.flat[idx]
            value.flat[idx] = orig + eps
            plus = _loss(module, x, seed_dy)
            value.flat[idx] = orig - eps
            minus = _loss(module, x, seed_dy)
            value.flat[idx] = orig
            numeric.flat[idx] = (plus - minus) / (2 * eps)
        worst = max(worst, max_relative_error(analytic, numeric))
    module.forward(x)
    return worst
