"""Loss functions with analytic input gradients."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss:
    """Softmax cross entropy over logits.

    ``forward(logits, labels)`` returns the mean loss; ``backward()``
    returns ``dL/dlogits`` (already divided by the batch size).
    Supports an ``ignore_index`` for padded sequence positions (NMT).
    """

    def __init__(self, ignore_index: int | None = None) -> None:
        self.ignore_index = ignore_index
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._valid: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2 or labels.shape != (logits.shape[0],):
            raise ValueError(
                f"expected logits (B, C) and labels (B,), got "
                f"{logits.shape} and {labels.shape}"
            )
        if self.ignore_index is not None:
            valid = labels != self.ignore_index
        else:
            valid = np.ones(labels.shape, dtype=bool)
        if not valid.any():
            raise ValueError("no valid labels in batch")
        self._probs = softmax(logits)
        self._labels = labels
        self._valid = valid
        logp = log_softmax(logits)
        picked = logp[np.arange(labels.shape[0]), np.where(valid, labels, 0)]
        return float(-(picked * valid).sum() / valid.sum())

    def backward(self) -> np.ndarray:
        if self._probs is None:
            raise RuntimeError("backward called before forward")
        labels, valid = self._labels, self._valid
        grad = self._probs.copy()
        grad[np.arange(labels.shape[0]), np.where(valid, labels, 0)] -= 1.0
        grad[~valid] = 0.0
        return grad / valid.sum()

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error ``mean((pred - target)^2)``."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        self._diff = pred - target
        return float((self._diff**2).mean())

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


def cross_entropy_with_onehot(logits: np.ndarray, labels: np.ndarray) -> float:
    """Convenience: loss value via explicit one-hot (used in tests)."""
    probs = softmax(logits)
    targets = one_hot(labels, logits.shape[1])
    return float(-(targets * np.log(probs + 1e-12)).sum() / logits.shape[0])
