"""Weight initializers."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal"]


def he_normal(
    shape: tuple[int, ...], fan_in: float, rng: np.random.Generator
) -> np.ndarray:
    """He initialization ``N(0, sqrt(2/fan_in))`` (ReLU networks)."""
    return rng.normal(0.0, np.sqrt(2.0 / max(fan_in, 1.0)), size=shape)


def glorot_uniform(
    shape: tuple[int, ...], fan_in: float, fan_out: float, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization (tanh/sigmoid networks)."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1.0))
    return rng.uniform(-limit, limit, size=shape)
