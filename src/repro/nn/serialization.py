"""Whole-model checkpointing to ``.npz``."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["load_model", "save_model"]


def save_model(path: str, model: Module) -> None:
    """Write a model's parameters to an ``.npz`` checkpoint.

    Layer structure is not serialized -- loading requires rebuilding the
    same architecture first (the usual state-dict discipline).  PD layers
    save their packed value arrays, so checkpoints of compressed models
    are proportionally small.
    """
    np.savez_compressed(path, **model.state_dict())


def load_model(path: str, model: Module) -> Module:
    """Load an ``.npz`` checkpoint into an already-constructed model.

    Args:
        path: checkpoint produced by :func:`save_model`.
        model: a model with the exact same parameter shapes.

    Returns:
        The same model instance, for chaining.
    """
    with np.load(path) as archive:
        model.load_state_dict({key: archive[key] for key in archive.files})
    return model
