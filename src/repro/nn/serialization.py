"""Whole-model checkpointing to ``.npz``.

Checkpoints hold the flat parameter state dict; with ``include_plans=True``
they additionally embed the serialized index plan of every PD layer
(:meth:`~repro.core.BlockPermutedDiagonalMatrix.plan_bytes`), so
:func:`load_model` reattaches the cached index arithmetic instead of
recomputing it layer by layer on the first product call.

:func:`model_engine_layers` flattens a trained FC model into the
``(matrix, activation)`` pairs the hardware surfaces consume
(:meth:`~repro.hw.PermDNNEngine.run_network`, engine images, and the
sharded serving bundles of :mod:`repro.serve.bundle`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import BlockPermDiagTensor4D, BlockPermutedDiagonalMatrix
from repro.nn.layers.activations import ReLU, Tanh
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.perm_diag_conv2d import PermDiagConv2D
from repro.nn.layers.perm_diag_linear import PermDiagLinear
from repro.nn.layers.pooling import MaxPool2D
from repro.nn.layers.recurrent import LSTM, LSTMCell
from repro.nn.module import Module
from repro.nn.sequential import Sequential

__all__ = [
    "ConvStageSpec",
    "FCStageSpec",
    "RecurrentStageSpec",
    "UnsupportedLayerError",
    "load_model",
    "model_engine_layers",
    "model_stage_specs",
    "save_model",
]


class UnsupportedLayerError(ValueError):
    """A model contains a layer the requested serving surface cannot run.

    Raised (instead of an opaque ``AttributeError`` or a silent skip) when
    flattening a model for the engine or the serving runtime meets a
    module type it does not understand.  The message always names the
    offending layer's class and its position in ``model.modules()``
    order, so the failure points at the layer, not at the walker.

    Subclasses ``ValueError`` so existing ``except ValueError`` callers
    keep working.
    """

    def __init__(self, index: int, module, detail: str) -> None:
        self.index = index
        self.layer_type = type(module).__name__
        super().__init__(
            f"module {index} ({self.layer_type}) {detail}"
        )

# Checkpoint keys carrying serialized index plans (one per PD matrix, in
# module-discovery order); everything else is parameter state.
_PLAN_KEY_PREFIX = "pd_plan_"


def _pd_matrices(model: Module) -> list[BlockPermutedDiagonalMatrix]:
    """Structured matrices of the model's PD layers, in discovery order.

    Covers both FC layers (their `_matrix`) and PD convolutions (the
    channel-plane matrix of their `_tensor`).  Discovery order is
    deterministic for a fixed architecture, which is what lets plan keys
    pair back up with their layers at load time (the same state-dict
    discipline the parameters follow).
    """
    matrices = []
    for module in model.modules():
        matrix = getattr(module, "_matrix", None)
        if isinstance(matrix, BlockPermutedDiagonalMatrix):
            matrices.append(matrix)
        tensor = getattr(module, "_tensor", None)
        if isinstance(tensor, BlockPermDiagTensor4D):
            matrices.append(tensor.plane)
    return matrices


def model_engine_layers(
    model: Module,
    value_dtype: str | None = None,
    fixed_point=None,
) -> list[tuple[BlockPermutedDiagonalMatrix, str | None]]:
    """Flatten an FC model into engine-servable ``(matrix, activation)`` pairs.

    Walks the model in module order: every :class:`PermDiagLinear`
    contributes its structured matrix; a following ``ReLU``/``Tanh``
    becomes that layer's ActU mode; ``Dropout``/``Flatten`` (inference
    no-ops) and containers are skipped.  Anything else -- dense layers,
    convolutions, activations the ActU does not implement, or a PD layer
    carrying a non-zero bias (the engine computes ``W x`` only) -- raises
    :class:`UnsupportedLayerError` (a ``ValueError`` subclass naming the
    offending module's class and index) rather than silently serving the
    wrong function.

    With ``value_dtype=None`` (default) the returned matrices are the
    layers' **live** structured matrices (aliased storage, cached plans),
    so exporting or serving them reflects in-place weight updates with
    zero copies.  Passing ``value_dtype`` (``"float32"`` / ``"int16"``,
    optionally with a ``fixed_point`` format) instead converts each layer
    through
    :meth:`~repro.core.BlockPermutedDiagonalMatrix.with_value_dtype` --
    quantize-at-export: the serving copies hold reduced-precision storage
    (still sharing the training matrices' index plans) while training
    itself stays float64.
    """
    layers: list[tuple[BlockPermutedDiagonalMatrix, str | None]] = []
    pending_activation = False  # True after a PD layer, before an activation
    for index, module in enumerate(model.modules()):
        if isinstance(module, Sequential):
            continue
        if isinstance(module, PermDiagLinear):
            if module.bias is not None and np.any(module.bias.value):
                raise UnsupportedLayerError(
                    index, module,
                    "carries a non-zero bias; the engine's FC datapath "
                    "computes W x only",
                )
            layers.append((module.matrix, None))
            pending_activation = True
        elif isinstance(module, (ReLU, Tanh)):
            if not pending_activation:
                raise UnsupportedLayerError(
                    index, module,
                    "is an activation that does not follow a PD FC layer",
                )
            matrix, _ = layers[-1]
            layers[-1] = (matrix, "relu" if isinstance(module, ReLU) else "tanh")
            pending_activation = False
        elif isinstance(module, (Dropout, Flatten)):
            continue  # inference no-ops
        else:
            raise UnsupportedLayerError(
                index, module,
                "is not servable on the PD FC engine (expected "
                "PermDiagLinear + ReLU/Tanh stacks)",
            )
    if not layers:
        raise ValueError("model contains no PermDiagLinear layers")
    if value_dtype is not None:
        layers = [
            (matrix.with_value_dtype(value_dtype, fixed_point=fixed_point), act)
            for matrix, act in layers
        ]
    elif fixed_point is not None:
        raise ValueError(
            "fixed_point requires value_dtype='int16' (got value_dtype=None)"
        )
    return layers


@dataclass
class FCStageSpec:
    """One FC serving stage: a PD matrix plus its ActU mode."""

    matrix: BlockPermutedDiagonalMatrix
    activation: str | None = None


@dataclass
class ConvStageSpec:
    """One lowered-conv serving stage.

    ``tensor`` is the layer's *current* PD weight tensor
    (:meth:`~repro.nn.PermDiagConv2D.to_tensor`, repacked from the dense
    trainable weight); ``pool`` is an optional non-overlapping square
    max-pool factor fused after the activation.  The input spatial size is
    supplied at server/bundle construction, not here -- the same conv
    stack serves any spatial resolution.
    """

    tensor: BlockPermDiagTensor4D
    activation: str | None = None
    stride: int = 1
    padding: int = 0
    pool: int | None = None


@dataclass
class RecurrentStageSpec:
    """One per-timestep LSTM-cell serving stage (the cell's live weights)."""

    cell: LSTMCell


def model_stage_specs(model: Module) -> list:
    """Flatten a model into serving-stage specs: FC, conv, and recurrent.

    The staged superset of :func:`model_engine_layers`: the same walk
    rules for PD FC layers, activations, ``Dropout``/``Flatten``, plus

    - :class:`~repro.nn.PermDiagConv2D` (zero bias) becomes a
      :class:`ConvStageSpec`; a following ``ReLU``/``Tanh`` attaches as
      its activation and a following non-overlapping square
      :class:`~repro.nn.MaxPool2D` fuses as its ``pool`` factor;
    - :class:`~repro.nn.LSTM` / :class:`~repro.nn.LSTMCell` (PD weight
      ops) becomes a :class:`RecurrentStageSpec` serving one timestep:
      request layout ``[x | h_prev | c_prev] -> [h | c]``.

    Anything else raises :class:`UnsupportedLayerError` naming the
    offending module and its position in ``model.modules()`` order --
    never a silent skip.  Returned specs reference the model's **live**
    weights (FC matrices and cell gate matrices alias parameter storage;
    conv tensors are repacked from the current dense weight).
    """
    specs: list = []
    pending = None  # spec still accepting an activation
    last_conv = None  # spec still accepting a fused pool
    skip_ids: set[int] = set()
    for index, module in enumerate(model.modules()):
        if id(module) in skip_ids:
            continue
        if isinstance(module, Sequential):
            continue
        if isinstance(module, PermDiagLinear):
            if module.bias is not None and np.any(module.bias.value):
                raise UnsupportedLayerError(
                    index, module,
                    "carries a non-zero bias; the engine's FC datapath "
                    "computes W x only",
                )
            specs.append(FCStageSpec(module.matrix))
            pending, last_conv = specs[-1], None
        elif isinstance(module, PermDiagConv2D):
            if module.bias is not None and np.any(module.bias.value):
                raise UnsupportedLayerError(
                    index, module,
                    "carries a non-zero bias; the lowered conv stage "
                    "accumulates W * x only",
                )
            specs.append(ConvStageSpec(
                module.to_tensor(),
                stride=module.stride,
                padding=module.padding,
            ))
            pending = last_conv = specs[-1]
        elif isinstance(module, (ReLU, Tanh)):
            if pending is None:
                raise UnsupportedLayerError(
                    index, module,
                    "is an activation that does not follow a PD FC or "
                    "conv layer",
                )
            pending.activation = "relu" if isinstance(module, ReLU) else "tanh"
            pending = None
        elif isinstance(module, MaxPool2D):
            kh, kw = module.kernel_size
            if (
                last_conv is None
                or last_conv.pool is not None
                or kh != kw
                or module.stride != kh
            ):
                raise UnsupportedLayerError(
                    index, module,
                    "must directly follow a conv stage as a "
                    "non-overlapping square pool (stride == kernel)",
                )
            last_conv.pool = kh
            pending = last_conv = None
        elif isinstance(module, (Dropout, Flatten)):
            continue  # inference no-ops (conv stages emit channel-major flat)
        elif isinstance(module, (LSTM, LSTMCell)):
            cell = module.cell if isinstance(module, LSTM) else module
            if any(
                not isinstance(
                    getattr(op, "matrix", None), BlockPermutedDiagonalMatrix
                )
                for op in cell.weight_matrices
            ):
                raise UnsupportedLayerError(
                    index, module,
                    "uses dense weight ops; the recurrent stage serves "
                    "PD gate matrices only (construct with p set)",
                )
            # Consume the whole recurrent subtree as one stage.
            skip_ids.update(id(sub) for sub in module.modules())
            specs.append(RecurrentStageSpec(cell))
            pending = last_conv = None
        else:
            raise UnsupportedLayerError(
                index, module,
                "is not servable (expected PermDiagLinear, PermDiagConv2D "
                "+ ReLU/Tanh/MaxPool2D, or PD LSTM stacks)",
            )
    if not specs:
        raise ValueError("model contains no servable PD stages")
    return specs


def save_model(path: str, model: Module, include_plans: bool = False) -> None:
    """Write a model's parameters to an ``.npz`` checkpoint.

    Layer structure is not serialized -- loading requires rebuilding the
    same architecture first (the usual state-dict discipline).  PD layers
    save their packed value arrays, so checkpoints of compressed models
    are proportionally small.

    Args:
        path: target checkpoint path.
        model: the model to snapshot.
        include_plans: also embed each PD layer's warmed index plan, so
            :func:`load_model` restores it without index recomputation
            (bigger file, faster first step after load).
    """
    state = model.state_dict()
    if include_plans:
        for idx, matrix in enumerate(_pd_matrices(model)):
            state[f"{_PLAN_KEY_PREFIX}{idx}"] = np.frombuffer(
                matrix.plan_bytes(), dtype=np.uint8
            )
    np.savez_compressed(path, **state)


def load_model(path: str, model: Module) -> Module:
    """Load an ``.npz`` checkpoint into an already-constructed model.

    Embedded index plans (see :func:`save_model`) are reattached to the
    matching PD layers via
    :meth:`~repro.core.BlockPermutedDiagonalMatrix.adopt_plan`, which
    validates the structure and raises ``ValueError`` on mismatch.

    Args:
        path: checkpoint produced by :func:`save_model`.
        model: a model with the exact same parameter shapes.

    Returns:
        The same model instance, for chaining.
    """
    with np.load(path) as archive:
        params = {
            key: archive[key]
            for key in archive.files
            if not key.startswith(_PLAN_KEY_PREFIX)
        }
        plans = {
            key: archive[key].tobytes()
            for key in archive.files
            if key.startswith(_PLAN_KEY_PREFIX)
        }
    model.load_state_dict(params)
    if plans:
        for idx, matrix in enumerate(_pd_matrices(model)):
            blob = plans.get(f"{_PLAN_KEY_PREFIX}{idx}")
            if blob is not None:
                matrix.adopt_plan(blob)
    return model
