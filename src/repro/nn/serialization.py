"""Whole-model checkpointing to ``.npz``.

Checkpoints hold the flat parameter state dict; with ``include_plans=True``
they additionally embed the serialized index plan of every PD layer
(:meth:`~repro.core.BlockPermutedDiagonalMatrix.plan_bytes`), so
:func:`load_model` reattaches the cached index arithmetic instead of
recomputing it layer by layer on the first product call.
"""

from __future__ import annotations

import numpy as np

from repro.core import BlockPermDiagTensor4D, BlockPermutedDiagonalMatrix
from repro.nn.module import Module

__all__ = ["load_model", "save_model"]

# Checkpoint keys carrying serialized index plans (one per PD matrix, in
# module-discovery order); everything else is parameter state.
_PLAN_KEY_PREFIX = "pd_plan_"


def _pd_matrices(model: Module) -> list[BlockPermutedDiagonalMatrix]:
    """Structured matrices of the model's PD layers, in discovery order.

    Covers both FC layers (their `_matrix`) and PD convolutions (the
    channel-plane matrix of their `_tensor`).  Discovery order is
    deterministic for a fixed architecture, which is what lets plan keys
    pair back up with their layers at load time (the same state-dict
    discipline the parameters follow).
    """
    matrices = []
    for module in model.modules():
        matrix = getattr(module, "_matrix", None)
        if isinstance(matrix, BlockPermutedDiagonalMatrix):
            matrices.append(matrix)
        tensor = getattr(module, "_tensor", None)
        if isinstance(tensor, BlockPermDiagTensor4D):
            matrices.append(tensor.plane)
    return matrices


def save_model(path: str, model: Module, include_plans: bool = False) -> None:
    """Write a model's parameters to an ``.npz`` checkpoint.

    Layer structure is not serialized -- loading requires rebuilding the
    same architecture first (the usual state-dict discipline).  PD layers
    save their packed value arrays, so checkpoints of compressed models
    are proportionally small.

    Args:
        path: target checkpoint path.
        model: the model to snapshot.
        include_plans: also embed each PD layer's warmed index plan, so
            :func:`load_model` restores it without index recomputation
            (bigger file, faster first step after load).
    """
    state = model.state_dict()
    if include_plans:
        for idx, matrix in enumerate(_pd_matrices(model)):
            state[f"{_PLAN_KEY_PREFIX}{idx}"] = np.frombuffer(
                matrix.plan_bytes(), dtype=np.uint8
            )
    np.savez_compressed(path, **state)


def load_model(path: str, model: Module) -> Module:
    """Load an ``.npz`` checkpoint into an already-constructed model.

    Embedded index plans (see :func:`save_model`) are reattached to the
    matching PD layers via
    :meth:`~repro.core.BlockPermutedDiagonalMatrix.adopt_plan`, which
    validates the structure and raises ``ValueError`` on mismatch.

    Args:
        path: checkpoint produced by :func:`save_model`.
        model: a model with the exact same parameter shapes.

    Returns:
        The same model instance, for chaining.
    """
    with np.load(path) as archive:
        params = {
            key: archive[key]
            for key in archive.files
            if not key.startswith(_PLAN_KEY_PREFIX)
        }
        plans = {
            key: archive[key].tobytes()
            for key in archive.files
            if key.startswith(_PLAN_KEY_PREFIX)
        }
    model.load_state_dict(params)
    if plans:
        for idx, matrix in enumerate(_pd_matrices(model)):
            blob = plans.get(f"{_PLAN_KEY_PREFIX}{idx}")
            if blob is not None:
                matrix.adopt_plan(blob)
    return model
