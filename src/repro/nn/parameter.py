"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable array with an accumulated gradient.

    Attributes:
        value: the parameter array (updated in place by optimizers).
        grad: accumulated gradient of the loss w.r.t. ``value``; reset with
            :meth:`zero_grad` (layers *add* into it, so shared parameters
            and backpropagation-through-time accumulate correctly).
        name: optional identifier for debugging / state dicts.
    """

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Parameter{label}(shape={self.value.shape})"
