"""Sequential container."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Chain of layers executed in order; backward runs in reverse."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"
