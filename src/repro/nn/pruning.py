"""Magnitude pruning: the unstructured-sparsification baseline (Sec. II-B).

This is the EIE-style compression pipeline the paper argues against:
prune the smallest weights of a pre-trained dense layer, then retrain with
the surviving (irregular) support fixed.  The resulting sparse matrices feed
the EIE hardware simulator, which charges them for index storage and
per-column load imbalance.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.linear import Linear
from repro.nn.layers.masked_linear import MaskedLinear

__all__ = [
    "magnitude_mask",
    "prune_linear",
    "layerwise_density",
]


def magnitude_mask(weight: np.ndarray, density: float) -> np.ndarray:
    """Boolean mask keeping the ``density`` fraction of largest-|w| entries.

    Args:
        weight: dense weight array (any shape).
        density: fraction of entries to keep, in ``(0, 1]``.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    keep = max(1, int(round(weight.size * density)))
    if keep >= weight.size:
        return np.ones(weight.shape, dtype=bool)
    threshold = np.partition(np.abs(weight).ravel(), weight.size - keep)[
        weight.size - keep
    ]
    mask = np.abs(weight) >= threshold
    # Tie-break: if the threshold value is repeated we may keep too many;
    # drop arbitrary ties to hit the exact count (keeps accounting honest).
    excess = int(mask.sum()) - keep
    if excess > 0:
        tie_positions = np.flatnonzero((np.abs(weight) == threshold).ravel())
        flat = mask.ravel()
        flat[tie_positions[:excess]] = False
        mask = flat.reshape(weight.shape)
    return mask


def prune_linear(layer: Linear, density: float) -> MaskedLinear:
    """Convert a trained dense layer into a magnitude-pruned masked layer.

    The surviving weights keep their trained values (the usual
    prune-then-retrain starting point).
    """
    mask = magnitude_mask(layer.weight.value, density)
    pruned = MaskedLinear(
        layer.in_features,
        layer.out_features,
        mask,
        bias=layer.bias is not None,
    )
    pruned.weight.value[...] = layer.weight.value * mask
    if layer.bias is not None:
        pruned.bias.value[...] = layer.bias.value
    return pruned


def layerwise_density(masks: list[np.ndarray]) -> float:
    """Overall density across several pruned layers."""
    kept = sum(int(m.sum()) for m in masks)
    total = sum(m.size for m in masks)
    return kept / total
