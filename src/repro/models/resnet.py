"""ResNet-20 / Wide ResNet with PD convolutions (Tables IV and V).

Topology follows He et al.: a stem conv, three stages of basic residual
blocks (widths w, 2w, 4w; stride-2 downsampling between stages), global
average pooling and a linear classifier.  The paper's block-size policy:

- ResNet-20 (Table IV): ``p = 2`` for 3x3 convs, ``p = 1`` (dense) for the
  1x1 shortcut convs;
- Wide ResNet-48, widening factor 8 (Table V): ``p = 4`` for 3x3 convs,
  ``p = 1`` for 1x1 convs.

A ``width_scale`` divisor shrinks channel counts for offline training while
preserving the topology and the p-policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import (
    BatchNorm2D,
    Conv2D,
    GlobalAvgPool2D,
    Linear,
    PermDiagConv2D,
    ReLU,
    Sequential,
)
from repro.nn.module import Module

__all__ = ["BasicBlock", "PDPolicy", "RESNET20_POLICY", "WRN48_POLICY", "build_resnet"]


@dataclass(frozen=True)
class PDPolicy:
    """Per-layer-kind block sizes (the paper's per-group policy).

    Attributes:
        conv3x3_p: block size for 3x3 convolutions (1 = dense).
        conv1x1_p: block size for 1x1 (shortcut) convolutions.
    """

    conv3x3_p: int = 1
    conv1x1_p: int = 1


RESNET20_POLICY = PDPolicy(conv3x3_p=2, conv1x1_p=1)
WRN48_POLICY = PDPolicy(conv3x3_p=4, conv1x1_p=1)


def _conv(
    n_in: int,
    n_out: int,
    kernel: int,
    stride: int,
    policy: PDPolicy,
    rng: np.random.Generator,
) -> Module:
    p = policy.conv3x3_p if kernel == 3 else policy.conv1x1_p
    pad = 1 if kernel == 3 else 0
    if p > 1 and n_in >= p and n_out >= p:
        return PermDiagConv2D(
            n_in, n_out, kernel, p=p, stride=stride, padding=pad, bias=False, rng=rng
        )
    return Conv2D(n_in, n_out, kernel, stride=stride, padding=pad, bias=False, rng=rng)


class BasicBlock(Module):
    """Standard pre-activation-free basic residual block (2 x 3x3 conv)."""

    def __init__(
        self,
        n_in: int,
        n_out: int,
        stride: int,
        policy: PDPolicy,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.conv1 = _conv(n_in, n_out, 3, stride, policy, rng)
        self.bn1 = BatchNorm2D(n_out)
        self.relu1 = ReLU()
        self.conv2 = _conv(n_out, n_out, 3, 1, policy, rng)
        self.bn2 = BatchNorm2D(n_out)
        self.relu2 = ReLU()
        if stride != 1 or n_in != n_out:
            self.shortcut_conv = _conv(n_in, n_out, 1, stride, policy, rng)
            self.shortcut_bn = BatchNorm2D(n_out)
        else:
            self.shortcut_conv = None
            self.shortcut_bn = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.relu1.forward(self.bn1.forward(self.conv1.forward(x)))
        out = self.bn2.forward(self.conv2.forward(out))
        if self.shortcut_conv is not None:
            residual = self.shortcut_bn.forward(self.shortcut_conv.forward(x))
        else:
            residual = x
        return self.relu2.forward(out + residual)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dsum = self.relu2.backward(dy)
        dmain = self.conv1.backward(
            self.relu1.backward(
                self.bn1.backward(
                    self.conv2.backward(self.bn2.backward(dsum))
                )
            )
        )
        if self.shortcut_conv is not None:
            dres = self.shortcut_conv.backward(self.shortcut_bn.backward(dsum))
        else:
            dres = dsum
        return dmain + dres


class _ResNet(Module):
    """Stem + stages + pool + classifier, with explicit backward."""

    def __init__(self, layers: list[Module]) -> None:
        super().__init__()
        self.layers = layers

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy


def build_resnet(
    depth: int = 20,
    policy: PDPolicy = RESNET20_POLICY,
    base_width: int = 16,
    widen_factor: int = 1,
    num_classes: int = 10,
    rng: np.random.Generator | int | None = 0,
) -> _ResNet:
    """Build a (Wide) ResNet for 32x32 inputs.

    Args:
        depth: total conv depth; must be ``6n + 2`` (20, 32, 44, ... 48 is
            handled as the nearest valid configuration ``6*8 - ... `` -- for
            WRN-48 the paper's depth maps to ``n = 7`` plus the stem, i.e.
            ``depth=44`` blocks; any ``6n+2`` depth is accepted).
        policy: PD block-size policy (``RESNET20_POLICY`` / ``WRN48_POLICY``).
        base_width: stage-1 channel count (16 in ResNet-20).
        widen_factor: WRN widening multiplier (8 for the paper's WRN-48).
        num_classes: classifier width.
        rng: seed for weight init.
    """
    if (depth - 2) % 6 != 0:
        raise ValueError(f"depth must be 6n+2, got {depth}")
    blocks_per_stage = (depth - 2) // 6
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    widths = [base_width * widen_factor * (2**stage) for stage in range(3)]
    layers: list[Module] = [
        Conv2D(3, widths[0], 3, padding=1, bias=False, rng=rng),
        BatchNorm2D(widths[0]),
        ReLU(),
    ]
    n_in = widths[0]
    for stage, width in enumerate(widths):
        for block in range(blocks_per_stage):
            stride = 2 if (stage > 0 and block == 0) else 1
            layers.append(BasicBlock(n_in, width, stride, policy, rng))
            n_in = width
    layers.append(GlobalAvgPool2D())
    layers.append(Linear(n_in, num_classes, rng=rng))
    return _ResNet(layers)
