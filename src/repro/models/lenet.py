"""LeNet-5 for the pre-trained-model compression experiment (Sec. III-F).

The paper converts a dense pre-trained LeNet-5 to PD format with ``p = 4``
for CONV layers and ``p = 100`` for FC layers, fine-tunes, and reports
99.06% accuracy at 40x compression.  Block sizes here are configurable so
the same flow runs at our (reduced) scale.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    PermDiagConv2D,
    PermDiagLinear,
    ReLU,
    Sequential,
)

__all__ = ["build_lenet5"]


def build_lenet5(
    conv_p: int | None = None,
    fc_p: int | None = None,
    image_size: int = 28,
    num_classes: int = 10,
    widths: tuple[int, int, int, int] = (6, 16, 120, 84),
    rng: np.random.Generator | int | None = 0,
) -> Sequential:
    """Build LeNet-5 (two conv+pool stages, three FC layers).

    Args:
        conv_p: PD block size for CONV layers (``None`` = dense).  The first
            conv keeps a dense channel plane regardless -- with one input
            channel there is nothing to compress (c_in/p < 1).
        fc_p: PD block size for the two hidden FC layers (``None`` = dense);
            the classifier output layer stays dense as in the paper's models.
        image_size: square input size (28 = MNIST).
        num_classes: classifier width.
        widths: channel/feature widths (conv1, conv2, fc1, fc2).
        rng: seed for weight init.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    c1, c2, f1, f2 = widths

    def conv(n_in: int, n_out: int, use_pd: bool) -> Sequential | Conv2D:
        if use_pd and conv_p is not None and conv_p > 1:
            return PermDiagConv2D(n_in, n_out, 5, p=conv_p, padding=2, rng=rng)
        return Conv2D(n_in, n_out, 5, padding=2, rng=rng)

    def dense(n_in: int, n_out: int, use_pd: bool):
        if use_pd and fc_p is not None and fc_p > 1:
            return PermDiagLinear(n_in, n_out, p=fc_p, rng=rng)
        return Linear(n_in, n_out, rng=rng)

    spatial = image_size // 4  # two 2x2 pools
    return Sequential(
        conv(1, c1, use_pd=False),  # single input channel: dense plane
        ReLU(),
        MaxPool2D(2),
        conv(c1, c2, use_pd=True),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        dense(c2 * spatial * spatial, f1, use_pd=True),
        ReLU(),
        dense(f1, f2, use_pd=True),
        ReLU(),
        dense(f2, num_classes, use_pd=False),
    )
