"""Reference networks matching the paper's evaluation workloads."""

from repro.models.alexnet_fc import (
    ALEXNET_FC_SHAPES,
    ALEXNET_PD_BLOCKS,
    build_alexnet_fc,
)
from repro.models.lenet import build_lenet5
from repro.models.resnet import RESNET20_POLICY, WRN48_POLICY, build_resnet
from repro.models.nmt import Seq2SeqNMT

__all__ = [
    "ALEXNET_FC_SHAPES",
    "ALEXNET_PD_BLOCKS",
    "RESNET20_POLICY",
    "Seq2SeqNMT",
    "WRN48_POLICY",
    "build_alexnet_fc",
    "build_lenet5",
    "build_resnet",
]
