"""AlexNet's FC stack (FC6-FC7-FC8), dense or PD-compressed (Table II).

The paper compresses AlexNet's three FC layers with block sizes
``p = 10, 10, 4``.  At paper scale the shapes are 9216 -> 4096 -> 4096 ->
1000; training that offline is infeasible, so :func:`build_alexnet_fc`
takes a ``scale`` divisor producing a proportionally shrunk stack for
accuracy experiments while storage accounting is always available at any
scale (it is an exact function of the shapes).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Dropout, Linear, PermDiagLinear, ReLU, Sequential

__all__ = ["ALEXNET_FC_SHAPES", "ALEXNET_PD_BLOCKS", "build_alexnet_fc"]

# (in_features, out_features) of FC6, FC7, FC8 at paper scale.
ALEXNET_FC_SHAPES = ((9216, 4096), (4096, 4096), (4096, 1000))

# Table II block sizes for FC6, FC7, FC8.
ALEXNET_PD_BLOCKS = (10, 10, 4)


def build_alexnet_fc(
    p_values: tuple[int, ...] | None = ALEXNET_PD_BLOCKS,
    scale: int = 1,
    num_classes: int | None = None,
    dropout: float = 0.5,
    rng: np.random.Generator | int | None = 0,
) -> Sequential:
    """Build the AlexNet FC stack.

    Args:
        p_values: PD block sizes per FC layer, or ``None`` for a dense stack.
        scale: divisor on every width (1 = paper size; 16 is trainable on a
            laptop).  Widths are rounded up to stay divisible by the block
            sizes where possible.
        num_classes: override the output width (defaults to 1000/scale).
        dropout: dropout rate between FC layers (AlexNet uses 0.5).
        rng: seed for weight init.

    Returns:
        A Sequential ``[FC6, ReLU, Drop, FC7, ReLU, Drop, FC8]``.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    if p_values is not None and len(p_values) != len(ALEXNET_FC_SHAPES):
        raise ValueError("need one block size per FC layer")
    widths = []
    for idx, (n_in, n_out) in enumerate(ALEXNET_FC_SHAPES):
        n_in_s = max(n_in // scale, 8)
        n_out_s = max(n_out // scale, 8)
        if idx == len(ALEXNET_FC_SHAPES) - 1 and num_classes is not None:
            n_out_s = num_classes
        widths.append((n_in_s, n_out_s))
    # chain widths: the output of FC6 feeds FC7 etc.
    widths[1] = (widths[0][1], widths[1][1])
    widths[2] = (widths[1][1], widths[2][1])

    model = Sequential()
    for idx, (n_in, n_out) in enumerate(widths):
        if p_values is None:
            model.append(Linear(n_in, n_out, rng=rng))
        else:
            model.append(PermDiagLinear(n_in, n_out, p=p_values[idx], rng=rng))
        if idx < len(widths) - 1:
            model.append(ReLU())
            if dropout > 0:
                model.append(Dropout(dropout, rng=rng))
    return model
