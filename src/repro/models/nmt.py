"""Stacked-LSTM seq2seq for the NMT benchmark (Table III).

Mirrors the Stanford NMT structure the paper compresses: a stack of 4 LSTMs
("32-FC-layer LSTMs": 4 LSTMs x 8 component weight matrices), arranged as a
2-layer encoder + 2-layer decoder with greedy decoding.  With ``p = 8`` on
every LSTM weight matrix the model matches the paper's compression setting;
``p = None`` gives the dense baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core import PermutationSpec
from repro.nn import LSTM, CrossEntropyLoss, Embedding, Linear
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm

__all__ = ["Seq2SeqNMT"]


class Seq2SeqNMT(Module):
    """Encoder-decoder translation model with optional PD-compressed LSTMs.

    Args:
        vocab_size: shared source/target vocabulary size.
        embed_dim: embedding width.
        hidden: LSTM hidden width.
        p: PD block size applied to all LSTM weight matrices (None = dense).
        num_layers: LSTM layers in the encoder and in the decoder (2 + 2
            gives the paper's 4 LSTMs).
        spec: permutation parameter selection.
        rng: seed for weight init.
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 32,
        hidden: int = 64,
        p: int | None = 8,
        num_layers: int = 2,
        spec: PermutationSpec | None = None,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        super().__init__()
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.vocab_size = vocab_size
        self.hidden = hidden
        self.num_layers = num_layers
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng)
        self.encoder = [
            LSTM(embed_dim if idx == 0 else hidden, hidden, p=p, spec=spec, rng=rng)
            for idx in range(num_layers)
        ]
        self.decoder = [
            LSTM(embed_dim if idx == 0 else hidden, hidden, p=p, spec=spec, rng=rng)
            for idx in range(num_layers)
        ]
        self.projection = Linear(hidden, vocab_size, rng=rng)

    @property
    def lstms(self) -> list[LSTM]:
        """All 4 LSTMs (paper: '4 LSTMs with 8 FC weight matrices each')."""
        return self.encoder + self.decoder

    @property
    def num_weight_matrices(self) -> int:
        """Total component FC matrices across the stack (32 in Table III)."""
        return sum(len(lstm.cell.weight_matrices) for lstm in self.lstms)

    # ------------------------------------------------------------------

    def _encode(self, src: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Run the encoder; returns final (h, c) per layer."""
        h = self.embedding.forward(src)
        states = []
        for lstm in self.encoder:
            h = lstm.forward(h)
            states.append(lstm.final_state)
        return states

    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> np.ndarray:
        """Teacher-forced forward: logits ``(B, T, vocab)``."""
        states = self._encode(src)
        h = self.embedding.forward(tgt_in)
        self._src_tokens = src
        self._tgt_tokens = tgt_in
        for lstm, (h0, c0) in zip(self.decoder, states):
            h = lstm.forward(h, h0=h0, c0=c0)
        batch, steps, _ = h.shape
        self._dec_shape = h.shape
        logits = self.projection.forward(h.reshape(batch * steps, self.hidden))
        return logits.reshape(batch, steps, self.vocab_size)

    def backward(self, dlogits: np.ndarray) -> None:
        """Backward through decoder, encoder bridge, encoder and embeddings."""
        batch, steps, _ = dlogits.shape
        dh = self.projection.backward(
            dlogits.reshape(batch * steps, self.vocab_size)
        ).reshape(self._dec_shape)
        state_grads = []
        for lstm in reversed(self.decoder):
            dh = lstm.backward(dh)
            state_grads.append(lstm.state_grad)
        state_grads.reverse()
        # decoder input embedding gradient
        self.embedding.accumulate_grad(self._tgt_tokens, dh)
        # encoder: inject the decoder's initial-state gradients at each layer
        denc = np.zeros(
            (batch, self._src_tokens.shape[1], self.encoder[-1].hidden_size)
        )
        for lstm, (dh0, dc0) in zip(reversed(self.encoder), reversed(state_grads)):
            denc = lstm.backward(denc, dh_final=dh0, dc_final=dc0)
        self.embedding.accumulate_grad(self._src_tokens, denc)

    # ------------------------------------------------------------------

    def greedy_decode(self, src: np.ndarray, bos: int, eos: int, max_len: int = 20) -> list[list[int]]:
        """Greedy translation of a batch of source sentences."""
        states = self._encode(src)
        batch = src.shape[0]
        layer_states = [(h0.copy(), c0.copy()) for h0, c0 in states]
        tokens = np.full(batch, bos, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        outputs: list[list[int]] = [[] for _ in range(batch)]
        for _ in range(max_len):
            h = self.embedding.forward(tokens)  # (B, embed)
            for idx, lstm in enumerate(self.decoder):
                h_prev, c_prev = layer_states[idx]
                h, c, _ = lstm.cell.step(h, h_prev, c_prev)
                layer_states[idx] = (h, c)
            logits = self.projection.forward(h)
            tokens = logits.argmax(axis=1)
            for row in range(batch):
                if not finished[row]:
                    if tokens[row] == eos:
                        finished[row] = True
                    else:
                        outputs[row].append(int(tokens[row]))
            if finished.all():
                break
        return outputs

    # ------------------------------------------------------------------

    def train_batch(
        self,
        src: np.ndarray,
        tgt_in: np.ndarray,
        tgt_out: np.ndarray,
        optimizer: Adam,
        loss_fn: CrossEntropyLoss,
        max_grad_norm: float = 5.0,
    ) -> float:
        """One teacher-forced training step; returns the batch loss."""
        logits = self.forward(src, tgt_in)
        batch, steps, vocab = logits.shape
        loss = loss_fn.forward(logits.reshape(batch * steps, vocab), tgt_out.reshape(-1))
        optimizer.zero_grad()
        self.backward(loss_fn.backward().reshape(batch, steps, vocab))
        clip_grad_norm(self.parameters(), max_grad_norm)
        optimizer.step()
        return loss
