"""Model-level storage accounting (drives Tables II-V).

Walks a model's layers and counts *stored* weights per representation:
dense layers store every entry; PD layers store ``1/p`` of them;
masked (pruned) layers store their surviving entries **plus** EIE-style
index bits; circulant layers store one vector per block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.layers.circulant_linear import BlockCirculantLinear
from repro.nn.layers.conv2d import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.layers.masked_linear import MaskedLinear
from repro.nn.layers.perm_diag_conv2d import PermDiagConv2D
from repro.nn.layers.perm_diag_linear import PermDiagLinear
from repro.nn.layers.recurrent import LSTM, LSTMCell, _DenseOp, _PDOp
from repro.nn.module import Module

__all__ = ["LayerStorage", "ModelStorageReport", "model_storage_report"]


@dataclass(frozen=True)
class LayerStorage:
    """Storage accounting for one weight-bearing layer.

    Attributes:
        name: layer description.
        dense_weights: weight count of the uncompressed equivalent.
        stored_weights: weights actually kept by the representation.
        index_bits_per_weight: index overhead (EIE-style pruned layers).
    """

    name: str
    dense_weights: int
    stored_weights: int
    index_bits_per_weight: float = 0.0

    def bits(self, weight_bits: int) -> float:
        return self.stored_weights * (weight_bits + self.index_bits_per_weight)

    @property
    def compression_ratio(self) -> float:
        return self.dense_weights / max(self.stored_weights, 1)


@dataclass
class ModelStorageReport:
    """Aggregate of per-layer storage records."""

    layers: list[LayerStorage]

    @property
    def dense_weights(self) -> int:
        return sum(layer.dense_weights for layer in self.layers)

    @property
    def stored_weights(self) -> int:
        return sum(layer.stored_weights for layer in self.layers)

    @property
    def compression_ratio(self) -> float:
        return self.dense_weights / max(self.stored_weights, 1)

    def megabytes(self, weight_bits: int = 32) -> float:
        """Total model size in MB at the given stored precision."""
        return sum(layer.bits(weight_bits) for layer in self.layers) / 8 / 1e6

    def dense_megabytes(self, weight_bits: int = 32) -> float:
        """Uncompressed model size in MB."""
        return self.dense_weights * weight_bits / 8 / 1e6

    def size_ratio(self, dense_bits: int = 32, weight_bits: int = 32) -> float:
        """Storage ratio dense/compressed at the given precisions
        (this is what Tables II-V call "compression": 16-bit PD doubles it)."""
        return self.dense_megabytes(dense_bits) / self.megabytes(weight_bits)


def _storage_for_layer(layer: Module, eie_index_bits: float) -> LayerStorage | None:
    if isinstance(layer, PermDiagLinear):
        dense = layer.out_features * layer.in_features
        return LayerStorage(repr(layer), dense, layer.matrix.nnz)
    if isinstance(layer, MaskedLinear):
        dense = layer.out_features * layer.in_features
        return LayerStorage(repr(layer), dense, layer.nnz, eie_index_bits)
    if isinstance(layer, BlockCirculantLinear):
        dense = layer.out_features * layer.in_features
        return LayerStorage(repr(layer), dense, layer.weight.size)
    if isinstance(layer, Linear):
        dense = layer.out_features * layer.in_features
        return LayerStorage(repr(layer), dense, dense)
    if isinstance(layer, PermDiagConv2D):
        dense = layer.weight.size
        return LayerStorage(repr(layer), dense, layer.nnz)
    if isinstance(layer, Conv2D):
        dense = layer.weight.size
        return LayerStorage(repr(layer), dense, dense)
    return None


def model_storage_report(
    model: Module, eie_index_bits: float = 4.0
) -> ModelStorageReport:
    """Account the weight storage of every weight-bearing layer in ``model``.

    Args:
        model: any Module tree (Sequential, custom models, LSTMs...).
        eie_index_bits: per-weight index overhead charged to unstructured
            sparse (pruned) layers -- 4 bits in EIE.
    """
    records: list[LayerStorage] = []
    for module in model.modules():
        if isinstance(module, LSTMCell):
            for idx, op in enumerate(module.weight_matrices):
                if isinstance(op, _PDOp):
                    dense = op.matrix.shape[0] * op.matrix.shape[1]
                    records.append(
                        LayerStorage(f"LSTM.W[{idx}] (PD)", dense, op.matrix.nnz)
                    )
                elif isinstance(op, _DenseOp):
                    records.append(
                        LayerStorage(
                            f"LSTM.W[{idx}] (dense)",
                            op.weight.size,
                            op.weight.size,
                        )
                    )
            continue
        record = _storage_for_layer(module, eie_index_bits)
        if record is not None:
            records.append(record)
    return ModelStorageReport(records)
