"""BLEU score (Papineni et al., 2002) for the NMT experiment (Table III).

Corpus-level BLEU with modified n-gram precision (n = 1..4 by default),
geometric mean, brevity penalty, and optional add-one smoothing for short
synthetic sentences.  Scores are reported on the 0-100 scale the paper uses
("23.3 BLEU points").
"""

from __future__ import annotations

import math
from collections import Counter

__all__ = ["corpus_bleu", "sentence_bleu"]


def _ngrams(tokens: list, order: int) -> Counter:
    return Counter(
        tuple(tokens[idx : idx + order]) for idx in range(len(tokens) - order + 1)
    )


def corpus_bleu(
    references: list[list],
    hypotheses: list[list],
    max_order: int = 4,
    smooth: bool = True,
) -> float:
    """Corpus BLEU on the 0-100 scale.

    Args:
        references: one reference token sequence per sentence.
        hypotheses: candidate token sequence per sentence.
        max_order: largest n-gram order (4 is standard).
        smooth: add-one smoothing of n-gram precisions (recommended for the
            short sentences of the synthetic corpus).

    Returns:
        BLEU in ``[0, 100]``.
    """
    if len(references) != len(hypotheses):
        raise ValueError(
            f"{len(references)} references vs {len(hypotheses)} hypotheses"
        )
    if not references:
        raise ValueError("empty corpus")
    matches = [0] * max_order
    possible = [0] * max_order
    ref_length = 0
    hyp_length = 0
    for ref, hyp in zip(references, hypotheses):
        ref = list(ref)
        hyp = list(hyp)
        ref_length += len(ref)
        hyp_length += len(hyp)
        for order in range(1, max_order + 1):
            ref_counts = _ngrams(ref, order)
            hyp_counts = _ngrams(hyp, order)
            overlap = sum(
                min(count, ref_counts[gram]) for gram, count in hyp_counts.items()
            )
            matches[order - 1] += overlap
            possible[order - 1] += max(len(hyp) - order + 1, 0)
    precisions = []
    for order in range(max_order):
        if smooth:
            precisions.append((matches[order] + 1.0) / (possible[order] + 1.0))
        elif possible[order] > 0:
            precisions.append(matches[order] / possible[order])
        else:
            precisions.append(0.0)
    if min(precisions) <= 0:
        return 0.0
    log_mean = sum(math.log(p) for p in precisions) / max_order
    if hyp_length == 0:
        return 0.0
    brevity = (
        1.0
        if hyp_length > ref_length
        else math.exp(1.0 - ref_length / hyp_length)
    )
    return 100.0 * brevity * math.exp(log_mean)


def sentence_bleu(reference: list, hypothesis: list, max_order: int = 4) -> float:
    """Single-sentence BLEU (smoothed); convenience wrapper."""
    return corpus_bleu([reference], [hypothesis], max_order=max_order, smooth=True)
