"""Classification accuracy metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_accuracy"]


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose label is among the top-``k`` logits.

    The paper reports top-5 accuracy for AlexNet (Table II) and top-1 for
    the CIFAR models (Tables IV/V).
    """
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError(
            f"expected logits (B, C) and labels (B,), got "
            f"{logits.shape} and {labels.shape}"
        )
    if not 1 <= k <= logits.shape[1]:
        raise ValueError(f"k={k} out of range for {logits.shape[1]} classes")
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float((top == labels[:, None]).any(axis=1).mean())
