"""Evaluation metrics: accuracy, BLEU, compression and sparsity accounting."""

from repro.metrics.accuracy import top_k_accuracy
from repro.metrics.bleu import corpus_bleu, sentence_bleu
from repro.metrics.compression import (
    LayerStorage,
    ModelStorageReport,
    model_storage_report,
)
from repro.metrics.sparsity import activation_sparsity, weight_sparsity

__all__ = [
    "LayerStorage",
    "ModelStorageReport",
    "activation_sparsity",
    "corpus_bleu",
    "model_storage_report",
    "sentence_bleu",
    "top_k_accuracy",
    "weight_sparsity",
]
