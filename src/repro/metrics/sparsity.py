"""Weight and activation sparsity measurement (Table VII inputs).

Table VII characterizes each benchmark FC layer by its *weight sparsity*
(a constant ``1/p`` for PD layers) and its *activation sparsity* -- the
fraction of non-zero entries in the layer's input vector, measured
statistically over data.  The PermDNN engine's zero-skipping makes runtime
proportional to activation density, so this measurement drives the cycle
model.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.sequential import Sequential

__all__ = ["activation_sparsity", "density", "weight_sparsity"]


def density(array: np.ndarray, tol: float = 0.0) -> float:
    """Fraction of entries with ``|value| > tol`` (Table VII's "sparsity
    ratio": *lower means more sparse*, matching the paper's footnote 8)."""
    array = np.asarray(array)
    if array.size == 0:
        raise ValueError("empty array")
    return float((np.abs(array) > tol).mean())


def weight_sparsity(weight: np.ndarray) -> float:
    """Non-zero density of a weight array (1/p for a PD matrix)."""
    return density(weight)


def activation_sparsity(
    model: Module,
    x: np.ndarray,
    layer_index: int,
    tol: float = 0.0,
) -> float:
    """Non-zero density of the input to ``model[layer_index]``.

    Runs ``x`` through the leading layers of a :class:`Sequential` model in
    eval mode and measures the density of the tensor entering the selected
    layer (typically an FC layer after a ReLU, as in Table VII).

    Args:
        model: a Sequential model.
        x: input batch.
        layer_index: index of the layer whose *input* is measured.
        tol: magnitude threshold below which an activation counts as zero.
    """
    if not isinstance(model, Sequential):
        raise TypeError("activation_sparsity expects a Sequential model")
    if not 0 <= layer_index < len(model):
        raise ValueError(f"layer_index {layer_index} out of range")
    was_training = model.training
    model.eval()
    h = x
    for layer in model.layers[:layer_index]:
        h = layer.forward(h)
    if was_training:
        model.train()
    return density(h, tol=tol)
