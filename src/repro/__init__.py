"""PermDNN reproduction (MICRO 2018).

A from-scratch implementation of *"PermDNN: Efficient Compressed DNN
Architecture with Permuted Diagonal Matrices"* (Deng et al., MICRO 2018):

- :mod:`repro.core` -- permuted-diagonal linear algebra (the contribution).
- :mod:`repro.nn` -- a numpy DNN training framework with structure-preserving
  PD layers (FC, CONV, LSTM) plus pruning / circulant / quantization baselines.
- :mod:`repro.models` -- reference networks used in the paper's evaluation.
- :mod:`repro.datasets` -- synthetic substitutes for ImageNet/CIFAR/MNIST/IWSLT.
- :mod:`repro.metrics` -- accuracy, BLEU, compression accounting.
- :mod:`repro.hw` -- cycle-level simulators of the PermDNN engine and of the
  EIE / CirCNN baselines, with calibrated area/power models.
- :mod:`repro.analysis` -- connectedness (Sec. III-E) and storage (Fig. 4)
  analyses.
"""

__version__ = "1.0.0"

from repro.core import (
    BlockPermDiagTensor4D,
    BlockPermutedDiagonalMatrix,
    PermutationSpec,
    PermutedDiagonalMatrix,
    approximate_pd,
    approximate_pd_tensor,
)

__all__ = [
    "BlockPermDiagTensor4D",
    "BlockPermutedDiagonalMatrix",
    "PermutationSpec",
    "PermutedDiagonalMatrix",
    "approximate_pd",
    "approximate_pd_tensor",
    "__version__",
]
