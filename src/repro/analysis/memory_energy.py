"""DRAM-vs-SRAM energy: the paper's motivating argument (Sec. I).

"Since the size of on-chip SRAM is usually very limited, placing the
large-scale DNN models on the off-chip DRAM, which has more than 100 times
higher energy cost than SRAM, is a bitter but inevitable choice."

This module quantifies that: given a model's storage footprint and an
on-chip SRAM budget, estimate the per-inference weight-access energy with
and without PD compression.  Energy constants follow the well-known
45 nm numbers from Horowitz (ISSCC'14), the same source EIE cites.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessEnergyModel", "WeightAccessReport", "weight_access_energy"]

# Energy per 32-bit access (picojoules), 45 nm (Horowitz, ISSCC 2014).
SRAM_PJ_PER_32B = 5.0
DRAM_PJ_PER_32B = 640.0  # ~128x SRAM


@dataclass(frozen=True)
class AccessEnergyModel:
    """Per-access energy constants (pJ per 32-bit word).

    Attributes:
        sram_pj: on-chip SRAM access.
        dram_pj: off-chip DRAM access (>100x SRAM -- the paper's premise).
    """

    sram_pj: float = SRAM_PJ_PER_32B
    dram_pj: float = DRAM_PJ_PER_32B


@dataclass(frozen=True)
class WeightAccessReport:
    """Weight-fetch energy for one full inference pass.

    Attributes:
        stored_weights: weights the representation keeps.
        fits_on_chip: whether they fit the SRAM budget.
        energy_uj: micro-joules to stream every weight once.
    """

    stored_weights: int
    fits_on_chip: bool
    energy_uj: float


def weight_access_energy(
    stored_weights: int,
    sram_budget_weights: int,
    model: AccessEnergyModel | None = None,
) -> WeightAccessReport:
    """Energy to read every weight once during an inference.

    Weights that fit on chip are read from SRAM; the overflow streams from
    DRAM every inference (no reuse assumed -- FC layers read each weight
    exactly once per input, which is why they are memory-bound).

    Args:
        stored_weights: weight count of the (possibly compressed) model.
        sram_budget_weights: how many weights the on-chip SRAM holds.
        model: energy constants.
    """
    if stored_weights < 0 or sram_budget_weights < 0:
        raise ValueError("counts must be non-negative")
    model = model or AccessEnergyModel()
    on_chip = min(stored_weights, sram_budget_weights)
    off_chip = stored_weights - on_chip
    energy_pj = on_chip * model.sram_pj + off_chip * model.dram_pj
    return WeightAccessReport(
        stored_weights=stored_weights,
        fits_on_chip=off_chip == 0,
        energy_uj=energy_pj / 1e6,
    )
