"""Empirical check of the universal-approximation claim (Sec. III-E).

The paper sketches a proof that block-PD networks are universal
approximators with error bound ``O(1/n)`` in the number of parameters.
We probe that empirically: fit a fixed smooth 1-D target function with
PD networks of growing width and record the achieved L2 error.  The claim
to verify is that error decreases steadily with parameter count and that a
PD network matches a dense network of equal *parameter count* (not equal
width) -- the fair comparison the bound implies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Adam, Linear, MSELoss, PermDiagLinear, Sequential, Tanh

__all__ = ["ApproximationResult", "fit_function", "approximation_error_curve"]


def _target(x: np.ndarray) -> np.ndarray:
    """A smooth but non-trivial target on [-1, 1]."""
    return np.sin(3.0 * np.pi * x) * np.exp(-(x**2)) + 0.3 * np.cos(7.0 * x)


@dataclass(frozen=True)
class ApproximationResult:
    """One fitted network's size and achieved error.

    Attributes:
        width: hidden width.
        parameters: stored weight count.
        l2_error: root-mean-square error on a dense test grid.
    """

    width: int
    parameters: int
    l2_error: float


def fit_function(
    width: int,
    p: int | None,
    steps: int = 800,
    seed: int = 0,
) -> ApproximationResult:
    """Fit the target with a 2-hidden-layer tanh network.

    Args:
        width: hidden layer width.
        p: PD block size for hidden layers (``None`` = dense).
        steps: Adam steps.
        seed: init/batch seed.
    """
    rng = np.random.default_rng(seed)
    if p is None:
        model = Sequential(
            Linear(1, width, rng=rng), Tanh(),
            Linear(width, width, rng=rng), Tanh(),
            Linear(width, 1, rng=rng),
        )
    else:
        model = Sequential(
            Linear(1, width, rng=rng), Tanh(),
            PermDiagLinear(width, width, p=p, rng=rng), Tanh(),
            Linear(width, 1, rng=rng),
        )
    optimizer = Adam(model.parameters(), lr=5e-3)
    loss_fn = MSELoss()
    for _ in range(steps):
        x = rng.uniform(-1, 1, size=(128, 1))
        pred = model.forward(x)
        loss_fn.forward(pred, _target(x))
        optimizer.zero_grad()
        model.backward(loss_fn.backward())
        optimizer.step()
    grid = np.linspace(-1, 1, 512)[:, None]
    model.eval()
    err = float(np.sqrt(((model.forward(grid) - _target(grid)) ** 2).mean()))
    return ApproximationResult(width, model.num_parameters(), err)


def approximation_error_curve(
    widths: tuple[int, ...] = (8, 16, 32, 64),
    p: int = 4,
    steps: int = 800,
    seed: int = 0,
) -> list[ApproximationResult]:
    """Error vs parameter count for PD networks of growing width."""
    return [fit_function(width, p, steps=steps, seed=seed) for width in widths]
