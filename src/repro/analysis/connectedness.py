"""Connectedness of block-permuted diagonal networks (Sec. III-E).

The paper's universal-approximation argument rests on a structural lemma:
"when ``k_l`` is not identical for all permuted diagonal matrices, the
sparse connections between adjacent block-permuted diagonal layers do not
block away information from any neuron in the previous layer."

We verify that lemma computationally: build the bipartite (multi-layer)
connectivity graph induced by the PD masks and check that every input
neuron reaches every output neuron.
"""

from __future__ import annotations

import networkx as nx

from repro.core import BlockPermutedDiagonalMatrix

__all__ = [
    "connectivity_fraction",
    "is_fully_connected",
    "layer_connectivity_graph",
]


def layer_connectivity_graph(
    layers: list[BlockPermutedDiagonalMatrix],
) -> nx.DiGraph:
    """Directed reachability graph of a stack of PD layers.

    Node ``(depth, i)`` is neuron ``i`` of layer-boundary ``depth``
    (depth 0 = network input).  An edge exists where the PD mask has a
    non-zero slot.

    Args:
        layers: matrices ordered input-to-output; ``layers[d]`` maps
            boundary ``d`` (width ``n``) to boundary ``d+1`` (width ``m``).
    """
    graph = nx.DiGraph()
    for depth, matrix in enumerate(layers):
        if depth > 0 and matrix.shape[1] != layers[depth - 1].shape[0]:
            raise ValueError(
                f"layer {depth} expects {matrix.shape[1]} inputs but layer "
                f"{depth - 1} emits {layers[depth - 1].shape[0]}"
            )
        # Support slots straight from the cached index plan -- no dense
        # (m, n) mask materialization per layer.
        rows, cols = matrix.support_coordinates()
        for r, c in zip(rows.tolist(), cols.tolist()):
            graph.add_edge((depth, c), (depth + 1, r))
    return graph


def connectivity_fraction(layers: list[BlockPermutedDiagonalMatrix]) -> float:
    """Fraction of (input, output) pairs connected through the stack."""
    if not layers:
        raise ValueError("need at least one layer")
    graph = layer_connectivity_graph(layers)
    n_in = layers[0].shape[1]
    n_out = layers[-1].shape[0]
    depth = len(layers)
    reached = 0
    for i in range(n_in):
        source = (0, i)
        if source not in graph:
            continue
        descendants = nx.descendants(graph, source)
        reached += sum(1 for j in range(n_out) if (depth, j) in descendants)
    return reached / (n_in * n_out)


def is_fully_connected(layers: list[BlockPermutedDiagonalMatrix]) -> bool:
    """True when every input neuron reaches every output neuron."""
    return connectivity_fraction(layers) == 1.0
