"""Storage requirement comparison (Fig. 4 of the paper).

For the same number of kept weights, an unstructured sparse layer pays
``weight_bits + index_bits`` per weight plus column pointers, while the PD
layer pays ``weight_bits`` plus an amortized ``ceil(log2 p)/p`` for the
permutation parameter.  This module generates the comparison curve across
compression ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.storage import (
    pd_storage_bits,
    unstructured_sparse_storage_bits,
)

__all__ = ["StoragePoint", "storage_comparison_curve"]


@dataclass(frozen=True)
class StoragePoint:
    """Storage cost of one layer under both representations.

    Attributes:
        compression: compression ratio (== PD block size ``p``).
        pd_bits: block-permuted diagonal cost.
        unstructured_bits: EIE-format cost at the same non-zero count.
    """

    compression: int
    pd_bits: int
    unstructured_bits: int

    @property
    def pd_advantage(self) -> float:
        """Unstructured / PD cost ratio (>1 means PD stores less)."""
        return self.unstructured_bits / self.pd_bits

    @property
    def pd_bits_per_weight(self) -> float:
        return self.pd_bits

    def as_row(self) -> tuple:
        return (self.compression, self.pd_bits, self.unstructured_bits,
                round(self.pd_advantage, 3))


def storage_comparison_curve(
    m: int = 1024,
    n: int = 1024,
    compressions: tuple[int, ...] = (2, 4, 8, 10, 16, 32),
    weight_bits: int = 4,
    index_bits: int = 4,
) -> list[StoragePoint]:
    """Fig. 4's comparison across compression ratios.

    Both representations keep ``m*n/p`` weights; the unstructured one also
    stores per-weight indices and per-column pointers.

    Args:
        m, n: layer shape.
        compressions: block sizes / compression ratios to sweep.
        weight_bits: stored weight precision (4-bit shared, as in EIE).
        index_bits: unstructured per-weight index width (4 in EIE).
    """
    points = []
    for p in compressions:
        nnz = (m * n) // p
        points.append(
            StoragePoint(
                compression=p,
                pd_bits=pd_storage_bits(m, n, p, weight_bits),
                unstructured_bits=unstructured_sparse_storage_bits(
                    nnz, weight_bits, index_bits, num_columns=n
                ),
            )
        )
    return points
