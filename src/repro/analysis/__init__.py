"""Analyses supporting the paper's theory sections."""

from repro.analysis.connectedness import (
    connectivity_fraction,
    is_fully_connected,
    layer_connectivity_graph,
)
from repro.analysis.storage_comparison import (
    StoragePoint,
    storage_comparison_curve,
)
from repro.analysis.approximation_power import (
    ApproximationResult,
    approximation_error_curve,
    fit_function,
)
from repro.analysis.memory_energy import (
    AccessEnergyModel,
    WeightAccessReport,
    weight_access_energy,
)

__all__ = [
    "AccessEnergyModel",
    "ApproximationResult",
    "StoragePoint",
    "WeightAccessReport",
    "approximation_error_curve",
    "connectivity_fraction",
    "fit_function",
    "is_fully_connected",
    "layer_connectivity_graph",
    "storage_comparison_curve",
    "weight_access_energy",
]
