"""Functional verification of the simulators against numpy golden models.

Mirrors the paper's methodology: the cycle-accurate simulator "serves as
the golden reference for the correctness of Verilog implementation"; here
the *numpy linear algebra* is the golden reference for the simulators.
"""

from __future__ import annotations

import numpy as np

from repro.core import BlockPermutedDiagonalMatrix
from repro.hw.engine import PermDNNEngine

__all__ = ["verify_engine", "verify_against_golden"]


def verify_against_golden(
    simulated: np.ndarray, golden: np.ndarray, atol: float = 1e-10
) -> float:
    """Return the max absolute error; raise if above tolerance."""
    simulated = np.asarray(simulated)
    golden = np.asarray(golden)
    if simulated.shape != golden.shape:
        raise AssertionError(
            f"shape mismatch: {simulated.shape} vs {golden.shape}"
        )
    err = float(np.abs(simulated - golden).max())
    if err > atol:
        raise AssertionError(f"simulator output diverges from golden: {err}")
    return err


def verify_engine(
    engine: PermDNNEngine,
    matrix: BlockPermutedDiagonalMatrix,
    x: np.ndarray,
    activation: str | None = None,
) -> float:
    """Run the engine and bit-compare with the numpy reference.

    Returns the max absolute error (0.0 for the float datapath).
    """
    result = engine.run_fc_layer(matrix, x, activation=activation)
    golden = matrix.matvec(np.asarray(x, dtype=np.float64))
    if activation == "relu":
        golden = np.maximum(golden, 0.0)
    elif activation == "tanh":
        golden = np.tanh(golden)
    return verify_against_golden(result.output, golden)
