"""The paper's six benchmark FC layers (Table VII).

============  =============  ===========  ============
Layer         size (m, n)    weight dens  act density
============  =============  ===========  ============
Alex-FC6      4096 x 9216    10% (p=10)   35.8%
Alex-FC7      4096 x 4096    10% (p=10)   20.6%
Alex-FC8      1000 x 4096    25% (p=4)    44.4%
NMT-1         2048 x 1024    12.5% (p=8)  100%
NMT-2         2048 x 1536    12.5% (p=8)  100%
NMT-3         2048 x 2048    12.5% (p=8)  100%
============  =============  ===========  ============

(The paper's "sparsity ratio" columns report densities; lower = sparser,
its footnote 8.)  NMT layers see dense inputs (LSTM gate activations), so
zero-skipping only helps the AlexNet layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import BlockPermutedDiagonalMatrix

__all__ = [
    "TABLE_VII_WORKLOADS",
    "UnknownWorkloadError",
    "Workload",
    "find_workload",
    "make_workload_instance",
]


class UnknownWorkloadError(LookupError):
    """A workload name that matches no Table VII layer.

    Library code raises this (never ``SystemExit``); the CLI's ``main``
    converts it into a clean exit for terminal users.
    """


@dataclass(frozen=True)
class Workload:
    """One benchmark FC layer.

    Attributes:
        name: paper's layer label.
        m: output dimension.
        n: input dimension.
        p: PD block size (weight density is ``1/p``).
        activation_density: fraction of non-zero input entries.
        description: provenance note.
    """

    name: str
    m: int
    n: int
    p: int
    activation_density: float
    description: str = ""

    @property
    def weight_density(self) -> float:
        return 1.0 / self.p

    @property
    def dense_ops(self) -> int:
        return 2 * self.m * self.n

    @property
    def compressed_macs(self) -> int:
        """MACs a zero-skipping PD engine performs on average."""
        nonzero_columns = int(round(self.n * self.activation_density))
        return nonzero_columns * (self.m // self.p)


TABLE_VII_WORKLOADS: tuple[Workload, ...] = (
    Workload("Alex-FC6", 4096, 9216, 10, 0.358, "CNN image classification"),
    Workload("Alex-FC7", 4096, 4096, 10, 0.206, "CNN image classification"),
    Workload("Alex-FC8", 1000, 4096, 4, 0.444, "CNN image classification"),
    Workload("NMT-1", 2048, 1024, 8, 1.0, "RNN language translation"),
    Workload("NMT-2", 2048, 1536, 8, 1.0, "RNN language translation"),
    Workload("NMT-3", 2048, 2048, 8, 1.0, "RNN language translation"),
)


def find_workload(name: str) -> Workload:
    """Look up a Table VII workload by (case-insensitive) name.

    Raises:
        UnknownWorkloadError: no workload matches; the message lists the
            valid names.
    """
    for workload in TABLE_VII_WORKLOADS:
        if workload.name.lower() == name.lower():
            return workload
    names = ", ".join(w.name for w in TABLE_VII_WORKLOADS)
    raise UnknownWorkloadError(
        f"unknown workload {name!r}; choose from: {names}"
    )


def make_workload_instance(
    workload: Workload, rng: np.random.Generator | int | None = 0
) -> tuple[BlockPermutedDiagonalMatrix, np.ndarray]:
    """Materialize a workload: a PD weight matrix and an input vector.

    The input has exactly ``round(n * activation_density)`` non-zero
    entries at random positions (the statistical sparsity of Table VII).

    Returns:
        ``(matrix, x)``.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    matrix = BlockPermutedDiagonalMatrix.random(
        (workload.m, workload.n), workload.p, rng=rng
    )
    x = np.zeros(workload.n)
    nnz = int(round(workload.n * workload.activation_density))
    positions = rng.choice(workload.n, size=nnz, replace=False)
    x[positions] = rng.normal(size=nnz)
    return matrix, x
