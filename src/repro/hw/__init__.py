"""Cycle-level simulation of the PermDNN engine and its baselines.

The paper evaluated a Verilog implementation (28 nm, 1.2 GHz) whose golden
reference was "a cycle-accurate bit-accurate simulator".  This package
rebuilds that simulator in Python:

- :mod:`repro.hw.config` -- the Table VIII design parameters.
- :mod:`repro.hw.scheduler` -- Case 1/2/3 column scheduling (Sec. IV-D).
- :mod:`repro.hw.engine` -- the PE-array engine with column-wise processing
  and input zero-skipping (Figs. 5-9).
- :mod:`repro.hw.energy` -- area/power model calibrated to Table IX.
- :mod:`repro.hw.technology` -- the 45 nm -> 28 nm projection rule.
- :mod:`repro.hw.baselines` -- EIE (CSC + load imbalance) and CirCNN
  (frequency-domain block-circulant) comparison engines.
- :mod:`repro.hw.workloads` -- the six Table VII benchmark FC layers.
"""

from repro.hw.config import EngineConfig, PEConfig
from repro.hw.engine import (
    EngineImageBackendError,
    PermDNNEngine,
    SimulationResult,
    export_engine_image,
    load_engine_image,
)
from repro.hw.energy import AreaPowerModel, EngineBreakdown, PEBreakdown
from repro.hw.perf import PerformanceReport, equivalent_dense_ops
from repro.hw.scheduler import ColumnSchedule, classify_case, cycles_per_column
from repro.hw.technology import project_design
from repro.hw.workloads import (
    TABLE_VII_WORKLOADS,
    UnknownWorkloadError,
    Workload,
    find_workload,
    make_workload_instance,
)

__all__ = [
    "AreaPowerModel",
    "ColumnSchedule",
    "EngineBreakdown",
    "EngineConfig",
    "EngineImageBackendError",
    "PEBreakdown",
    "PEConfig",
    "PerformanceReport",
    "PermDNNEngine",
    "SimulationResult",
    "TABLE_VII_WORKLOADS",
    "UnknownWorkloadError",
    "Workload",
    "classify_case",
    "cycles_per_column",
    "equivalent_dense_ops",
    "export_engine_image",
    "find_workload",
    "load_engine_image",
    "make_workload_instance",
    "project_design",
]
