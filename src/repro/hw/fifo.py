"""Activation FIFO model (Fig. 6: backlog of non-zero activations)."""

from __future__ import annotations

from collections import deque

__all__ = ["FIFO"]


class FIFO:
    """Bounded FIFO with occupancy and stall accounting.

    The engine's activation FIFO "builds up a backlog for the non-zero x_i's,
    ensuring that the PEs can always receive their required x_i in time".
    We track pushes, pops, peak occupancy and stalls (pop on empty / push on
    full) so tests can assert the backlog behaves.
    """

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._items: deque = deque()
        self.pushes = 0
        self.pops = 0
        self.push_stalls = 0
        self.pop_stalls = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item) -> bool:
        """Push; returns False (and counts a stall) when full."""
        if self.full:
            self.push_stalls += 1
            return False
        self._items.append(item)
        self.pushes += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._items))
        return True

    def pop(self):
        """Pop; returns None (and counts a stall) when empty."""
        if self.empty:
            self.pop_stalls += 1
            return None
        self.pops += 1
        return self._items.popleft()
