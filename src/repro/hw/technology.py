"""Technology-node projection (footnote 10 of the paper).

When comparing against designs reported at 45 nm (EIE, CirCNN), the paper
projects them to its own 28 nm node with the rule EIE itself used:
*linear scaling for frequency, quadratic scaling for area, constant power*.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DesignPoint", "project_design"]


@dataclass(frozen=True)
class DesignPoint:
    """A published design's headline numbers at some technology node.

    Attributes:
        name: label for reports.
        tech_nm: technology node in nanometres.
        clock_ghz: clock frequency.
        area_mm2: die area (``None`` when unreported, e.g. CirCNN).
        power_w: power.
    """

    name: str
    tech_nm: int
    clock_ghz: float
    area_mm2: float | None
    power_w: float


def project_design(point: DesignPoint, target_nm: int) -> DesignPoint:
    """Project a design point to another node.

    Linear frequency (f x from/to), quadratic area (A x (to/from)^2),
    constant power.

    Returns:
        A new :class:`DesignPoint` at ``target_nm``.
    """
    if point.tech_nm <= 0 or target_nm <= 0:
        raise ValueError("technology nodes must be positive")
    ratio = point.tech_nm / target_nm
    return DesignPoint(
        name=f"{point.name}@{target_nm}nm",
        tech_nm=target_nm,
        clock_ghz=point.clock_ghz * ratio,
        area_mm2=None if point.area_mm2 is None else point.area_mm2 / ratio**2,
        power_w=point.power_w,
    )
