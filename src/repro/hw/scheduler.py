"""Column scheduling: the paper's Case 1 / Case 2 / Case 3 (Sec. IV-D).

Each PE owns ``n_rowpe = m / n_pe`` consecutive rows of the weight matrix,
i.e. ``n_rowpe / p`` permuted diagonal blocks per block column.  A matrix
column intersects each of those blocks in exactly **one** non-zero, so every
PE processes exactly ``n_rowpe / p`` weights per column -- the structural
load balance the paper contrasts with EIE.

With ``n_mul`` multipliers the cases are:

- **Case 1** (``n_rowpe >= p*n_mul`` and ``n_acc >= n_rowpe``): a column
  takes ``ceil(n_rowpe / (p*n_mul))`` cycles; processing is continuous.
- **Case 2** (``n_rowpe >= p*n_mul`` and ``n_acc < n_rowpe``): accumulators
  cannot hold all partial outputs; rows are processed in chunks of
  ``n_acc``, and *every chunk re-walks all the non-zero input columns*
  (Fig. 10(b)), adding re-fetch passes.
- **Case 3** (``n_rowpe < p*n_mul``): a column does not fill the multiplier
  array; ``floor(p*n_mul / n_rowpe)`` columns are processed concurrently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ColumnSchedule", "classify_case", "cycles_per_column", "layer_cycles",
           "schedule_trace"]


def classify_case(n_rowpe: int, p: int, n_mul: int, n_acc: int) -> int:
    """Return 1, 2 or 3 per the paper's taxonomy."""
    if n_rowpe <= 0 or p <= 0 or n_mul <= 0 or n_acc <= 0:
        raise ValueError("all scheduler parameters must be positive")
    if n_rowpe < p * n_mul:
        return 3
    if n_acc >= n_rowpe:
        return 1
    return 2


@dataclass(frozen=True)
class ColumnSchedule:
    """Cycle cost of processing matrix columns on one PE.

    Attributes:
        case: 1, 2 or 3.
        cycles_per_column: average cycles consumed per non-zero input column
            (fractional under Case 3 where columns share cycles).
        passes: input re-fetch passes (1 except under Case 2).
        columns_per_cycle: concurrent columns (1 except under Case 3).
    """

    case: int
    cycles_per_column: float
    passes: int
    columns_per_cycle: int


def cycles_per_column(n_rowpe: int, p: int, n_mul: int, n_acc: int) -> ColumnSchedule:
    """Compute the per-column schedule for one PE.

    Args:
        n_rowpe: rows of the weight matrix owned by the PE.
        p: permuted-diagonal block size.
        n_mul: multipliers per PE.
        n_acc: accumulators per PE.
    """
    case = classify_case(n_rowpe, p, n_mul, n_acc)
    nnz_per_column = n_rowpe / p  # one non-zero per block per column
    if case == 1:
        cycles = math.ceil(nnz_per_column / n_mul)
        return ColumnSchedule(1, float(cycles), passes=1, columns_per_cycle=1)
    if case == 2:
        # rows processed in chunks of n_acc; each chunk re-reads the input
        chunks = math.ceil(n_rowpe / n_acc)
        total = 0
        remaining = n_rowpe
        for _ in range(chunks):
            chunk_rows = min(n_acc, remaining)
            total += math.ceil(chunk_rows / p / n_mul)
            remaining -= chunk_rows
        return ColumnSchedule(2, float(total), passes=chunks, columns_per_cycle=1)
    # Case 3: several columns fit the multiplier array at once
    concurrent = max(int(p * n_mul // n_rowpe), 1)
    cycles = 1.0 / concurrent
    return ColumnSchedule(3, cycles, passes=1, columns_per_cycle=concurrent)


def layer_cycles(
    nonzero_columns: int,
    n_rowpe: int,
    p: int,
    n_mul: int,
    n_acc: int,
    pipeline_stages: int = 5,
) -> int:
    """Total compute cycles for a layer: non-zero columns x schedule cost.

    Zero input activations are skipped entirely (Fig. 5), so only
    ``nonzero_columns`` contribute.  A pipeline fill of ``pipeline_stages``
    cycles is added once.
    """
    schedule = cycles_per_column(n_rowpe, p, n_mul, n_acc)
    if schedule.case == 3:
        compute = math.ceil(nonzero_columns / schedule.columns_per_cycle)
    else:
        compute = int(schedule.cycles_per_column) * nonzero_columns
    return compute + pipeline_stages


def schedule_trace(
    columns: int, n_rowpe: int, p: int, n_mul: int, n_acc: int
) -> list[dict]:
    """Cycle-by-cycle trace of which rows each column touches (Fig. 10).

    Intended for small configurations (the paper's example: 2 PEs,
    ``n_mul=1``, ``n_acc=4``, 8x8 matrix).  Returns one record per cycle:
    ``{"cycle", "column", "pass", "rows"}`` where ``rows`` are the PE-local
    row indices updated in that cycle.
    """
    schedule = cycles_per_column(n_rowpe, p, n_mul, n_acc)
    trace: list[dict] = []
    cycle = 0
    if schedule.case in (1, 3):
        for col in range(columns):
            rows = list(range(0, n_rowpe, p))
            # n_mul non-zeros retire per cycle
            for start in range(0, len(rows), n_mul):
                trace.append(
                    {
                        "cycle": cycle,
                        "column": col,
                        "pass": 0,
                        "rows": [r + (col % p) for r in rows[start : start + n_mul]],
                    }
                )
                cycle += 1
        return trace
    # Case 2: chunked passes, every pass re-walks all columns (Fig. 10(b))
    chunk_starts = list(range(0, n_rowpe, n_acc))
    for pass_idx, chunk_start in enumerate(chunk_starts):
        chunk_rows = range(chunk_start, min(chunk_start + n_acc, n_rowpe), p)
        for col in range(columns):
            rows = list(chunk_rows)
            for start in range(0, len(rows), n_mul):
                trace.append(
                    {
                        "cycle": cycle,
                        "column": col,
                        "pass": pass_idx,
                        "rows": [r + (col % p) for r in rows[start : start + n_mul]],
                    }
                )
                cycle += 1
    return trace
