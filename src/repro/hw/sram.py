"""SRAM bank and access-counting models."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SRAMBank", "SRAMStats"]


@dataclass
class SRAMStats:
    """Access counters for one SRAM."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


@dataclass
class SRAMBank:
    """A banked SRAM with capacity checking and access counting.

    Attributes:
        name: label for reports.
        banks: number of independently addressable banks (one row per bank
            per cycle).
        width: row width in bits.
        depth: rows per bank.
    """

    name: str
    banks: int
    width: int
    depth: int
    stats: SRAMStats = field(default_factory=SRAMStats)

    @property
    def total_bits(self) -> int:
        return self.banks * self.width * self.depth

    @property
    def total_kilobytes(self) -> float:
        return self.total_bits / 8 / 1024

    def capacity_words(self, word_bits: int) -> int:
        """How many ``word_bits``-wide values fit in total."""
        if word_bits <= 0:
            raise ValueError("word_bits must be positive")
        return self.total_bits // word_bits

    def check_fits(self, words: int, word_bits: int) -> None:
        """Raise if ``words`` values of ``word_bits`` overflow the SRAM.

        This is the "over-design strategy" check: the paper sizes the weight
        SRAM so a 32-PE engine holds an 8M-parameter compressed layer.
        """
        if words > self.capacity_words(word_bits):
            raise ValueError(
                f"{self.name}: {words} x {word_bits}b does not fit in "
                f"{self.total_bits} bits"
            )

    def read(self, rows: int = 1) -> None:
        self.stats.reads += rows

    def write(self, rows: int = 1) -> None:
        self.stats.writes += rows

    def reset_stats(self) -> None:
        self.stats = SRAMStats()
