"""Design configuration parameters (Table VIII of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["EngineConfig", "PEConfig"]


@dataclass(frozen=True)
class PEConfig:
    """Per-PE resources (Table VIII, top half).

    Attributes:
        n_mul: multipliers per PE (8).
        mul_width: multiplier word width in bits (16).
        n_acc: accumulators per PE (128).
        acc_width: accumulator width in bits (24).
        weight_sram_banks: weight SRAM sub-banks (16); one active per cycle.
        weight_sram_width: bits per weight SRAM row (32).
        weight_sram_depth: rows per weight SRAM sub-bank (2048).
        perm_sram_width: permutation SRAM width (48 bits: several small
            ``log2 p`` values per row).
        perm_sram_depth: permutation SRAM rows (2048).
    """

    n_mul: int = 8
    mul_width: int = 16
    n_acc: int = 128
    acc_width: int = 24
    weight_sram_banks: int = 16
    weight_sram_width: int = 32
    weight_sram_depth: int = 2048
    perm_sram_width: int = 48
    perm_sram_depth: int = 2048

    def __post_init__(self) -> None:
        if self.n_mul <= 0 or self.n_acc <= 0:
            raise ValueError("n_mul and n_acc must be positive")
        if self.n_acc % self.n_mul != 0:
            raise ValueError(
                "n_acc must be a multiple of n_mul (accumulator banks of "
                "g = n_acc/n_mul per selector, Fig. 9)"
            )

    @property
    def accumulators_per_bank(self) -> int:
        """``g = N_ACC / N_MUL`` accumulators behind each selector."""
        return self.n_acc // self.n_mul

    @property
    def weight_sram_bits(self) -> int:
        return self.weight_sram_banks * self.weight_sram_width * self.weight_sram_depth

    @property
    def perm_sram_bits(self) -> int:
        return self.perm_sram_width * self.perm_sram_depth


@dataclass(frozen=True)
class EngineConfig:
    """Whole-engine resources (Table VIII, bottom half).

    Attributes:
        n_pe: number of processing elements (32).
        quant_bits: activation/weight word width (16-bit quantization).
        weight_sharing_bits: virtual-weight LUT index width (4).
        pipeline_stages: pipeline depth (5).
        act_sram_banks: activation SRAM banks (8).
        act_sram_width: bits per activation SRAM row (64).
        act_sram_depth: activation SRAM rows (2048).
        act_fifo_width: activation FIFO width (32 bits).
        act_fifo_depth: activation FIFO depth (32).
        clock_ghz: clock frequency (1.2 GHz at 28 nm).
        tech_nm: technology node (28).
        pe: the per-PE configuration.
    """

    n_pe: int = 32
    quant_bits: int = 16
    weight_sharing_bits: int = 4
    pipeline_stages: int = 5
    act_sram_banks: int = 8
    act_sram_width: int = 64
    act_sram_depth: int = 2048
    act_fifo_width: int = 32
    act_fifo_depth: int = 32
    clock_ghz: float = 1.2
    tech_nm: int = 28
    pe: PEConfig = PEConfig()

    def __post_init__(self) -> None:
        if self.n_pe <= 0:
            raise ValueError("n_pe must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")

    @property
    def activations_written_per_cycle(self) -> int:
        """Group-writing rate: ``N_ACTMB * W_ACTM / q`` values per cycle."""
        return self.act_sram_banks * self.act_sram_width // self.quant_bits

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.n_pe * self.pe.n_mul

    @property
    def peak_gops(self) -> float:
        """Peak compressed-domain throughput: 2 ops per MAC.

        The paper: 32 PEs x 8 muls x 1.2 GHz x 2 = 614.4 GOPS.
        """
        return 2.0 * self.peak_macs_per_cycle * self.clock_ghz

    def with_pes(self, n_pe: int) -> "EngineConfig":
        """Copy with a different PE count (scalability studies, Fig. 13)."""
        return replace(self, n_pe=n_pe)
