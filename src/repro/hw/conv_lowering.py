"""Execute PD convolution layers on the FC-targeted engine (Sec. III-C).

PermDNN's architecture targets FC layers, but the paper's algorithm
extends PD structure to CONV weight tensors (Fig. 2).  A convolution
lowers to matrix-vector products: for each output position, the engine
multiplies the *channel matrix* (c_out x c_in, block-PD) by the input
patch column -- ``kh*kw`` PD mat-vecs per position, accumulated.  This
module performs that lowering, preserving two properties the engine
depends on:

- the per-position channel matrix **is** block-permuted diagonal (the PD
  plane is shared by all kernel offsets), so the modulo addressing and
  load balance carry over unchanged;
- zero input channels at a given offset are skipped per column, exactly
  like FC zero-skipping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import BlockPermDiagTensor4D, BlockPermutedDiagonalMatrix
from repro.hw.engine import PermDNNEngine, SimulationResult

__all__ = ["ConvSimulationResult", "offset_matrices", "run_conv_layer"]


@dataclass
class ConvSimulationResult:
    """Aggregate of the lowered convolution execution.

    Attributes:
        output: output tensor ``(c_out, oh, ow)``.
        cycles: total cycles across all lowered mat-vecs.
        macs: total multiply-accumulates.
        nonzero_columns: input-channel columns processed.
        skipped_columns: input-channel columns skipped as zero.
        positions: output spatial positions executed.
    """

    output: np.ndarray
    cycles: int
    macs: int
    nonzero_columns: int
    skipped_columns: int
    positions: int


def offset_matrices(
    tensor: BlockPermDiagTensor4D,
    backend: str | None = None,
    value_dtype: str | None = None,
    fixed_point=None,
) -> list[BlockPermutedDiagonalMatrix]:
    """One block-PD channel matrix per kernel offset ``(dy, dx)``.

    All ``kh*kw`` matrices share one structure ``(ks, channels, p)`` with
    the tensor's own channel plane, so the whole family rides the plane's
    already-built index plan via
    :meth:`BlockPermutedDiagonalMatrix.like` -- no per-lowering index
    arithmetic at all.  ``backend`` overrides the tensor's pinned kernel
    backend for the lowered mat-vecs; ``value_dtype`` (with an optional
    ``fixed_point`` format) converts every offset matrix through
    :meth:`~repro.core.BlockPermutedDiagonalMatrix.with_value_dtype`,
    still sharing the one plan, so a reduced-precision serving copy of a
    conv layer lowers without touching the float64 training kernels.
    """
    kh, kw = tensor.kernel_size
    matrices = []
    for dy in range(kh):
        for dx in range(kw):
            # Contiguous copy: the strided kernel slice would otherwise be
            # re-raveled on every mat-vec of the simulation hot loop.
            data = np.ascontiguousarray(tensor.kernels[:, :, :, dy, dx])
            matrix = tensor.plane.like(data)
            if value_dtype is not None:
                matrix = matrix.with_value_dtype(
                    value_dtype, fixed_point=fixed_point
                )
            if backend is not None:
                matrix.set_backend(backend)
            matrices.append(matrix)
    return matrices


# Back-compat alias for pre-generalization callers.
_offset_matrices = offset_matrices


def run_conv_layer(
    engine: PermDNNEngine,
    tensor: BlockPermDiagTensor4D,
    x: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    enforce_capacity: bool = True,
    backend: str | None = None,
    value_dtype: str | None = None,
    fixed_point=None,
) -> ConvSimulationResult:
    """Lower a PD convolution onto the FC engine and execute it.

    Args:
        engine: the PermDNN engine instance.
        tensor: block-PD CONV weight tensor ``(c_out, c_in, kh, kw)``.
        x: input feature map ``(c_in, H, W)``.
        stride: spatial stride.
        padding: symmetric zero padding.
        enforce_capacity: per-PE SRAM capacity check (see engine docs).
        backend: kernel backend for the lowered mat-vecs (defaults to the
            tensor's pinned backend, else the process default).
        value_dtype: lower through reduced-precision offset matrices
            (``"float32"`` / ``"int16"``; see :func:`offset_matrices`).
        fixed_point: fixed-point format for ``value_dtype="int16"``.

    Returns:
        :class:`ConvSimulationResult` whose ``output`` equals the direct
        convolution (verified in the tests).
    """
    x = np.asarray(x)
    c_out, c_in, kh, kw = tensor.shape
    if x.ndim != 3 or x.shape[0] != c_in:
        raise ValueError(f"expected input (c_in={c_in}, H, W), got {x.shape}")

    matrices = offset_matrices(
        tensor, backend=backend, value_dtype=value_dtype,
        fixed_point=fixed_point,
    )
    # Temporaries follow the offset family's compute dtype (float32
    # storage accumulates in float32, int16 dequantizes to float64) --
    # a dtype-less np.zeros here silently upcast every float32 lowering.
    compute_dtype = matrices[0].compute_dtype
    x = np.asarray(x, dtype=compute_dtype)
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    __, height, width = x.shape
    oh = (height - kh) // stride + 1
    ow = (width - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError("non-positive conv output size")

    output = np.zeros((c_out, oh, ow), dtype=compute_dtype)
    cycles = macs = nonzero = skipped = 0
    for oy in range(oh):
        for ox in range(ow):
            acc = np.zeros(c_out, dtype=compute_dtype)
            for offset, matrix in enumerate(matrices):
                dy, dx = divmod(offset, kw)
                column = x[:, oy * stride + dy, ox * stride + dx]
                result: SimulationResult = engine.run_fc_layer(
                    matrix, column, enforce_capacity=enforce_capacity
                )
                acc += result.output
                # pipeline fill amortizes across the whole layer; count the
                # compute + writeback portions per lowered mat-vec
                cycles += result.compute_cycles + result.writeback_cycles
                macs += result.macs
                nonzero += result.nonzero_columns
                skipped += result.skipped_columns
            output[:, oy, ox] = acc
    cycles += engine.config.pipeline_stages
    return ConvSimulationResult(
        output=output,
        cycles=cycles,
        macs=macs,
        nonzero_columns=nonzero,
        skipped_columns=skipped,
        positions=oh * ow,
    )
