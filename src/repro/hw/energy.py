"""Parametric area/power model calibrated to the paper's Table IX.

The paper reports synthesis/P&R results at CMOS 28 nm, 1.2 GHz:

========================  ===========  ==========
PE component              power (mW)   area (mm2)
========================  ===========  ==========
Memory (SRAMs)            3.575        0.178
Register (accumulators)   4.755        0.010
Combinational             10.48        0.015
Clock network             3.064        0.0005
Filler cell               --           0.0678
Total per PE              21.874       0.271
========================  ===========  ==========

Engine: 32 PEs = 700 mW / 8.67 mm2, others 3.4 mW / 0.18 mm2,
total 703.4 mW / 8.85 mm2.

We turn those into *densities* (power per SRAM bit accessed, area per SRAM
bit, power/area per multiplier-bit, per accumulator-bit...) anchored at the
default :class:`~repro.hw.config.PEConfig`.  Scaling the configuration
(more multipliers, more PEs, bigger SRAM) then produces first-order-correct
projections, and the default configuration reproduces Table IX exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import EngineConfig, PEConfig

__all__ = ["AreaPowerModel", "EngineBreakdown", "PEBreakdown"]

# Published calibration numbers (Table IX), 28 nm @ 1.2 GHz.
_REF = PEConfig()
_REF_PE_POWER_MW = {
    "memory": 3.575,
    "register": 4.755,
    "combinational": 10.48,
    "clock": 3.064,
}
_REF_PE_AREA_MM2 = {
    "memory": 0.178,
    "register": 0.01,
    "combinational": 0.015,
    "clock": 0.0005,
    "filler": 0.0678,
}
_REF_ENGINE_OTHERS_POWER_MW = 3.4
_REF_ENGINE_OTHERS_AREA_MM2 = 0.18
_REF_CLOCK_GHZ = 1.2

# Synthesis-report design point (pre-place-and-route, Table XI).  CirCNN
# only published synthesis results, so the paper's Table XI quotes
# PermDNN's synthesis numbers too: 6.64 mm2 and 0.236 W at 1.2 GHz --
# smaller than the P&R numbers because clock tree, filler cells and
# routing parasitics are absent before layout.
SYNTHESIS_AREA_MM2 = 6.64
SYNTHESIS_POWER_W = 0.236


@dataclass(frozen=True)
class PEBreakdown:
    """Per-PE power (mW) and area (mm2) by component."""

    power_mw: dict[str, float]
    area_mm2: dict[str, float]

    @property
    def total_power_mw(self) -> float:
        return sum(self.power_mw.values())

    @property
    def total_area_mm2(self) -> float:
        return sum(self.area_mm2.values())


@dataclass(frozen=True)
class EngineBreakdown:
    """Whole-engine power/area: PE array plus shared logic."""

    pe: PEBreakdown
    n_pe: int
    others_power_mw: float
    others_area_mm2: float

    @property
    def total_power_w(self) -> float:
        return (self.pe.total_power_mw * self.n_pe + self.others_power_mw) / 1e3

    @property
    def total_area_mm2(self) -> float:
        return self.pe.total_area_mm2 * self.n_pe + self.others_area_mm2


class AreaPowerModel:
    """Scale the Table IX breakdown to arbitrary configurations.

    Scaling rules (first order):

    - *memory*: area tracks total SRAM bits; dynamic power tracks bits
      accessed per cycle (one weight sub-bank row + permutation row).
    - *register*: tracks accumulator bits (``n_acc * acc_width``).
    - *combinational*: tracks multiplier count (multiplier array dominates;
      selectors scale with ``n_mul`` too).
    - *clock network*: tracks clocked elements, approximated by the
      register term.
    - dynamic power scales linearly with clock frequency.
    """

    def __init__(self, reference_clock_ghz: float = _REF_CLOCK_GHZ) -> None:
        self.reference_clock_ghz = reference_clock_ghz

    # -- scaling helpers -------------------------------------------------

    @staticmethod
    def _sram_bits(pe: PEConfig) -> int:
        return pe.weight_sram_bits + pe.perm_sram_bits

    @staticmethod
    def _sram_access_bits(pe: PEConfig) -> int:
        # per cycle: one row of the active weight sub-bank + one perm row
        return pe.weight_sram_width + pe.perm_sram_width

    @staticmethod
    def _register_bits(pe: PEConfig) -> int:
        return pe.n_acc * pe.acc_width

    def pe_breakdown(self, pe: PEConfig, clock_ghz: float = _REF_CLOCK_GHZ) -> PEBreakdown:
        """Power/area for one PE at the given clock."""
        freq_scale = clock_ghz / self.reference_clock_ghz
        mem_scale_area = self._sram_bits(pe) / self._sram_bits(_REF)
        mem_scale_power = self._sram_access_bits(pe) / self._sram_access_bits(_REF)
        reg_scale = self._register_bits(pe) / self._register_bits(_REF)
        comb_scale = (pe.n_mul * pe.mul_width**2) / (_REF.n_mul * _REF.mul_width**2)
        power = {
            "memory": _REF_PE_POWER_MW["memory"] * mem_scale_power * freq_scale,
            "register": _REF_PE_POWER_MW["register"] * reg_scale * freq_scale,
            "combinational": _REF_PE_POWER_MW["combinational"]
            * comb_scale
            * freq_scale,
            "clock": _REF_PE_POWER_MW["clock"] * reg_scale * freq_scale,
        }
        area = {
            "memory": _REF_PE_AREA_MM2["memory"] * mem_scale_area,
            "register": _REF_PE_AREA_MM2["register"] * reg_scale,
            "combinational": _REF_PE_AREA_MM2["combinational"] * comb_scale,
            "clock": _REF_PE_AREA_MM2["clock"] * reg_scale,
            "filler": _REF_PE_AREA_MM2["filler"]
            * (0.5 * mem_scale_area + 0.5 * comb_scale),
        }
        return PEBreakdown(power, area)

    def engine_breakdown(self, config: EngineConfig) -> EngineBreakdown:
        """Power/area for the whole computing engine."""
        pe = self.pe_breakdown(config.pe, config.clock_ghz)
        shared_scale = config.n_pe / 32  # activation SRAM/routing grow with PEs
        freq_scale = config.clock_ghz / self.reference_clock_ghz
        return EngineBreakdown(
            pe=pe,
            n_pe=config.n_pe,
            others_power_mw=_REF_ENGINE_OTHERS_POWER_MW * shared_scale * freq_scale,
            others_area_mm2=_REF_ENGINE_OTHERS_AREA_MM2 * shared_scale,
        )

    def engine_power_w(self, config: EngineConfig) -> float:
        return self.engine_breakdown(config).total_power_w

    def engine_area_mm2(self, config: EngineConfig) -> float:
        return self.engine_breakdown(config).total_area_mm2
