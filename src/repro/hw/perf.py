"""Throughput / efficiency metrics (the axes of Fig. 12 and Tables X-XI)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PerformanceReport", "equivalent_dense_ops"]


def equivalent_dense_ops(m: int, n: int) -> int:
    """Operations an *uncompressed* dense FC layer would need (2 per MAC).

    Both the paper and EIE report "equivalent" throughput: the dense work a
    compressed execution stands in for.
    """
    return 2 * m * n


@dataclass(frozen=True)
class PerformanceReport:
    """Headline numbers for one engine executing one workload.

    Attributes:
        name: engine/workload label.
        cycles: simulated cycle count.
        clock_ghz: clock frequency.
        compressed_ops: arithmetic ops actually performed (2 x MACs).
        dense_ops: ops of the equivalent dense layer.
        power_w: engine power.
        area_mm2: engine area (``None`` if unreported).
    """

    name: str
    cycles: int
    clock_ghz: float
    compressed_ops: int
    dense_ops: int
    power_w: float
    area_mm2: float | None = None

    @property
    def time_s(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def latency_us(self) -> float:
        return self.time_s * 1e6

    @property
    def gops(self) -> float:
        """Compressed-domain throughput in GOPS."""
        return self.compressed_ops / self.time_s / 1e9

    @property
    def equivalent_gops(self) -> float:
        """Dense-equivalent throughput in GOPS (the paper's headline unit)."""
        return self.dense_ops / self.time_s / 1e9

    @property
    def frames_per_second(self) -> float:
        return 1.0 / self.time_s

    @property
    def gops_per_watt(self) -> float:
        """Energy efficiency on dense-equivalent ops."""
        return self.equivalent_gops / self.power_w

    @property
    def gops_per_mm2(self) -> float:
        """Area efficiency on dense-equivalent ops."""
        if self.area_mm2 is None:
            raise ValueError(f"{self.name}: area unknown")
        return self.equivalent_gops / self.area_mm2

    @property
    def energy_j(self) -> float:
        return self.power_w * self.time_s

    def speedup_over(self, other: "PerformanceReport") -> float:
        """Throughput ratio on the same workload (frames/s ratio)."""
        if self.dense_ops != other.dense_ops:
            raise ValueError(
                "speedup comparison requires the same workload "
                f"({self.dense_ops} vs {other.dense_ops} dense ops)"
            )
        return other.time_s / self.time_s

    def area_efficiency_ratio(self, other: "PerformanceReport") -> float:
        return self.gops_per_mm2 / other.gops_per_mm2

    def energy_efficiency_ratio(self, other: "PerformanceReport") -> float:
        return self.gops_per_watt / other.gops_per_watt
