"""Cycle-level simulator of the PermDNN computing engine (Sec. IV).

Faithfully models the paper's execution scheme:

- **column-wise processing with zero skipping** (Fig. 5): only non-zero
  input activations are broadcast; each broadcast makes every PE process
  the matching weight-matrix column slice it owns;
- **structural load balance**: a PD block column holds exactly one non-zero
  per block, so all PEs retire the same work per column -- no straggler PE;
- **Case 1/2/3 scheduling** (Sec. IV-D) via :mod:`repro.hw.scheduler`;
- **group-written activation SRAM** (Fig. 6): outputs drain at
  ``N_ACTMB * W_ACTM / q`` values per cycle;
- optional **bit-accurate mode**: 16-bit fixed-point activations, 4-bit
  weight-shared weights decoded through a LUT, 24-bit accumulators with
  saturation counting -- mirroring the RTL datapath the simulator was the
  golden reference for.

The functional result is always returned so tests can bit-compare it with
the numpy golden model (:mod:`repro.hw.verify`).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core import BlockPermutedDiagonalMatrix
from repro.core.backends import (
    BackendUnavailableError,
    UnknownBackendError,
    get_backend,
    validate_backend_name,
)
from repro.hw.config import EngineConfig
from repro.hw.energy import AreaPowerModel
from repro.hw.fifo import FIFO
from repro.hw.perf import PerformanceReport, equivalent_dense_ops
from repro.hw.scheduler import cycles_per_column
from repro.hw.sram import SRAMBank
from repro.nn.quantization import (
    FixedPointFormat,
    WeightSharingCodebook,
    quantize_fixed_point,
)

__all__ = [
    "EngineImageBackendError",
    "PermDNNEngine",
    "SimulationResult",
    "export_engine_image",
    "load_engine_image",
]

# v2 added per-layer value-dtype tags (``layer{i}_value_dtype`` /
# ``layer{i}_fixed_point``); v1 images load as float64 layers.
_IMAGE_FORMAT_VERSION = 2
_IMAGE_MIN_FORMAT_VERSION = 1


class EngineImageBackendError(BackendUnavailableError):
    """An engine image pins a kernel backend this process cannot provide.

    Raised by :func:`load_engine_image` when a layer's stored backend name
    is unknown to (or unavailable in) the current process -- a typed error
    instead of the ``KeyError``/``ImportError`` a raw lookup would produce.
    Pass ``missing_backend="fallback"`` to load anyway on the default
    backend (with a warning).
    """


def export_engine_image(
    path,
    layers: list[tuple[BlockPermutedDiagonalMatrix, str | None]],
) -> None:
    """Persist a network image the engine can boot without index arithmetic.

    For every layer the image stores the packed ``q`` vector (in the
    layer's storage dtype: float32 values or int16 fixed-point codes ride
    through untouched), its value-dtype tag, the structure
    ``(ks, shape, p)``, the ActU mode, and the **serialized index plan**
    (:meth:`~repro.core.BlockPermutedDiagonalMatrix.plan_bytes`, warmed so
    transpose/CSR skeletons are included).  :func:`load_engine_image` then
    rebuilds the matrices via
    :meth:`~repro.core.BlockPermutedDiagonalMatrix.from_plan` -- the
    deployment path pays deserialization only, never the modulo index
    recomputation, which is what makes cold-starting a many-layer engine
    cheap.

    Args:
        path: target ``.npz`` file (or open binary file object).
        layers: ``(matrix, activation)`` pairs as accepted by
            :meth:`PermDNNEngine.run_network`.
    """
    payload: dict[str, np.ndarray] = {
        "image_version": np.int64(_IMAGE_FORMAT_VERSION),
        "num_layers": np.int64(len(layers)),
    }
    for idx, (matrix, activation) in enumerate(layers):
        payload[f"layer{idx}_q"] = matrix.to_q()
        payload[f"layer{idx}_ks"] = np.asarray(matrix.ks)
        payload[f"layer{idx}_p"] = np.int64(matrix.p)
        payload[f"layer{idx}_shape"] = np.asarray(matrix.shape, dtype=np.int64)
        payload[f"layer{idx}_activation"] = np.str_(activation or "")
        payload[f"layer{idx}_backend"] = np.str_(matrix.backend or "")
        payload[f"layer{idx}_value_dtype"] = np.str_(matrix.value_dtype)
        fmt = matrix.fixed_point
        payload[f"layer{idx}_fixed_point"] = np.asarray(
            [fmt.total_bits, fmt.frac_bits] if fmt is not None else [],
            dtype=np.int64,
        )
        payload[f"layer{idx}_plan"] = np.frombuffer(
            matrix.plan_bytes(), dtype=np.uint8
        )
    np.savez_compressed(path, **payload)


def load_engine_image(
    path,
    missing_backend: str = "error",
) -> list[tuple[BlockPermutedDiagonalMatrix, str | None]]:
    """Reload an :func:`export_engine_image` artifact, plans included.

    Layers exported from a matrix pinned to a kernel backend record that
    backend's name; loading re-pins it.  When the stored backend is not
    available in this process (e.g. an image built where numba was
    installed, loaded where it is not) the behaviour follows
    ``missing_backend``:

    - ``"error"`` (default): raise :class:`EngineImageBackendError`;
    - ``"fallback"``: warn and leave the layer on the process default
      backend.

    Returns:
        ``(matrix, activation)`` pairs ready for
        :meth:`PermDNNEngine.run_network`; every matrix carries its
        deserialized index plan, so no index arithmetic is recomputed,
        and its exported value dtype (v1 images load as float64).
    """
    if missing_backend not in ("error", "fallback"):
        raise ValueError(
            f"missing_backend must be 'error' or 'fallback', "
            f"got {missing_backend!r}"
        )
    layers: list[tuple[BlockPermutedDiagonalMatrix, str | None]] = []
    with np.load(path) as archive:
        version = int(archive["image_version"])
        if not _IMAGE_MIN_FORMAT_VERSION <= version <= _IMAGE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported engine-image version {version} (supported: "
                f"{_IMAGE_MIN_FORMAT_VERSION}..{_IMAGE_FORMAT_VERSION})"
            )
        for idx in range(int(archive["num_layers"])):
            ks = archive[f"layer{idx}_ks"]
            p = int(archive[f"layer{idx}_p"])
            mb, nb = ks.shape
            dtype_key = f"layer{idx}_value_dtype"
            if dtype_key in archive.files:
                value_dtype = str(archive[dtype_key])
                fmt_bits = archive[f"layer{idx}_fixed_point"]
                fixed_point = (
                    FixedPointFormat(*(int(v) for v in fmt_bits))
                    if fmt_bits.size
                    else None
                )
            else:  # v1 image: values were always float64
                value_dtype, fixed_point = "float64", None
            matrix = BlockPermutedDiagonalMatrix.from_plan(
                archive[f"layer{idx}_plan"].tobytes(),
                archive[f"layer{idx}_q"].reshape(mb, nb, p),
                value_dtype=value_dtype,
                fixed_point=fixed_point,
            )
            # Cross-check the plan against the image's own metadata so a
            # corrupted or hand-edited archive fails loudly here.
            shape = tuple(int(v) for v in archive[f"layer{idx}_shape"])
            if (
                matrix.shape != shape
                or matrix.p != p
                or not np.array_equal(matrix.ks, ks)
            ):
                raise ValueError(
                    f"layer {idx}: image metadata (shape={shape}, p={p}) "
                    f"does not match its serialized plan "
                    f"(shape={matrix.shape}, p={matrix.p})"
                )
            backend_key = f"layer{idx}_backend"
            stored = (
                str(archive[backend_key]) if backend_key in archive.files else ""
            )
            if stored:
                try:
                    get_backend(validate_backend_name(stored))
                except (UnknownBackendError, BackendUnavailableError) as exc:
                    if missing_backend == "fallback":
                        warnings.warn(
                            f"layer {idx}: stored kernel backend {stored!r} "
                            f"is unavailable in this process; falling back "
                            f"to the default backend ({exc})",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                    else:
                        raise EngineImageBackendError(
                            f"layer {idx} of engine image pins kernel "
                            f"backend {stored!r}, which is unavailable here; "
                            f"pass missing_backend='fallback' to load on "
                            f"the default backend instead"
                        ) from exc
                else:
                    matrix.set_backend(stored)
            activation = str(archive[f"layer{idx}_activation"]) or None
            layers.append((matrix, activation))
    return layers


@dataclass
class SimulationResult:
    """Everything one layer execution produced.

    Attributes:
        output: the computed output vector ``a = W x`` (post-activation if
            an activation was requested).
        cycles: total simulated cycles (pipeline fill + compute + drain).
        compute_cycles: cycles spent on column processing only.
        writeback_cycles: cycles draining outputs to activation SRAM.
        macs: multiply-accumulates actually performed.
        nonzero_columns: input activations processed after zero-skipping.
        skipped_columns: input activations skipped as zeros.
        utilization: MACs / (compute_cycles x peak MACs per cycle).
        case: scheduler case (1/2/3).
        saturations: accumulator saturation events (bit-accurate mode only).
        sram_stats: access counters per SRAM.
    """

    output: np.ndarray
    cycles: int
    compute_cycles: int
    writeback_cycles: int
    macs: int
    nonzero_columns: int
    skipped_columns: int
    utilization: float
    case: int
    saturations: int = 0
    sram_stats: dict = field(default_factory=dict)


class PermDNNEngine:
    """The 32-PE (configurable) PermDNN FC-layer computing engine.

    Args:
        config: hardware configuration (defaults to the paper's Table VIII).
        area_power: area/power model (defaults to the Table IX calibration).
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        area_power: AreaPowerModel | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.area_power = area_power or AreaPowerModel()
        pe = self.config.pe
        self.weight_sram = SRAMBank(
            "weight", pe.weight_sram_banks, pe.weight_sram_width, pe.weight_sram_depth
        )
        self.perm_sram = SRAMBank(
            "permutation", 1, pe.perm_sram_width, pe.perm_sram_depth
        )
        self.act_sram = SRAMBank(
            "activation",
            self.config.act_sram_banks,
            self.config.act_sram_width,
            self.config.act_sram_depth,
        )

    # ------------------------------------------------------------------

    @property
    def power_w(self) -> float:
        return self.area_power.engine_power_w(self.config)

    @property
    def area_mm2(self) -> float:
        return self.area_power.engine_area_mm2(self.config)

    def rows_per_pe(self, m: int) -> int:
        """``N_ROWPE``: weight-matrix rows owned by each PE."""
        return math.ceil(m / self.config.n_pe)

    def check_capacity(self, matrix: BlockPermutedDiagonalMatrix) -> None:
        """Verify the compressed layer fits the per-PE weight SRAM.

        With 4-bit weight sharing a 32-PE engine stores an 8M-parameter
        layer (the paper's over-design headroom claim).
        """
        weights_per_pe = math.ceil(matrix.nnz / self.config.n_pe)
        self.weight_sram.check_fits(weights_per_pe, self.config.weight_sharing_bits)
        # input + output activations must fit the activation SRAM
        self.act_sram.check_fits(
            matrix.shape[0] + matrix.shape[1], self.config.quant_bits
        )

    # ------------------------------------------------------------------

    def run_fc_layer(
        self,
        matrix: BlockPermutedDiagonalMatrix,
        x: np.ndarray,
        activation: str | None = None,
        bit_accurate: bool = False,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
    ) -> SimulationResult:
        """Execute ``a = act(W x)`` and report cycle-level behaviour.

        Args:
            matrix: the PD-compressed FC weight matrix.
            x: input activation vector of length ``n``.
            activation: ``None``, ``"relu"`` or ``"tanh"`` (the ActU modes).
            bit_accurate: run the quantized datapath (16-bit activations,
                4-bit weight-shared weights, 24-bit saturating accumulators).
            zero_skip: disable to measure what zero-skipping buys (ablation).
            enforce_capacity: reject layers that overflow the per-PE weight
                SRAM.  Disable only for compute-scaling studies (Fig. 13),
                where small PE counts would otherwise need more SRAM banks.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (matrix.shape[1],):
            raise ValueError(
                f"expected input of shape ({matrix.shape[1]},), got {x.shape}"
            )
        if enforce_capacity:
            self.check_capacity(matrix)
        config = self.config
        pe = config.pe

        saturations = 0
        if bit_accurate:
            output, saturations = self._bit_accurate_forward(matrix, x)
        else:
            output = matrix.matvec(x)
        if activation == "relu":
            output = np.maximum(output, 0.0)
        elif activation == "tanh":
            output = np.tanh(output)
        elif activation is not None:
            raise ValueError(f"unsupported activation {activation!r} (ActU has relu/tanh)")

        nnz_x = int(np.count_nonzero(x)) if zero_skip else x.size
        skipped = x.size - nnz_x
        n_rowpe = self.rows_per_pe(matrix.shape[0])
        schedule = cycles_per_column(n_rowpe, matrix.p, pe.n_mul, pe.n_acc)
        if schedule.case == 3:
            compute_cycles = math.ceil(nnz_x / schedule.columns_per_cycle)
        else:
            compute_cycles = int(schedule.cycles_per_column) * nnz_x
        writeback_cycles = math.ceil(
            matrix.shape[0] / config.activations_written_per_cycle
        )
        total_cycles = config.pipeline_stages + compute_cycles + writeback_cycles

        # exercise the FIFO model: every non-zero activation flows through
        fifo = FIFO(config.act_fifo_depth)
        for idx in range(min(nnz_x, config.act_fifo_depth)):
            fifo.push(idx)

        # average non-zeros per matrix column; exact when p divides (m, n)
        macs = int(round(nnz_x * matrix.nnz / matrix.shape[1]))
        # SRAM traffic: one weight row + one perm row per PE per compute
        # cycle; one activation read per processed column; grouped writes.
        self.weight_sram.read(compute_cycles)
        self.perm_sram.read(compute_cycles)
        self.act_sram.read(nnz_x)
        self.act_sram.write(writeback_cycles)

        peak = compute_cycles * config.n_pe * pe.n_mul
        utilization = macs / peak if peak else 0.0
        return SimulationResult(
            output=output,
            cycles=total_cycles,
            compute_cycles=compute_cycles,
            writeback_cycles=writeback_cycles,
            macs=macs,
            nonzero_columns=nnz_x,
            skipped_columns=skipped,
            utilization=min(utilization, 1.0),
            case=schedule.case,
            saturations=saturations,
            sram_stats={
                "weight": self.weight_sram.stats,
                "permutation": self.perm_sram.stats,
                "activation": self.act_sram.stats,
            },
        )

    def _bit_accurate_forward(
        self, matrix: BlockPermutedDiagonalMatrix, x: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Quantized datapath: LUT-decoded weights, fixed-point activations,
        saturating 24-bit accumulation."""
        config = self.config
        codebook = WeightSharingCodebook(bits=config.weight_sharing_bits, rng=0)
        codebook.fit(matrix.data)
        # like() shares the caller's cached index plan instead of rebuilding
        # the structure for the weight-shared copy.
        shared = matrix.like(codebook.apply(matrix.data))
        act_fmt = FixedPointFormat(config.quant_bits, config.quant_bits - 4)
        x_q = quantize_fixed_point(x, act_fmt)
        y = shared.matvec(x_q)
        acc_fmt = FixedPointFormat(config.pe.acc_width, config.quant_bits - 4)
        clipped = np.clip(y, acc_fmt.min_value, acc_fmt.max_value)
        saturations = int((clipped != y).sum())
        return clipped, saturations

    def run_fc_batch(
        self,
        matrix: BlockPermutedDiagonalMatrix,
        x_batch: np.ndarray,
        activation: str | None = None,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
    ) -> tuple[np.ndarray, int]:
        """Execute one FC layer over a batch of inputs.

        Inputs stream through back-to-back, so the pipeline fill is paid
        once; each sample contributes its own compute + writeback cycles
        (zero-skipping makes these input dependent).

        Args:
            matrix: the PD weight matrix.
            x_batch: inputs of shape ``(B, n)``.
            activation: optional ActU mode applied to every output.
            zero_skip: process only non-zero input entries.
            enforce_capacity: reject layers overflowing the per-PE SRAM.

        Returns:
            ``(outputs, total_cycles)`` with outputs of shape ``(B, m)``.
        """
        outputs, cycles, _ = self.run_fc_batch_detailed(
            matrix,
            x_batch,
            activation=activation,
            zero_skip=zero_skip,
            enforce_capacity=enforce_capacity,
        )
        return outputs, cycles

    def run_fc_batch_detailed(
        self,
        matrix: BlockPermutedDiagonalMatrix,
        x_batch: np.ndarray,
        activation: str | None = None,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
    ) -> tuple[np.ndarray, int, int]:
        """:meth:`run_fc_batch` plus the MAC count.

        This is the single home of the batch accounting (pipeline fill
        paid once, per-sample compute + writeback): the sharded serving
        runtime (:mod:`repro.serve`) runs its shards through here, which
        is what keeps sharded cycle/bit behaviour in lockstep with the
        unsharded baseline by construction.

        The functional result is one batched product
        (:meth:`~repro.core.BlockPermutedDiagonalMatrix.matmat`) instead
        of ``B`` python-level mat-vecs -- numerically identical to the
        per-sample :meth:`run_fc_layer` path (same backend, same
        accumulation order per output row) but it releases the GIL inside
        a single kernel call, which is what makes the serving runtime's
        shard threads (:mod:`repro.serve.server`) actually overlap.  The
        cycle accounting below is the per-sample model evaluated for the
        whole batch at once; every counter matches the sample-by-sample
        loop it replaced exactly.

        Returns:
            ``(outputs, total_cycles, macs)``; ``outputs`` is in the
            matrix's compute dtype (float32 storage serves float32).
        """
        x_batch = np.asarray(x_batch, dtype=np.float64)
        if x_batch.ndim != 2 or x_batch.shape[1] != matrix.shape[1]:
            raise ValueError(
                f"expected batch of shape (B, {matrix.shape[1]}), got "
                f"{x_batch.shape}"
            )
        if activation not in (None, "relu", "tanh"):
            raise ValueError(
                f"unsupported activation {activation!r} (ActU has relu/tanh)"
            )
        if enforce_capacity:
            self.check_capacity(matrix)
        config = self.config
        pe = config.pe

        outputs = matrix.matmat(x_batch)
        if activation == "relu":
            outputs = np.maximum(outputs, 0.0)
        elif activation == "tanh":
            outputs = np.tanh(outputs)

        batch = x_batch.shape[0]
        if zero_skip:
            nnz_per = np.count_nonzero(x_batch, axis=1)
        else:
            nnz_per = np.full(batch, x_batch.shape[1], dtype=np.int64)
        n_rowpe = self.rows_per_pe(matrix.shape[0])
        schedule = cycles_per_column(n_rowpe, matrix.p, pe.n_mul, pe.n_acc)
        if schedule.case == 3:
            compute_per = np.ceil(
                nnz_per / schedule.columns_per_cycle
            ).astype(np.int64)
        else:
            compute_per = int(schedule.cycles_per_column) * nnz_per
        compute_total = int(compute_per.sum())
        writeback = math.ceil(
            matrix.shape[0] / config.activations_written_per_cycle
        )
        total = config.pipeline_stages + compute_total + batch * writeback
        # Same rounding as run_fc_layer, sample by sample (round-half-even
        # on the exact per-sample expression, then summed).
        macs = sum(
            int(round(int(nnz_x) * matrix.nnz / matrix.shape[1]))
            for nnz_x in nnz_per
        )

        # exercise the FIFO model exactly as the per-sample path does
        for nnz_x in nnz_per:
            fifo = FIFO(config.act_fifo_depth)
            for idx in range(min(int(nnz_x), config.act_fifo_depth)):
                fifo.push(idx)

        # SRAM counters are additive, so the batch sum lands the same
        # totals as B per-sample calls.
        self.weight_sram.read(compute_total)
        self.perm_sram.read(compute_total)
        self.act_sram.read(int(nnz_per.sum()))
        self.act_sram.write(batch * writeback)
        return outputs, total, macs

    def run_network(
        self,
        layers: list[tuple[BlockPermutedDiagonalMatrix, str | None]],
        x: np.ndarray,
        bit_accurate: bool = False,
    ) -> tuple[np.ndarray, list[SimulationResult]]:
        """Execute a stack of FC layers end to end.

        Between layers, outputs are written to the activation SRAM and read
        back as the next layer's input (exactly the Fig. 6 loop); the
        dynamic sparsity each activation function produces is therefore
        skipped automatically in the next layer.

        Args:
            layers: ``(matrix, activation)`` pairs, input to output.
            x: network input vector.
            bit_accurate: run every layer on the quantized datapath.

        Returns:
            ``(final_output, per_layer_results)``.
        """
        results = []
        current = np.asarray(x, dtype=np.float64)
        for matrix, activation in layers:
            result = self.run_fc_layer(
                matrix, current, activation=activation, bit_accurate=bit_accurate
            )
            results.append(result)
            current = result.output
        return current, results

    # ------------------------------------------------------------------

    def performance(
        self, result: SimulationResult, workload_shape: tuple[int, int], name: str = "PermDNN"
    ) -> PerformanceReport:
        """Wrap a simulation into the headline-metric report."""
        m, n = workload_shape
        return PerformanceReport(
            name=name,
            cycles=result.cycles,
            clock_ghz=self.config.clock_ghz,
            compressed_ops=2 * result.macs,
            dense_ops=equivalent_dense_ops(m, n),
            power_w=self.power_w,
            area_mm2=self.area_mm2,
        )
