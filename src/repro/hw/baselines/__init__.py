"""Comparison engines: EIE (unstructured sparse) and CirCNN (circulant)."""

from repro.hw.baselines.eie import EIE_DESIGN_45NM, EIEConfig, EIESimulator
from repro.hw.baselines.circnn import (
    CIRCNN_DESIGN_45NM,
    CirCNNConfig,
    CirCNNSimulator,
)

__all__ = [
    "CIRCNN_DESIGN_45NM",
    "CirCNNConfig",
    "CirCNNSimulator",
    "EIEConfig",
    "EIESimulator",
    "EIE_DESIGN_45NM",
]
