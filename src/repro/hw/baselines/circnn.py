"""CirCNN simulator: the block-circulant FFT accelerator (Ding et al., MICRO'17).

CirCNN computes ``W_ij x_j = IFFT(FFT(w_ij) o FFT(x_j))`` per ``k x k``
circulant block.  The two properties PermDNN's comparison charges it for
(Sec. III-H / Table XI):

1. **complex arithmetic** -- one complex multiply costs 4 real multiplies
   (+2 adds), so a silicon budget of ``n_real_mul`` real multipliers
   sustains only ``n_real_mul / 4`` complex multiplies per cycle;
2. **no input sparsity** -- inputs are transformed to the frequency domain,
   where time-domain zeros vanish; every column is processed.

Cycle model: element-wise stage needs ``(m/k)(n/k) k`` complex multiplies
per inference; the FFT/IFFT stages add ``(n/k + m/k) (k/2) log2 k``
butterflies (each one complex multiply).  With weight FFTs precomputed
offline (CirCNN does this) only input FFTs and output IFFTs appear.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hw.perf import PerformanceReport, equivalent_dense_ops
from repro.hw.technology import DesignPoint, project_design

__all__ = ["CIRCNN_DESIGN_45NM", "CirCNNConfig", "CirCNNSimulator"]

# Published CirCNN numbers (Table XI, "reported" column).  CirCNN reported
# synthesis results only: no area, 0.08 W, 200 MHz, 0.8 equivalent TOPS.
CIRCNN_DESIGN_45NM = DesignPoint(
    name="CirCNN",
    tech_nm=45,
    clock_ghz=0.2,
    area_mm2=None,
    power_w=0.08,
)


@dataclass(frozen=True)
class CirCNNConfig:
    """CirCNN datapath parameters.

    Attributes:
        n_real_mul: real-multiplier budget per cycle (equalized to the
            PermDNN engine's multiplier count for mechanism comparisons).
        clock_ghz: clock frequency.
        power_w: power.
        fft_precomputed_weights: weight FFTs stored offline (CirCNN's
            deployment mode).
    """

    n_real_mul: int = 256
    clock_ghz: float = 0.2
    power_w: float = 0.08
    fft_precomputed_weights: bool = True

    @staticmethod
    def projected_28nm(n_real_mul: int = 256) -> "CirCNNConfig":
        point = project_design(CIRCNN_DESIGN_45NM, 28)
        return CirCNNConfig(
            n_real_mul=n_real_mul,
            clock_ghz=point.clock_ghz,
            power_w=point.power_w,
        )


@dataclass
class CirCNNResult:
    """Outcome of one CirCNN layer execution."""

    output: np.ndarray
    cycles: int
    complex_mults: int
    real_mult_ops: int  # 4x complex
    input_sparsity_wasted: float  # fraction of zero inputs it could not skip


class CirCNNSimulator:
    """Functional + cycle model of block-circulant FFT execution."""

    def __init__(self, config: CirCNNConfig | None = None) -> None:
        self.config = config or CirCNNConfig.projected_28nm()
        if self.config.n_real_mul < 4:
            raise ValueError("need at least 4 real multipliers (1 complex)")

    def run_fc_layer(
        self, first_columns: np.ndarray, x: np.ndarray
    ) -> CirCNNResult:
        """Execute a block-circulant ``a = W x``.

        Args:
            first_columns: array ``(mb, nb, k)`` -- the defining first column
                of every circulant block (CirCNN's stored representation).
            x: dense input of length ``nb * k`` (or shorter; zero-padded).

        Returns:
            Functional output plus the cycle/operation accounting.
        """
        first_columns = np.asarray(first_columns, dtype=np.float64)
        if first_columns.ndim != 3:
            raise ValueError(
                f"expected (mb, nb, k) block array, got {first_columns.shape}"
            )
        mb, nb, k = first_columns.shape
        x = np.asarray(x, dtype=np.float64)
        if x.size > nb * k:
            raise ValueError(f"input longer than {nb * k}")
        x_pad = np.zeros(nb * k)
        x_pad[: x.size] = x

        # functional: frequency-domain block processing (CirCNN's dataflow)
        xf = np.fft.rfft(x_pad.reshape(nb, k), axis=1)
        wf = np.fft.rfft(first_columns, axis=2)
        yf = np.einsum("ijf,jf->if", wf, xf)
        y = np.fft.irfft(yf, n=k, axis=1).reshape(mb * k)

        # cycle model: complex multiplies through n_real_mul/4 complex lanes
        elementwise = mb * nb * k
        butterflies = 0
        if k > 1:
            stage = (k // 2) * int(math.log2(k)) if (k & (k - 1)) == 0 else k * int(
                math.ceil(math.log2(k))
            )
            butterflies = (nb + mb) * stage  # input FFTs + output IFFTs
            if not self.config.fft_precomputed_weights:
                butterflies += mb * nb * stage
        complex_mults = elementwise + butterflies
        complex_lanes = self.config.n_real_mul // 4
        cycles = math.ceil(complex_mults / complex_lanes)
        wasted = float((x_pad == 0).mean())
        return CirCNNResult(
            output=y,
            cycles=cycles,
            complex_mults=complex_mults,
            real_mult_ops=4 * complex_mults,
            input_sparsity_wasted=wasted,
        )

    def performance(
        self,
        result: CirCNNResult,
        workload_shape: tuple[int, int],
        name: str = "CirCNN",
    ) -> PerformanceReport:
        m, n = workload_shape
        return PerformanceReport(
            name=name,
            cycles=result.cycles,
            clock_ghz=self.config.clock_ghz,
            compressed_ops=2 * result.complex_mults,
            dense_ops=equivalent_dense_ops(m, n),
            power_w=self.config.power_w,
            area_mm2=None,
        )
