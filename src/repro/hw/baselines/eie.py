"""EIE simulator: the unstructured-sparse FC accelerator (Han et al., ISCA'16).

EIE stores pruned weights in a CSC-like format (4-bit virtual weight +
4-bit relative row index), interleaves matrix rows across 64 PEs, and
broadcasts each non-zero input activation; every PE then walks its own
slice of that column at one MAC per cycle.  Because the non-zeros of an
unstructured matrix are distributed unevenly, the PE with the most work
gates progress -- the **load imbalance** PermDNN's structure eliminates.
Activation FIFOs decouple PEs from the broadcast, hiding imbalance only
within a ``fifo_depth`` window.

The cycle model here is an exact event simulation of that scheme:

- ``start_p(j) = max(finish_p(j-1), broadcast(j))``
- ``finish_p(j) = start_p(j) + count_p(j)``
- ``broadcast(j)`` stalls until every PE has FIFO space, i.e. until all
  PEs have *started* column ``j - fifo_depth``.

With ``fifo_depth=1`` this degenerates to per-column synchronization
(``sum_j max_p count_p(j)``); with unbounded FIFOs it approaches the
load-balance bound (``max_p sum_j count_p(j)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.hw.perf import PerformanceReport, equivalent_dense_ops
from repro.hw.technology import DesignPoint, project_design

__all__ = ["EIEConfig", "EIESimulator", "EIE_DESIGN_45NM"]

# Published EIE headline numbers (Table X, "reported" column).
EIE_DESIGN_45NM = DesignPoint(
    name="EIE",
    tech_nm=45,
    clock_ghz=0.8,
    area_mm2=40.8,
    power_w=0.59,
)


@dataclass(frozen=True)
class EIEConfig:
    """EIE microarchitecture parameters.

    Attributes:
        n_pe: processing elements (64 in the paper's design).
        fifo_depth: activation-FIFO depth decoupling PEs from broadcast.
        weight_bits: virtual weight tag width (4).
        index_bits: relative row index width (4).
        pointer_overhead_cycles: cycles each PE spends fetching its CSC
            column-pointer pair per broadcast activation.  EIE reads two
            pointer banks before any MAC of a column can issue; this is
            the per-column address-calculation overhead PermDNN's modulo
            addressing eliminates.
        clock_ghz: clock frequency (projected to 28 nm by default).
        power_w: total power.
        area_mm2: die area (projected).
    """

    n_pe: int = 64
    fifo_depth: int = 8
    weight_bits: int = 4
    index_bits: int = 4
    pointer_overhead_cycles: int = 1
    clock_ghz: float = field(default=0.0)
    power_w: float = 0.59
    area_mm2: float = 0.0

    @staticmethod
    def projected_28nm(
        fifo_depth: int = 8, pointer_overhead_cycles: int = 1
    ) -> "EIEConfig":
        """The paper's comparison point: EIE projected from 45 to 28 nm."""
        point = project_design(EIE_DESIGN_45NM, 28)
        return EIEConfig(
            n_pe=64,
            fifo_depth=fifo_depth,
            pointer_overhead_cycles=pointer_overhead_cycles,
            clock_ghz=point.clock_ghz,
            power_w=point.power_w,
            area_mm2=point.area_mm2,
        )


@dataclass
class EIEResult:
    """Outcome of one EIE layer execution."""

    output: np.ndarray
    cycles: int
    macs: int
    nonzero_columns: int
    load_imbalance: float  # cycles / load-balance lower bound
    storage_bits: int


class EIESimulator:
    """Event-accurate EIE model executing an unstructured sparse M x V."""

    def __init__(self, config: EIEConfig | None = None) -> None:
        self.config = config or EIEConfig.projected_28nm()
        if self.config.clock_ghz <= 0:
            raise ValueError(
                "EIEConfig needs a clock; use EIEConfig.projected_28nm()"
            )

    def run_fc_layer(self, weight: sparse.spmatrix, x: np.ndarray) -> EIEResult:
        """Execute ``a = W x`` for a sparse ``W`` and (sparse-ish) ``x``.

        Args:
            weight: any scipy sparse matrix of shape ``(m, n)``.
            x: dense input vector; zeros are skipped by the broadcast unit.
        """
        weight = sparse.csc_matrix(weight)
        x = np.asarray(x, dtype=np.float64)
        m, n = weight.shape
        if x.shape != (n,):
            raise ValueError(f"expected input of shape ({n},), got {x.shape}")
        output = weight @ x

        nonzero_cols = np.flatnonzero(x)
        counts = self._per_pe_column_counts(weight, nonzero_cols)
        macs = int(counts.sum())
        # every PE pays the column-pointer fetch for every broadcast
        work = counts + self.config.pointer_overhead_cycles
        cycles = self._event_simulate(work)
        balance_bound = int(counts.sum(axis=0).max()) if counts.size else 0
        imbalance = cycles / balance_bound if balance_bound else 1.0
        storage = weight.nnz * (
            self.config.weight_bits + self.config.index_bits
        ) + n * 32  # column pointers
        return EIEResult(
            output=output,
            cycles=cycles,
            macs=macs,
            nonzero_columns=nonzero_cols.size,
            load_imbalance=imbalance,
            storage_bits=int(storage),
        )

    def _per_pe_column_counts(
        self, weight: sparse.csc_matrix, nonzero_cols: np.ndarray
    ) -> np.ndarray:
        """``counts[j_idx, pe]``: weights PE must process for each column."""
        n_pe = self.config.n_pe
        counts = np.zeros((nonzero_cols.size, n_pe), dtype=np.int64)
        indptr, indices = weight.indptr, weight.indices
        for j_idx, col in enumerate(nonzero_cols):
            rows = indices[indptr[col] : indptr[col + 1]]
            counts[j_idx] = np.bincount(rows % n_pe, minlength=n_pe)
        return counts

    def _event_simulate(self, counts: np.ndarray) -> int:
        """Exact start/finish recurrence described in the module docstring."""
        if counts.size == 0:
            return 0
        num_cols, n_pe = counts.shape
        depth = self.config.fifo_depth
        finish = np.zeros(n_pe)
        starts = np.zeros((num_cols, n_pe))
        for j in range(num_cols):
            broadcast = starts[j - depth].max() if j >= depth else 0.0
            start = np.maximum(finish, broadcast)
            starts[j] = start
            finish = start + counts[j]
        return int(finish.max())

    def performance(
        self, result: EIEResult, workload_shape: tuple[int, int], name: str = "EIE"
    ) -> PerformanceReport:
        m, n = workload_shape
        return PerformanceReport(
            name=name,
            cycles=result.cycles,
            clock_ghz=self.config.clock_ghz,
            compressed_ops=2 * result.macs,
            dense_ops=equivalent_dense_ops(m, n),
            power_w=self.config.power_w,
            area_mm2=self.config.area_mm2,
        )

    @staticmethod
    def prune_reference(
        dense_shape: tuple[int, int],
        density: float,
        rng: np.random.Generator | int | None = 0,
    ) -> sparse.csc_matrix:
        """A random unstructured sparse matrix at the given density
        (the magnitude-pruned models EIE executes)."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        m, n = dense_shape
        nnz = int(round(m * n * density))
        flat = rng.choice(m * n, size=nnz, replace=False)
        rows, cols = np.unravel_index(flat, (m, n))
        values = rng.normal(size=nnz)
        return sparse.csc_matrix((values, (rows, cols)), shape=(m, n))
