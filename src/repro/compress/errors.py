"""Typed errors for the offline compression factory.

Mirrors the repo's established error idiom (compare
:class:`repro.hw.UnknownWorkloadError`,
:class:`repro.nn.serialization.UnsupportedLayerError`): command and
library code raise these, and only :func:`repro.cli.main` converts
user-input errors into ``SystemExit``.
"""

from __future__ import annotations

__all__ = ["CompressionError", "UnknownStrategyError", "ZooEntryError"]


class CompressionError(Exception):
    """Base class for compression-factory failures.

    Raised directly when the pipeline meets something it cannot turn
    into a servable PD model (an unconvertible layer kind, a bundle
    that fails post-export verification); the registry-lookup subclasses
    below cover bad user input.
    """


class UnknownStrategyError(CompressionError, LookupError):
    """A structure-search strategy name not present in the registry."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown compression strategy {name!r} "
            f"(expected one of {self.known})"
        )


class ZooEntryError(CompressionError, LookupError):
    """A model-zoo entry name not present in the factory manifest."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown zoo entry {name!r} (expected one of {self.known})"
        )
