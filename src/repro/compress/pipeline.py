"""Dense model -> searched PD structure -> fine-tune -> staged bundle.

The factory pipeline behind ``repro compress``:

1. **Search**: every dense weight layer gets per-block permutation
   parameters from a :mod:`~repro.compress.strategies` strategy
   (retained-Frobenius-mass selection; the ``anneal`` strategy first
   applies function-preserving hidden-unit permutations at FC->FC
   interfaces).
2. **Convert**: dense layers are replaced by their PD counterparts
   (:meth:`PermDiagLinear.from_matrix` / :meth:`PermDiagConv2D.from_tensor`
   / a PD :class:`LSTMCell`), biases are dropped (the engine's datapath
   computes ``W x`` only -- fine-tuning compensates), and layers whose
   shapes cannot carry the requested block size are kept at ``p = 1``
   (functionally dense but servable).
3. **Fine-tune**: the structure-preserving trainer recovers accuracy
   (classifiers) or a distillation loop recovers state fidelity
   (recurrent cells).  Training stays float64.
4. **Export + verify**: a v3 staged bundle is written with
   :func:`repro.serve.export_model_bundle` at the requested value dtype,
   then reloaded under the runtime sanitizer:
   :func:`verify_bundle` pins **zero** index-plan builds during the cold
   start and bit-identical outputs vs serving the live model.

Everything returns a structured :class:`~repro.compress.report.CompressionReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.compress.errors import CompressionError
from repro.compress.report import CompressionReport, LayerReport, PhaseTimings
from repro.compress.strategies import (
    CompressionStrategy,
    FCInterface,
    get_strategy,
)
from repro.core import BlockPermDiagTensor4D, BlockPermutedDiagonalMatrix
from repro.nn import (
    Adam,
    CrossEntropyLoss,
    Dropout,
    Flatten,
    Linear,
    MaxPool2D,
    PermDiagConv2D,
    PermDiagLinear,
    ReLU,
    Sequential,
    Tanh,
    Trainer,
    evaluate_classifier,
)
from repro.nn.layers.conv2d import Conv2D
from repro.nn.layers.recurrent import LSTMCell

__all__ = [
    "CompressionResult",
    "cell_fidelity",
    "compress_arrays",
    "compress_cell",
    "compress_model",
    "convert_cell",
    "convert_model",
    "distill_cell",
    "verify_bundle",
]

_GATES = ("i", "f", "g", "o")


@dataclass
class CompressionResult:
    """A compressed model plus its report and (optional) bundle location."""

    model: object
    report: CompressionReport
    bundle_dir: str | None = None


# ----------------------------------------------------------------------
# Conversion
# ----------------------------------------------------------------------


def _as_rng(rng) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _flatten_layers(model) -> list:
    """Depth-first layer list of (possibly nested) Sequential models."""
    if isinstance(model, Sequential):
        flat: list = []
        for layer in model.layers:
            flat.extend(_flatten_layers(layer))
        return flat
    return [model]


def _clone_passthrough(layer):
    """Fresh instance of a weight-free layer (never share forward caches)."""
    if isinstance(layer, ReLU):
        return ReLU()
    if isinstance(layer, Tanh):
        return Tanh()
    if isinstance(layer, Flatten):
        return Flatten()
    if isinstance(layer, Dropout):
        return Dropout(layer.rate)
    if isinstance(layer, MaxPool2D):
        return MaxPool2D(layer.kernel_size, layer.stride)
    return None


def _effective_p(requested: int, limit: int) -> tuple[int, str]:
    """Clamp the block size to what the layer's shape can carry."""
    if requested <= 1:
        return 1, ""
    if limit < requested:
        return 1, f"p clamped to 1 (requested {requested} > min dim {limit})"
    return int(requested), ""


def _bias_note(layer) -> str:
    bias = getattr(layer, "bias", None)
    if bias is not None and np.any(bias.value):
        return "bias dropped (engine serves W*x only)"
    return ""


def _retained_fraction(dense: np.ndarray, kept_dense: np.ndarray) -> float:
    total = float((dense**2).sum())
    if total == 0.0:
        return 1.0
    return float((kept_dense**2).sum()) / total


def _join_notes(*notes: str) -> str:
    return "; ".join(note for note in notes if note)


def convert_model(
    model,
    *,
    fc_p: int = 8,
    conv_p: int = 4,
    head_p: int = 1,
    strategy: str | CompressionStrategy = "greedy",
    rng: np.random.Generator | int | None = None,
) -> tuple[Sequential, list[LayerReport]]:
    """Replace every dense weight layer of ``model`` by a PD layer.

    The input model is never mutated: weights are copied, weight-free
    layers are re-instantiated, and already-PD layers are re-wrapped
    around copied storage.  The final weight-bearing layer gets
    ``head_p`` (default 1: a servable dense-equivalent classifier head);
    everything else gets ``fc_p`` / ``conv_p``, clamped to 1 where the
    layer is narrower than the requested block.  Biases are dropped so
    the result satisfies the serving stack's zero-bias contract.

    Returns:
        ``(compressed, layer_reports)`` -- a fresh :class:`Sequential`
        plus one :class:`LayerReport` per weight layer.
    """
    strategy = get_strategy(strategy)
    rng = _as_rng(rng)
    flat = _flatten_layers(model)
    weight_kinds = (PermDiagLinear, Linear, Conv2D)  # Conv2D covers PD conv
    weight_positions = [
        i for i, layer in enumerate(flat) if isinstance(layer, weight_kinds)
    ]
    head_pos = weight_positions[-1] if weight_positions else -1

    # Pass 1: plan each position (copy weights; no structure chosen yet).
    plans: list[dict] = []
    for index, layer in enumerate(flat):
        if isinstance(layer, PermDiagLinear):
            plans.append({"kind": "pd-fc", "layer": layer})
        elif isinstance(layer, Linear):
            requested = head_p if index == head_pos else fc_p
            p_eff, clamp_note = _effective_p(
                requested, min(layer.out_features, layer.in_features)
            )
            plans.append({
                "kind": "fc",
                "layer": layer,
                "weight": layer.weight.value.copy(),
                "p": p_eff,
                "note": _join_notes(clamp_note, _bias_note(layer)),
            })
        elif isinstance(layer, PermDiagConv2D):
            plans.append({"kind": "pd-conv", "layer": layer})
        elif isinstance(layer, Conv2D):
            requested = head_p if index == head_pos else conv_p
            p_eff, clamp_note = _effective_p(
                requested, min(layer.out_channels, layer.in_channels)
            )
            plans.append({
                "kind": "conv",
                "layer": layer,
                "weight": layer.weight.value.copy(),
                "p": p_eff,
                "note": _join_notes(clamp_note, _bias_note(layer)),
            })
        else:
            clone = _clone_passthrough(layer)
            if clone is None:
                raise CompressionError(
                    f"cannot compress layer {index} ({layer!r}): no PD "
                    f"conversion rule for this layer kind"
                )
            plans.append({
                "kind": "copy",
                "layer": layer,
                "clone": clone,
                "elementwise": isinstance(layer, (ReLU, Tanh, Dropout)),
            })

    # Pass 2: cross-layer refinement at dense FC->FC interfaces (the
    # anneal strategy permutes hidden units in the copied weights; greedy
    # leaves this a no-op).
    interfaces: list[FCInterface] = []
    last_fc: dict | None = None
    for plan in plans:
        if plan["kind"] == "fc":
            if last_fc is not None and (last_fc["p"] > 1 or plan["p"] > 1):
                interfaces.append(
                    FCInterface(
                        upper=last_fc["weight"],
                        lower=plan["weight"],
                        p_upper=last_fc["p"],
                        p_lower=plan["p"],
                    )
                )
            last_fc = plan
        elif plan["kind"] == "copy" and plan["elementwise"]:
            continue  # elementwise maps preserve the hidden-unit identity
        else:
            last_fc = None
    strategy.refine(interfaces, rng)

    # Pass 3: choose shifts, project, and build the compressed model.
    layers: list = []
    reports: list[LayerReport] = []
    for plan in plans:
        kind = plan["kind"]
        source = plan["layer"]
        if kind == "copy":
            layers.append(plan["clone"])
            continue
        if kind == "fc":
            weight, p = plan["weight"], plan["p"]
            ks = strategy.select_ks(weight, p, rng)
            matrix = BlockPermutedDiagonalMatrix.from_dense(
                weight, p, ks=ks, value_dtype="float64"
            )
            new_layer = PermDiagLinear.from_matrix(matrix)
            retained = _retained_fraction(weight, matrix.to_dense())
            stored = matrix.nnz
        elif kind == "conv":
            weight, p = plan["weight"], plan["p"]
            kernel_energy = np.sqrt((weight**2).sum(axis=(2, 3)))
            ks = strategy.select_ks(kernel_energy, p, rng)
            # The plane dtype must be pinned: lowering quantizes every
            # per-offset matrix through it, and training runs at float64
            # regardless of the process serving default.
            tensor = BlockPermDiagTensor4D.from_dense(
                weight, p, ks=ks, value_dtype="float64"
            )
            new_layer = PermDiagConv2D.from_tensor(
                tensor, stride=source.stride, padding=source.padding
            )
            retained = _retained_fraction(weight, tensor.to_dense())
            stored = new_layer.nnz
        elif kind == "pd-fc":
            matrix = source.matrix.like(source.matrix.data.copy())
            new_layer = PermDiagLinear.from_matrix(matrix)
            weight, p = matrix.to_dense(), source.p
            retained = 1.0
            stored = matrix.nnz
            plan["note"] = _join_notes("already PD", _bias_note(source))
        else:  # pd-conv
            tensor = source.to_tensor()
            new_layer = PermDiagConv2D.from_tensor(
                tensor, stride=source.stride, padding=source.padding
            )
            weight, p = tensor.to_dense(), source.p
            retained = 1.0
            stored = new_layer.nnz
            plan["note"] = _join_notes("already PD", _bias_note(source))
        layers.append(new_layer)
        reports.append(
            LayerReport(
                name=repr(source),
                kind="conv" if kind.endswith("conv") else "fc",
                dense_shape=list(weight.shape),
                p=int(p),
                dense_weights=int(weight.size),
                stored_weights=int(stored),
                retained_mass=retained,
                note=plan["note"],
            )
        )
    return Sequential(*layers), reports


def convert_cell(
    cell: LSTMCell,
    *,
    p: int = 8,
    strategy: str | CompressionStrategy = "greedy",
    rng: np.random.Generator | int | None = None,
) -> tuple[LSTMCell, list[LayerReport]]:
    """PD-compress all 8 gate matrices of a dense :class:`LSTMCell`.

    Gate biases are copied over (the recurrent serving stage applies
    them, unlike the FC/conv datapaths).  Hidden-unit permutation
    refinement does not apply to cells -- a permutation would also
    permute the served ``[h | c]`` layout -- so every strategy reduces
    to its per-matrix shift selection here.
    """
    if cell.p is not None:
        raise CompressionError(
            "cell already uses PD gate ops; compress_cell expects a dense "
            "LSTMCell (constructed with p=None)"
        )
    strategy = get_strategy(strategy)
    rng = _as_rng(rng)
    p_eff, clamp_note = _effective_p(
        p, min(cell.input_size, cell.hidden_size)
    )
    pd = LSTMCell(cell.input_size, cell.hidden_size, p=p_eff, rng=0)
    reports: list[LayerReport] = []
    for group, src_ops, dst_ops in (
        ("W", cell.w_ops, pd.w_ops),
        ("U", cell.u_ops, pd.u_ops),
    ):
        for gate in _GATES:
            weight = src_ops[gate].weight.value
            ks = strategy.select_ks(weight, p_eff, rng)
            projected = BlockPermutedDiagonalMatrix.from_dense(
                weight, p_eff, ks=ks, value_dtype="float64"
            )
            target = dst_ops[gate]
            target.matrix.set_structure(ks=ks)
            target.weight.value[...] = projected.data
            reports.append(
                LayerReport(
                    name=f"LSTM.{group}[{gate}]",
                    kind="lstm-gate",
                    dense_shape=list(weight.shape),
                    p=p_eff,
                    dense_weights=int(weight.size),
                    stored_weights=int(projected.nnz),
                    retained_mass=_retained_fraction(
                        weight, projected.to_dense()
                    ),
                    note=clamp_note,
                )
            )
    for gate in _GATES:
        pd.biases[gate].value[...] = cell.biases[gate].value
    return pd, reports


def compress_arrays(
    named_arrays: dict[str, np.ndarray],
    p: int,
    *,
    strategy: str | CompressionStrategy = "greedy",
    value_dtype: str | None = None,
    fixed_point=None,
    rng: np.random.Generator | int | None = None,
) -> tuple[dict[str, BlockPermutedDiagonalMatrix], list[LayerReport]]:
    """Compress a raw checkpoint: name -> 2-D weight array.

    The entry point for checkpoints that are not :mod:`repro.nn` models;
    each array gets searched shifts and an L2-optimal projection, at the
    requested storage dtype.
    """
    strategy = get_strategy(strategy)
    rng = _as_rng(rng)
    matrices: dict[str, BlockPermutedDiagonalMatrix] = {}
    reports: list[LayerReport] = []
    for name, array in named_arrays.items():
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise CompressionError(
                f"array {name!r} has shape {array.shape}; compress_arrays "
                f"handles 2-D weight matrices (use convert_model for conv "
                f"tensors)"
            )
        p_eff, clamp_note = _effective_p(p, min(array.shape))
        ks = strategy.select_ks(array, p_eff, rng)
        matrix = BlockPermutedDiagonalMatrix.from_dense(
            array, p_eff, ks=ks, value_dtype=value_dtype,
            fixed_point=fixed_point,
        )
        matrices[name] = matrix
        reports.append(
            LayerReport(
                name=name,
                kind="fc",
                dense_shape=list(array.shape),
                p=p_eff,
                dense_weights=int(array.size),
                stored_weights=int(matrix.nnz),
                retained_mass=_retained_fraction(array, matrix.to_dense()),
                note=clamp_note,
            )
        )
    return matrices, reports


# ----------------------------------------------------------------------
# Recurrent fidelity + distillation
# ----------------------------------------------------------------------


def _cell_probe(
    cell: LSTMCell, batch: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    x = rng.normal(size=(batch, cell.input_size))
    h = 0.5 * rng.normal(size=(batch, cell.hidden_size))
    c = 0.5 * rng.normal(size=(batch, cell.hidden_size))
    return x, h, c


def cell_fidelity(
    cell: LSTMCell,
    reference: LSTMCell,
    batch: int = 256,
    seed: int = 0,
) -> float:
    """``1 - relative L2 error`` of ``[h | c]`` vs ``reference`` on a
    seeded batch (1.0 = identical step outputs, clipped at 0)."""
    x, h0, c0 = _cell_probe(reference, batch, np.random.default_rng(seed))
    h_ref, c_ref, _ = reference.step(x, h0, c0)
    h, c, _ = cell.step(x, h0, c0)
    err = float(np.sqrt(((h - h_ref) ** 2).sum() + ((c - c_ref) ** 2).sum()))
    norm = float(np.sqrt((h_ref**2).sum() + (c_ref**2).sum()))
    if norm == 0.0:
        return 1.0 if err == 0.0 else 0.0
    return max(0.0, 1.0 - err / norm)


def distill_cell(
    cell: LSTMCell,
    reference: LSTMCell,
    *,
    steps: int = 200,
    batch_size: int = 32,
    lr: float = 1e-3,
    seed: int = 0,
) -> None:
    """Fine-tune a PD cell to match the dense cell's step map.

    Gradient descent on the squared error of ``(h, c)`` against the
    dense reference over seeded random ``(x, h_prev, c_prev)`` probes,
    backpropagated with the cell's structure-preserving
    :meth:`~repro.nn.layers.recurrent.LSTMCell.step_backward`.
    """
    optimizer = Adam(cell.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        x, h0, c0 = _cell_probe(reference, batch_size, rng)
        h_ref, c_ref, _ = reference.step(x, h0, c0)
        h, c, cache = cell.step(x, h0, c0)
        optimizer.zero_grad()
        cell.step_backward((h - h_ref) / batch_size, (c - c_ref) / batch_size, cache)
        optimizer.step()


# ----------------------------------------------------------------------
# Bundle verification
# ----------------------------------------------------------------------


def verify_bundle(
    directory,
    model,
    inputs: np.ndarray,
    *,
    num_shards: int,
    value_dtype: str | None = None,
    fixed_point=None,
    input_hw: tuple[int, int] | None = None,
) -> bool:
    """Cold-start ``directory`` and pin the factory's output contract.

    Two checks, both raising :class:`CompressionError` on failure:

    - the sanitized :meth:`ModelServer.from_bundle` cold start performs
      **zero** index-plan builds (every stage reloads a serialized plan);
    - the bundle's served outputs are bit-identical to serving the live
      ``model`` through :meth:`ModelServer.from_model` at the same value
      dtype (which ties the bundle to the model at any storage precision).
    """
    from repro.debug import sanitize
    from repro.serve import ModelServer

    reference = ModelServer.from_model(
        model,
        input_hw=input_hw,
        value_dtype=value_dtype,
        fixed_point=fixed_point,
        num_shards=num_shards,
        num_threads=1,
    )
    reference.submit_many(inputs)
    expected = np.stack(reference.drain().outputs)
    with sanitize() as guard:
        server = ModelServer.from_bundle(directory, num_threads=1)
        server.submit_many(inputs)
        served = np.stack(server.drain().outputs)
        builds = guard.stats.plan_builds
        rebuilds = guard.stats.plan_rebuilds
    if builds or rebuilds:
        raise CompressionError(
            f"bundle at {directory} cold-started with {builds} index-plan "
            f"build(s) and {rebuilds} rebuild(s); staged bundles must "
            f"reload serialized plans only"
        )
    if served.shape != expected.shape or not np.array_equal(served, expected):
        raise CompressionError(
            f"bundle at {directory} serves outputs that differ from the "
            f"live model's serving pipeline"
        )
    return True


def _serving_inputs(x: np.ndarray, limit: int = 8) -> np.ndarray:
    """Flatten a probe batch to the server's (B, features) request shape."""
    probe = np.asarray(x[:limit], dtype=np.float64)
    return probe.reshape(probe.shape[0], -1)


# ----------------------------------------------------------------------
# Full pipelines
# ----------------------------------------------------------------------


def compress_model(
    model,
    data: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    *,
    name: str = "model",
    fc_p: int = 8,
    conv_p: int = 4,
    head_p: int = 1,
    strategy: str | CompressionStrategy = "greedy",
    value_dtype: str | None = None,
    fixed_point=None,
    finetune_epochs: int = 2,
    lr: float = 1e-3,
    batch_size: int = 64,
    seed: int = 0,
    num_shards: int = 2,
    input_hw: tuple[int, int] | None = None,
    bundle_dir=None,
    verify: bool = True,
) -> CompressionResult:
    """The full classifier pipeline: search, convert, fine-tune, export.

    Args:
        model: dense (or mixed) model to compress; never mutated.
        data: ``(x_train, y_train, x_test, y_test)``.
        name: model name recorded in the report.
        fc_p / conv_p / head_p: requested block sizes (head = final
            weight layer; 1 keeps it functionally dense but servable).
        strategy: structure-search strategy name or instance.
        value_dtype / fixed_point: bundle storage precision (training
            stays float64; quantization happens at export).
        finetune_epochs / lr / batch_size / seed: fine-tuning recipe.
        num_shards: shard count baked into the exported bundle.
        input_hw: first conv stage's spatial input (required iff conv).
        bundle_dir: where to export the v3 staged bundle (skip if None).
        verify: cold-start the bundle and pin zero plan builds +
            bit-identical serving (see :func:`verify_bundle`).
    """
    from repro.metrics import model_storage_report
    from repro.serve import export_model_bundle

    x_train, y_train, x_test, y_test = data
    strategy = get_strategy(strategy)
    timings = PhaseTimings()

    dense_metric = evaluate_classifier(model, x_test, y_test)

    start = time.perf_counter()
    compressed, layer_reports = convert_model(
        model,
        fc_p=fc_p,
        conv_p=conv_p,
        head_p=head_p,
        strategy=strategy,
        rng=seed,
    )
    timings.search_s = time.perf_counter() - start
    projected_metric = evaluate_classifier(compressed, x_test, y_test)

    start = time.perf_counter()
    if finetune_epochs > 0:
        Trainer(
            compressed,
            Adam(compressed.parameters(), lr=lr),
            CrossEntropyLoss(),
            batch_size=batch_size,
            rng=seed,
        ).fit(x_train, y_train, epochs=finetune_epochs)
    timings.finetune_s = time.perf_counter() - start
    finetuned_metric = evaluate_classifier(compressed, x_test, y_test)

    storage = model_storage_report(compressed)
    verified = False
    if bundle_dir is not None:
        start = time.perf_counter()
        export_model_bundle(
            bundle_dir,
            compressed,
            num_shards,
            value_dtype=value_dtype,
            fixed_point=fixed_point,
            input_hw=input_hw,
        )
        timings.export_s = time.perf_counter() - start
        if verify:
            verified = verify_bundle(
                bundle_dir,
                compressed,
                _serving_inputs(x_test),
                num_shards=num_shards,
                value_dtype=value_dtype,
                fixed_point=fixed_point,
                input_hw=input_hw,
            )

    report = CompressionReport(
        model=name,
        strategy=strategy.name,
        value_dtype=value_dtype or "float64",
        metric_name="top1_accuracy",
        dense_metric=dense_metric,
        projected_metric=projected_metric,
        finetuned_metric=finetuned_metric,
        dense_weights=storage.dense_weights,
        stored_weights=storage.stored_weights,
        compression_ratio=storage.compression_ratio,
        finetune_epochs=finetune_epochs,
        num_shards=num_shards,
        seed=seed,
        verified=verified,
        layers=layer_reports,
        timings=timings,
    )
    return CompressionResult(compressed, report, bundle_dir)


def compress_cell(
    cell: LSTMCell,
    *,
    name: str = "nmt",
    p: int = 8,
    strategy: str | CompressionStrategy = "greedy",
    value_dtype: str | None = None,
    fixed_point=None,
    distill_steps: int = 200,
    lr: float = 1e-3,
    batch_size: int = 32,
    seed: int = 0,
    num_shards: int = 2,
    bundle_dir=None,
    verify: bool = True,
) -> CompressionResult:
    """The recurrent pipeline: PD-project a dense LSTM cell and distill.

    The quality metric is ``state_fidelity`` -- 1 minus the relative L2
    error of the cell's ``[h | c]`` step outputs against the dense
    reference on a seeded probe batch (1.0 for the dense cell itself,
    recorded as ``dense_metric``).
    """
    from repro.metrics import model_storage_report
    from repro.serve import export_model_bundle

    strategy = get_strategy(strategy)
    timings = PhaseTimings()

    start = time.perf_counter()
    pd_cell, layer_reports = convert_cell(
        cell, p=p, strategy=strategy, rng=seed
    )
    timings.search_s = time.perf_counter() - start
    projected_metric = cell_fidelity(pd_cell, cell, seed=seed)

    start = time.perf_counter()
    if distill_steps > 0:
        distill_cell(
            pd_cell,
            cell,
            steps=distill_steps,
            batch_size=batch_size,
            lr=lr,
            seed=seed,
        )
    timings.finetune_s = time.perf_counter() - start
    finetuned_metric = cell_fidelity(pd_cell, cell, seed=seed)

    storage = model_storage_report(pd_cell)
    verified = False
    if bundle_dir is not None:
        start = time.perf_counter()
        export_model_bundle(
            bundle_dir,
            pd_cell,
            num_shards,
            value_dtype=value_dtype,
            fixed_point=fixed_point,
        )
        timings.export_s = time.perf_counter() - start
        if verify:
            x, h, c = _cell_probe(cell, 8, np.random.default_rng(seed + 1))
            verified = verify_bundle(
                bundle_dir,
                pd_cell,
                np.concatenate([x, h, c], axis=1),
                num_shards=num_shards,
                value_dtype=value_dtype,
                fixed_point=fixed_point,
            )

    report = CompressionReport(
        model=name,
        strategy=strategy.name,
        value_dtype=value_dtype or "float64",
        metric_name="state_fidelity",
        dense_metric=1.0,
        projected_metric=projected_metric,
        finetuned_metric=finetuned_metric,
        dense_weights=storage.dense_weights,
        stored_weights=storage.stored_weights,
        compression_ratio=storage.compression_ratio,
        finetune_epochs=distill_steps,
        num_shards=num_shards,
        seed=seed,
        verified=verified,
        layers=layer_reports,
        timings=timings,
    )
    return CompressionResult(pd_cell, report, bundle_dir)
