"""Structured accuracy/compression reports emitted by the factory.

One :class:`CompressionReport` per compressed model: the quality metric
before projection / after projection / after fine-tuning, the storage
accounting (via :mod:`repro.metrics.compression` on the converted model),
the chosen ``p`` and retained Frobenius mass per layer, the value dtype
the bundle was exported at, and wall-time per pipeline phase.  Reports
round-trip through JSON (``save`` / ``load``) so the zoo index and CI
artifacts are plain files.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

__all__ = ["CompressionReport", "LayerReport", "PhaseTimings"]

SCHEMA_VERSION = 1


@dataclass
class LayerReport:
    """Per-layer record: what the search chose and what it cost.

    Attributes:
        name: layer description (repr-style).
        kind: ``"fc"`` / ``"conv"`` / ``"lstm-gate"``.
        dense_shape: shape of the dense weight the layer replaced.
        p: block size actually used (after any clamp).
        dense_weights / stored_weights: element counts.
        retained_mass: fraction of the dense Frobenius energy kept by the
            projection (1.0 for ``p == 1`` pass-through layers).
        note: human-readable annotations ("p clamped to 1 ...",
            "bias dropped", ...).
    """

    name: str
    kind: str
    dense_shape: list[int]
    p: int
    dense_weights: int
    stored_weights: int
    retained_mass: float
    note: str = ""

    @property
    def compression_ratio(self) -> float:
        return self.dense_weights / max(self.stored_weights, 1)


@dataclass
class PhaseTimings:
    """Wall-clock seconds per factory phase."""

    search_s: float = 0.0
    finetune_s: float = 0.0
    export_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.search_s + self.finetune_s + self.export_s


@dataclass
class CompressionReport:
    """Everything one pipeline run produced, JSON-serializable.

    ``metric_name`` is ``"top1_accuracy"`` for classifiers and
    ``"state_fidelity"`` (1 - relative L2 error of ``[h | c]`` vs the
    dense cell on a seeded batch) for recurrent cells; ``dense_metric``
    is the pre-compression baseline the delta is stated against.
    """

    model: str
    strategy: str
    value_dtype: str
    metric_name: str
    dense_metric: float
    projected_metric: float
    finetuned_metric: float
    dense_weights: int
    stored_weights: int
    compression_ratio: float
    finetune_epochs: int
    num_shards: int
    seed: int
    verified: bool = False
    layers: list[LayerReport] = field(default_factory=list)
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    schema_version: int = SCHEMA_VERSION

    @property
    def metric_delta(self) -> float:
        """Quality change vs the dense baseline (negative = degradation)."""
        return self.finetuned_metric - self.dense_metric

    # -- JSON round-trip ----------------------------------------------

    def to_dict(self) -> dict:
        out = asdict(self)
        out["metric_delta"] = self.metric_delta
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "CompressionReport":
        payload = dict(payload)
        payload.pop("metric_delta", None)
        payload["layers"] = [
            LayerReport(**layer) for layer in payload.get("layers", ())
        ]
        payload["timings"] = PhaseTimings(**payload.get("timings", {}))
        return cls(**payload)

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CompressionReport":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # -- presentation --------------------------------------------------

    def summary(self) -> str:
        """Fixed-width report for terminals and bench artifacts."""
        lines = [
            f"model              : {self.model}",
            f"strategy           : {self.strategy}",
            f"value dtype        : {self.value_dtype}",
            f"{self.metric_name:<19}: dense {self.dense_metric:.4f} -> "
            f"projected {self.projected_metric:.4f} -> "
            f"fine-tuned {self.finetuned_metric:.4f} "
            f"(delta {self.metric_delta:+.4f})",
            f"dense weights      : {self.dense_weights:,}",
            f"stored weights     : {self.stored_weights:,}",
            f"compression        : {self.compression_ratio:.2f}x",
            f"bundle             : {self.num_shards} shard(s), "
            f"verified={self.verified}",
            f"wall time          : search {self.timings.search_s:.2f}s, "
            f"fine-tune {self.timings.finetune_s:.2f}s, "
            f"export {self.timings.export_s:.2f}s",
            "layers:",
        ]
        for layer in self.layers:
            lines.append(
                f"  {layer.kind:<9} p={layer.p:<3d} "
                f"{layer.compression_ratio:6.2f}x  "
                f"mass={layer.retained_mass:.3f}  {layer.name}"
                + (f"  [{layer.note}]" if layer.note else "")
            )
        return "\n".join(lines)
