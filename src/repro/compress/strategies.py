"""Permutation-structure search strategies behind ``strategy=``.

Two registered strategies:

- ``"greedy"`` -- per-block argmax of retained Frobenius mass
  (:func:`repro.core.best_permutation_parameters`).  For a *fixed* block
  tiling this is already the global L2 optimum over the shifts, so the
  greedy name refers to treating every layer independently, not to a
  suboptimal per-block choice.
- ``"anneal"`` -- greedy shift selection plus an MPDCompress-style
  refinement over a degree of freedom the per-layer projection cannot
  see: *function-preserving hidden-unit permutations* at FC->FC
  interfaces.  Permuting the rows of ``W_l`` together with the columns
  of ``W_{l+1}`` (and ``W_l``'s bias) across an elementwise activation
  leaves the network function unchanged while reshuffling which entries
  fall on permuted diagonals; a seeded simulated-annealing walk over
  pairwise swaps keeps permutations that raise the total retained mass.
  On models with no FC->FC interface it degenerates to greedy exactly.

New strategies register with :func:`register_strategy`;
:func:`get_strategy` resolves names and raises a typed
:class:`~repro.compress.errors.UnknownStrategyError` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.errors import UnknownStrategyError
from repro.core import best_permutation_parameters, diagonal_energies

__all__ = [
    "AnnealStrategy",
    "CompressionStrategy",
    "FCInterface",
    "GreedyStrategy",
    "get_strategy",
    "register_strategy",
    "retained_mass",
    "strategy_names",
]


def retained_mass(dense: np.ndarray, p: int) -> float:
    """Frobenius energy captured by the best per-block shifts of ``dense``."""
    return float(diagonal_energies(dense, p).max(axis=-1).sum())


@dataclass
class FCInterface:
    """One hidden-unit boundary between two consecutive FC weight matrices.

    ``upper`` is ``W_l`` (its *rows* are the hidden units), ``lower`` is
    ``W_{l+1}`` (its *columns* are the same hidden units).  The arrays are
    the pipeline's working copies: :meth:`apply` permutes them in place,
    which is function-preserving because only elementwise maps sit between
    the two layers.
    """

    upper: np.ndarray
    lower: np.ndarray
    p_upper: int
    p_lower: int
    upper_bias: np.ndarray | None = None

    def mass(self, perm: np.ndarray) -> float:
        """Total retained mass of both matrices under hidden permutation."""
        return retained_mass(self.upper[perm], self.p_upper) + retained_mass(
            self.lower[:, perm], self.p_lower
        )

    def apply(self, perm: np.ndarray) -> None:
        """Permute the hidden units in place (rows of upper, cols of lower)."""
        self.upper[...] = self.upper[perm]
        self.lower[...] = self.lower[:, perm]
        if self.upper_bias is not None:
            self.upper_bias[...] = self.upper_bias[perm]


class CompressionStrategy:
    """Base strategy: optimal per-block shifts, no cross-layer refinement."""

    name = "base"

    def select_ks(
        self, dense: np.ndarray, p: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-block permutation parameters for one dense 2-D plane."""
        return best_permutation_parameters(dense, p)

    def refine(
        self, interfaces: list[FCInterface], rng: np.random.Generator
    ) -> None:
        """Hook: mutate interface weights function-preservingly (no-op)."""


_REGISTRY: dict[str, type[CompressionStrategy]] = {}


def register_strategy(cls: type[CompressionStrategy]) -> type[CompressionStrategy]:
    """Class decorator adding a strategy to the ``strategy=`` registry."""
    _REGISTRY[cls.name] = cls
    return cls


def strategy_names() -> tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_strategy(strategy: str | CompressionStrategy) -> CompressionStrategy:
    """Resolve a name (or pass through an instance) to a strategy object."""
    if isinstance(strategy, CompressionStrategy):
        return strategy
    try:
        return _REGISTRY[strategy]()
    except KeyError:
        raise UnknownStrategyError(strategy, strategy_names()) from None


@register_strategy
class GreedyStrategy(CompressionStrategy):
    """Independent per-layer projection at the L2-optimal shifts."""

    name = "greedy"


@register_strategy
@dataclass
class AnnealStrategy(CompressionStrategy):
    """Greedy shifts + annealed hidden-unit permutations at FC interfaces.

    Attributes:
        steps: pairwise-swap proposals per interface.
        start_frac / end_frac: temperature schedule as fractions of the
            interface's total Frobenius energy (geometric decay).
    """

    steps: int = 400
    start_frac: float = 0.02
    end_frac: float = 1e-4
    # Plain (unannotated) class attribute: not a dataclass field.
    name = "anneal"

    def refine(
        self, interfaces: list[FCInterface], rng: np.random.Generator
    ) -> None:
        for iface in interfaces:
            self._refine_interface(iface, rng)

    def _refine_interface(
        self, iface: FCInterface, rng: np.random.Generator
    ) -> None:
        hidden = iface.upper.shape[0]
        if hidden < 2 or self.steps < 1:
            return
        total_energy = float((iface.upper**2).sum() + (iface.lower**2).sum())
        if total_energy == 0.0:
            return
        perm = np.arange(hidden)
        current = iface.mass(perm)
        baseline = current
        best_perm, best = perm.copy(), current
        decay = (self.end_frac / self.start_frac) ** (1.0 / self.steps)
        temperature = self.start_frac * total_energy
        for _ in range(self.steps):
            a, b = rng.integers(0, hidden, size=2)
            if a == b:
                temperature *= decay
                continue
            perm[a], perm[b] = perm[b], perm[a]
            candidate = iface.mass(perm)
            delta = candidate - current
            if delta >= 0 or rng.random() < np.exp(delta / temperature):
                current = candidate
                if current > best:
                    best, best_perm = current, perm.copy()
            else:
                perm[a], perm[b] = perm[b], perm[a]  # reject: undo the swap
            temperature *= decay
        # Only commit strict improvements so "anneal" can never do worse
        # than greedy on the same weights.
        if best > baseline:
            iface.apply(best_perm)
