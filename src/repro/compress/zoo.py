"""The factory's model zoo: manifest registry + batch runner.

Each :class:`ZooEntry` is a complete factory recipe -- a dense model
builder, a procedural dataset, block sizes, the search strategy, the
fine-tuning schedule, and the bundle's value dtype / shard count.
:func:`run_zoo` runs the pipeline over the registry at small scale,
**resumes** entries whose report and bundle already exist, and maintains
an ``index.json`` mapping every entry to its report and headline numbers
-- bundle production as a batch workload, per the ROADMAP.

Built-in entries mirror the serving workload matrix: ``lenet`` (conv +
FC tail on procedural digits), ``alexnet-fc`` (the FC stack on a
Gaussian-mixture ImageNet stand-in, annealed search, float32 bundle),
``resnet20`` (a conv backbone on CIFAR-like textures), ``nmt`` (a dense
LSTM cell distilled into a PD cell), plus ``lenet-smoke`` -- a tiny
seconds-scale entry for CI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.compress.errors import ZooEntryError
from repro.compress.pipeline import (
    CompressionResult,
    compress_cell,
    compress_model,
)
from repro.compress.report import CompressionReport

__all__ = [
    "ZooEntry",
    "ZooRunResult",
    "format_zoo_results",
    "register_zoo_entry",
    "run_zoo",
    "run_zoo_entry",
    "zoo_entry",
    "zoo_names",
]

_INDEX_NAME = "index.json"
_REPORT_NAME = "report.json"
_BUNDLE_DIR = "bundle"
_BUNDLE_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class ZooEntry:
    """One factory recipe: dense builder + dataset + compression knobs.

    ``builder(seed)`` returns the dense model (a Sequential for
    ``kind == "classifier"``, an :class:`LSTMCell` for ``"recurrent"``);
    ``dataset(seed)`` returns ``(x_train, y_train, x_test, y_test)``
    (classifiers only -- recurrent entries distill against the dense
    cell on seeded probes).
    """

    name: str
    description: str
    builder: Callable
    dataset: Callable | None = None
    kind: str = "classifier"
    fc_p: int = 8
    conv_p: int = 4
    head_p: int = 1
    rnn_p: int = 8
    strategy: str = "greedy"
    value_dtype: str | None = None
    pretrain_epochs: int = 2
    finetune_epochs: int = 2
    distill_steps: int = 200
    pretrain_lr: float = 2e-3
    finetune_lr: float = 1e-3
    batch_size: int = 64
    num_shards: int = 2
    input_hw: tuple[int, int] | None = None
    seed: int = 0


@dataclass
class ZooRunResult:
    """Outcome of one zoo entry: fresh run or resumed from disk."""

    name: str
    status: str  # "ok" | "cached"
    report: CompressionReport
    entry_dir: str | None = None


_ZOO: dict[str, ZooEntry] = {}


def register_zoo_entry(entry: ZooEntry) -> ZooEntry:
    """Add (or replace) an entry in the factory manifest registry."""
    _ZOO[entry.name] = entry
    return entry


def zoo_names() -> tuple[str, ...]:
    """Registered entry names, in registration order."""
    return tuple(_ZOO)


def zoo_entry(name: str, **overrides) -> ZooEntry:
    """Look up an entry, optionally overriding recipe fields.

    Raises:
        ZooEntryError: for a name not in the registry.
    """
    try:
        entry = _ZOO[name]
    except KeyError:
        raise ZooEntryError(name, zoo_names()) from None
    return replace(entry, **overrides) if overrides else entry


# ----------------------------------------------------------------------
# Built-in entries
# ----------------------------------------------------------------------


def _build_lenet(seed: int):
    from repro.nn import Flatten, Linear, MaxPool2D, ReLU, Sequential
    from repro.nn.layers.conv2d import Conv2D

    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2D(1, 6, 5, padding=2, bias=False, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Conv2D(6, 16, 5, bias=False, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Linear(400, 120, bias=False, rng=rng),
        ReLU(),
        Linear(120, 84, bias=False, rng=rng),
        ReLU(),
        Linear(84, 10, bias=False, rng=rng),
    )


def _digits_data(train: int, test: int):
    def build(seed: int):
        from repro.datasets import make_digits

        x_train, y_train = make_digits(train, noise=0.12, seed=seed)
        x_test, y_test = make_digits(test, noise=0.12, seed=seed + 1)
        return x_train, y_train, x_test, y_test

    return build


def _build_alexnet_fc(seed: int):
    from repro.nn import Linear, ReLU, Sequential

    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(144, 64, bias=False, rng=rng),
        ReLU(),
        Linear(64, 64, bias=False, rng=rng),
        ReLU(),
        Linear(64, 16, bias=False, rng=rng),
    )


def _gaussian_data(seed: int):
    from repro.datasets import GaussianMixtureDataset

    dataset = GaussianMixtureDataset(
        num_features=144, num_classes=16, separation=4.0, seed=1234
    )
    return dataset.train_test_split(2000, 500, seed=seed + 1)


def _build_resnet20(seed: int):
    from repro.nn import Flatten, Linear, MaxPool2D, ReLU, Sequential
    from repro.nn.layers.conv2d import Conv2D

    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2D(3, 16, 3, stride=1, padding=1, bias=False, rng=rng),
        ReLU(),
        Conv2D(16, 32, 3, stride=2, padding=1, bias=False, rng=rng),
        ReLU(),
        Conv2D(32, 64, 3, stride=2, padding=1, bias=False, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Linear(256, 10, bias=False, rng=rng),
    )


def _cifar_data(seed: int):
    from repro.datasets import make_cifar_like

    x_train, y_train = make_cifar_like(800, image_size=16, seed=seed)
    x_test, y_test = make_cifar_like(240, image_size=16, seed=seed + 7)
    return x_train, y_train, x_test, y_test


def _build_nmt_cell(seed: int):
    """Dense LSTM cell with trained-network-like redundancy.

    A freshly initialized random cell has no structure a compressor
    could exploit -- every PD projection of an iid matrix loses
    ``1 - 1/p`` of the energy, so distillation hits an irreducible
    floor.  Trained recurrent models are the paper's target precisely
    because they *are* redundant; this procedural stand-in plants a
    PD-dominant component plus broadband noise (norm-preserving, so the
    gate dynamics stay in range) the same way the procedural datasets
    plant recoverable class structure.
    """
    from repro.core import BlockPermutedDiagonalMatrix
    from repro.nn.layers.recurrent import LSTMCell

    boost = 8.0
    cell = LSTMCell(32, 64, p=None, rng=seed)
    for ops in (cell.w_ops, cell.u_ops):
        for op in ops.values():
            dense = op.weight.value
            norm = np.linalg.norm(dense)
            planted = BlockPermutedDiagonalMatrix.from_dense(
                dense, 8, value_dtype="float64"
            ).to_dense()
            mixed = dense + boost * planted
            op.weight.value[...] = mixed * (norm / np.linalg.norm(mixed))
    return cell


register_zoo_entry(ZooEntry(
    name="lenet",
    description="LeNet-5-style conv+FC classifier on procedural digits",
    builder=_build_lenet,
    dataset=_digits_data(1500, 400),
    fc_p=8,
    conv_p=2,
    head_p=2,
    pretrain_epochs=3,
    finetune_epochs=8,
    input_hw=(28, 28),
))

register_zoo_entry(ZooEntry(
    name="lenet-smoke",
    description="tiny LeNet entry for CI smoke runs (seconds, not minutes)",
    builder=_build_lenet,
    dataset=_digits_data(240, 120),
    fc_p=8,
    conv_p=2,
    head_p=2,
    pretrain_epochs=1,
    finetune_epochs=1,
    input_hw=(28, 28),
))

register_zoo_entry(ZooEntry(
    name="alexnet-fc",
    description="AlexNet-style FC stack on a Gaussian-mixture feature set "
                "(annealed hidden-permutation search, float32 bundle)",
    builder=_build_alexnet_fc,
    dataset=_gaussian_data,
    fc_p=4,
    head_p=4,
    strategy="anneal",
    value_dtype="float32",
    pretrain_epochs=6,
    finetune_epochs=6,
))

register_zoo_entry(ZooEntry(
    name="resnet20",
    description="ResNet-20-style conv backbone on CIFAR-like textures",
    builder=_build_resnet20,
    dataset=_cifar_data,
    conv_p=4,
    head_p=2,
    pretrain_epochs=3,
    finetune_epochs=2,
    input_hw=(16, 16),
))

register_zoo_entry(ZooEntry(
    name="nmt",
    description="redundant dense NMT LSTM cell distilled into a p=8 PD cell",
    builder=_build_nmt_cell,
    kind="recurrent",
    rnn_p=8,
    distill_steps=300,
    finetune_lr=5e-4,
    batch_size=32,
))


# ----------------------------------------------------------------------
# Batch runner
# ----------------------------------------------------------------------


def run_zoo_entry(entry: ZooEntry, entry_dir=None) -> CompressionResult:
    """Run the full pipeline for one entry (pretrain included).

    ``entry_dir`` receives ``bundle/`` and ``report.json`` when given;
    without it the pipeline runs in memory (no export, no verification).
    """
    bundle_dir = (
        os.path.join(entry_dir, _BUNDLE_DIR) if entry_dir is not None else None
    )
    if entry.kind == "recurrent":
        cell = entry.builder(entry.seed)
        result = compress_cell(
            cell,
            name=entry.name,
            p=entry.rnn_p,
            strategy=entry.strategy,
            value_dtype=entry.value_dtype,
            distill_steps=entry.distill_steps,
            lr=entry.finetune_lr,
            batch_size=entry.batch_size,
            seed=entry.seed,
            num_shards=entry.num_shards,
            bundle_dir=bundle_dir,
        )
    else:
        from repro.nn import Adam, CrossEntropyLoss, Trainer

        data = entry.dataset(entry.seed)
        model = entry.builder(entry.seed)
        if entry.pretrain_epochs > 0:
            Trainer(
                model,
                Adam(model.parameters(), lr=entry.pretrain_lr),
                CrossEntropyLoss(),
                batch_size=entry.batch_size,
                rng=entry.seed,
            ).fit(data[0], data[1], epochs=entry.pretrain_epochs)
        result = compress_model(
            model,
            data,
            name=entry.name,
            fc_p=entry.fc_p,
            conv_p=entry.conv_p,
            head_p=entry.head_p,
            strategy=entry.strategy,
            value_dtype=entry.value_dtype,
            finetune_epochs=entry.finetune_epochs,
            lr=entry.finetune_lr,
            batch_size=entry.batch_size,
            seed=entry.seed,
            num_shards=entry.num_shards,
            input_hw=entry.input_hw,
            bundle_dir=bundle_dir,
        )
    if entry_dir is not None:
        result.report.save(os.path.join(entry_dir, _REPORT_NAME))
    return result


def _cached_report(entry_dir: str) -> CompressionReport | None:
    """The entry's completed report, iff report + bundle both exist."""
    report_path = os.path.join(entry_dir, _REPORT_NAME)
    manifest_path = os.path.join(entry_dir, _BUNDLE_DIR, _BUNDLE_MANIFEST)
    if not (os.path.exists(report_path) and os.path.exists(manifest_path)):
        return None
    try:
        return CompressionReport.load(report_path)
    except (OSError, ValueError, KeyError, TypeError):
        return None  # corrupt report: rerun the entry


def _index_entry(result: ZooRunResult) -> dict:
    report = result.report
    return {
        "status": result.status,
        "report": f"{result.name}/{_REPORT_NAME}",
        "bundle": f"{result.name}/{_BUNDLE_DIR}",
        "strategy": report.strategy,
        "value_dtype": report.value_dtype,
        "compression_ratio": round(report.compression_ratio, 4),
        "metric_name": report.metric_name,
        "dense_metric": round(report.dense_metric, 6),
        "finetuned_metric": round(report.finetuned_metric, 6),
        "metric_delta": round(report.metric_delta, 6),
        "verified": report.verified,
    }


def run_zoo(
    out_dir,
    entries: tuple[str, ...] | None = None,
    *,
    resume: bool = True,
    progress: Callable[[str], None] | None = None,
    **overrides,
) -> list[ZooRunResult]:
    """Run the factory over (a subset of) the zoo, resuming finished work.

    Args:
        out_dir: output root; each entry writes ``<name>/bundle/`` and
            ``<name>/report.json``, and the run maintains
            ``index.json`` at the root (rewritten after every entry, so
            an interrupted batch resumes where it stopped).
        entries: entry names (default: every registered entry except the
            CI smoke entry).
        resume: reuse entries whose report and bundle already exist.
        progress: optional callable for one-line status updates.
        overrides: recipe overrides applied to every entry
            (e.g. ``num_shards=4``).
    """
    if entries is None:
        entries = tuple(n for n in zoo_names() if not n.endswith("-smoke"))
    say = progress if progress is not None else (lambda message: None)
    os.makedirs(out_dir, exist_ok=True)
    index_path = os.path.join(out_dir, _INDEX_NAME)
    index: dict = {"schema_version": 1, "entries": {}}
    if resume and os.path.exists(index_path):
        try:
            with open(index_path) as handle:
                index = json.load(handle)
            index.setdefault("entries", {})
        except (OSError, ValueError):
            index = {"schema_version": 1, "entries": {}}

    results: list[ZooRunResult] = []
    for name in entries:
        entry = zoo_entry(name, **overrides)
        entry_dir = os.path.join(out_dir, name)
        cached = _cached_report(entry_dir) if resume else None
        if cached is not None:
            result = ZooRunResult(name, "cached", cached, entry_dir)
            say(f"{name}: cached ({cached.compression_ratio:.2f}x, "
                f"{cached.metric_name} {cached.finetuned_metric:.4f})")
        else:
            say(f"{name}: running ({entry.description})")
            run = run_zoo_entry(entry, entry_dir)
            result = ZooRunResult(name, "ok", run.report, entry_dir)
            say(f"{name}: done ({run.report.compression_ratio:.2f}x, "
                f"{run.report.metric_name} "
                f"{run.report.finetuned_metric:.4f})")
        results.append(result)
        index["entries"][name] = _index_entry(result)
        with open(index_path, "w") as handle:
            json.dump(index, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return results


def format_zoo_results(results: list[ZooRunResult]) -> str:
    """Fixed-width summary table for terminals and bench artifacts."""
    headers = (
        "entry", "status", "strategy", "dtype", "compress",
        "metric", "dense", "tuned", "delta",
    )
    rows = [
        (
            r.name,
            r.status,
            r.report.strategy,
            r.report.value_dtype,
            f"{r.report.compression_ratio:.2f}x",
            r.report.metric_name,
            f"{r.report.dense_metric:.4f}",
            f"{r.report.finetuned_metric:.4f}",
            f"{r.report.metric_delta:+.4f}",
        )
        for r in results
    ]
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) + 2
        for i in range(len(headers))
    ]
    lines = ["".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * sum(widths))
    for row in rows:
        lines.append("".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
