"""Offline compression factory: dense checkpoint -> PermDNN staged bundle.

The production path the paper's Sec. III-F flow grows into: take any
dense model (our :mod:`repro.nn` layers or raw weight dicts), search the
permutation structure per layer (:mod:`~repro.compress.strategies`),
convert to PD layers, fine-tune with the structure-preserving trainer,
and emit a v3 staged engine bundle plus a structured
accuracy/compression report -- cold-startable by
:meth:`repro.serve.ModelServer.from_bundle` with zero index-plan builds.

- :func:`compress_model` / :func:`compress_cell` /
  :func:`compress_arrays` -- the pipeline entry points.
- :func:`convert_model` / :func:`convert_cell` -- conversion only.
- :func:`verify_bundle` -- sanitizer-pinned bundle QA.
- :mod:`~repro.compress.zoo` -- the factory manifest registry and batch
  runner behind ``repro compress-zoo`` (resume + ``index.json``).
- Typed errors: :class:`CompressionError`,
  :class:`UnknownStrategyError`, :class:`ZooEntryError`.
"""

from repro.compress.errors import (
    CompressionError,
    UnknownStrategyError,
    ZooEntryError,
)
from repro.compress.pipeline import (
    CompressionResult,
    cell_fidelity,
    compress_arrays,
    compress_cell,
    compress_model,
    convert_cell,
    convert_model,
    distill_cell,
    verify_bundle,
)
from repro.compress.report import CompressionReport, LayerReport, PhaseTimings
from repro.compress.strategies import (
    AnnealStrategy,
    CompressionStrategy,
    FCInterface,
    GreedyStrategy,
    get_strategy,
    register_strategy,
    retained_mass,
    strategy_names,
)
from repro.compress.zoo import (
    ZooEntry,
    ZooRunResult,
    format_zoo_results,
    register_zoo_entry,
    run_zoo,
    run_zoo_entry,
    zoo_entry,
    zoo_names,
)

__all__ = [
    "AnnealStrategy",
    "CompressionError",
    "CompressionReport",
    "CompressionResult",
    "CompressionStrategy",
    "FCInterface",
    "GreedyStrategy",
    "LayerReport",
    "PhaseTimings",
    "UnknownStrategyError",
    "ZooEntry",
    "ZooEntryError",
    "ZooRunResult",
    "cell_fidelity",
    "compress_arrays",
    "compress_cell",
    "compress_model",
    "convert_cell",
    "convert_model",
    "distill_cell",
    "format_zoo_results",
    "get_strategy",
    "register_strategy",
    "register_zoo_entry",
    "retained_mass",
    "run_zoo",
    "run_zoo_entry",
    "strategy_names",
    "verify_bundle",
    "zoo_entry",
    "zoo_names",
]
