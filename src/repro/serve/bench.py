"""Serving benchmark: sharded multi-engine server vs one engine.

Workload: the AlexNet FC stack (FC6 -> FC7 -> FC8 at Table II block sizes,
optionally width-scaled), driven with inputs at Alex-FC6's Table VII
activation density.  The baseline is the natural single-engine serving
loop -- :meth:`~repro.hw.PermDNNEngine.run_fc_batch` layer by layer over
the whole request set -- and the contender is
:class:`~repro.serve.ModelServer` with row sharding, micro-batching and
inter-layer pipelining.  Both are measured in simulated engine time
(cycles at the configured clock), the repo's standard accounting, and the
sharded outputs are required to match the baseline **bit for bit**.

Used by both ``repro serve-bench`` (CLI) and
``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import BlockPermutedDiagonalMatrix
from repro.hw.config import EngineConfig
from repro.hw.engine import PermDNNEngine
from repro.serve.server import ModelServer

__all__ = [
    "ServingBenchReport",
    "build_alexnet_fc_stack",
    "format_report",
    "make_requests",
    "run_serving_benchmark",
    "run_serving_sweep",
]

# (out, in, p, activation) of the AlexNet FC stack at paper scale
# (Table II block sizes; widths chain FC6 -> FC7 -> FC8).
_ALEXNET_FC_STACK = (
    (4096, 9216, 10, "relu"),
    (4096, 4096, 10, "relu"),
    (1000, 4096, 4, None),
)

# Table VII activation density of Alex-FC6's input.
_ALEX_FC6_INPUT_DENSITY = 0.358


def build_alexnet_fc_stack(
    scale: int = 1, rng: np.random.Generator | int | None = 0
) -> list[tuple[BlockPermutedDiagonalMatrix, str | None]]:
    """The AlexNet FC serving stack, width-divided by ``scale``.

    Widths chain (FC6's output feeds FC7, ...); shapes that stop dividing
    by the block size are simply padded, which the PD kernel supports.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    layers = []
    prev_out: int | None = None
    for m, n, p, activation in _ALEXNET_FC_STACK:
        n_s = prev_out if prev_out is not None else max(n // scale, p)
        m_s = max(m // scale, p)
        matrix = BlockPermutedDiagonalMatrix.random((m_s, n_s), p, rng=rng)
        layers.append((matrix, activation))
        prev_out = m_s
    return layers


def make_requests(
    n: int,
    num_requests: int,
    density: float = _ALEX_FC6_INPUT_DENSITY,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """``(num_requests, n)`` inputs at the given activation density."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    xs = np.zeros((num_requests, n))
    nnz = max(int(round(n * density)), 1)
    for row in range(num_requests):
        positions = rng.choice(n, size=nnz, replace=False)
        xs[row, positions] = rng.normal(size=nnz)
    return xs


@dataclass
class ServingBenchReport:
    """Everything one serving benchmark run measured.

    Rates are simulated-time requests/second; latencies are simulated
    microseconds.
    """

    num_shards: int
    num_requests: int
    scale: int
    max_batch_size: int
    flush_deadline_us: float
    baseline_makespan_us: float
    baseline_rps: float
    sharded_makespan_us: float
    sharded_rps: float
    speedup: float
    p50_latency_us: float
    p99_latency_us: float
    outputs_match: bool
    batch_sizes: list[int] = field(default_factory=list)
    layer_cycles: list[int] = field(default_factory=list)


def _single_engine_baseline(layers, xs, config):
    """The natural one-engine serving loop: ``run_fc_batch`` per layer.

    Returns:
        ``(outputs, total_cycles)`` over the whole request set.
    """
    engine = PermDNNEngine(config)
    current = xs
    total_cycles = 0
    for matrix, activation in layers:
        current, cycles = engine.run_fc_batch(
            matrix, current, activation=activation
        )
        total_cycles += cycles
    return current, total_cycles


def run_serving_sweep(
    shard_counts: tuple[int, ...],
    num_requests: int = 32,
    max_batch_size: int = 16,
    flush_deadline_us: float = 50.0,
    scale: int = 1,
    seed: int = 0,
    config: EngineConfig | None = None,
) -> list[ServingBenchReport]:
    """Measure the sharded server at several shard counts.

    The workload (layers, requests) and the single-engine baseline are
    built **once** and reused for every shard count, so a sweep costs one
    baseline pass rather than one per row.

    Returns:
        One :class:`ServingBenchReport` per entry of ``shard_counts``;
        ``outputs_match`` asserts the bit-for-bit contract, ``speedup`` is
        sharded over baseline requests/sec.
    """
    rng = np.random.default_rng(seed)
    layers = build_alexnet_fc_stack(scale=scale, rng=rng)
    xs = make_requests(layers[0][0].shape[1], num_requests, rng=rng)
    config = config or EngineConfig()
    cycles_per_us = config.clock_ghz * 1e3
    # The benchmark drives an all-at-once burst; cap the batch limit at
    # the request count so a never-filling batch doesn't sit out the
    # deadline flush (which would measure the deadline, not the engines).
    max_batch_size = min(max_batch_size, num_requests)

    baseline_outputs, baseline_cycles = _single_engine_baseline(
        layers, xs, config
    )
    baseline_makespan_us = baseline_cycles / cycles_per_us
    baseline_rps = num_requests / (baseline_makespan_us * 1e-6)

    reports = []
    for num_shards in shard_counts:
        server = ModelServer(
            layers,
            num_shards=num_shards,
            config=config,
            max_batch_size=max_batch_size,
            flush_deadline_us=flush_deadline_us,
        )
        server.submit_many(xs)
        report = server.drain()
        outputs_match = bool(
            np.array_equal(np.stack(report.outputs), baseline_outputs)
        )
        reports.append(ServingBenchReport(
            num_shards=num_shards,
            num_requests=num_requests,
            scale=scale,
            max_batch_size=max_batch_size,
            flush_deadline_us=flush_deadline_us,
            baseline_makespan_us=baseline_makespan_us,
            baseline_rps=baseline_rps,
            sharded_makespan_us=report.makespan_us,
            sharded_rps=report.throughput_rps,
            speedup=(
                report.throughput_rps / baseline_rps
                if baseline_rps > 0
                else 0.0
            ),
            p50_latency_us=report.latency_percentile(50),
            p99_latency_us=report.latency_percentile(99),
            outputs_match=outputs_match,
            batch_sizes=report.batch_sizes,
            layer_cycles=report.layer_cycles,
        ))
    return reports


def run_serving_benchmark(
    num_shards: int = 4,
    num_requests: int = 32,
    max_batch_size: int = 16,
    flush_deadline_us: float = 50.0,
    scale: int = 1,
    seed: int = 0,
    config: EngineConfig | None = None,
) -> ServingBenchReport:
    """One-shard-count convenience wrapper around :func:`run_serving_sweep`."""
    return run_serving_sweep(
        (num_shards,),
        num_requests=num_requests,
        max_batch_size=max_batch_size,
        flush_deadline_us=flush_deadline_us,
        scale=scale,
        seed=seed,
        config=config,
    )[0]


def format_report(report: ServingBenchReport) -> str:
    """Human-readable summary of a benchmark run."""
    lines = [
        f"workload          : AlexNet-FC stack (scale 1/{report.scale}), "
        f"{report.num_requests} requests",
        f"server            : {report.num_shards} shards, "
        f"max batch {report.max_batch_size}, "
        f"deadline {report.flush_deadline_us:.1f} us",
        f"batches formed    : {report.batch_sizes}",
        f"baseline          : {report.baseline_rps:,.0f} req/s "
        f"({report.baseline_makespan_us:.1f} us for the set)",
        f"sharded           : {report.sharded_rps:,.0f} req/s "
        f"({report.sharded_makespan_us:.1f} us makespan)",
        f"speedup           : {report.speedup:.2f}x",
        f"latency p50 / p99 : {report.p50_latency_us:.1f} / "
        f"{report.p99_latency_us:.1f} us",
        f"outputs match     : "
        f"{'bit-for-bit' if report.outputs_match else 'MISMATCH'}",
    ]
    return "\n".join(lines)
