"""Serving benchmark: sharded multi-engine server vs one engine.

Workload: the AlexNet FC stack (FC6 -> FC7 -> FC8 at Table II block sizes,
optionally width-scaled), driven with inputs at Alex-FC6's Table VII
activation density.  The baseline is the natural single-engine serving
loop -- :meth:`~repro.hw.PermDNNEngine.run_fc_batch` layer by layer over
the whole request set -- and the contender is
:class:`~repro.serve.ModelServer` with row sharding, micro-batching and
inter-layer pipelining.  Both are measured in simulated engine time
(cycles at the configured clock), the repo's standard accounting, and the
sharded outputs are required to match the baseline **bit for bit**.

Used by both ``repro serve-bench`` (CLI) and
``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import BlockPermutedDiagonalMatrix
from repro.hw.config import EngineConfig
from repro.hw.engine import PermDNNEngine
from repro.serve.server import ModelServer, ServeReport
from repro.serve.traffic import US_PER_S, make_arrival_process

__all__ = [
    "MixedClassStats",
    "MixedTrafficReport",
    "OpenLoopPoint",
    "OpenLoopReport",
    "ServingBenchReport",
    "WorkloadMatrixRow",
    "WorkloadSpec",
    "build_alexnet_fc_stack",
    "build_workload",
    "format_mixed_report",
    "format_open_loop_report",
    "format_report",
    "format_workload_matrix",
    "make_requests",
    "max_sustainable_qps",
    "run_mixed_traffic",
    "run_open_loop_point",
    "run_open_loop_sweep",
    "run_serving_benchmark",
    "run_serving_sweep",
    "run_workload_matrix",
    "workload_names",
]

# (out, in, p, activation) of the AlexNet FC stack at paper scale
# (Table II block sizes; widths chain FC6 -> FC7 -> FC8).
_ALEXNET_FC_STACK = (
    (4096, 9216, 10, "relu"),
    (4096, 4096, 10, "relu"),
    (1000, 4096, 4, None),
)

# Table VII activation density of Alex-FC6's input.
_ALEX_FC6_INPUT_DENSITY = 0.358


def build_alexnet_fc_stack(
    scale: int = 1, rng: np.random.Generator | int | None = 0
) -> list[tuple[BlockPermutedDiagonalMatrix, str | None]]:
    """The AlexNet FC serving stack, width-divided by ``scale``.

    Widths chain (FC6's output feeds FC7, ...); shapes that stop dividing
    by the block size are simply padded, which the PD kernel supports.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    layers = []
    prev_out: int | None = None
    for m, n, p, activation in _ALEXNET_FC_STACK:
        n_s = prev_out if prev_out is not None else max(n // scale, p)
        m_s = max(m // scale, p)
        matrix = BlockPermutedDiagonalMatrix.random((m_s, n_s), p, rng=rng)
        layers.append((matrix, activation))
        prev_out = m_s
    return layers


def make_requests(
    n: int,
    num_requests: int,
    density: float = _ALEX_FC6_INPUT_DENSITY,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """``(num_requests, n)`` inputs at the given activation density."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    xs = np.zeros((num_requests, n))
    nnz = max(int(round(n * density)), 1)
    for row in range(num_requests):
        positions = rng.choice(n, size=nnz, replace=False)
        xs[row, positions] = rng.normal(size=nnz)
    return xs


@dataclass
class ServingBenchReport:
    """Everything one serving benchmark run measured.

    Rates are simulated-time requests/second; latencies are simulated
    microseconds.
    """

    num_shards: int
    num_requests: int
    scale: int
    max_batch_size: int
    flush_deadline_us: float
    baseline_makespan_us: float
    baseline_rps: float
    sharded_makespan_us: float
    sharded_rps: float
    speedup: float
    p50_latency_us: float
    p99_latency_us: float
    outputs_match: bool
    batch_sizes: list[int] = field(default_factory=list)
    layer_cycles: list[int] = field(default_factory=list)
    # Host-side execution facts: simulated metrics above are independent
    # of both (threading stitches shard outputs deterministically, and
    # the cycle model only sees shard shapes).
    num_threads: int = 1
    host_wall_s: float = 0.0
    value_dtype: str = "float64"


def _single_engine_baseline(layers, xs, config):
    """The natural one-engine serving loop: ``run_fc_batch`` per layer.

    Returns:
        ``(outputs, total_cycles)`` over the whole request set.
    """
    engine = PermDNNEngine(config)
    current = xs
    total_cycles = 0
    for matrix, activation in layers:
        current, cycles = engine.run_fc_batch(
            matrix, current, activation=activation
        )
        total_cycles += cycles
    return current, total_cycles


def run_serving_sweep(
    shard_counts: tuple[int, ...],
    num_requests: int = 32,
    max_batch_size: int = 16,
    flush_deadline_us: float = 50.0,
    scale: int = 1,
    seed: int = 0,
    config: EngineConfig | None = None,
    num_threads: int | None = 1,
    value_dtype: str | None = None,
) -> list[ServingBenchReport]:
    """Measure the sharded server at several shard counts.

    The workload (layers, requests) and the single-engine baseline are
    built **once** and reused for every shard count, so a sweep costs one
    baseline pass rather than one per row.

    ``value_dtype`` converts the stack's value storage before serving
    (quantize-at-export); the baseline runs on the *same* converted
    layers, so the bit-for-bit contract holds at every storage mode.
    ``num_threads`` sizes each drain's shard executor; simulated metrics
    are independent of it, but ``host_wall_s`` (real drain wall time) is
    recorded per row so thread counts can be compared honestly.

    Returns:
        One :class:`ServingBenchReport` per entry of ``shard_counts``;
        ``outputs_match`` asserts the bit-for-bit contract, ``speedup`` is
        sharded over baseline requests/sec.
    """
    rng = np.random.default_rng(seed)
    layers = build_alexnet_fc_stack(scale=scale, rng=rng)
    if value_dtype is not None and value_dtype != "float64":
        layers = [
            (matrix.with_value_dtype(value_dtype), activation)
            for matrix, activation in layers
        ]
    xs = make_requests(layers[0][0].shape[1], num_requests, rng=rng)
    config = config or EngineConfig()
    cycles_per_us = config.clock_ghz * 1e3
    # The benchmark drives an all-at-once burst; cap the batch limit at
    # the request count so a never-filling batch doesn't sit out the
    # deadline flush (which would measure the deadline, not the engines).
    max_batch_size = min(max_batch_size, num_requests)

    baseline_outputs, baseline_cycles = _single_engine_baseline(
        layers, xs, config
    )
    baseline_makespan_us = baseline_cycles / cycles_per_us
    baseline_rps = num_requests / (baseline_makespan_us * 1e-6)

    reports = []
    for num_shards in shard_counts:
        server = ModelServer(
            layers,
            num_shards=num_shards,
            config=config,
            max_batch_size=max_batch_size,
            flush_deadline_us=flush_deadline_us,
            num_threads=num_threads,
        )
        server.submit_many(xs)
        wall_start = time.perf_counter()
        report = server.drain()
        host_wall_s = time.perf_counter() - wall_start
        outputs_match = bool(
            np.array_equal(np.stack(report.outputs), baseline_outputs)
        )
        reports.append(ServingBenchReport(
            num_shards=num_shards,
            num_requests=num_requests,
            scale=scale,
            max_batch_size=max_batch_size,
            flush_deadline_us=flush_deadline_us,
            baseline_makespan_us=baseline_makespan_us,
            baseline_rps=baseline_rps,
            sharded_makespan_us=report.makespan_us,
            sharded_rps=report.throughput_rps,
            speedup=(
                report.throughput_rps / baseline_rps
                if baseline_rps > 0
                else 0.0
            ),
            p50_latency_us=report.latency_percentile(50),
            p99_latency_us=report.latency_percentile(99),
            outputs_match=outputs_match,
            batch_sizes=report.batch_sizes,
            layer_cycles=report.layer_cycles,
            num_threads=server.num_threads,
            host_wall_s=host_wall_s,
            value_dtype=value_dtype or "float64",
        ))
    return reports


def run_serving_benchmark(
    num_shards: int = 4,
    num_requests: int = 32,
    max_batch_size: int = 16,
    flush_deadline_us: float = 50.0,
    scale: int = 1,
    seed: int = 0,
    config: EngineConfig | None = None,
    num_threads: int | None = 1,
    value_dtype: str | None = None,
) -> ServingBenchReport:
    """One-shard-count convenience wrapper around :func:`run_serving_sweep`."""
    return run_serving_sweep(
        (num_shards,),
        num_requests=num_requests,
        max_batch_size=max_batch_size,
        flush_deadline_us=flush_deadline_us,
        scale=scale,
        seed=seed,
        config=config,
        num_threads=num_threads,
        value_dtype=value_dtype,
    )[0]


# ---------------------------------------------------------------------------
# Open-loop: arrival processes, tail-latency SLOs, knee finding, shedding.


@dataclass
class OpenLoopPoint:
    """One open-loop measurement: a process at one offered load.

    ``outputs_match`` asserts the bit-for-bit contract on the admitted
    subset: the sharded pipeline's per-request outputs equal the
    single-engine baseline rows for exactly those requests (row outputs
    are independent of batch composition, so the subset comparison is
    exact, not approximate).
    """

    process: str
    offered_qps: float
    num_requests: int
    num_admitted: int
    num_shed: int
    achieved_qps: float
    p50_us: float
    p90_us: float
    p99_us: float
    queue_p99_us: float
    outputs_match: bool
    queue_capacity: int | None = None


@dataclass
class OpenLoopReport:
    """A full open-loop study of one serving stack.

    ``capacity_qps`` is the steady-state pipeline capacity
    (``max_batch`` over the bottleneck stage time of one full
    micro-batch), the natural anchor for offered-load fractions;
    ``slo_us`` is the p``slo_q`` target, by default twice the unloaded
    tail latency; ``knees`` maps each arrival process to its max
    sustainable QPS under the SLO; ``shed_points`` re-runs each process
    at ``overload x knee`` with a bounded queue to show graceful
    degradation.
    """

    scale: int
    num_requests: int
    num_shards: int
    max_batch_size: int
    flush_deadline_us: float
    seed: int
    baseline_rps: float
    capacity_qps: float
    unloaded_p99_us: float
    slo_us: float
    slo_q: float
    points: list[OpenLoopPoint] = field(default_factory=list)
    knees: dict[str, float] = field(default_factory=dict)
    shed_points: list[OpenLoopPoint] = field(default_factory=list)
    # Upper bracket of the knee search; a knee at the ceiling means the
    # stack sustains every load in range (the knee lies above it).
    knee_ceiling_qps: float = 0.0

    def failures(self) -> list[str]:
        """Everything that should make a benchmark run exit non-zero."""
        problems = []
        for point in self.points + self.shed_points:
            if not point.outputs_match:
                problems.append(
                    f"{point.process} @ {point.offered_qps:,.0f} qps: "
                    "outputs diverge from the single-engine baseline"
                )
        for process, knee in self.knees.items():
            if knee <= 0:
                problems.append(
                    f"{process}: no sustainable load meets the "
                    f"p{self.slo_q:g} <= {self.slo_us:.1f} us SLO"
                )
        for point in self.shed_points:
            if point.num_admitted and point.p99_us > self.slo_us:
                problems.append(
                    f"{point.process} overload with shedding: admitted "
                    f"p99 {point.p99_us:.1f} us exceeds the "
                    f"{self.slo_us:.1f} us SLO"
                )
        return problems


def max_sustainable_qps(
    measure,
    slo_us: float,
    lo_qps: float,
    hi_qps: float,
    iters: int = 9,
) -> float:
    """Largest offered load whose measured tail latency meets the SLO.

    Bisection over ``[lo_qps, hi_qps]``: ``measure(qps)`` returns the
    tail-latency statistic (e.g. seeded open-loop p99 in microseconds)
    at that offered load, and the knee is the largest load with
    ``measure(qps) <= slo_us``.  Queueing delay grows monotonically with
    load around the knee, which is what bisection relies on; with seeded
    generators the whole search is deterministic.

    Returns ``0.0`` when even ``lo_qps`` misses the SLO and ``hi_qps``
    when the whole range meets it (the knee lies above the bracket).
    """
    if slo_us <= 0:
        raise ValueError(f"slo_us must be positive, got {slo_us}")
    if not 0 < lo_qps < hi_qps:
        raise ValueError(
            f"need 0 < lo_qps < hi_qps, got [{lo_qps}, {hi_qps}]"
        )
    if measure(lo_qps) > slo_us:
        return 0.0
    if measure(hi_qps) <= slo_us:
        return hi_qps
    lo, hi = lo_qps, hi_qps
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        if measure(mid) <= slo_us:
            lo = mid
        else:
            hi = mid
    return lo


def run_open_loop_point(
    layers,
    xs: np.ndarray,
    baseline_outputs: np.ndarray,
    process: str,
    offered_qps: float,
    num_shards: int = 4,
    seed: int = 0,
    max_batch_size: int = 16,
    flush_deadline_us: float = 50.0,
    queue_capacity: int | None = None,
    config: EngineConfig | None = None,
    arrival_kwargs: dict | None = None,
) -> tuple[OpenLoopPoint, ServeReport]:
    """Drive one arrival stream through a fresh server and measure it.

    The arrival stream is generated by ``process`` at ``offered_qps``
    with the given seed, so the measurement (down to the per-request
    latency trace) is a pure function of the arguments.  Admitted
    outputs are compared bit-for-bit against the corresponding
    ``baseline_outputs`` rows.
    """
    proc = make_arrival_process(
        process, offered_qps, seed=seed, **(arrival_kwargs or {})
    )
    arrivals = proc.generate(xs.shape[0])
    server = ModelServer(
        layers,
        num_shards=num_shards,
        config=config,
        max_batch_size=max_batch_size,
        flush_deadline_us=flush_deadline_us,
        queue_capacity=queue_capacity,
    )
    rids = server.submit_many(xs, arrivals_us=arrivals)
    report = server.drain()
    shed = set(report.shed_rids)
    admitted_rows = [row for row, rid in enumerate(rids) if rid not in shed]
    if report.num_requests:
        expected = baseline_outputs[admitted_rows]
        outputs_match = bool(
            np.array_equal(np.stack(report.outputs), expected)
        )
        p50, p90, p99 = report.percentile_curve((50.0, 90.0, 99.0))
        queue_p99 = report.latency_percentile(99.0, which="queue")
    else:
        outputs_match = True
        p50 = p90 = p99 = queue_p99 = float("nan")
    point = OpenLoopPoint(
        process=process,
        offered_qps=offered_qps,
        num_requests=xs.shape[0],
        num_admitted=report.num_requests,
        num_shed=report.num_shed,
        achieved_qps=report.throughput_rps,
        p50_us=float(p50),
        p90_us=float(p90),
        p99_us=float(p99),
        queue_p99_us=float(queue_p99),
        outputs_match=outputs_match,
        queue_capacity=queue_capacity,
    )
    return point, report


def run_open_loop_sweep(
    arrivals: tuple[str, ...] = ("poisson", "bursty", "diurnal"),
    load_fractions: tuple[float, ...] = (0.5, 0.8, 1.0, 1.3),
    num_requests: int = 48,
    num_shards: int = 4,
    scale: int = 1,
    seed: int = 0,
    slo_us: float | None = None,
    slo_q: float = 99.0,
    max_batch_size: int = 16,
    flush_deadline_us: float = 50.0,
    config: EngineConfig | None = None,
    knee_iters: int = 9,
    find_knee: bool = True,
    overload_factor: float | None = 2.0,
) -> OpenLoopReport:
    """The full open-loop study behind ``bench_serving.py --open-loop``.

    Methodology (documented in ``docs/BENCHMARKS.md``):

    1. **Anchor**: steady-state pipeline capacity of the stack
       (``capacity_qps = max_batch / bottleneck stage time``, measured
       by draining one full micro-batch) sets the offered-load scale,
       and the single-engine baseline outputs are computed once for the
       bit-exactness checks.  A closed-loop burst makespan would
       underestimate capacity badly (it charges pipeline fill and every
       stage to a short stream); offered load only means "fraction of
       saturation" against the bottleneck-stage rate.
    2. **SLO**: unless given, the SLO is ``2 x`` the unloaded tail
       latency -- a deterministic stream with inter-arrivals of twice
       the flush deadline, so every request pays the full deadline plus
       a singleton-batch service (the honest light-traffic latency; at
       low rates batch-*fill* wait otherwise dominates and shrinks with
       load, which would poison both the anchor and the knee search).
    3. **Sweep**: every arrival process runs at each load fraction of
       capacity with an unbounded queue, yielding
       latency-percentile-vs-offered-load points.  ``num_requests`` is
       the measurement window for *every* loaded point: queueing past
       saturation accumulates over the stream, so a short window
       under-reports tail latency and inflates the knee (a knee at the
       search ceiling means the window never saturated; a few hundred
       requests at full scale puts the knee near the capacity anchor).
    4. **Knee**: per process, :func:`max_sustainable_qps` bisects
       offered load between the unloaded rate and ``2.5 x`` capacity
       for the largest QPS whose p``slo_q`` meets the SLO over the same
       window.
    5. **Shedding**: per process, re-run at ``overload_factor x knee``
       over a ``2 x num_requests`` stream with the queue bounded to
       ``slo x knee / 2`` in-flight requests (Little's law sizing),
       showing admitted-request tails stay inside the SLO while the
       excess is shed.

    Every input is drawn from one seeded pool and the single-engine
    baseline runs over the pool once; each measurement compares its
    admitted outputs against the matching baseline rows bit for bit.
    """
    rng = np.random.default_rng(seed)
    layers = build_alexnet_fc_stack(scale=scale, rng=rng)
    # One input pool covers every measurement: sweep and knee points
    # read the first ``num_requests`` rows, the shedding run twice that.
    # The single-engine baseline runs over the pool once; per-request
    # outputs are independent of batch composition, so any prefix/subset
    # comparison stays bit-exact.
    pool = 2 * num_requests
    xs_pool = make_requests(layers[0][0].shape[1], pool, rng=rng)
    xs = xs_pool[:num_requests]
    config = config or EngineConfig()
    cycles_per_us = config.clock_ghz * 1e3

    baseline_pool, baseline_cycles = _single_engine_baseline(
        layers, xs_pool, config
    )
    baseline_rps = pool / (baseline_cycles / cycles_per_us * 1e-6)

    # Steady-state capacity anchor: one full micro-batch through the
    # pipeline; the slowest layer's critical path is the stage every
    # later batch queues behind, so saturation sits at
    # ``max_batch / bottleneck_stage_time``.
    probe = ModelServer(
        layers,
        num_shards=num_shards,
        config=config,
        max_batch_size=min(max_batch_size, num_requests),
        flush_deadline_us=flush_deadline_us,
    )
    probe.submit_many(xs[: probe.batcher.max_batch_size])
    probe_report = probe.drain()
    bottleneck_us = max(probe_report.layer_cycles) / cycles_per_us
    capacity_qps = probe.batcher.max_batch_size / (bottleneck_us * 1e-6)

    def measure(
        process: str,
        offered_qps: float,
        capacity=None,
        count: int = num_requests,
    ):
        point, _ = run_open_loop_point(
            layers,
            xs_pool[:count],
            baseline_pool[:count],
            process,
            offered_qps,
            num_shards=num_shards,
            seed=seed,
            max_batch_size=max_batch_size,
            flush_deadline_us=flush_deadline_us,
            queue_capacity=capacity,
            config=config,
        )
        return point

    # Unloaded = singleton batches: inter-arrivals of twice the deadline
    # make every request wait out the flush and serve alone.
    if flush_deadline_us > 0:
        unloaded_qps = min(
            0.1 * capacity_qps, US_PER_S / (2.0 * flush_deadline_us)
        )
    else:
        unloaded_qps = 0.1 * capacity_qps
    unloaded_p99 = measure("deterministic", unloaded_qps).p99_us
    if slo_us is None:
        slo_us = 2.0 * unloaded_p99

    report = OpenLoopReport(
        scale=scale,
        num_requests=num_requests,
        num_shards=num_shards,
        max_batch_size=max_batch_size,
        flush_deadline_us=flush_deadline_us,
        seed=seed,
        baseline_rps=baseline_rps,
        capacity_qps=capacity_qps,
        unloaded_p99_us=unloaded_p99,
        slo_us=slo_us,
        slo_q=slo_q,
        knee_ceiling_qps=2.5 * capacity_qps,
    )
    for process in arrivals:
        for fraction in load_fractions:
            report.points.append(measure(process, fraction * capacity_qps))
        if not find_knee:
            continue

        def tail(qps: float, p: str = process) -> float:
            _, drain = run_open_loop_point(
                layers, xs_pool[:num_requests],
                baseline_pool[:num_requests], p, qps,
                num_shards=num_shards, seed=seed,
                max_batch_size=max_batch_size,
                flush_deadline_us=flush_deadline_us, config=config,
            )
            return drain.latency_percentile(slo_q)

        knee = max_sustainable_qps(
            tail,
            slo_us,
            lo_qps=unloaded_qps,
            hi_qps=report.knee_ceiling_qps,
            iters=knee_iters,
        )
        report.knees[process] = knee
        if overload_factor and knee > 0:
            # Little's law: in-flight bound ~ SLO x service rate keeps
            # the queueing delay of admitted requests within the SLO;
            # halve it for safety margin.
            capacity_bound = max(1, int(slo_us * 1e-6 * knee * 0.5))
            report.shed_points.append(
                measure(
                    process,
                    overload_factor * knee,
                    capacity_bound,
                    count=2 * num_requests,
                )
            )
    return report


def format_open_loop_report(report: OpenLoopReport) -> str:
    """The latency-percentile-vs-offered-load tables, human-readable."""
    lines = [
        f"open-loop serving, AlexNet-FC stack (scale 1/{report.scale}), "
        f"{report.num_shards} shards, {report.num_requests} requests/point",
        f"batching          : max batch {report.max_batch_size}, "
        f"deadline {report.flush_deadline_us:.0f} us, seed {report.seed}",
        f"capacity anchor   : {report.capacity_qps:,.0f} qps "
        f"(bottleneck stage; {report.baseline_rps:,.0f} qps single-engine "
        f"baseline)",
        f"SLO               : p{report.slo_q:g} <= {report.slo_us:.1f} us "
        f"(unloaded p99 {report.unloaded_p99_us:.1f} us)",
        "",
        f"{'process':<10} {'offered_qps':>12} {'load':>6} {'p50_us':>8} "
        f"{'p90_us':>8} {'p99_us':>8} {'q_p99':>8} {'shed':>5} {'exact':>6}",
        "-" * 78,
    ]
    for point in report.points:
        load = point.offered_qps / report.capacity_qps
        lines.append(
            f"{point.process:<10} {point.offered_qps:>12,.0f} "
            f"{load:>5.2f}x {point.p50_us:>8.1f} {point.p90_us:>8.1f} "
            f"{point.p99_us:>8.1f} {point.queue_p99_us:>8.1f} "
            f"{point.num_shed:>5d} "
            f"{'yes' if point.outputs_match else 'NO':>6}"
        )
    if report.knees:
        lines.append("")
        for process, knee in report.knees.items():
            ceiling = (
                report.knee_ceiling_qps
                and knee >= 0.999 * report.knee_ceiling_qps
            )
            lines.append(
                f"knee[{process}]: max sustainable "
                f"{knee:,.0f} qps under p{report.slo_q:g} <= "
                f"{report.slo_us:.1f} us "
                f"({knee / report.capacity_qps:.2f}x of capacity)"
                + (" [>= search ceiling]" if ceiling else "")
            )
    if report.shed_points:
        lines.append("")
        lines.append(
            "overload with load shedding (bounded queue, reject-newest):"
        )
        for point in report.shed_points:
            slo_ok = point.p99_us <= report.slo_us
            lines.append(
                f"{point.process:<10} {point.offered_qps:>12,.0f} qps, "
                f"queue cap {point.queue_capacity}: admitted "
                f"{point.num_admitted}/{point.num_requests} "
                f"(shed {point.num_shed}), admitted p99 "
                f"{point.p99_us:.1f} us "
                f"[{'within SLO' if slo_ok else 'SLO MISS'}], "
                f"{'exact' if point.outputs_match else 'MISMATCH'}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Workload matrix: FC, conv, and recurrent pipelines through one harness.


@dataclass
class WorkloadSpec:
    """A servable benchmark workload: a model plus its request recipe.

    ``input_hw`` is the first conv stage's spatial input size (``None``
    for FC / recurrent workloads); ``density`` is the activation density
    requests are drawn at (recurrent requests carry dense state, vision
    feature maps are dense post-normalization).
    """

    name: str
    model: object
    in_features: int
    density: float
    input_hw: tuple[int, int] | None = None

    def make_server(
        self,
        num_shards: int,
        num_threads: int | None = 1,
        value_dtype: str | None = None,
        config: EngineConfig | None = None,
        **kwargs,
    ) -> ModelServer:
        return ModelServer.from_model(
            self.model,
            input_hw=self.input_hw,
            value_dtype=value_dtype,
            num_shards=num_shards,
            num_threads=num_threads,
            config=config,
            **kwargs,
        )


def workload_names() -> tuple[str, ...]:
    """The serving workloads ``--workload`` accepts."""
    return ("alexnet-fc", "lenet", "resnet20", "nmt")


def build_workload(
    name: str,
    scale: int = 8,
    rng: np.random.Generator | int | None = 0,
) -> WorkloadSpec:
    """Build one named serving workload.

    - ``alexnet-fc``: the paper's AlexNet FC stack (Table II block
      sizes), width-divided by ``scale``, requests at Alex-FC6's Table
      VII activation density -- the pre-existing FC benchmark.
    - ``lenet``: a LeNet-style PD conv pipeline (PD conv 6->16 5x5 on a
      14x14 map + ReLU + 2x2 max-pool, then the classic 400-120-84 FC
      tail), fully PD so every stage runs on the engine.
    - ``resnet20``: a ResNet-20-style PD conv backbone (three 3x3 PD
      conv stages at widths 16/32/64 with stride-2 downsampling, no
      batch-norm or residual adds -- those have no engine datapath) plus
      pool and FC head.
    - ``nmt``: one PD LSTM cell (the paper's Table III NMT layer shape
      at reduced width, ``p = 8``), served one timestep per request with
      ``[x | h | c]`` inputs.

    ``scale`` only affects ``alexnet-fc``; the other workloads are
    fixed small pipelines sized for simulation.
    """
    from repro.models import build_alexnet_fc
    from repro.nn import (
        Flatten,
        MaxPool2D,
        PermDiagConv2D,
        PermDiagLinear,
        ReLU,
        Sequential,
    )
    from repro.nn.layers.recurrent import LSTMCell

    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    if name == "alexnet-fc":
        model = build_alexnet_fc(scale=scale, dropout=0.0, rng=rng)
        in_features = model.layers[0].matrix.shape[1]
        return WorkloadSpec(
            name, model, in_features, _ALEX_FC6_INPUT_DENSITY
        )
    if name == "lenet":
        model = Sequential(
            PermDiagConv2D(6, 16, 5, p=2, bias=False, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            PermDiagLinear(400, 120, p=4, bias=False, rng=rng),
            ReLU(),
            PermDiagLinear(120, 84, p=4, bias=False, rng=rng),
            ReLU(),
        )
        return WorkloadSpec(
            name, model, 6 * 14 * 14, 1.0, input_hw=(14, 14)
        )
    if name == "resnet20":
        model = Sequential(
            PermDiagConv2D(
                16, 16, 3, p=4, stride=1, padding=1, bias=False, rng=rng
            ),
            ReLU(),
            PermDiagConv2D(
                16, 32, 3, p=4, stride=2, padding=1, bias=False, rng=rng
            ),
            ReLU(),
            PermDiagConv2D(
                32, 64, 3, p=4, stride=2, padding=1, bias=False, rng=rng
            ),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            PermDiagLinear(64, 10, p=2, bias=False, rng=rng),
        )
        return WorkloadSpec(
            name, model, 16 * 8 * 8, 1.0, input_hw=(8, 8)
        )
    if name == "nmt":
        cell = LSTMCell(32, 64, p=8, rng=rng)
        return WorkloadSpec(
            name, cell, cell.input_size + 2 * cell.hidden_size, 1.0
        )
    raise ValueError(
        f"unknown workload {name!r} (expected one of {workload_names()})"
    )


@dataclass
class WorkloadMatrixRow:
    """One (workload, shard/thread/dtype point) measurement.

    The reference is the *unsharded* server (1 shard, sequential) over
    the same requests; ``outputs_match`` asserts the sharded
    multi-threaded pipeline reproduced it bit for bit.
    """

    workload: str
    num_shards: int
    num_threads: int
    value_dtype: str
    num_requests: int
    num_stages: int
    reference_rps: float
    sharded_rps: float
    speedup: float
    p50_latency_us: float
    p99_latency_us: float
    outputs_match: bool
    host_wall_s: float = 0.0


def run_workload_matrix(
    workloads: tuple[str, ...] | None = None,
    num_shards: int = 4,
    num_requests: int = 16,
    max_batch_size: int = 8,
    flush_deadline_us: float = 50.0,
    scale: int = 8,
    seed: int = 0,
    config: EngineConfig | None = None,
    num_threads: int | None = 1,
    value_dtype: str | None = None,
) -> list[WorkloadMatrixRow]:
    """Run every named workload through the sharded serving stack.

    Per workload: build the model once, serve the same request set
    through an unsharded reference server (1 shard, sequential host) and
    the sharded contender, and require the outputs to match **bit for
    bit** -- across FC, lowered-conv, and recurrent stages alike.
    """
    if workloads is None:
        workloads = workload_names()
    config = config or EngineConfig()
    rows = []
    for name in workloads:
        spec = build_workload(name, scale=scale, rng=seed)
        xs = make_requests(
            spec.in_features, num_requests, density=spec.density,
            rng=seed + 1,
        )
        batch = min(max_batch_size, num_requests)
        reference = spec.make_server(
            num_shards=1,
            num_threads=1,
            value_dtype=value_dtype,
            config=config,
            max_batch_size=batch,
            flush_deadline_us=flush_deadline_us,
        )
        reference.submit_many(xs)
        ref_report = reference.drain()
        ref_outputs = np.stack(ref_report.outputs)

        server = spec.make_server(
            num_shards=num_shards,
            num_threads=num_threads,
            value_dtype=value_dtype,
            config=config,
            max_batch_size=batch,
            flush_deadline_us=flush_deadline_us,
        )
        server.submit_many(xs)
        wall_start = time.perf_counter()
        report = server.drain()
        host_wall_s = time.perf_counter() - wall_start
        rows.append(WorkloadMatrixRow(
            workload=name,
            num_shards=num_shards,
            num_threads=server.num_threads,
            value_dtype=value_dtype or "float64",
            num_requests=num_requests,
            num_stages=len(server.layers),
            reference_rps=ref_report.throughput_rps,
            sharded_rps=report.throughput_rps,
            speedup=(
                report.throughput_rps / ref_report.throughput_rps
                if ref_report.throughput_rps > 0
                else 0.0
            ),
            p50_latency_us=report.latency_percentile(50),
            p99_latency_us=report.latency_percentile(99),
            outputs_match=bool(
                np.array_equal(np.stack(report.outputs), ref_outputs)
            ),
            host_wall_s=host_wall_s,
        ))
    return rows


def format_workload_matrix(rows: list[WorkloadMatrixRow]) -> str:
    """Human-readable workload-matrix table."""
    if not rows:
        return "workload matrix: no rows"
    head = rows[0]
    lines = [
        f"workload matrix   : {head.num_shards} shards, "
        f"{head.num_threads} host threads, {head.value_dtype} storage, "
        f"{head.num_requests} requests/workload",
        "",
        f"{'workload':<12} {'stages':>6} {'ref_rps':>12} {'sharded_rps':>12} "
        f"{'speedup':>8} {'p50_us':>8} {'p99_us':>8} {'exact':>6}",
        "-" * 78,
    ]
    for row in rows:
        lines.append(
            f"{row.workload:<12} {row.num_stages:>6d} "
            f"{row.reference_rps:>12,.0f} {row.sharded_rps:>12,.0f} "
            f"{row.speedup:>7.2f}x {row.p50_latency_us:>8.1f} "
            f"{row.p99_latency_us:>8.1f} "
            f"{'yes' if row.outputs_match else 'NO':>6}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Mixed traffic: vision + translation classes sharing one arrival stream.


@dataclass
class MixedClassStats:
    """Per-class slice of a mixed-traffic run."""

    workload: str
    num_requests: int
    achieved_qps: float
    p50_us: float
    p99_us: float
    outputs_match: bool


@dataclass
class MixedTrafficReport:
    """A mixed vision + translation open-loop run.

    One seeded arrival stream (PR 7 generators) is split request-by-
    request between two served pipelines -- even indices to the vision
    class, odd to the translation class -- so both classes see the same
    burstiness.  ``offered_qps`` is the total stream rate, anchored so
    each class runs at ``load`` fraction of the *slower* class's
    capacity probe.
    """

    process: str
    load: float
    offered_qps: float
    num_requests: int
    num_shards: int
    seed: int
    classes: list[MixedClassStats] = field(default_factory=list)

    def failures(self) -> list[str]:
        return [
            f"mixed[{stats.workload}]: outputs diverge from the "
            "unsharded reference"
            for stats in self.classes
            if not stats.outputs_match
        ]


def run_mixed_traffic(
    process: str = "poisson",
    load: float = 0.8,
    num_requests: int = 24,
    num_shards: int = 4,
    num_threads: int | None = 1,
    seed: int = 0,
    max_batch_size: int = 8,
    flush_deadline_us: float = 50.0,
    config: EngineConfig | None = None,
    vision: str = "lenet",
    translation: str = "nmt",
) -> MixedTrafficReport:
    """Serve vision and translation classes off one arrival stream.

    ``num_requests`` is the per-class count.  Each class's capacity is
    probed with one full micro-batch (the open-loop anchor methodology);
    the stream rate is ``2 * load * min(capacities)`` so the slower
    class runs at ``load`` fraction of saturation.  Outputs of both
    classes are compared bit-for-bit against their own unsharded
    burst-mode references -- per-request outputs are independent of
    batching and arrival times, so the comparison is exact.
    """
    config = config or EngineConfig()
    cycles_per_us = config.clock_ghz * 1e3
    batch = min(max_batch_size, num_requests)
    specs = [
        build_workload(vision, rng=seed),
        build_workload(translation, rng=seed),
    ]
    request_sets = [
        make_requests(
            spec.in_features, num_requests, density=spec.density,
            rng=seed + 1 + idx,
        )
        for idx, spec in enumerate(specs)
    ]

    capacities = []
    references = []
    for spec, xs in zip(specs, request_sets):
        reference = spec.make_server(
            num_shards=1, num_threads=1, config=config,
            max_batch_size=batch, flush_deadline_us=flush_deadline_us,
        )
        reference.submit_many(xs)
        ref_report = reference.drain()
        references.append(np.stack(ref_report.outputs))
        probe = spec.make_server(
            num_shards=num_shards, num_threads=1, config=config,
            max_batch_size=batch, flush_deadline_us=flush_deadline_us,
        )
        probe.submit_many(xs[:batch])
        probe_report = probe.drain()
        bottleneck_us = max(probe_report.layer_cycles) / cycles_per_us
        capacities.append(batch / (bottleneck_us * 1e-6))

    offered_qps = 2.0 * load * min(capacities)
    arrivals = make_arrival_process(process, offered_qps, seed=seed).generate(
        2 * num_requests
    )
    servers = [
        spec.make_server(
            num_shards=num_shards, num_threads=num_threads, config=config,
            max_batch_size=batch, flush_deadline_us=flush_deadline_us,
        )
        for spec in specs
    ]
    # Interleave: even stream slots -> vision, odd -> translation.
    for idx, arrival in enumerate(arrivals):
        cls = idx % 2
        servers[cls].submit(request_sets[cls][idx // 2], arrival_us=arrival)

    report = MixedTrafficReport(
        process=process,
        load=load,
        offered_qps=offered_qps,
        num_requests=2 * num_requests,
        num_shards=num_shards,
        seed=seed,
    )
    for spec, server, expected in zip(specs, servers, references):
        drain = server.drain()
        report.classes.append(MixedClassStats(
            workload=spec.name,
            num_requests=drain.num_requests,
            achieved_qps=drain.throughput_rps,
            p50_us=drain.latency_percentile(50),
            p99_us=drain.latency_percentile(99),
            outputs_match=bool(
                np.array_equal(np.stack(drain.outputs), expected)
            ),
        ))
    return report


def format_mixed_report(report: MixedTrafficReport) -> str:
    """Human-readable mixed-traffic summary."""
    lines = [
        f"mixed traffic     : {report.process} arrivals, "
        f"{report.offered_qps:,.0f} qps total "
        f"({report.load:.2f}x of the slower class's capacity), "
        f"{report.num_requests} requests, {report.num_shards} shards, "
        f"seed {report.seed}",
        "",
        f"{'class':<12} {'requests':>8} {'qps':>12} {'p50_us':>8} "
        f"{'p99_us':>8} {'exact':>6}",
        "-" * 60,
    ]
    for stats in report.classes:
        lines.append(
            f"{stats.workload:<12} {stats.num_requests:>8d} "
            f"{stats.achieved_qps:>12,.0f} {stats.p50_us:>8.1f} "
            f"{stats.p99_us:>8.1f} "
            f"{'yes' if stats.outputs_match else 'NO':>6}"
        )
    return "\n".join(lines)


def format_report(report: ServingBenchReport) -> str:
    """Human-readable summary of a benchmark run."""
    lines = [
        f"workload          : AlexNet-FC stack (scale 1/{report.scale}), "
        f"{report.num_requests} requests, "
        f"{report.value_dtype} value storage",
        f"server            : {report.num_shards} shards, "
        f"{report.num_threads} host threads, "
        f"max batch {report.max_batch_size}, "
        f"deadline {report.flush_deadline_us:.1f} us",
        f"host drain wall   : {report.host_wall_s * 1e3:.1f} ms",
        f"batches formed    : {report.batch_sizes}",
        f"baseline          : {report.baseline_rps:,.0f} req/s "
        f"({report.baseline_makespan_us:.1f} us for the set)",
        f"sharded           : {report.sharded_rps:,.0f} req/s "
        f"({report.sharded_makespan_us:.1f} us makespan)",
        f"speedup           : {report.speedup:.2f}x",
        f"latency p50 / p99 : {report.p50_latency_us:.1f} / "
        f"{report.p99_latency_us:.1f} us",
        f"outputs match     : "
        f"{'bit-for-bit' if report.outputs_match else 'MISMATCH'}",
    ]
    return "\n".join(lines)
