"""Batched, sharded multi-engine serving runtime.

``ModelServer`` drives a stack of PD FC layers the way the paper's
deployment story scales past one engine: each layer's
:class:`~repro.core.BlockPermutedDiagonalMatrix` is cut **row-wise** into
``num_shards`` shards (block-row granularity, so every shard is itself a
valid PD matrix) and each shard executes on its own
:class:`~repro.hw.PermDNNEngine` instance.  Because row shards partition
the output dimension, the shard engines run the *same* zero-skipped input
columns concurrently and their stacked outputs reproduce the unsharded
:meth:`~repro.hw.PermDNNEngine.run_fc_batch` result bit for bit.

Sharding reuses the layer matrix's cached index plan through
:meth:`~repro.core.BlockPermutedDiagonalMatrix.row_shard` (pure slicing of
the ``_IndexPlan`` arrays -- index arithmetic is computed once per layer,
never per shard) and shard ``data`` aliases the layer's storage, so a
server wraps live training weights with zero copies.

Requests flow through a :class:`~repro.serve.batching.MicroBatcher`
(configurable batch size and flush deadline) and micro-batches pipeline
between layers: layer ``l`` starts batch ``b`` as soon as layer ``l-1``
finished it *and* layer ``l`` finished batch ``b-1``.  Timing is simulated
engine time (cycles at the configured clock), the same accounting every
other ``repro.hw`` result uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import BlockPermutedDiagonalMatrix
from repro.hw.config import EngineConfig
from repro.hw.engine import PermDNNEngine
from repro.serve.batching import MicroBatcher, Request

__all__ = ["LayerShardStats", "ModelServer", "ServeReport", "ShardedLayer"]


@dataclass
class LayerShardStats:
    """Cumulative counters for one ``(layer, shard)`` engine.

    Attributes:
        cycles: busy cycles across all processed micro-batches.
        macs: multiply-accumulates performed.
        batches: micro-batches processed.
        samples: individual requests processed.
    """

    cycles: int = 0
    macs: int = 0
    batches: int = 0
    samples: int = 0


class ShardedLayer:
    """One FC layer split row-wise across shard engines.

    Built either from a full layer matrix (:meth:`__init__` calls
    :meth:`~repro.core.BlockPermutedDiagonalMatrix.row_shards`) or from
    pre-sharded matrices loaded out of a bundle (:meth:`from_shards`).

    Args:
        matrix: the full ``(out, in)`` PD weight matrix.
        activation: optional ActU mode (``"relu"``/``"tanh"``) applied by
            every shard engine to its output slice (elementwise, so the
            sharded result still matches the unsharded one exactly).
        num_shards: how many engines the layer spreads over.
    """

    def __init__(
        self,
        matrix: BlockPermutedDiagonalMatrix,
        activation: str | None,
        num_shards: int,
    ) -> None:
        self._init_from(matrix.row_shards(num_shards), activation)

    @classmethod
    def from_shards(
        cls,
        shards: list[BlockPermutedDiagonalMatrix],
        activation: str | None,
    ) -> "ShardedLayer":
        """Wrap already-sharded matrices (e.g. from a sharded bundle)."""
        if not shards:
            raise ValueError("a sharded layer needs at least one shard")
        widths = {shard.shape[1] for shard in shards}
        if len(widths) != 1:
            raise ValueError(
                f"shard input widths disagree: {sorted(widths)}"
            )
        layer = cls.__new__(cls)
        layer._init_from(list(shards), activation)
        return layer

    def _init_from(
        self, shards: list[BlockPermutedDiagonalMatrix], activation: str | None
    ) -> None:
        self.shards = shards
        self.activation = activation
        self.num_shards = len(shards)
        self.in_features = shards[0].shape[1]
        self.out_features = sum(shard.shape[0] for shard in shards)

    def check_capacity(self, engines: list[PermDNNEngine]) -> None:
        """Verify every shard fits its engine's SRAM budget."""
        for engine, shard in zip(engines, self.shards):
            engine.check_capacity(shard)

    def run_batch(
        self,
        engines: list[PermDNNEngine],
        x_batch: np.ndarray,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
    ) -> tuple[np.ndarray, list[int], list[int]]:
        """Execute one micro-batch on every shard engine.

        Each shard runs through
        :meth:`~repro.hw.PermDNNEngine.run_fc_batch_detailed` -- the same
        accounting as the unsharded baseline (pipeline fill paid once per
        batch, per-sample compute + writeback) -- so the concatenated
        outputs are bit-identical to the unsharded batch call by
        construction.

        Returns:
            ``(outputs, shard_cycles, shard_macs)`` with outputs of shape
            ``(B, out_features)``; the batch's wall time on the shard array
            is ``max(shard_cycles)`` since the engines run concurrently.
        """
        outputs = np.empty((x_batch.shape[0], self.out_features))
        shard_cycles: list[int] = []
        shard_macs: list[int] = []
        offset = 0
        for engine, shard in zip(engines, self.shards):
            out, cycles, macs = engine.run_fc_batch_detailed(
                shard,
                x_batch,
                activation=self.activation,
                zero_skip=zero_skip,
                enforce_capacity=enforce_capacity,
            )
            outputs[:, offset : offset + shard.shape[0]] = out
            offset += shard.shape[0]
            shard_cycles.append(cycles)
            shard_macs.append(macs)
        return outputs, shard_cycles, shard_macs

    def __repr__(self) -> str:
        return (
            f"ShardedLayer({self.in_features} -> {self.out_features}, "
            f"shards={self.num_shards}, activation={self.activation!r})"
        )


@dataclass
class ServeReport:
    """Everything one :meth:`ModelServer.drain` produced.

    Attributes:
        outputs: final-layer output per request, in submission (rid) order.
        latencies_us: per-request latency (completion minus arrival).
        batch_sizes: micro-batch sizes, in formation order.
        makespan_us: first arrival to last completion.
        throughput_rps: requests served per second of simulated time.
        layer_stats: ``(L, N)`` grid of per-(layer, shard) counters for
            this drain.
        layer_cycles: per-layer critical-path cycles (the slowest shard of
            every micro-batch, summed).
    """

    outputs: list[np.ndarray]
    latencies_us: np.ndarray
    batch_sizes: list[int]
    makespan_us: float
    throughput_rps: float
    layer_stats: list[list[LayerShardStats]]
    layer_cycles: list[int]

    @property
    def num_requests(self) -> int:
        return len(self.outputs)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in microseconds (e.g. ``q=50``, ``q=99``)."""
        if self.latencies_us.size == 0:
            return 0.0
        return float(np.percentile(self.latencies_us, q))


class ModelServer:
    """Sharded multi-engine serving front end (submit / drain).

    Args:
        layers: ``(matrix, activation)`` pairs, input to output (the same
            shape :meth:`~repro.hw.PermDNNEngine.run_network` accepts), or
            pre-built :class:`ShardedLayer` objects.
        num_shards: engines per layer; each holds one row shard.
        config: engine configuration shared by every shard engine.
        max_batch_size: micro-batcher fill limit.
        flush_deadline_us: micro-batcher deadline flush.
        zero_skip: forward the engines' input zero-skipping.
        enforce_capacity: validate every shard against its engine's SRAM
            budget at construction (and per call).
    """

    def __init__(
        self,
        layers: list,
        num_shards: int = 4,
        config: EngineConfig | None = None,
        max_batch_size: int = 16,
        flush_deadline_us: float = 50.0,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
    ) -> None:
        if not layers:
            raise ValueError("ModelServer needs at least one layer")
        self.config = config or EngineConfig()
        self.zero_skip = zero_skip
        self.enforce_capacity = enforce_capacity
        self.layers: list[ShardedLayer] = [
            layer
            if isinstance(layer, ShardedLayer)
            else ShardedLayer(layer[0], layer[1], num_shards)
            for layer in layers
        ]
        # Derive from the layers: a pre-built ShardedLayer carries its own
        # shard count, which the ``num_shards`` argument does not override.
        self.num_shards = self.layers[0].num_shards
        for prev, nxt in zip(self.layers, self.layers[1:]):
            if prev.out_features != nxt.in_features:
                raise ValueError(
                    f"layer chain mismatch: {prev!r} feeds {nxt!r}"
                )
        # One engine per (layer, shard): every shard owns its own SRAMs and
        # counters, exactly like an array of physical engines would.
        self.engines: list[list[PermDNNEngine]] = [
            [PermDNNEngine(self.config) for _ in range(layer.num_shards)]
            for layer in self.layers
        ]
        if enforce_capacity:
            for layer, engines in zip(self.layers, self.engines):
                layer.check_capacity(engines)
        self.batcher = MicroBatcher(max_batch_size, flush_deadline_us)
        self._pending: list[Request] = []
        self._next_rid = 0
        self._last_arrival_us = 0.0

    @classmethod
    def from_model(cls, model, **kwargs) -> "ModelServer":
        """Wrap a trained FC model (its live weights, zero copies).

        The model is flattened through
        :func:`repro.nn.serialization.model_engine_layers`; shard data
        aliases the layers' parameter storage, so serving reflects
        subsequent in-place weight updates.
        """
        from repro.nn.serialization import model_engine_layers

        return cls(model_engine_layers(model), **kwargs)

    @classmethod
    def from_bundle(
        cls,
        directory,
        missing_backend: str = "error",
        **kwargs,
    ) -> "ModelServer":
        """Boot a server from a sharded image bundle.

        Every shard matrix arrives with its serialized index plan
        (:mod:`repro.serve.bundle`), so cold-starting a many-layer sharded
        server performs **no** index arithmetic.  Keyword arguments are
        forwarded to the constructor (batching, config, ...).
        """
        from repro.serve.bundle import load_sharded_bundle

        layers, _ = load_sharded_bundle(
            directory, missing_backend=missing_backend
        )
        sharded = [
            ShardedLayer.from_shards(shards, activation)
            for shards, activation in layers
        ]
        return cls(sharded, **kwargs)

    # ------------------------------------------------------------------

    @property
    def in_features(self) -> int:
        return self.layers[0].in_features

    @property
    def out_features(self) -> int:
        return self.layers[-1].out_features

    @property
    def cycles_per_us(self) -> float:
        return self.config.clock_ghz * 1e3

    def submit(self, x: np.ndarray, arrival_us: float | None = None) -> int:
        """Queue one request; returns its id (= output position).

        ``arrival_us`` defaults to the previous request's arrival (an
        all-at-once burst when never specified); arrivals are clamped to be
        non-decreasing so the queue stays ordered.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.in_features,):
            raise ValueError(
                f"expected input of shape ({self.in_features},), got {x.shape}"
            )
        if arrival_us is None:
            arrival_us = self._last_arrival_us
        arrival_us = max(float(arrival_us), self._last_arrival_us)
        self._last_arrival_us = arrival_us
        rid = self._next_rid
        self._next_rid += 1
        self._pending.append(Request(rid, x, arrival_us))
        return rid

    def submit_many(
        self,
        xs: np.ndarray,
        arrivals_us: np.ndarray | None = None,
    ) -> list[int]:
        """Queue a batch of requests; returns their ids in order."""
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim != 2:
            raise ValueError(f"expected inputs of shape (B, n), got {xs.shape}")
        if arrivals_us is None:
            return [self.submit(x) for x in xs]
        arrivals = np.asarray(arrivals_us, dtype=np.float64)
        if arrivals.shape != (xs.shape[0],):
            raise ValueError(
                f"arrivals_us shape {arrivals.shape} does not match "
                f"batch of {xs.shape[0]}"
            )
        return [self.submit(x, t) for x, t in zip(xs, arrivals)]

    def drain(self) -> ServeReport:
        """Serve every pending request and return the drain report.

        Micro-batches are formed by the batcher, then pipelined through
        the layer shard arrays: batch ``b`` enters layer ``l`` at
        ``max(completion[l-1][b], completion[l][b-1], ready_b)`` and
        occupies the layer for its slowest shard's cycles.  Outputs come
        back in submission order regardless of batching.
        """
        pending, self._pending = self._pending, []
        batches = self.batcher.plan(pending)
        num_layers = len(self.layers)
        layer_stats = [
            [LayerShardStats() for _ in range(layer.num_shards)]
            for layer in self.layers
        ]
        layer_cycles = [0] * num_layers
        outputs: dict[int, np.ndarray] = {}
        latencies: dict[int, float] = {}
        # completion time (in cycles) of the previous batch, per layer
        layer_free = [0.0] * num_layers
        for batch in batches:
            current = batch.stacked_inputs()
            done = batch.ready_us * self.cycles_per_us
            for idx, (layer, engines) in enumerate(
                zip(self.layers, self.engines)
            ):
                current, shard_cycles, shard_macs = layer.run_batch(
                    engines,
                    current,
                    zero_skip=self.zero_skip,
                    enforce_capacity=self.enforce_capacity,
                )
                stage = max(shard_cycles)
                start = max(done, layer_free[idx])
                done = start + stage
                layer_free[idx] = done
                layer_cycles[idx] += stage
                for shard_idx, (cycles, macs) in enumerate(
                    zip(shard_cycles, shard_macs)
                ):
                    stats = layer_stats[idx][shard_idx]
                    stats.cycles += cycles
                    stats.macs += macs
                    stats.batches += 1
                    stats.samples += batch.size
            completion_us = done / self.cycles_per_us
            for row, request in enumerate(batch.requests):
                outputs[request.rid] = current[row]
                latencies[request.rid] = completion_us - request.arrival_us
        rids = sorted(outputs)
        latencies_us = np.asarray([latencies[rid] for rid in rids])
        if pending:
            first_arrival = min(request.arrival_us for request in pending)
            last_completion = max(
                request.arrival_us + latencies[request.rid]
                for request in pending
            )
            makespan_us = last_completion - first_arrival
        else:
            makespan_us = 0.0
        throughput = (
            len(rids) / (makespan_us * 1e-6) if makespan_us > 0 else 0.0
        )
        return ServeReport(
            outputs=[outputs[rid] for rid in rids],
            latencies_us=latencies_us,
            batch_sizes=[batch.size for batch in batches],
            makespan_us=makespan_us,
            throughput_rps=throughput,
            layer_stats=layer_stats,
            layer_cycles=layer_cycles,
        )

    def __repr__(self) -> str:
        return (
            f"ModelServer(layers={len(self.layers)}, "
            f"shards={self.num_shards}, "
            f"max_batch={self.batcher.max_batch_size}, "
            f"deadline={self.batcher.flush_deadline_us}us)"
        )
