"""Batched, sharded multi-engine serving runtime.

``ModelServer`` drives a stack of PD FC layers the way the paper's
deployment story scales past one engine: each layer's
:class:`~repro.core.BlockPermutedDiagonalMatrix` is cut **row-wise** into
``num_shards`` shards (block-row granularity, so every shard is itself a
valid PD matrix) and each shard executes on its own
:class:`~repro.hw.PermDNNEngine` instance.  Because row shards partition
the output dimension, the shard engines process the *same* zero-skipped
input columns and their stacked outputs reproduce the unsharded
:meth:`~repro.hw.PermDNNEngine.run_fc_batch` result bit for bit.  Shard
concurrency exists on two clocks: in **simulated time** a micro-batch
occupies a layer for its slowest shard's cycles (the engines are modelled
as a parallel array), and in **host time** the shard engines of a layer
actually run on a :class:`~concurrent.futures.ThreadPoolExecutor`
(``num_threads``; each shard's kernel work releases the GIL inside its
batched numpy/scipy product).  Results are stitched in shard order, so
threaded and sequential execution are bit-identical by construction.

Sharding reuses the layer matrix's cached index plan through
:meth:`~repro.core.BlockPermutedDiagonalMatrix.row_shard` (pure slicing of
the ``_IndexPlan`` arrays -- index arithmetic is computed once per layer,
never per shard) and shard ``data`` aliases the layer's storage, so a
server wraps live training weights with zero copies.

Requests flow through a :class:`~repro.serve.batching.MicroBatcher`
(configurable batch size and flush deadline) and micro-batches pipeline
between layers: layer ``l`` starts batch ``b`` as soon as layer ``l-1``
finished it *and* layer ``l`` finished batch ``b-1``.  Timing is simulated
engine time (cycles at the configured clock), the same accounting every
other ``repro.hw`` result uses.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core import BlockPermDiagTensor4D, BlockPermutedDiagonalMatrix
from repro.hw.config import EngineConfig
from repro.hw.conv_lowering import offset_matrices
from repro.hw.engine import PermDNNEngine
from repro.nn.layers.recurrent import LSTMCell, sigmoid
from repro.serve.batching import MicroBatcher, Request

__all__ = [
    "EmptyServeReportError",
    "LayerShardStats",
    "LoweredConvStage",
    "ModelServer",
    "RecurrentStage",
    "ServeReport",
    "ServedStage",
    "ShardedLayer",
    "build_stages",
]

# Gate order of every recurrent stage's image slots: the four input
# projections W then the four recurrent projections U, gates in LSTMCell
# order (input, forget, cell, output).
_GATES = ("i", "f", "g", "o")


class EmptyServeReportError(ValueError):
    """Raised when percentile statistics are asked of an empty report."""


class ServedStage:
    """One pipeline stage of a :class:`ModelServer`: the serving protocol.

    A (stage, shard) is **not** synonymous with an FC matmul: a stage is
    anything that maps a flat ``(B, in_features)`` micro-batch to a flat
    ``(B, out_features)`` one on an array of shard engines.  Implementations
    (:class:`ShardedLayer` for FC, :class:`LoweredConvStage` for lowered
    convolutions, :class:`RecurrentStage` for per-timestep LSTM cells) all
    meet the same bars: shard ``K`` writes a disjoint column range of the
    output (thread-safe stitching, bit-identical at every thread count) and
    the concatenation equals the unsharded single-engine computation bit for
    bit.

    Interface (attributes set by subclass ``__init__``):

    - ``num_shards`` / ``in_features`` / ``out_features``
    - ``check_capacity(engines)`` -- SRAM validation per shard engine.
    - ``run_batch(engines, x_batch, zero_skip=True, enforce_capacity=True,
      executor=None) -> (outputs, shard_cycles, shard_macs)`` -- execute
      one micro-batch; the stage's simulated time is ``max(shard_cycles)``.
    """

    stage_kind: str = "abstract"
    num_shards: int
    in_features: int
    out_features: int

    def check_capacity(self, engines: list[PermDNNEngine]) -> None:
        raise NotImplementedError

    def run_batch(
        self,
        engines: list[PermDNNEngine],
        x_batch: np.ndarray,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
        executor: ThreadPoolExecutor | None = None,
    ) -> tuple[np.ndarray, list[int], list[int]]:
        raise NotImplementedError

    @staticmethod
    def _run_shard_tasks(run_shard, tasks, executor, num_shards):
        """Run per-shard closures, threaded or sequential, in shard order."""
        if executor is not None and num_shards > 1:
            futures = [executor.submit(run_shard, *task) for task in tasks]
            return [future.result() for future in futures]
        return [run_shard(*task) for task in tasks]


@dataclass
class LayerShardStats:
    """Cumulative counters for one ``(layer, shard)`` engine.

    Attributes:
        cycles: busy cycles across all processed micro-batches.
        macs: multiply-accumulates performed.
        batches: micro-batches processed.
        samples: individual requests processed.
        shed: requests this shard never saw because admission control
            rejected them at the queue (accounted on the entry layer's
            shards, which is where the work would have started).
    """

    cycles: int = 0
    macs: int = 0
    batches: int = 0
    samples: int = 0
    shed: int = 0


def _shard_block_bounds(
    shard_matrices: list[BlockPermutedDiagonalMatrix],
) -> list[tuple[int, int]]:
    """Contiguous block-row bounds covered by each shard, in shard order."""
    bounds = []
    start = 0
    for matrix in shard_matrices:
        bounds.append((start, start + matrix.mb))
        start += matrix.mb
    return bounds


def _matrix_storage_entry(matrix: BlockPermutedDiagonalMatrix) -> dict:
    """The manifest's value-storage fields for one (family of) matrices."""
    return {
        "p": matrix.p,
        "value_dtype": matrix.value_dtype,
        "fixed_point": (
            [matrix.fixed_point.total_bits, matrix.fixed_point.frac_bits]
            if matrix.fixed_point is not None
            else None
        ),
    }


class ShardedLayer(ServedStage):
    """One FC layer split row-wise across shard engines.

    Built either from a full layer matrix (:meth:`__init__` calls
    :meth:`~repro.core.BlockPermutedDiagonalMatrix.row_shards`) or from
    pre-sharded matrices loaded out of a bundle (:meth:`from_shards`).

    Args:
        matrix: the full ``(out, in)`` PD weight matrix.
        activation: optional ActU mode (``"relu"``/``"tanh"``) applied by
            every shard engine to its output slice (elementwise, so the
            sharded result still matches the unsharded one exactly).
        num_shards: how many engines the layer spreads over.
    """

    def __init__(
        self,
        matrix: BlockPermutedDiagonalMatrix,
        activation: str | None,
        num_shards: int,
    ) -> None:
        self._init_from(matrix.row_shards(num_shards), activation)

    @classmethod
    def from_shards(
        cls,
        shards: list[BlockPermutedDiagonalMatrix],
        activation: str | None,
    ) -> "ShardedLayer":
        """Wrap already-sharded matrices (e.g. from a sharded bundle)."""
        if not shards:
            raise ValueError("a sharded layer needs at least one shard")
        widths = {shard.shape[1] for shard in shards}
        if len(widths) != 1:
            raise ValueError(
                f"shard input widths disagree: {sorted(widths)}"
            )
        layer = cls.__new__(cls)
        layer._init_from(list(shards), activation)
        return layer

    def _init_from(
        self, shards: list[BlockPermutedDiagonalMatrix], activation: str | None
    ) -> None:
        self.shards = shards
        self.activation = activation
        self.num_shards = len(shards)
        self.in_features = shards[0].shape[1]
        self.out_features = sum(shard.shape[0] for shard in shards)

    def check_capacity(self, engines: list[PermDNNEngine]) -> None:
        """Verify every shard fits its engine's SRAM budget."""
        for engine, shard in zip(engines, self.shards):
            engine.check_capacity(shard)

    def run_batch(
        self,
        engines: list[PermDNNEngine],
        x_batch: np.ndarray,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
        executor: ThreadPoolExecutor | None = None,
    ) -> tuple[np.ndarray, list[int], list[int]]:
        """Execute one micro-batch on every shard engine.

        Each shard runs through
        :meth:`~repro.hw.PermDNNEngine.run_fc_batch_detailed` -- the same
        accounting as the unsharded baseline (pipeline fill paid once per
        batch, per-sample compute + writeback) -- so the concatenated
        outputs are bit-identical to the unsharded batch call by
        construction.

        With an ``executor``, the shards run as one task each on its
        threads (safe: every shard owns its engine and writes a disjoint
        column slice of ``outputs``); without one they run sequentially
        on the calling thread.  Either way results are collected in shard
        order, so the stitched output is deterministic and identical
        across thread counts.

        Returns:
            ``(outputs, shard_cycles, shard_macs)`` with outputs of shape
            ``(B, out_features)``; the batch's wall time on the shard
            array is ``max(shard_cycles)`` -- in simulated time the
            engines are a parallel array, whatever the host execution
            mode.
        """
        # np.zeros, not np.empty: the shard writes that cover every column
        # happen inside ``run_shard`` (possibly on executor threads), out
        # of reach of RPR006's unconditional-fill analysis.
        outputs = np.zeros(
            (x_batch.shape[0], self.out_features),
            dtype=self.shards[0].compute_dtype,
        )

        def run_shard(
            engine: PermDNNEngine,
            shard: BlockPermutedDiagonalMatrix,
            offset: int,
        ) -> tuple[int, int]:
            out, cycles, macs = engine.run_fc_batch_detailed(
                shard,
                x_batch,
                activation=self.activation,
                zero_skip=zero_skip,
                enforce_capacity=enforce_capacity,
            )
            outputs[:, offset : offset + shard.shape[0]] = out
            return cycles, macs

        tasks = []
        offset = 0
        for engine, shard in zip(engines, self.shards):
            tasks.append((engine, shard, offset))
            offset += shard.shape[0]
        results = self._run_shard_tasks(
            run_shard, tasks, executor, self.num_shards
        )
        shard_cycles = [cycles for cycles, _ in results]
        shard_macs = [macs for _, macs in results]
        return outputs, shard_cycles, shard_macs

    # -- bundle serialization hooks (see repro.serve.bundle) -----------

    stage_kind = "fc"

    def manifest_entry(self) -> dict:
        entry = {
            "stage_kind": self.stage_kind,
            "slots": 1,
            "shape": [self.out_features, self.in_features],
            "activation": self.activation,
            "shard_block_bounds": [
                list(b) for b in _shard_block_bounds(self.shards)
            ],
        }
        entry.update(_matrix_storage_entry(self.shards[0]))
        return entry

    def image_slots(self, shard_idx: int) -> list:
        return [(self.shards[shard_idx], self.activation)]

    def aux_payload(self) -> dict | None:
        return None

    def __repr__(self) -> str:
        return (
            f"ShardedLayer({self.in_features} -> {self.out_features}, "
            f"shards={self.num_shards}, activation={self.activation!r})"
        )


class LoweredConvStage(ServedStage):
    """A PD convolution served as lowered per-offset FC batches.

    Built on :func:`repro.hw.conv_lowering.offset_matrices`: the ``kh*kw``
    per-offset channel matrices all share the weight tensor's channel-plane
    index plan, and every offset matrix is row-sharded over **output
    channels** with one shared set of block bounds -- so shard ``K`` owns
    channel rows ``[lo, hi)`` of every offset and its output slice is a
    contiguous range of the channel-major flattened feature map.  Requests
    are flat ``c_in*H*W`` vectors (C-order, the same layout ``Flatten``
    emits) and outputs are flat ``c_out*ph*pw`` vectors, so conv stages
    chain with FC stages without any reshuffling.

    Per micro-batch, each shard accumulates its offset products over the
    ``(B*oh*ow, c_in)`` lowered column batches **in fixed offset order**,
    applies the activation post-accumulation, and optionally fuses a
    non-overlapping square max-pool -- all elementwise/per-channel, so
    sharded === unsharded and threaded === sequential hold bit for bit.

    Args:
        tensor: PD CONV weight tensor ``(c_out, c_in, kh, kw)``.
        activation: ActU mode applied after offset accumulation.
        num_shards: engines this stage spreads over.
        input_hw: spatial size ``(H, W)`` of the incoming feature map.
        stride / padding: convolution geometry.
        pool: optional fused max-pool factor (window == stride == pool).
        backend / value_dtype / fixed_point: forwarded to
            :func:`~repro.hw.conv_lowering.offset_matrices`.
    """

    stage_kind = "conv"

    def __init__(
        self,
        tensor: BlockPermDiagTensor4D,
        activation: str | None,
        num_shards: int,
        input_hw: tuple[int, int],
        stride: int = 1,
        padding: int = 0,
        pool: int | None = None,
        backend: str | None = None,
        value_dtype: str | None = None,
        fixed_point=None,
    ) -> None:
        matrices = offset_matrices(
            tensor,
            backend=backend,
            value_dtype=value_dtype,
            fixed_point=fixed_point,
        )
        slot_shards = [matrix.row_shards(num_shards) for matrix in matrices]
        shard_slots = [
            [slot_shards[slot][shard] for slot in range(len(matrices))]
            for shard in range(num_shards)
        ]
        self._init_from(
            shard_slots,
            activation,
            channels=(tensor.shape[0], tensor.shape[1]),
            kernel_size=tensor.kernel_size,
            input_hw=input_hw,
            stride=stride,
            padding=padding,
            pool=pool,
        )

    @classmethod
    def from_shard_slots(
        cls,
        shard_slots: list[list[BlockPermutedDiagonalMatrix]],
        activation: str | None,
        channels: tuple[int, int],
        kernel_size: tuple[int, int],
        input_hw: tuple[int, int],
        stride: int = 1,
        padding: int = 0,
        pool: int | None = None,
    ) -> "LoweredConvStage":
        """Wrap already-sharded offset matrices (e.g. from a v3 bundle)."""
        stage = cls.__new__(cls)
        stage._init_from(
            [list(slots) for slots in shard_slots],
            activation,
            channels=channels,
            kernel_size=kernel_size,
            input_hw=input_hw,
            stride=stride,
            padding=padding,
            pool=pool,
        )
        return stage

    def _init_from(
        self,
        shard_slots,
        activation,
        channels,
        kernel_size,
        input_hw,
        stride,
        padding,
        pool,
    ) -> None:
        if not shard_slots:
            raise ValueError("a conv stage needs at least one shard")
        c_out, c_in = channels
        kh, kw = kernel_size
        for slots in shard_slots:
            if len(slots) != kh * kw:
                raise ValueError(
                    f"conv shard holds {len(slots)} offset matrices, "
                    f"kernel {kh}x{kw} needs {kh * kw}"
                )
            if any(matrix.shape != slots[0].shape for matrix in slots):
                raise ValueError("offset matrices of one shard disagree")
            if slots[0].shape[1] != c_in:
                raise ValueError(
                    f"shard expects {slots[0].shape[1]} input channels, "
                    f"stage says {c_in}"
                )
        rows = [slots[0].shape[0] for slots in shard_slots]
        if sum(rows) != c_out:
            raise ValueError(
                f"shards cover {sum(rows)} output channels, stage has {c_out}"
            )
        height, width = (int(v) for v in input_hw)
        oh = (height + 2 * padding - kh) // stride + 1
        ow = (width + 2 * padding - kw) // stride + 1
        if oh <= 0 or ow <= 0:
            raise ValueError(
                f"non-positive conv output size for input {input_hw}"
            )
        if pool is not None:
            if pool < 1 or oh % pool or ow % pool:
                raise ValueError(
                    f"pool {pool} does not tile the {oh}x{ow} conv output"
                )
        self.shard_slots = shard_slots
        self.activation = activation
        self.num_shards = len(shard_slots)
        self.channels = (c_out, c_in)
        self.kernel_size = (kh, kw)
        self.input_hw = (height, width)
        self.stride = stride
        self.padding = padding
        self.pool = pool
        self.conv_hw = (oh, ow)
        self.output_hw = (
            (oh // pool, ow // pool) if pool is not None else (oh, ow)
        )
        self.in_features = c_in * height * width
        self.out_features = c_out * self.output_hw[0] * self.output_hw[1]
        self._shard_rows = rows

    def check_capacity(self, engines: list[PermDNNEngine]) -> None:
        """Verify every offset matrix of every shard fits its engine."""
        for engine, slots in zip(engines, self.shard_slots):
            for matrix in slots:
                engine.check_capacity(matrix)

    def run_batch(
        self,
        engines: list[PermDNNEngine],
        x_batch: np.ndarray,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
        executor: ThreadPoolExecutor | None = None,
    ) -> tuple[np.ndarray, list[int], list[int]]:
        """Execute one micro-batch of flattened feature maps.

        The lowered column batches (one ``(B*oh*ow, c_in)`` matrix per
        kernel offset) are built **once** on the calling thread and shared
        read-only by every shard; shard tasks then accumulate their offset
        products, apply activation/pool, and write disjoint output column
        ranges -- the same stitching discipline as the FC path.
        """
        batch = x_batch.shape[0]
        c_out, c_in = self.channels
        kh, kw = self.kernel_size
        oh, ow = self.conv_hw
        compute_dtype = self.shard_slots[0][0].compute_dtype
        x = np.asarray(x_batch, dtype=compute_dtype).reshape(
            batch, c_in, *self.input_hw
        )
        if self.padding:
            pad = self.padding
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        stride = self.stride
        columns = []
        for dy in range(kh):
            for dx in range(kw):
                patch = x[
                    :,
                    :,
                    dy : dy + (oh - 1) * stride + 1 : stride,
                    dx : dx + (ow - 1) * stride + 1 : stride,
                ]
                columns.append(
                    np.ascontiguousarray(
                        patch.transpose(0, 2, 3, 1)
                    ).reshape(batch * oh * ow, c_in)
                )
        outputs = np.zeros(
            (batch, self.out_features), dtype=compute_dtype
        )
        ph, pw = self.output_hw

        def run_shard(engine, slots, rows, col_offset):
            acc = np.zeros((batch * oh * ow, rows), dtype=compute_dtype)
            cycles = macs = 0
            for matrix, cols in zip(slots, columns):
                out, slot_cycles, slot_macs = engine.run_fc_batch_detailed(
                    matrix,
                    cols,
                    zero_skip=zero_skip,
                    enforce_capacity=enforce_capacity,
                )
                acc += out
                cycles += slot_cycles
                macs += slot_macs
            if self.activation == "relu":
                acc = np.maximum(acc, 0.0)
            elif self.activation == "tanh":
                acc = np.tanh(acc)
            fmap = acc.reshape(batch, oh, ow, rows).transpose(0, 3, 1, 2)
            if self.pool is not None:
                pool = self.pool
                fmap = fmap.reshape(
                    batch, rows, ph, pool, pw, pool
                ).max(axis=(3, 5))
            outputs[:, col_offset : col_offset + rows * ph * pw] = (
                fmap.reshape(batch, rows * ph * pw)
            )
            return cycles, macs

        tasks = []
        col_offset = 0
        for engine, slots, rows in zip(
            engines, self.shard_slots, self._shard_rows
        ):
            tasks.append((engine, slots, rows, col_offset))
            col_offset += rows * ph * pw
        results = self._run_shard_tasks(
            run_shard, tasks, executor, self.num_shards
        )
        shard_cycles = [cycles for cycles, _ in results]
        shard_macs = [macs for _, macs in results]
        return outputs, shard_cycles, shard_macs

    # -- bundle serialization hooks ------------------------------------

    def manifest_entry(self) -> dict:
        entry = {
            "stage_kind": self.stage_kind,
            "slots": self.kernel_size[0] * self.kernel_size[1],
            "shape": list(self.channels),
            "activation": self.activation,
            "kernel_size": list(self.kernel_size),
            "input_hw": list(self.input_hw),
            "stride": self.stride,
            "padding": self.padding,
            "pool": self.pool,
            "shard_block_bounds": [
                list(b)
                for b in _shard_block_bounds(
                    [slots[0] for slots in self.shard_slots]
                )
            ],
        }
        entry.update(_matrix_storage_entry(self.shard_slots[0][0]))
        return entry

    def image_slots(self, shard_idx: int) -> list:
        return [
            (matrix, None) for matrix in self.shard_slots[shard_idx]
        ]

    def aux_payload(self) -> dict | None:
        return None

    def __repr__(self) -> str:
        c_out, c_in = self.channels
        return (
            f"LoweredConvStage({c_in}x{self.input_hw[0]}x{self.input_hw[1]}"
            f" -> {c_out}x{self.output_hw[0]}x{self.output_hw[1]}, "
            f"k={self.kernel_size}, shards={self.num_shards}, "
            f"activation={self.activation!r}, pool={self.pool})"
        )


class RecurrentStage(ServedStage):
    """One LSTM-cell timestep served across shard engines.

    The paper's NMT stack is LSTM cells whose 8 component matrices (four
    gates x {input projection W, recurrent projection U}) are all PD; this
    stage drives all 8 through the engine per step.  Every gate matrix is
    row-sharded over **hidden units** with one shared set of block bounds,
    so shard ``K`` owns hidden rows ``[lo, hi)`` of every gate and
    computes its slice of the whole cell update locally: gate
    pre-activations from 8 engine batch calls, then the elementwise cell
    math with exactly :meth:`~repro.nn.layers.recurrent.LSTMCell.step`'s
    expressions (shared ``sigmoid``/``tanh``), writing the ``h`` and ``c``
    row slices of the output.  Requests are ``[x | h_prev | c_prev]``
    vectors and outputs ``[h | c]``, so a sequence is served by feeding
    each step's output state back into the next request -- and an
    encoder-decoder pair by feeding the encoder's final ``[h | c]`` into
    the decoder stage's requests.

    Args:
        cell: the :class:`~repro.nn.layers.recurrent.LSTMCell` to serve
            (gate matrices must be PD; weights and biases stay aliased,
            so in-place training updates reach serving immediately).
        num_shards: engines this stage spreads over.
        backend / value_dtype / fixed_point: optional kernel backend and
            reduced-precision conversion for the 16 shard matrix families.
    """

    stage_kind = "recurrent"

    def __init__(
        self,
        cell: LSTMCell,
        num_shards: int,
        backend: str | None = None,
        value_dtype: str | None = None,
        fixed_point=None,
    ) -> None:
        gate_matrices = []
        for ops in (cell.w_ops, cell.u_ops):
            for gate in _GATES:
                matrix = getattr(ops[gate], "matrix", None)
                if not isinstance(matrix, BlockPermutedDiagonalMatrix):
                    raise ValueError(
                        "RecurrentStage needs PD gate matrices; build the "
                        "cell with p set (dense cells are not servable)"
                    )
                if value_dtype is not None:
                    matrix = matrix.with_value_dtype(
                        value_dtype, fixed_point=fixed_point
                    )
                    if backend is not None:
                        matrix.set_backend(backend)
                gate_matrices.append(matrix)
        slot_shards = [
            matrix.row_shards(num_shards) for matrix in gate_matrices
        ]
        shard_slots = [
            [slot_shards[slot][shard] for slot in range(len(gate_matrices))]
            for shard in range(num_shards)
        ]
        self._init_from(
            shard_slots,
            {gate: cell.biases[gate].value for gate in _GATES},
            cell.input_size,
            cell.hidden_size,
        )

    @classmethod
    def from_shard_slots(
        cls,
        shard_slots: list[list[BlockPermutedDiagonalMatrix]],
        biases: dict,
        input_size: int,
        hidden_size: int,
    ) -> "RecurrentStage":
        """Wrap already-sharded gate matrices (e.g. from a v3 bundle)."""
        stage = cls.__new__(cls)
        stage._init_from(
            [list(slots) for slots in shard_slots],
            dict(biases),
            input_size,
            hidden_size,
        )
        return stage

    def _init_from(self, shard_slots, biases, input_size, hidden_size):
        if not shard_slots:
            raise ValueError("a recurrent stage needs at least one shard")
        for slots in shard_slots:
            if len(slots) != 2 * len(_GATES):
                raise ValueError(
                    f"recurrent shard holds {len(slots)} matrices, "
                    f"a cell has {2 * len(_GATES)}"
                )
            rows = slots[0].shape[0]
            for slot, matrix in enumerate(slots):
                expected_n = input_size if slot < len(_GATES) else hidden_size
                if matrix.shape != (rows, expected_n):
                    raise ValueError(
                        f"gate slot {slot}: shape {matrix.shape} does not "
                        f"match ({rows}, {expected_n})"
                    )
        covered = sum(slots[0].shape[0] for slots in shard_slots)
        if covered != hidden_size:
            raise ValueError(
                f"shards cover {covered} hidden rows, cell has {hidden_size}"
            )
        missing = set(_GATES) - set(biases)
        if missing:
            raise ValueError(f"missing gate biases: {sorted(missing)}")
        self.shard_slots = shard_slots
        self.num_shards = len(shard_slots)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.in_features = input_size + 2 * hidden_size
        self.out_features = 2 * hidden_size
        self.activation = None  # the cell math *is* the nonlinearity
        bounds = []
        start = 0
        for slots in shard_slots:
            bounds.append((start, start + slots[0].shape[0]))
            start += slots[0].shape[0]
        self._row_bounds = bounds
        self.biases = biases
        compute_dtype = shard_slots[0][0].compute_dtype
        # Elementwise cell math runs in the engines' compute dtype; for
        # float64 keep the live (aliased) bias views so in-place updates
        # reach serving, like every other stage's weights.
        if np.dtype(compute_dtype) == np.float64:
            self._biases_c = biases
        else:
            self._biases_c = {
                gate: np.asarray(value, dtype=compute_dtype)
                for gate, value in biases.items()
            }

    def check_capacity(self, engines: list[PermDNNEngine]) -> None:
        """Verify every gate matrix of every shard fits its engine."""
        for engine, slots in zip(engines, self.shard_slots):
            for matrix in slots:
                engine.check_capacity(matrix)

    def run_batch(
        self,
        engines: list[PermDNNEngine],
        x_batch: np.ndarray,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
        executor: ThreadPoolExecutor | None = None,
    ) -> tuple[np.ndarray, list[int], list[int]]:
        """Execute one cell step for a micro-batch of ``[x|h|c]`` rows."""
        hidden = self.hidden_size
        x = x_batch[:, : self.input_size]
        h_prev = x_batch[:, self.input_size : self.input_size + hidden]
        c_prev = x_batch[:, self.input_size + hidden :]
        compute_dtype = self.shard_slots[0][0].compute_dtype
        c_prev_c = np.asarray(c_prev, dtype=compute_dtype)
        outputs = np.zeros(
            (x_batch.shape[0], 2 * hidden), dtype=compute_dtype
        )

        def run_shard(engine, slots, lo, hi):
            cycles = macs = 0
            pre = {}
            for idx, gate in enumerate(_GATES):
                w_out, w_cycles, w_macs = engine.run_fc_batch_detailed(
                    slots[idx],
                    x,
                    zero_skip=zero_skip,
                    enforce_capacity=enforce_capacity,
                )
                u_out, u_cycles, u_macs = engine.run_fc_batch_detailed(
                    slots[len(_GATES) + idx],
                    h_prev,
                    zero_skip=zero_skip,
                    enforce_capacity=enforce_capacity,
                )
                # Same association order as LSTMCell.step: (W x + U h) + b.
                pre[gate] = w_out + u_out + self._biases_c[gate][lo:hi]
                cycles += w_cycles + u_cycles
                macs += w_macs + u_macs
            gate_i = sigmoid(pre["i"])
            gate_f = sigmoid(pre["f"])
            gate_g = np.tanh(pre["g"])
            gate_o = sigmoid(pre["o"])
            c = gate_f * c_prev_c[:, lo:hi] + gate_i * gate_g
            outputs[:, lo:hi] = gate_o * np.tanh(c)
            outputs[:, hidden + lo : hidden + hi] = c
            return cycles, macs

        tasks = [
            (engine, slots, lo, hi)
            for engine, slots, (lo, hi) in zip(
                engines, self.shard_slots, self._row_bounds
            )
        ]
        results = self._run_shard_tasks(
            run_shard, tasks, executor, self.num_shards
        )
        shard_cycles = [cycles for cycles, _ in results]
        shard_macs = [macs for _, macs in results]
        return outputs, shard_cycles, shard_macs

    # -- bundle serialization hooks ------------------------------------

    def manifest_entry(self) -> dict:
        entry = {
            "stage_kind": self.stage_kind,
            "slots": 2 * len(_GATES),
            "shape": [self.hidden_size, self.input_size],
            "activation": None,
            "input_size": self.input_size,
            "hidden_size": self.hidden_size,
            "shard_block_bounds": [
                list(b)
                for b in _shard_block_bounds(
                    [slots[0] for slots in self.shard_slots]
                )
            ],
        }
        entry.update(_matrix_storage_entry(self.shard_slots[0][0]))
        return entry

    def image_slots(self, shard_idx: int) -> list:
        return [
            (matrix, None) for matrix in self.shard_slots[shard_idx]
        ]

    def aux_payload(self) -> dict | None:
        return {
            f"bias_{gate}": np.asarray(self.biases[gate], dtype=np.float64)
            for gate in _GATES
        }

    def __repr__(self) -> str:
        return (
            f"RecurrentStage(x={self.input_size} h={self.hidden_size}, "
            f"shards={self.num_shards})"
        )


def build_stages(
    specs: list,
    num_shards: int,
    input_hw: tuple[int, int] | None = None,
    value_dtype: str | None = None,
    fixed_point=None,
) -> list[ServedStage]:
    """Turn :func:`~repro.nn.serialization.model_stage_specs` output into
    served stages, chaining conv spatial geometry stage to stage.

    ``input_hw`` is the spatial size of the first conv stage's input
    (required iff the model has conv stages); each conv stage's output
    size feeds the next.  ``value_dtype``/``fixed_point`` convert every
    stage's weight storage (quantize-at-serve; plans stay shared with the
    training matrices).
    """
    from repro.nn.serialization import (
        ConvStageSpec,
        FCStageSpec,
        RecurrentStageSpec,
    )

    stages: list[ServedStage] = []
    chain_hw = tuple(int(v) for v in input_hw) if input_hw is not None else None
    for spec in specs:
        if isinstance(spec, FCStageSpec):
            matrix = spec.matrix
            if value_dtype is not None:
                matrix = matrix.with_value_dtype(
                    value_dtype, fixed_point=fixed_point
                )
            stages.append(ShardedLayer(matrix, spec.activation, num_shards))
        elif isinstance(spec, ConvStageSpec):
            if chain_hw is None:
                raise ValueError(
                    "model has conv stages: pass input_hw=(H, W), the "
                    "spatial size of the first conv stage's input"
                )
            stage = LoweredConvStage(
                spec.tensor,
                spec.activation,
                num_shards,
                input_hw=chain_hw,
                stride=spec.stride,
                padding=spec.padding,
                pool=spec.pool,
                value_dtype=value_dtype,
                fixed_point=fixed_point,
            )
            chain_hw = stage.output_hw
            stages.append(stage)
        elif isinstance(spec, RecurrentStageSpec):
            stages.append(RecurrentStage(
                spec.cell,
                num_shards,
                value_dtype=value_dtype,
                fixed_point=fixed_point,
            ))
        else:
            raise TypeError(
                f"unknown stage spec {type(spec).__name__}"
            )
    return stages


@dataclass
class ServeReport:
    """Everything one :meth:`ModelServer.drain` produced.

    Per-request latency is recorded as a queue/compute split:
    ``queue_us`` covers arrival to the instant the request's micro-batch
    starts computing on the entry layer (batch-formation wait plus
    waiting for a free entry-layer engine), ``compute_us`` covers the
    pipeline traversal, and ``latencies_us`` is their sum (completion
    minus arrival) -- the quantity the SLO is stated against.

    Attributes:
        outputs: final-layer output per admitted request, in submission
            (rid) order.
        latencies_us: per-request total latency (completion minus arrival).
        batch_sizes: micro-batch sizes, in formation order.
        makespan_us: first admitted arrival to last completion.
        throughput_rps: requests served per second of simulated time.
        layer_stats: ``(L, N)`` grid of per-(layer, shard) counters for
            this drain.
        layer_cycles: per-layer critical-path cycles (the slowest shard of
            every micro-batch, summed).
        queue_us: per-request queueing latency (see above).
        compute_us: per-request pipeline-compute latency (see above).
        shed_rids: ids of requests rejected by admission control, in
            arrival order; always empty on an unbounded queue.
    """

    outputs: list[np.ndarray]
    latencies_us: np.ndarray
    batch_sizes: list[int]
    makespan_us: float
    throughput_rps: float
    layer_stats: list[list[LayerShardStats]]
    layer_cycles: list[int]
    queue_us: np.ndarray = field(default_factory=lambda: np.empty(0))
    compute_us: np.ndarray = field(default_factory=lambda: np.empty(0))
    shed_rids: list[int] = field(default_factory=list)

    @property
    def num_requests(self) -> int:
        """Admitted (= completed) requests."""
        return len(self.outputs)

    @property
    def num_shed(self) -> int:
        """Requests rejected by admission control."""
        return len(self.shed_rids)

    @property
    def num_submitted(self) -> int:
        """Everything that arrived: admitted plus shed."""
        return self.num_requests + self.num_shed

    def _series(self, which: str) -> np.ndarray:
        series = {
            "total": self.latencies_us,
            "queue": self.queue_us,
            "compute": self.compute_us,
        }
        if which not in series:
            raise ValueError(
                f"unknown latency series {which!r}; "
                f"known: {', '.join(sorted(series))}"
            )
        return series[which]

    def latency_percentile(self, q: float, which: str = "total") -> float:
        """Latency percentile in microseconds (e.g. ``q=50``, ``q=99``).

        Raises:
            EmptyServeReportError: on a report with no completed
                requests -- percentiles of nothing are a caller bug, not
                a zero.
        """
        series = self._series(which)
        if series.size == 0:
            raise EmptyServeReportError(
                "latency percentiles are undefined on an empty report "
                f"({self.num_shed} shed, 0 completed)"
            )
        return float(np.percentile(series, q))

    def percentile_curve(
        self,
        qs: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0),
        which: str = "total",
    ) -> np.ndarray:
        """Latency percentiles at every ``q`` of ``qs``, as an array.

        ``which`` selects the series: ``"total"`` (default),
        ``"queue"``, or ``"compute"``.  Monotone in ``q`` by definition
        of the percentile; raises :class:`EmptyServeReportError` on an
        empty report like :meth:`latency_percentile`.
        """
        series = self._series(which)
        if series.size == 0:
            raise EmptyServeReportError(
                "latency percentiles are undefined on an empty report "
                f"({self.num_shed} shed, 0 completed)"
            )
        return np.percentile(series, np.asarray(qs, dtype=np.float64))


class ModelServer:
    """Sharded multi-engine serving front end (submit / drain).

    Args:
        layers: the served pipeline, input to output.  Each entry is
            either a pre-built :class:`ServedStage` (FC, lowered-conv,
            recurrent, ...) or a raw ``(matrix, activation)`` pair (the
            same shape :meth:`~repro.hw.PermDNNEngine.run_network`
            accepts), which is wrapped as a :class:`ShardedLayer`.
        num_shards: engines per layer; each holds one row shard.
        config: engine configuration shared by every shard engine.
        max_batch_size: micro-batcher fill limit.
        flush_deadline_us: micro-batcher deadline flush.
        zero_skip: forward the engines' input zero-skipping.
        enforce_capacity: validate every shard against its engine's SRAM
            budget at construction (and per call).
        num_threads: host threads driving each layer's shard engines.
            ``None`` (default) uses ``min(max shard count, host CPUs)``;
            ``1`` forces sequential shard execution.  Purely a host-side
            execution knob: simulated cycles, counters, and outputs are
            identical at every thread count (shards are collected in
            shard order).
        queue_capacity: bound on the in-flight population (requests
            admitted but not yet completed, including the forming
            batch).  ``None`` (default) queues unboundedly -- the exact
            pre-admission-control behaviour.  With a bound, a request
            arriving while the population is at capacity is **shed**
            (reject-newest): it is never executed, its id lands in
            :attr:`ServeReport.shed_rids`, and the entry layer's shard
            counters record the rejection.  Bounding the queue bounds
            queueing delay (Little's law: delay ~ capacity / service
            rate), which is what keeps admitted-request tail latency
            inside an SLO past the saturation knee.
    """

    def __init__(
        self,
        layers: list,
        num_shards: int = 4,
        config: EngineConfig | None = None,
        max_batch_size: int = 16,
        flush_deadline_us: float = 50.0,
        zero_skip: bool = True,
        enforce_capacity: bool = True,
        num_threads: int | None = None,
        queue_capacity: int | None = None,
    ) -> None:
        if not layers:
            raise ValueError("ModelServer needs at least one layer")
        if queue_capacity is not None and queue_capacity <= 0:
            raise ValueError(
                f"queue_capacity must be positive or None, got {queue_capacity}"
            )
        self.queue_capacity = queue_capacity
        self.config = config or EngineConfig()
        self.zero_skip = zero_skip
        self.enforce_capacity = enforce_capacity
        self.layers: list[ServedStage] = [
            layer
            if isinstance(layer, ServedStage)
            else ShardedLayer(layer[0], layer[1], num_shards)
            for layer in layers
        ]
        # Derive from the layers: a pre-built stage carries its own
        # shard count, which the ``num_shards`` argument does not override.
        self.num_shards = self.layers[0].num_shards
        if num_threads is None:
            num_threads = min(
                max(layer.num_shards for layer in self.layers),
                os.cpu_count() or 1,
            )
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = int(num_threads)
        for prev, nxt in zip(self.layers, self.layers[1:]):
            if prev.out_features != nxt.in_features:
                raise ValueError(
                    f"layer chain mismatch: {prev!r} feeds {nxt!r}"
                )
        # One engine per (layer, shard): every shard owns its own SRAMs and
        # counters, exactly like an array of physical engines would.
        self.engines: list[list[PermDNNEngine]] = [
            [PermDNNEngine(self.config) for _ in range(layer.num_shards)]
            for layer in self.layers
        ]
        if enforce_capacity:
            for layer, engines in zip(self.layers, self.engines):
                layer.check_capacity(engines)
        self.batcher = MicroBatcher(max_batch_size, flush_deadline_us)
        self._pending: list[Request] = []
        self._next_rid = 0
        self._last_arrival_us = 0.0

    @classmethod
    def from_model(
        cls,
        model,
        input_hw: tuple[int, int] | None = None,
        value_dtype: str | None = None,
        fixed_point=None,
        num_shards: int = 4,
        **kwargs,
    ) -> "ModelServer":
        """Wrap a trained model's live weights as a served pipeline.

        The model is walked by
        :func:`repro.nn.serialization.model_stage_specs` -- PD FC stacks,
        PD conv + pool chains, and PD LSTM cells all map to served
        stages; anything else raises
        :class:`~repro.nn.serialization.UnsupportedLayerError`.  FC and
        recurrent shard data aliases the layers' parameter storage, so
        serving reflects subsequent in-place weight updates (conv stages
        repack the trainable dense kernel tensor at construction).

        Args:
            model: the :class:`~repro.nn.module.Module` to serve.
            input_hw: spatial ``(H, W)`` of the first conv stage's input
                (required iff the model has conv layers).
            value_dtype / fixed_point: serve-time weight storage
                conversion (quantize-at-serve; index plans stay shared).
            num_shards / kwargs: forwarded to the constructor.
        """
        from repro.nn.serialization import model_stage_specs

        stages = build_stages(
            model_stage_specs(model),
            num_shards,
            input_hw=input_hw,
            value_dtype=value_dtype,
            fixed_point=fixed_point,
        )
        return cls(stages, num_shards=num_shards, **kwargs)

    @classmethod
    def from_bundle(
        cls,
        directory,
        missing_backend: str = "error",
        **kwargs,
    ) -> "ModelServer":
        """Boot a server from a sharded image bundle.

        Every shard matrix arrives with its serialized index plan
        (:mod:`repro.serve.bundle`), so cold-starting a many-layer sharded
        server performs **no** index arithmetic -- for FC, lowered-conv,
        and recurrent stages alike.  Keyword arguments are forwarded to
        the constructor (batching, config, ...).
        """
        from repro.serve.bundle import load_staged_bundle

        stages, _ = load_staged_bundle(
            directory, missing_backend=missing_backend
        )
        return cls(stages, **kwargs)

    # ------------------------------------------------------------------

    @property
    def in_features(self) -> int:
        return self.layers[0].in_features

    @property
    def out_features(self) -> int:
        return self.layers[-1].out_features

    @property
    def cycles_per_us(self) -> float:
        return self.config.clock_ghz * 1e3

    def submit(self, x: np.ndarray, arrival_us: float | None = None) -> int:
        """Queue one request; returns its id (= output position).

        ``arrival_us`` defaults to the previous request's arrival (an
        all-at-once burst when never specified); arrivals are clamped to be
        non-decreasing so the queue stays ordered.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.in_features,):
            raise ValueError(
                f"expected input of shape ({self.in_features},), got {x.shape}"
            )
        if arrival_us is None:
            arrival_us = self._last_arrival_us
        arrival_us = max(float(arrival_us), self._last_arrival_us)
        self._last_arrival_us = arrival_us
        rid = self._next_rid
        self._next_rid += 1
        self._pending.append(Request(rid, x, arrival_us))
        return rid

    def submit_many(
        self,
        xs: np.ndarray,
        arrivals_us: np.ndarray | None = None,
    ) -> list[int]:
        """Queue a batch of requests; returns their ids in order."""
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim != 2:
            raise ValueError(f"expected inputs of shape (B, n), got {xs.shape}")
        if arrivals_us is None:
            return [self.submit(x) for x in xs]
        arrivals = np.asarray(arrivals_us, dtype=np.float64)
        if arrivals.shape != (xs.shape[0],):
            raise ValueError(
                f"arrivals_us shape {arrivals.shape} does not match "
                f"batch of {xs.shape[0]}"
            )
        return [self.submit(x, t) for x, t in zip(xs, arrivals)]

    def drain(self) -> ServeReport:
        """Serve every pending request and return the drain report.

        Micro-batches are formed online (the batcher's streaming
        assembler) and pipelined through the layer shard arrays: batch
        ``b`` enters layer ``l`` at ``max(completion[l-1][b],
        completion[l][b-1], ready_b)`` and occupies the layer for its
        slowest shard's cycles.  A batch is never ready before its last
        member arrived, so per-request latency (completion minus
        arrival) is honest open-loop timing; each request's wait is
        split into queue and compute components (see
        :class:`ServeReport`).

        With a bounded ``queue_capacity``, admission control runs at
        each request's arrival instant: if the in-flight population
        (admitted, not yet completed at that simulated time) is at
        capacity, the newest request is shed instead of queued.  Batch
        formation, execution, and shedding all advance on the same
        simulated clock, so the whole drain stays a pure function of the
        submitted ``(input, arrival)`` sequence -- identical seeds
        reproduce identical per-request latency traces.  Outputs come
        back in submission order regardless of batching.

        With ``num_threads > 1`` a drain-scoped thread pool runs each
        layer's shard engines concurrently on the host (shut down before
        this method returns, so no threads outlive the drain); the
        simulated clock and every output are unchanged by threading.
        """
        pending, self._pending = self._pending, []
        num_layers = len(self.layers)
        layer_stats = [
            [LayerShardStats() for _ in range(layer.num_shards)]
            for layer in self.layers
        ]
        layer_cycles = [0] * num_layers
        outputs: dict[int, np.ndarray] = {}
        latencies: dict[int, float] = {}
        queue_lat: dict[int, float] = {}
        batch_sizes: list[int] = []
        shed_rids: list[int] = []
        # completion time (in cycles) of the previous batch, per layer
        layer_free = [0.0] * num_layers
        # completion times (us) of already-executed batches' requests, in
        # non-decreasing order (each batch finishes no earlier than its
        # predecessor); ``done_idx`` advances with simulated time so the
        # in-flight count below stays O(1) amortized.
        completion_log: list[float] = []
        done_idx = 0

        # Drain-scoped shard pool: created here (not per batch, not per
        # server) so threads are reused across every micro-batch of the
        # drain yet never outlive it.
        executor = (
            ThreadPoolExecutor(
                max_workers=self.num_threads,
                thread_name_prefix="repro-shard",
            )
            if self.num_threads > 1
            else None
        )

        def run_batch(batch) -> None:
            current = batch.stacked_inputs()
            done = batch.ready_us * self.cycles_per_us
            start_entry = done
            for idx, (layer, engines) in enumerate(
                zip(self.layers, self.engines)
            ):
                current, shard_cycles, shard_macs = layer.run_batch(
                    engines,
                    current,
                    zero_skip=self.zero_skip,
                    enforce_capacity=self.enforce_capacity,
                    executor=executor,
                )
                stage = max(shard_cycles)
                start = max(done, layer_free[idx])
                if idx == 0:
                    start_entry = start
                done = start + stage
                layer_free[idx] = done
                layer_cycles[idx] += stage
                for shard_idx, (cycles, macs) in enumerate(
                    zip(shard_cycles, shard_macs)
                ):
                    stats = layer_stats[idx][shard_idx]
                    stats.cycles += cycles
                    stats.macs += macs
                    stats.batches += 1
                    stats.samples += batch.size
            completion_us = done / self.cycles_per_us
            start_entry_us = start_entry / self.cycles_per_us
            for row, request in enumerate(batch.requests):
                outputs[request.rid] = current[row]
                latencies[request.rid] = completion_us - request.arrival_us
                queue_lat[request.rid] = start_entry_us - request.arrival_us
                completion_log.append(completion_us)
            batch_sizes.append(batch.size)

        try:
            assembler = self.batcher.assembler()
            for request in pending:
                flushed = assembler.poll(request.arrival_us)
                if flushed is not None:
                    run_batch(flushed)
                if self.queue_capacity is not None:
                    # In-flight population at this arrival: the forming
                    # batch plus every executed request still completing
                    # in the simulated future.
                    while (
                        done_idx < len(completion_log)
                        and completion_log[done_idx] <= request.arrival_us
                    ):
                        done_idx += 1
                    in_flight = (
                        assembler.pending_count
                        + len(completion_log)
                        - done_idx
                    )
                    if in_flight >= self.queue_capacity:
                        shed_rids.append(request.rid)
                        for stats in layer_stats[0]:
                            stats.shed += 1
                        continue
                for batch in assembler.offer(request):
                    run_batch(batch)
            tail = assembler.finish()
            if tail is not None:
                run_batch(tail)
        finally:
            if executor is not None:
                executor.shutdown(wait=True)

        rids = sorted(outputs)
        latencies_us = np.asarray([latencies[rid] for rid in rids])
        queue_us = np.asarray([queue_lat[rid] for rid in rids])
        compute_us = latencies_us - queue_us
        shed = set(shed_rids)
        admitted = [req for req in pending if req.rid not in shed]
        if admitted:
            first_arrival = min(request.arrival_us for request in admitted)
            last_completion = max(
                request.arrival_us + latencies[request.rid]
                for request in admitted
            )
            makespan_us = last_completion - first_arrival
        else:
            makespan_us = 0.0
        throughput = (
            len(rids) / (makespan_us * 1e-6) if makespan_us > 0 else 0.0
        )
        return ServeReport(
            outputs=[outputs[rid] for rid in rids],
            latencies_us=latencies_us,
            batch_sizes=batch_sizes,
            makespan_us=makespan_us,
            throughput_rps=throughput,
            layer_stats=layer_stats,
            layer_cycles=layer_cycles,
            queue_us=queue_us,
            compute_us=compute_us,
            shed_rids=shed_rids,
        )

    def __repr__(self) -> str:
        return (
            f"ModelServer(layers={len(self.layers)}, "
            f"shards={self.num_shards}, "
            f"threads={self.num_threads}, "
            f"max_batch={self.batcher.max_batch_size}, "
            f"deadline={self.batcher.flush_deadline_us}us, "
            f"queue_capacity={self.queue_capacity})"
        )
